"""repro: a reproduction of "Systems Architecture for Quantum Random Access Memory".

The library re-implements the MICRO 2023 paper end to end:

* :mod:`repro.circuit` -- the circuit model (reversible-classical gate set,
  scheduling, Clifford+T accounting);
* :mod:`repro.sim` -- the Feynman-path simulator, a dense statevector
  reference, Pauli noise channels and fidelity metrics;
* :mod:`repro.qram` -- the virtual QRAM (Algorithm 1 with the Sec. 3.2
  optimizations) and the baseline architectures (SQC/QROM, Fanout,
  Bucket-Brigade, Select-Swap);
* :mod:`repro.mapping` -- H-tree embedding onto 2D grids and the
  swap-vs-teleportation routing comparison;
* :mod:`repro.analysis` -- fidelity bounds, error-cone propagation, the
  asymmetric surface-code design rule and the Table 1/2 resource models;
* :mod:`repro.hardware` -- IBM-like device models, a greedy SWAP router and
  device-derived noise models for the Appendix-A study;
* :mod:`repro.experiments` -- one runner per table/figure of the evaluation.

Quickstart
----------
>>> from repro import ClassicalMemory, VirtualQRAM
>>> from repro.sim import GateNoiseModel, PauliChannel
>>> memory = ClassicalMemory.random(4, rng=7)
>>> qram = VirtualQRAM(memory=memory, qram_width=3)   # 8-cell QRAM, 2 pages
>>> qram.verify()                                      # noiseless correctness
True
>>> noise = GateNoiseModel(PauliChannel.phase_flip(1e-3))
>>> qram.run_query(noise, shots=256, rng=1).mean_fidelity > 0.8
True
"""

from repro.circuit import Instruction, QuantumCircuit
from repro.qram import (
    BucketBrigadeQRAM,
    ClassicalMemory,
    FanoutQRAM,
    QRAMArchitecture,
    SelectSwapQRAM,
    SequentialQueryCircuit,
    VirtualQRAM,
    VirtualQRAMOptions,
    make_architecture,
)
from repro.sim import (
    FeynmanPathSimulator,
    GateNoiseModel,
    PathState,
    PauliChannel,
    StatevectorSimulator,
)

__version__ = "1.0.0"

__all__ = [
    "BucketBrigadeQRAM",
    "ClassicalMemory",
    "FanoutQRAM",
    "FeynmanPathSimulator",
    "GateNoiseModel",
    "Instruction",
    "PathState",
    "PauliChannel",
    "QRAMArchitecture",
    "QuantumCircuit",
    "SelectSwapQRAM",
    "SequentialQueryCircuit",
    "StatevectorSimulator",
    "VirtualQRAM",
    "VirtualQRAMOptions",
    "__version__",
    "make_architecture",
]
