"""Scenario results as a service: versioned HTTP API over the result cache.

``python -m repro.server`` serves the scenario registry and the
content-addressed result cache (:mod:`repro.cache`) over a stdlib-only
``ThreadingHTTPServer``: hot scenarios are O(1) cached lookups
(``GET /api/v1/results/<fingerprint>``), cold ones queue through
``POST /api/v1/runs`` onto the deterministic sharded
:class:`~repro.sweep.SweepRunner` and are polled at
``GET /api/v1/jobs/<id>``.  See :mod:`repro.server.app` for the route
table and :mod:`repro.server.responses` for the envelope contract.
"""

from repro.server.app import ScenarioServer, ScenarioService
from repro.server.jobs import Job, JobTable, JobWorker
from repro.server.responses import (
    API_PREFIX,
    API_VERSION,
    error_envelope,
    ok_envelope,
)

__all__ = [
    "API_PREFIX",
    "API_VERSION",
    "Job",
    "JobTable",
    "JobWorker",
    "ScenarioServer",
    "ScenarioService",
    "error_envelope",
    "ok_envelope",
]
