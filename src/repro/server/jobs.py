"""Job table and background worker for asynchronous scenario runs.

``POST /api/v1/runs`` must return immediately -- cold scenarios can take
seconds to minutes -- so submissions become :class:`Job` entries in a
thread-safe :class:`JobTable` and a single background :class:`JobWorker`
thread drains them in FIFO order, executing each through
:func:`repro.scenarios.run.run_scenario` with the server's result cache.
The run itself still fans out across the sharded
:class:`~repro.sweep.SweepRunner` process pool, so one worker thread is a
scheduling choice (strict FIFO, bounded load), not a throughput ceiling.

Lifecycle: ``queued -> running -> done | error``; a submission whose
fingerprint is already cached is born ``done`` without ever queueing.
Completed results are read back through the cache by fingerprint
(``GET /api/v1/results/<fingerprint>``), so the job table holds only
metadata, never record payloads.
"""

from __future__ import annotations

import queue
import threading
import traceback
from dataclasses import dataclass, field

from repro.cache.store import ResultCache
from repro.circuit.ir import BranchBudgetError
from repro.scenarios.run import run_scenario
from repro.scenarios.spec import ScenarioSpec

#: Job lifecycle states, in order.
JOB_STATES = ("queued", "running", "done", "error")


@dataclass
class Job:
    """One submitted run: resolved inputs, lifecycle state, outcome."""

    id: str
    spec: ScenarioSpec
    fingerprint: str
    shots: int
    seed: int
    engine: str
    status: str = "queued"
    error: str | None = None

    def public_view(self) -> dict[str, object]:
        """The JSON-safe description ``GET /api/v1/jobs/<id>`` serves."""
        view: dict[str, object] = {
            "id": self.id,
            "scenario": self.spec.name,
            "fingerprint": self.fingerprint,
            "shots": self.shots,
            "seed": self.seed,
            "engine": self.engine,
            "router": self.spec.router,
            "status": self.status,
        }
        if self.status == "done":
            view["result_url"] = f"/api/v1/results/{self.fingerprint}"
        if self.error is not None:
            view["error"] = self.error
        return view


@dataclass
class JobTable:
    """Thread-safe registry of every job this server process has seen."""

    _jobs: dict[str, Job] = field(default_factory=dict)
    _lock: threading.Lock = field(default_factory=threading.Lock)
    _counter: int = 0

    def create(
        self,
        spec: ScenarioSpec,
        fingerprint: str,
        *,
        shots: int,
        seed: int,
        engine: str,
        status: str = "queued",
    ) -> Job:
        """Register a new job (ids are ``job-<n>``, dense and process-local)."""
        with self._lock:
            self._counter += 1
            job = Job(
                id=f"job-{self._counter:04d}",
                spec=spec,
                fingerprint=fingerprint,
                shots=shots,
                seed=seed,
                engine=engine,
                status=status,
            )
            self._jobs[job.id] = job
            return job

    def get(self, job_id: str) -> Job | None:
        """Look a job up by id (``None`` when unknown)."""
        with self._lock:
            return self._jobs.get(job_id)

    def set_status(self, job_id: str, status: str, error: str | None = None) -> None:
        """Advance a job's lifecycle state (worker-side)."""
        if status not in JOB_STATES:
            raise ValueError(f"unknown job status {status!r}; one of {JOB_STATES}")
        with self._lock:
            job = self._jobs[job_id]
            job.status = status
            job.error = error

    def __len__(self) -> int:
        with self._lock:
            return len(self._jobs)


class JobWorker:
    """Background thread executing queued jobs through ``run_scenario``."""

    def __init__(
        self,
        table: JobTable,
        cache: ResultCache,
        *,
        workers: int | None = None,
        shard_size: int | None = None,
    ) -> None:
        self.table = table
        self.cache = cache
        self.workers = workers
        self.shard_size = shard_size
        self._queue: queue.Queue[Job | None] = queue.Queue()
        self._thread = threading.Thread(
            target=self._drain, name="repro-job-worker", daemon=True
        )

    def start(self) -> None:
        """Start the worker thread (idempotent per instance)."""
        if not self._thread.is_alive():
            self._thread.start()

    def submit(self, job: Job) -> None:
        """Enqueue a ``queued`` job for execution."""
        self._queue.put(job)

    def stop(self, timeout: float = 10.0) -> None:
        """Drain the sentinel through the queue and join the thread."""
        if self._thread.is_alive():
            self._queue.put(None)
            self._thread.join(timeout=timeout)

    def _drain(self) -> None:
        while True:
            job = self._queue.get()
            if job is None:
                return
            self.table.set_status(job.id, "running")
            try:
                run_scenario(
                    job.spec,
                    shots=job.shots,
                    seed=job.seed,
                    engine=job.engine,
                    workers=self.workers,
                    shard_size=self.shard_size,
                    cache=self.cache,
                )
            except BranchBudgetError as exc:
                # Run-time budget overruns (e.g. a runtime-registered spec
                # that dodged the submit-time pre-flight) carry the same
                # typed slug the synchronous API paths use.
                self.table.set_status(
                    job.id, "error", error=f"branch_budget_exceeded: {exc}"
                )
            except Exception as exc:  # surface, never kill the worker
                self.table.set_status(
                    job.id, "error", error=f"{type(exc).__name__}: {exc}"
                )
                traceback.print_exc()
            else:
                self.table.set_status(job.id, "done")
