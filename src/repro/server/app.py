"""Scenario results as a service: the versioned stdlib-only HTTP API.

Route table (all JSON, all wrapped in the envelope of
:mod:`repro.server.responses`):

.. code-block:: text

    GET  /api/v1/health               liveness + job/cache counters
    GET  /api/v1/scenarios            registry listing (name, description, spec)
    GET  /api/v1/scenarios/<name>     one registered spec
    GET  /api/v1/results/<fp>         cached records by content address
    GET  /api/v1/results/<fp>.rrec    the packed binary artefact (raw bytes)
    POST /api/v1/runs                 submit a run -> job id + fingerprint
    GET  /api/v1/jobs/<id>            poll a submission's lifecycle state

The split below keeps the logic testable and the transport thin:
:class:`ScenarioService` maps ``(method, path, body)`` to
``(http status, envelope dict)`` with no socket in sight, and the
:class:`~http.server.ThreadingHTTPServer`-based :class:`ScenarioServer`
wires it to real connections plus the background
:class:`~repro.server.jobs.JobWorker`.

Serving model: hot scenarios are O(1) content-addressed file reads
(``GET /results/<fingerprint>`` never computes anything, and the ``.rrec``
variant streams the memory-mapped binary artefact without materializing a
single record dict); cold ones queue
through ``POST /runs`` onto the deterministic sharded runner, and because
results are pure functions of their fingerprinted inputs, any number of
servers may share one ``$REPRO_CACHE_DIR``.
"""

from __future__ import annotations

import json
import re
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.cache.fingerprint import CACHE_SCHEMA_VERSION, canonical_spec
from repro.cache.store import ResultCache, resolve_cache
from repro.circuit.ir import BranchBudgetError
from repro.scenarios.compile import compile_scenario
from repro.scenarios.record import RECORD_SCHEMA_VERSION
from repro.scenarios.run import resolve_run
from repro.scenarios.spec import available_scenarios, get_scenario
from repro.server.jobs import JobTable, JobWorker
from repro.server.responses import (
    API_PREFIX,
    API_VERSION,
    RawResponse,
    encode,
    error_envelope,
    ok_envelope,
)
from repro.sim.engine import available_engines

_FINGERPRINT = re.compile(r"^[0-9a-f]{64}$")


class ScenarioService:
    """Transport-free request handling: ``(method, path, body) -> response``.

    Every public ``handle_*`` method returns ``(status_code, envelope)``;
    the HTTP layer only serializes.  A service owns the result cache and the
    job table; the :class:`~repro.server.jobs.JobWorker` executing
    submissions is attached by :class:`ScenarioServer` (tests may drive the
    service synchronously without one).
    """

    def __init__(self, cache: ResultCache | str | None = None) -> None:
        store = resolve_cache(cache)
        self.cache = store if store is not None else ResultCache()
        self.jobs = JobTable()
        self.worker: JobWorker | None = None

    # -------------------------------------------------------------- dispatch
    def handle_get(self, path: str) -> "tuple[int, dict | RawResponse]":
        """Route one GET request path."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        if not path.startswith(API_PREFIX):
            return 404, error_envelope(
                "unknown_route", f"routes live under {API_PREFIX}/"
            )
        tail = path[len(API_PREFIX):]
        if tail == "/health":
            return self._health()
        if tail == "/scenarios":
            return self._list_scenarios()
        if tail.startswith("/scenarios/"):
            return self._get_scenario(tail[len("/scenarios/"):])
        if tail.startswith("/results/"):
            return self._get_result(tail[len("/results/"):])
        if tail.startswith("/jobs/"):
            return self._get_job(tail[len("/jobs/"):])
        if tail == "/runs":
            return 405, error_envelope(
                "method_not_allowed", "POST a JSON body to submit a run"
            )
        return 404, error_envelope("unknown_route", f"no route for {path}")

    def handle_post(self, path: str, body: bytes) -> tuple[int, dict]:
        """Route one POST request (only ``/api/v1/runs`` accepts POST)."""
        path = path.split("?", 1)[0].rstrip("/")
        if path != f"{API_PREFIX}/runs":
            return 405, error_envelope(
                "method_not_allowed", f"POST is only accepted at {API_PREFIX}/runs"
            )
        return self._submit_run(body)

    # --------------------------------------------------------------- routes
    def _health(self) -> tuple[int, dict]:
        return 200, ok_envelope(
            {
                "cache_dir": str(self.cache.root),
                "cache_schema_version": CACHE_SCHEMA_VERSION,
                "record_schema_version": RECORD_SCHEMA_VERSION,
                "cached_results": len(self.cache.fingerprints()),
                "jobs": len(self.jobs),
            }
        )

    def _list_scenarios(self) -> tuple[int, dict]:
        entries = []
        for name in available_scenarios():
            spec = get_scenario(name)
            entries.append(
                {
                    "name": name,
                    "description": spec.description,
                    "spec": canonical_spec(spec),
                }
            )
        return 200, ok_envelope({"scenarios": entries})

    def _get_scenario(self, name: str) -> tuple[int, dict]:
        try:
            spec = get_scenario(name)
        except KeyError:
            return 404, error_envelope(
                "unknown_scenario",
                f"no scenario {name!r}; GET {API_PREFIX}/scenarios lists them",
            )
        return 200, ok_envelope(
            {
                "name": spec.name,
                "description": spec.description,
                "spec": canonical_spec(spec),
            }
        )

    def _get_result(self, fingerprint: str) -> "tuple[int, dict | RawResponse]":
        if fingerprint.endswith(".rrec"):
            return self._get_result_binary(fingerprint[: -len(".rrec")])
        if not _FINGERPRINT.match(fingerprint):
            return 400, error_envelope(
                "invalid_request",
                "a result fingerprint is 64 lowercase hex characters",
            )
        payload = self.cache.get_payload(fingerprint)
        if payload is None:
            return 404, error_envelope(
                "not_found",
                f"no cached result {fingerprint}; submit it via "
                f"POST {API_PREFIX}/runs",
            )
        return 200, ok_envelope(payload)

    def _get_result_binary(self, fingerprint: str) -> "tuple[int, dict | RawResponse]":
        """The packed ``.rrec`` artefact, streamed straight off the cache mmap."""
        if not _FINGERPRINT.match(fingerprint):
            return 400, error_envelope(
                "invalid_request",
                "a result fingerprint is 64 lowercase hex characters",
            )
        blob = self.cache.get_binary(fingerprint)
        if blob is None:
            return 404, error_envelope(
                "not_found",
                f"no cached result {fingerprint}; submit it via "
                f"POST {API_PREFIX}/runs",
            )
        return 200, RawResponse(blob)

    def _get_job(self, job_id: str) -> tuple[int, dict]:
        job = self.jobs.get(job_id)
        if job is None:
            return 404, error_envelope("not_found", f"no job {job_id!r}")
        return 200, ok_envelope(job.public_view())

    def _submit_run(self, body: bytes) -> tuple[int, dict]:
        try:
            request = json.loads(body.decode("utf-8")) if body else {}
        except (json.JSONDecodeError, UnicodeDecodeError):
            return 400, error_envelope(
                "invalid_request", "request body must be a JSON object"
            )
        if not isinstance(request, dict):
            return 400, error_envelope(
                "invalid_request", "request body must be a JSON object"
            )
        unknown = set(request) - {"scenario", "shots", "seed", "engine"}
        if unknown:
            return 400, error_envelope(
                "invalid_request", f"unknown fields: {sorted(unknown)}"
            )
        name = request.get("scenario")
        if not isinstance(name, str) or not name:
            return 400, error_envelope(
                "invalid_request", "a 'scenario' name is required"
            )
        for key in ("shots", "seed"):
            if key in request and not isinstance(request[key], int):
                return 400, error_envelope(
                    "invalid_request", f"{key!r} must be an integer"
                )
        engine = request.get("engine")
        if engine is not None and engine not in available_engines():
            return 400, error_envelope(
                "invalid_request",
                f"unknown engine {engine!r}; available: {available_engines()}",
            )
        try:
            spec, seed, shots, engine_name, fingerprint = resolve_run(
                name,
                shots=request.get("shots"),
                seed=request.get("seed"),
                engine=engine,
            )
        except KeyError:
            return 404, error_envelope(
                "unknown_scenario",
                f"no scenario {name!r}; GET {API_PREFIX}/scenarios lists them",
            )
        # Pre-flight the compile so a circuit whose path branching exceeds
        # the budget is rejected at submit time with a typed slug instead of
        # queueing a job that can only fail.  compile_scenario is memoised
        # per process, so repeat submissions (and the health of hot paths)
        # pay nothing.
        try:
            compile_scenario(spec, seed)
        except BranchBudgetError as exc:
            return 400, error_envelope("branch_budget_exceeded", str(exc))
        cached = fingerprint in self.cache
        job = self.jobs.create(
            spec,
            fingerprint,
            shots=shots,
            seed=seed,
            engine=engine_name,
            status="done" if cached else "queued",
        )
        if not cached and self.worker is not None:
            self.worker.submit(job)
        return (200 if cached else 202), ok_envelope(
            {"job": job.public_view(), "cached": cached}
        )


class _RequestHandler(BaseHTTPRequestHandler):
    """Thin transport shim: parse, delegate to the service, serialize."""

    # Injected per server class (see ScenarioServer); annotated for clarity.
    service: ScenarioService
    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:
        """Serve one GET through :meth:`ScenarioService.handle_get`."""
        self._respond(*self.service.handle_get(self.path))

    def do_POST(self) -> None:
        """Serve one POST through :meth:`ScenarioService.handle_post`."""
        length = int(self.headers.get("Content-Length") or 0)
        body = self.rfile.read(length) if length else b""
        self._respond(*self.service.handle_post(self.path, body))

    def _respond(self, status: int, payload: "dict | RawResponse") -> None:
        if isinstance(payload, RawResponse):
            blob = payload.body
            content_type = payload.content_type
        else:
            blob = encode(payload)
            content_type = "application/json; charset=utf-8"
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(blob)))
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        """Silence per-request stderr chatter (tests and CI run many)."""


class ScenarioServer:
    """The HTTP server: a :class:`ScenarioService` behind real sockets.

    ``port=0`` binds an ephemeral port (tests); :attr:`url` reports the
    bound address.  ``start()`` launches the listener thread and the job
    worker; ``close()`` tears both down.  Also usable as a context manager.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 8035,
        *,
        cache: ResultCache | str | None = None,
        workers: int | None = None,
        shard_size: int | None = None,
    ) -> None:
        self.service = ScenarioService(cache=cache)
        worker = JobWorker(
            self.service.jobs,
            self.service.cache,
            workers=workers,
            shard_size=shard_size,
        )
        self.service.worker = worker
        handler = type("BoundHandler", (_RequestHandler,), {"service": self.service})
        self.httpd = ThreadingHTTPServer((host, port), handler)
        self._thread = threading.Thread(
            target=self.httpd.serve_forever, name="repro-http", daemon=True
        )

    @property
    def url(self) -> str:
        """Base URL of the bound listener, e.g. ``http://127.0.0.1:8035``."""
        host, port = self.httpd.server_address[:2]
        return f"http://{host}:{port}"

    def start(self) -> "ScenarioServer":
        """Start the listener thread and the job worker; returns ``self``."""
        self.service.worker.start()
        self._thread.start()
        return self

    def serve_forever(self) -> None:
        """Blocking serve loop for ``python -m repro.server``."""
        self.service.worker.start()
        self.httpd.serve_forever()

    def close(self) -> None:
        """Shut the listener down and join the worker thread."""
        self.httpd.shutdown()
        self.httpd.server_close()
        if self._thread.is_alive():
            self._thread.join(timeout=10.0)
        self.service.worker.stop()

    def __enter__(self) -> "ScenarioServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()


def main(argv: list[str] | None = None) -> int:
    """CLI entry point for ``python -m repro.server``."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.server",
        description=(
            "Serve scenario results over the versioned HTTP API: cached "
            "artefacts by content address, cold runs via async job "
            f"submission ({API_PREFIX}/runs)."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument("--port", type=int, default=8035, help="bind port")
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: $REPRO_CACHE_DIR, else "
        "~/.cache/repro-qram)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="sweep worker processes per job (see repro.sweep)",
    )
    args = parser.parse_args(argv)
    server = ScenarioServer(
        args.host, args.port, cache=args.cache_dir, workers=args.workers
    )
    print(
        f"serving API {API_VERSION} on {server.url}{API_PREFIX}/ "
        f"(cache: {server.service.cache.root})"
    )
    try:
        server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive only
        print("shutting down")
        server.close()
    return 0
