"""``python -m repro.server`` -- run the scenario-results HTTP API.

Usage::

    python -m repro.server --port 8035 --cache-dir /var/cache/repro
    REPRO_CACHE_DIR=/var/cache/repro python -m repro.server

See :mod:`repro.server.app` for the routes and options.
"""

import sys

from repro.server.app import main

if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
