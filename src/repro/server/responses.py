"""The uniform JSON response envelope of the versioned HTTP API.

Every response body -- success or failure, any route -- has the same shape,
so clients branch on structure, not on per-endpoint conventions:

.. code-block:: text

    {"api_version": "v1", "status": "ok",    "data":  { ... }}
    {"api_version": "v1", "status": "error", "error": {"code": ..., "message": ...}}

``code`` is a stable machine-readable slug (``unknown_route``,
``unknown_scenario``, ``not_found``, ``invalid_request``,
``method_not_allowed``); ``message`` is human-readable and may change
freely.  The envelope's ``api_version`` matches the route prefix
(``/api/v1/...``), so a future ``v2`` can change either independently.
"""

from __future__ import annotations

import json

#: The API version stamped into every envelope and every route prefix.
API_VERSION = "v1"

#: Route prefix all endpoints live under.
API_PREFIX = f"/api/{API_VERSION}"


def ok_envelope(data: object) -> dict[str, object]:
    """A success envelope wrapping ``data``."""
    return {"api_version": API_VERSION, "status": "ok", "data": data}


def error_envelope(code: str, message: str) -> dict[str, object]:
    """An error envelope with a stable ``code`` slug and a human message."""
    return {
        "api_version": API_VERSION,
        "status": "error",
        "error": {"code": code, "message": message},
    }


def encode(payload: dict[str, object]) -> bytes:
    """Serialize an envelope to the canonical wire bytes (sorted keys)."""
    return (json.dumps(payload, sort_keys=True, indent=2) + "\n").encode("utf-8")
