"""The uniform JSON response envelope of the versioned HTTP API.

Every response body -- success or failure, any route -- has the same shape,
so clients branch on structure, not on per-endpoint conventions:

.. code-block:: text

    {"api_version": "v1", "status": "ok",    "data":  { ... }}
    {"api_version": "v1", "status": "error", "error": {"code": ..., "message": ...}}

``code`` is a stable machine-readable slug (``unknown_route``,
``unknown_scenario``, ``not_found``, ``invalid_request``,
``method_not_allowed``); ``message`` is human-readable and may change
freely.  The envelope's ``api_version`` matches the route prefix
(``/api/v1/...``), so a future ``v2`` can change either independently.

Envelope JSON is *strict*: serialization refuses the non-standard ``NaN``
/ ``Infinity`` literals (records encode NaN as ``null``), so every body is
parseable by any conforming JSON client.  The one non-envelope case is
:class:`RawResponse` -- a pre-encoded byte body with its own content type,
used by the binary ``.rrec`` artefact route, where the payload is a
memory-mapped file, not a JSON document.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: The API version stamped into every envelope and every route prefix.
API_VERSION = "v1"

#: Route prefix all endpoints live under.
API_PREFIX = f"/api/{API_VERSION}"


def ok_envelope(data: object) -> dict[str, object]:
    """A success envelope wrapping ``data``."""
    return {"api_version": API_VERSION, "status": "ok", "data": data}


def error_envelope(code: str, message: str) -> dict[str, object]:
    """An error envelope with a stable ``code`` slug and a human message."""
    return {
        "api_version": API_VERSION,
        "status": "error",
        "error": {"code": code, "message": message},
    }


@dataclass(frozen=True)
class RawResponse:
    """A non-JSON response body: raw bytes plus their content type.

    Service routes normally return envelope dicts; a route that serves a
    binary artefact (``GET .../results/<fp>.rrec``) returns one of these
    instead and the transport writes the bytes verbatim -- errors on such
    routes still come back as ordinary JSON envelopes.
    """

    body: bytes
    content_type: str = field(default="application/octet-stream")


def encode(payload: dict[str, object]) -> bytes:
    """Serialize an envelope to the canonical wire bytes (sorted keys).

    Strict JSON: a stray ``float('nan')`` in an envelope raises rather
    than emitting the ``NaN`` literal no standard parser accepts.
    """
    return (
        json.dumps(payload, sort_keys=True, indent=2, allow_nan=False) + "\n"
    ).encode("utf-8")
