"""Canonical, versioned fingerprints for scenario runs.

`ShotSeeds` makes every scenario run a pure function of
``(spec, seed, shots, engine, router)`` -- the same inputs produce
bit-identical records on any machine, worker count or shard size.  The
fingerprint is the content address of that function application: a SHA-256
over a canonical JSON serialization of the *resolved* inputs plus the cache
and record schema versions.

Resolution matters: a spec with ``router=None`` means "the session default",
which can change between sessions, so fingerprinting an unresolved spec
would let one configuration's artefact be served for another.
:func:`run_fingerprint` therefore refuses unresolved specs;
:func:`repro.scenarios.run.run_scenario` pins engine and router *before*
fingerprinting, and stamps the same resolved names into every record.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import fields

from repro.scenarios.record import RECORD_SCHEMA_VERSION
from repro.scenarios.spec import ScenarioSpec

#: Version of the fingerprint recipe itself (what is hashed, and how).
#: Bump whenever the canonical serialization or the input set changes, so
#: artefacts written under the old recipe can never be returned as hits.
CACHE_SCHEMA_VERSION = 1


def canonical_spec(spec: ScenarioSpec) -> dict[str, object]:
    """A JSON-safe dict of every spec field, tuples rendered as lists.

    Field order follows the dataclass declaration; :func:`run_fingerprint`
    re-serializes with sorted keys, so the order here is cosmetic.
    """
    payload: dict[str, object] = {}
    for field in fields(spec):
        value = getattr(spec, field.name)
        payload[field.name] = list(value) if isinstance(value, tuple) else value
    return payload


def canonical_run_payload(
    spec: ScenarioSpec, *, seed: int, shots: int, engine: str
) -> dict[str, object]:
    """The exact dict :func:`run_fingerprint` hashes (exposed for tests/docs).

    Raises ``ValueError`` if the spec's router is unresolved (``None``): a
    fingerprint must name the router that actually runs, never a session
    default that could differ when the artefact is read back.
    """
    if spec.router is None:
        raise ValueError(
            "cannot fingerprint a spec with router=None; resolve the session "
            "default first (run_scenario does this before consulting the cache)"
        )
    return {
        "cache_schema_version": CACHE_SCHEMA_VERSION,
        "record_schema_version": RECORD_SCHEMA_VERSION,
        "spec": canonical_spec(spec),
        "seed": seed,
        "shots": shots,
        "engine": engine,
    }


def run_fingerprint(
    spec: ScenarioSpec, *, seed: int, shots: int, engine: str
) -> str:
    """Content address of one scenario run: 64 lowercase hex characters.

    SHA-256 of the canonical payload serialized with sorted keys and no
    whitespace.  Two runs share a fingerprint iff they are bit-identical by
    the `ShotSeeds` determinism contract.
    """
    payload = canonical_run_payload(spec, seed=seed, shots=shots, engine=engine)
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()
