"""Content-addressed on-disk store for scenario sweep records.

Layout: ``<root>/<fp[:2]>/<fp>.rrec`` + ``<root>/<fp[:2]>/<fp>.json`` --
one packed binary artefact and one JSON document per fingerprint, sharded
by the first hex byte so a hot cache never piles every artefact into a
single directory.  The ``.rrec`` file (see :mod:`repro.records`) is the
primary backend: reads memory-map it and never parse a JSON record on the
warm path, and its header tag carries the fingerprint so a renamed
artefact can never be served under another address.  The JSON document --
the cache schema version, its own fingerprint, and the record rows in
``ScenarioRecord.json_dict()`` form (strict JSON: NaN encodes as
``null``) -- is kept for compatibility: pre-binary caches still hit, and
the HTTP results route still serves the exact committed document.

Durability contract:

* **Atomic writes.**  Both artefacts are written to a same-directory temp
  file and ``os.replace``-d into place, so readers (including concurrent
  server threads and parallel CI jobs) only ever see absent or complete
  files -- never a torn write.  Concurrent writers of the same fingerprint
  are harmless: both write identical bytes (content addressing) and the
  last rename wins.
* **Corruption-tolerant reads.**  Anything unexpected -- a
  :class:`~repro.records.format.RecordFormatError` from the binary reader
  (truncation, bit flips, stale schema, CRC mismatch), unparseable JSON, a
  schema-version or fingerprint/tag mismatch, record rows that fail
  ``ScenarioRecord.from_dict`` validation -- reads as a *miss*, never an
  exception: a corrupt ``.rrec`` falls back to the JSON document, and only
  when both fail does the caller re-run and overwrite.  A cache can
  therefore be truncated, hand-edited or written by a future schema
  without breaking anyone.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path
from typing import Sequence

from repro.cache.fingerprint import CACHE_SCHEMA_VERSION
from repro.records import RecordFile, RecordFormatError, merge_record_files, write_records
from repro.scenarios.record import ScenarioRecord

#: Environment variable naming the cache root.  ``run_scenario(cache=None)``
#: enables caching iff this is set; ``cache=True`` falls back to
#: :data:`DEFAULT_CACHE_DIR` when it is not.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Cache root used by ``cache=True`` / ``--cache`` when the environment
#: variable is unset.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-qram"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or the per-user default."""
    env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return Path(env) if env else DEFAULT_CACHE_DIR


class ResultCache:
    """Content-addressed store mapping run fingerprints to record lists."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.root)!r})"

    def path_for(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s JSON document lives (existing or not)."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    def binary_path_for(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s packed ``.rrec`` artefact lives."""
        return self.root / fingerprint[:2] / f"{fingerprint}.rrec"

    # ----------------------------------------------------------------- reads
    def get(self, fingerprint: str) -> list[ScenarioRecord] | None:
        """The cached records for ``fingerprint``, or ``None`` on any miss.

        The packed ``.rrec`` artefact is tried first (mmap read, no JSON
        parse); its header tag must equal the fingerprint, so a renamed
        artefact is a miss, not a wrong answer.  A corrupt or absent binary
        falls back to the JSON document; corrupt, truncated, mislabelled or
        schema-incompatible documents are misses, not errors (see the
        module docstring).
        """
        try:
            with RecordFile(self.binary_path_for(fingerprint)) as record_file:
                if record_file.tag == fingerprint:
                    return record_file.records()
        except RecordFormatError:
            pass
        payload = self.get_payload(fingerprint)
        if payload is None:
            return None
        try:
            return [ScenarioRecord.from_dict(row) for row in payload["records"]]
        except (ValueError, TypeError):
            return None

    def get_binary(self, fingerprint: str) -> bytes | None:
        """The validated ``.rrec`` artefact bytes for ``fingerprint``, or ``None``.

        The HTTP ``.rrec`` route serves this without materializing a single
        record dict.  If the binary artefact is missing or corrupt but the
        JSON document is intact, the artefact is re-encoded from it (and
        healed on disk) so pre-binary caches stay fully servable.
        """
        try:
            with RecordFile(self.binary_path_for(fingerprint)) as record_file:
                if record_file.tag == fingerprint:
                    return record_file.tobytes()
        except RecordFormatError:
            pass
        payload = self.get_payload(fingerprint)
        if payload is None:
            return None
        try:
            records = [ScenarioRecord.from_dict(row) for row in payload["records"]]
        except (ValueError, TypeError):
            return None
        path = self._commit_binary(fingerprint, records)
        with RecordFile(path) as record_file:
            return record_file.tobytes()

    def get_payload(self, fingerprint: str) -> dict | None:
        """The raw validated document for ``fingerprint``, or ``None``.

        The HTTP results endpoint serves this directly, so the bytes a
        client receives are exactly the bytes ``put`` committed.
        """
        path = self.path_for(fingerprint)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        if not isinstance(payload.get("records"), list):
            return None
        return payload

    def __contains__(self, fingerprint: str) -> bool:
        try:
            with RecordFile(self.binary_path_for(fingerprint)) as record_file:
                if record_file.tag == fingerprint:
                    return True
        except RecordFormatError:
            pass
        return self.get_payload(fingerprint) is not None

    # ---------------------------------------------------------------- writes
    def _replace(self, fingerprint: str, path: Path, blob: bytes) -> Path:
        """Write ``blob`` to a same-directory temp file and rename onto ``path``."""
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "wb") as handle:
                handle.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def _commit_binary(
        self, fingerprint: str, records: list[ScenarioRecord]
    ) -> Path:
        """Atomically write the ``.rrec`` artefact, tag = fingerprint."""
        path = self.binary_path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        os.close(descriptor)
        try:
            write_records(temp_name, records, tag=fingerprint)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    def put(self, fingerprint: str, records: list[ScenarioRecord]) -> Path:
        """Atomically commit ``records`` under ``fingerprint``.

        Writes both backends -- the packed ``.rrec`` artefact (tagged with
        the fingerprint) and the JSON document -- and returns the JSON
        path.  Serialization is canonical on both sides (sorted keys and
        fixed indentation for JSON, first-seen interning order for binary),
        so two processes caching the same run write byte-identical
        artefacts -- the property the CI warm/cold payload diff asserts end
        to end.  JSON is strict: NaN values encode as ``null``.
        """
        self._commit_binary(fingerprint, records)
        document = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "records": [record.json_dict() for record in records],
        }
        blob = json.dumps(document, sort_keys=True, indent=2, allow_nan=False) + "\n"
        return self._replace(
            fingerprint, self.path_for(fingerprint), blob.encode("utf-8")
        )

    def put_shards(
        self, fingerprint: str, shard_paths: Sequence[str | Path]
    ) -> Path:
        """Commit a sweep from its on-disk ``.rrec`` worker shards.

        The shards are merged with the memory-mapped k-way merge (no record
        is ever decoded), the merged artefact lands under ``fingerprint``
        with the usual temp-file/rename dance, and the compat JSON document
        is derived from the merged file.  The committed bytes are identical
        to ``put(fingerprint, concatenated_records)`` by the merge's
        byte-identity guarantee.  Returns the ``.rrec`` path.
        """
        path = self.binary_path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        os.close(descriptor)
        try:
            merge_record_files(shard_paths, temp_name, tag=fingerprint)
            with RecordFile(temp_name) as record_file:
                records = record_file.records()
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        document = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "records": [record.json_dict() for record in records],
        }
        blob = json.dumps(document, sort_keys=True, indent=2, allow_nan=False) + "\n"
        self._replace(fingerprint, self.path_for(fingerprint), blob.encode("utf-8"))
        return path

    # ------------------------------------------------------------- inventory
    def fingerprints(self) -> list[str]:
        """Every fingerprint with a well-formed artefact (either backend), sorted."""
        if not self.root.is_dir():
            return []
        found = set()
        for path in self.root.glob("??/*.json"):
            fingerprint = path.stem
            if self.get_payload(fingerprint) is not None:
                found.add(fingerprint)
        for path in self.root.glob("??/*.rrec"):
            fingerprint = path.stem
            if fingerprint in found:
                continue
            try:
                with RecordFile(path) as record_file:
                    if record_file.tag == fingerprint:
                        found.add(fingerprint)
            except RecordFormatError:
                pass
        return sorted(found)


def resolve_cache(cache: "ResultCache | bool | str | Path | None") -> ResultCache | None:
    """Normalise a ``cache=`` argument into a :class:`ResultCache` or ``None``.

    * ``None`` -- enabled iff ``$REPRO_CACHE_DIR`` is set (opt-in by
      environment, the CI mode);
    * ``True`` / ``False`` -- force on (env var or default dir) / off;
    * a path -- a cache rooted there;
    * a :class:`ResultCache` -- used as is.
    """
    if cache is None:
        env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
        return ResultCache(env) if env else None
    if isinstance(cache, bool):
        return ResultCache() if cache else None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
