"""Content-addressed on-disk store for scenario sweep records.

Layout: ``<root>/<fp[:2]>/<fp>.json`` -- one JSON document per fingerprint,
sharded by the first hex byte so a hot cache never piles every artefact into
a single directory.  Each document carries the cache schema version, its own
fingerprint, and the record rows in ``ScenarioRecord.as_dict()`` form.

Durability contract:

* **Atomic writes.**  Documents are written to a same-directory temp file
  and ``os.replace``-d into place, so readers (including concurrent server
  threads and parallel CI jobs) only ever see absent or complete files --
  never a torn write.  Concurrent writers of the same fingerprint are
  harmless: both write identical bytes (content addressing) and the last
  rename wins.
* **Corruption-tolerant reads.**  Anything unexpected -- unparseable JSON,
  a schema-version or fingerprint mismatch, record rows that fail
  ``ScenarioRecord.from_dict`` validation -- reads as a *miss*, never an
  exception: the caller re-runs and overwrites.  A cache can therefore be
  truncated, hand-edited or written by a future schema without breaking
  anyone.
"""

from __future__ import annotations

import json
import os
import tempfile
from pathlib import Path

from repro.cache.fingerprint import CACHE_SCHEMA_VERSION
from repro.scenarios.record import ScenarioRecord

#: Environment variable naming the cache root.  ``run_scenario(cache=None)``
#: enables caching iff this is set; ``cache=True`` falls back to
#: :data:`DEFAULT_CACHE_DIR` when it is not.
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Cache root used by ``cache=True`` / ``--cache`` when the environment
#: variable is unset.
DEFAULT_CACHE_DIR = Path.home() / ".cache" / "repro-qram"


def default_cache_dir() -> Path:
    """The cache root: ``$REPRO_CACHE_DIR`` or the per-user default."""
    env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
    return Path(env) if env else DEFAULT_CACHE_DIR


class ResultCache:
    """Content-addressed store mapping run fingerprints to record lists."""

    def __init__(self, root: str | Path | None = None) -> None:
        self.root = Path(root) if root is not None else default_cache_dir()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultCache({str(self.root)!r})"

    def path_for(self, fingerprint: str) -> Path:
        """Where ``fingerprint``'s document lives (whether or not it exists)."""
        return self.root / fingerprint[:2] / f"{fingerprint}.json"

    # ----------------------------------------------------------------- reads
    def get(self, fingerprint: str) -> list[ScenarioRecord] | None:
        """The cached records for ``fingerprint``, or ``None`` on any miss.

        Corrupt, truncated, mislabelled or schema-incompatible documents
        are misses, not errors (see the module docstring).
        """
        payload = self.get_payload(fingerprint)
        if payload is None:
            return None
        try:
            return [ScenarioRecord.from_dict(row) for row in payload["records"]]
        except (ValueError, TypeError):
            return None

    def get_payload(self, fingerprint: str) -> dict | None:
        """The raw validated document for ``fingerprint``, or ``None``.

        The HTTP results endpoint serves this directly, so the bytes a
        client receives are exactly the bytes ``put`` committed.
        """
        path = self.path_for(fingerprint)
        try:
            with path.open("r", encoding="utf-8") as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError, UnicodeDecodeError):
            return None
        if not isinstance(payload, dict):
            return None
        if payload.get("schema_version") != CACHE_SCHEMA_VERSION:
            return None
        if payload.get("fingerprint") != fingerprint:
            return None
        if not isinstance(payload.get("records"), list):
            return None
        return payload

    def __contains__(self, fingerprint: str) -> bool:
        return self.get_payload(fingerprint) is not None

    # ---------------------------------------------------------------- writes
    def put(self, fingerprint: str, records: list[ScenarioRecord]) -> Path:
        """Atomically commit ``records`` under ``fingerprint``; return the path.

        Serialization is canonical (sorted keys, fixed indentation), so two
        processes caching the same run write byte-identical documents -- the
        property the CI warm/cold payload diff asserts end to end.
        """
        path = self.path_for(fingerprint)
        path.parent.mkdir(parents=True, exist_ok=True)
        document = {
            "schema_version": CACHE_SCHEMA_VERSION,
            "fingerprint": fingerprint,
            "records": [record.as_dict() for record in records],
        }
        blob = json.dumps(document, sort_keys=True, indent=2) + "\n"
        descriptor, temp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{fingerprint[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(descriptor, "w", encoding="utf-8") as handle:
                handle.write(blob)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return path

    # ------------------------------------------------------------- inventory
    def fingerprints(self) -> list[str]:
        """Every fingerprint with a well-formed document, sorted."""
        if not self.root.is_dir():
            return []
        found = []
        for path in self.root.glob("??/*.json"):
            fingerprint = path.stem
            if self.get_payload(fingerprint) is not None:
                found.append(fingerprint)
        return sorted(found)


def resolve_cache(cache: "ResultCache | bool | str | Path | None") -> ResultCache | None:
    """Normalise a ``cache=`` argument into a :class:`ResultCache` or ``None``.

    * ``None`` -- enabled iff ``$REPRO_CACHE_DIR`` is set (opt-in by
      environment, the CI mode);
    * ``True`` / ``False`` -- force on (env var or default dir) / off;
    * a path -- a cache rooted there;
    * a :class:`ResultCache` -- used as is.
    """
    if cache is None:
        env = os.environ.get(CACHE_DIR_ENV_VAR, "").strip()
        return ResultCache(env) if env else None
    if isinstance(cache, bool):
        return ResultCache() if cache else None
    if isinstance(cache, ResultCache):
        return cache
    return ResultCache(cache)
