"""Content-addressed result cache for scenario runs.

Because the `ShotSeeds` contract makes every scenario run a pure function of
``(spec, seed, shots, engine, router)``, its records can be stored and
served by content address: :mod:`repro.cache.fingerprint` derives the
canonical, versioned key and :mod:`repro.cache.store` keeps the artefacts on
disk (``$REPRO_CACHE_DIR``) with atomic writes and corruption-tolerant
reads.  ``run_scenario(cache=...)``, the experiments CLI (``--cache`` /
``--no-cache``) and the HTTP API (:mod:`repro.server`) all consult it, so a
warm hit is an O(1) file read that is provably bit-identical to a fresh
sharded run.
"""

from repro.cache.fingerprint import (
    CACHE_SCHEMA_VERSION,
    canonical_run_payload,
    canonical_spec,
    run_fingerprint,
)
from repro.cache.store import (
    CACHE_DIR_ENV_VAR,
    DEFAULT_CACHE_DIR,
    ResultCache,
    default_cache_dir,
    resolve_cache,
)

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_SCHEMA_VERSION",
    "DEFAULT_CACHE_DIR",
    "ResultCache",
    "canonical_run_payload",
    "canonical_spec",
    "default_cache_dir",
    "resolve_cache",
    "run_fingerprint",
]
