"""Figure 9: query fidelity of Our/BB/SS QRAMs under Z and X errors (Sec. 7.3).

Gate-based Monte-Carlo noise at error rate ``eps = 1e-3``; the fidelity is the
reduced fidelity over the address and bus registers.  The shapes to reproduce:

* virtual QRAM and bucket-brigade decay *polynomially* with the QRAM width
  under Z (phase-flip) errors;
* the virtual QRAM decays much faster (exponentially, following the tree
  size) under X (bit-flip) errors, while the bucket-brigade stays polynomial;
* Select-Swap has no resilience under either channel.

The sweep runs through :class:`~repro.sweep.SweepRunner`: every
``(architecture, error, width)`` triple is one sweep point whose shot loop is
split into deterministic seed-keyed shards, so ``workers``/``shard_size``
change wall-clock time but never the records.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.experiments.common import format_table, random_memory, resolve_seed
from repro.qram.base import QRAMArchitecture
from repro.qram.bucket_brigade import BucketBrigadeQRAM
from repro.qram.select_swap import SelectSwapQRAM
from repro.qram.virtual_qram import VirtualQRAM
from repro.sim.engine import get_default_engine
from repro.sim.noise import GateNoiseModel, PauliChannel
from repro.sweep import ShotShard, SweepRunner

DEFAULT_WIDTHS: tuple[int, ...] = (1, 2, 3, 4, 5, 6)
DEFAULT_EPSILON = 1e-3
DEFAULT_SHOTS = 1024

ARCHITECTURE_BUILDERS = {
    "ours": VirtualQRAM,
    "bb": BucketBrigadeQRAM,
    "ss": SelectSwapQRAM,
}

ERROR_CHANNELS = {
    "Z": PauliChannel.phase_flip,
    "X": PauliChannel.bit_flip,
}


@lru_cache(maxsize=64)
def _fig9_architecture(name: str, m: int, seed: int) -> QRAMArchitecture:
    """Process-local architecture cache: shards of a point share one build."""
    return ARCHITECTURE_BUILDERS[name](memory=random_memory(m, seed), qram_width=m)


def _fig9_shard(spec: tuple, shard: ShotShard) -> np.ndarray:
    """Per-shard fidelities for one (architecture, error, width) sweep point."""
    name, error_name, m, epsilon, seed, engine = spec
    architecture = _fig9_architecture(name, m, seed)
    noise = GateNoiseModel(ERROR_CHANNELS[error_name](epsilon))
    result = architecture.run_query(
        noise, shard.shots, rng=shard.seeds(), engine=engine
    )
    return result.fidelities


def run_fig9(
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    *,
    epsilon: float = DEFAULT_EPSILON,
    shots: int = DEFAULT_SHOTS,
    architectures: tuple[str, ...] = ("ours", "bb", "ss"),
    errors: tuple[str, ...] = ("Z", "X"),
    seed: int | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
) -> list[dict[str, object]]:
    """Fidelity records for every (architecture, error channel, width) triple."""
    seed_value = resolve_seed(seed)
    engine = get_default_engine()
    specs = [
        (name, error_name, m, epsilon, seed_value, engine)
        for m in widths
        for name in architectures
        for error_name in errors
    ]
    runner = SweepRunner(workers=workers, shard_size=shard_size)
    merged = runner.map_shards(_fig9_shard, specs, shots=shots, seed=seed_value)
    records: list[dict[str, object]] = []
    for (name, error_name, m, point_epsilon, _, _), result in zip(specs, merged):
        records.append(
            {
                "architecture": name,
                "error": error_name,
                "m": m,
                "epsilon": point_epsilon,
                "shots": shots,
                "fidelity": result.mean_fidelity,
                "std_error": result.std_error,
            }
        )
    return records


def fig9_report(
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    *,
    epsilon: float = DEFAULT_EPSILON,
    shots: int = DEFAULT_SHOTS,
    seed: int | None = None,
    records: list[dict[str, object]] | None = None,
) -> str:
    """Human-readable Figure 9 series (one column per architecture/error pair)."""
    if records is None:
        records = run_fig9(widths, epsilon=epsilon, shots=shots, seed=seed)
    series = sorted({(r["architecture"], r["error"]) for r in records})
    headers = ["m"] + [f"{arch}-{err}" for arch, err in series]
    rows = []
    for m in widths:
        row: list[object] = [m]
        for arch, err in series:
            entry = next(
                r
                for r in records
                if r["m"] == m and r["architecture"] == arch and r["error"] == err
            )
            row.append(entry["fidelity"])
        rows.append(row)
    title = (
        f"Figure 9 reproduction (fidelity vs QRAM width, eps={epsilon}, shots={shots})"
    )
    return title + "\n" + format_table(headers, rows)
