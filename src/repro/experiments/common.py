"""Shared utilities for the per-table / per-figure experiment runners."""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.qram.memory import ClassicalMemory

#: Seed used by every experiment unless the caller overrides it, so that the
#: numbers quoted in EXPERIMENTS.md are reproducible bit-for-bit.
DEFAULT_SEED = 2023


def experiment_rng(seed: int | None = None) -> np.random.Generator:
    """Random generator with the project-wide default seed."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def resolve_seed(seed: int | None = None) -> int:
    """The concrete integer seed an experiment sweep is keyed on.

    The sweep runner derives every shot's random stream from
    ``(seed, point_index, shot_index)``, so it needs the project-wide
    default made explicit rather than a ``None`` passed through.
    """
    return DEFAULT_SEED if seed is None else seed


def random_memory(
    address_width: int, seed: int | None = None, p_one: float = 0.5
) -> ClassicalMemory:
    """Uniformly random memory, the workload used throughout the evaluation."""
    return ClassicalMemory.random(address_width, rng=experiment_rng(seed), p_one=p_one)


def format_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], *, precision: int = 4
) -> str:
    """Render rows as a fixed-width text table (used by benchmarks and examples)."""
    def fmt(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}g}"
        return str(value)

    rendered = [[fmt(value) for value in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in rendered:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(header.ljust(widths[i]) for i, header in enumerate(headers)),
        "  ".join("-" * widths[i] for i in range(len(headers))),
    ]
    for row in rendered:
        lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
    return "\n".join(lines)


def records_to_rows(
    records: Iterable[Mapping[str, object]], columns: Sequence[str]
) -> list[list[object]]:
    """Project a list of record dicts onto a column order."""
    return [[record.get(column, "") for column in columns] for record in records]
