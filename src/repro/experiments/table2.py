"""Table 2: resource comparison of SQC+BB, SQC+SS and the virtual QRAM (Sec. 7.1).

The paper's table is asymptotic (Big-O); the runner therefore reports, next to
the formula values, the counts measured on built circuits over a sweep of
``(m, k)`` so that the *scaling* claims can be verified:

* Baseline B (SQC+BB) pays an extra factor ``2**k`` in T count/T depth because
  it reloads the address for every page;
* Baseline S (SQC+SS) pays an extra factor ``m`` (quadratic total) in Clifford
  depth because its swap network is not pipelined;
* the virtual QRAM matches or beats both on every metric.
"""

from __future__ import annotations

from repro.analysis.resources import measured_table2_row, table2_formulas
from repro.experiments.common import format_table, random_memory
from repro.sweep import SweepRunner

TABLE2_METRICS: tuple[str, ...] = (
    "qubits",
    "circuit_depth",
    "t_count",
    "t_depth",
    "clifford_depth",
)

TABLE2_ARCHITECTURES: tuple[str, ...] = ("SQC+BB", "SQC+SS", "Ours")


def _table2_point(spec: tuple) -> list[dict[str, object]]:
    """All records of one ``(m, k)`` configuration (deterministic point)."""
    m, k, seed = spec
    memory = random_memory(m + k, seed)
    formulas = table2_formulas(m, k)
    measured = measured_table2_row(memory, m)
    records: list[dict[str, object]] = []
    for architecture in TABLE2_ARCHITECTURES:
        for metric in TABLE2_METRICS:
            records.append(
                {
                    "m": m,
                    "k": k,
                    "architecture": architecture,
                    "metric": metric,
                    "formula": formulas[architecture][metric],
                    "measured": measured[architecture][metric],
                }
            )
    return records


def run_table2(
    configurations: list[tuple[int, int]] | None = None,
    *,
    seed: int | None = None,
    workers: int | None = None,
) -> list[dict[str, object]]:
    """Formula and measured records over a sweep of ``(m, k)`` configurations.

    Each configuration is one deterministic sweep point; ``workers``
    parallelises the circuit builds without changing any record.
    """
    if configurations is None:
        configurations = [(2, 1), (3, 2), (4, 2)]
    runner = SweepRunner(workers=workers)
    blocks = runner.map_points(
        _table2_point, [(m, k, seed) for m, k in configurations]
    )
    return [record for block in blocks for record in block]


def table2_report(
    configurations: list[tuple[int, int]] | None = None,
    *,
    seed: int | None = None,
    records: list[dict[str, object]] | None = None,
) -> str:
    """Human-readable Table 2 over the requested configurations."""
    if records is None:
        records = run_table2(configurations, seed=seed)
    configs = sorted({(r["m"], r["k"]) for r in records})
    lines = []
    for m, k in configs:
        lines.append(f"Table 2 reproduction (m={m}, k={k})")
        rows = []
        for metric in TABLE2_METRICS:
            row: list[object] = [metric]
            for architecture in TABLE2_ARCHITECTURES:
                entry = next(
                    r
                    for r in records
                    if r["m"] == m
                    and r["k"] == k
                    and r["architecture"] == architecture
                    and r["metric"] == metric
                )
                row.append(f"{entry['measured']} ({entry['formula']:g})")
            rows.append(row)
        headers = ["metric"] + [f"{a} meas.(formula)" for a in TABLE2_ARCHITECTURES]
        lines.append(format_table(headers, rows))
        lines.append("")
    return "\n".join(lines)


def advantage_summary(m: int = 4, k: int = 2, *, seed: int | None = None) -> dict[str, float]:
    """Headline ratios showing the virtual QRAM's advantage at one design point."""
    memory = random_memory(m + k, seed)
    measured = measured_table2_row(memory, m)
    ours = measured["Ours"]
    return {
        "t_count_vs_bb": measured["SQC+BB"]["t_count"] / max(ours["t_count"], 1),
        "t_depth_vs_bb": measured["SQC+BB"]["t_depth"] / max(ours["t_depth"], 1),
        "clifford_depth_vs_ss": measured["SQC+SS"]["clifford_depth"]
        / max(ours["clifford_depth"], 1),
        "depth_vs_ss": measured["SQC+SS"]["circuit_depth"]
        / max(ours["circuit_depth"], 1),
    }
