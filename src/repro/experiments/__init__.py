"""Experiment runners: one module per table/figure of the paper's evaluation.

Every runner returns a list of plain-dict records (easy to assert on in tests
and to benchmark) and has a ``*_report`` companion producing the same data as
a formatted text table, which is what the benchmark harness prints so the
regenerated rows/series can be compared against the paper side by side.

| Paper artefact | Runner |
| -------------- | ------ |
| Table 1 (optimization ablation)        | :func:`repro.experiments.table1.run_table1` |
| Table 2 (architecture comparison)      | :func:`repro.experiments.table2.run_table2` |
| Figure 8 (2D mapping overhead)         | :func:`repro.experiments.fig8.run_fig8` |
| Figure 9 (architecture fidelity)       | :func:`repro.experiments.fig9.run_fig9` |
| Figure 10 (error-reduction sweep)      | :func:`repro.experiments.fig10.run_fig10` |
| Figure 11 (m/k trade-off)              | :func:`repro.experiments.fig11.run_fig11` |
| Figure 12 (device-noise study)         | :func:`repro.experiments.fig12.run_fig12` |
"""

from repro.experiments.common import (
    DEFAULT_SEED,
    experiment_rng,
    format_table,
    random_memory,
    records_to_rows,
)
from repro.experiments.export import (
    export_experiment,
    records_to_csv,
    records_to_markdown,
)
from repro.experiments.fig8 import fig8_report, run_fig8
from repro.experiments.fig9 import fig9_report, run_fig9
from repro.experiments.fig10 import fig10_report, run_fig10
from repro.experiments.fig11 import fig11_report, k_versus_m_decay, run_fig11
from repro.experiments.fig12 import (
    DEFAULT_CONFIGURATIONS,
    HardwareConfiguration,
    fig12_report,
    run_fig12,
)
from repro.experiments.table1 import optimization_savings, run_table1, table1_report
from repro.experiments.table2 import advantage_summary, run_table2, table2_report

__all__ = [
    "DEFAULT_CONFIGURATIONS",
    "DEFAULT_SEED",
    "HardwareConfiguration",
    "advantage_summary",
    "experiment_rng",
    "export_experiment",
    "records_to_csv",
    "records_to_markdown",
    "fig8_report",
    "fig9_report",
    "fig10_report",
    "fig11_report",
    "fig12_report",
    "format_table",
    "k_versus_m_decay",
    "optimization_savings",
    "random_memory",
    "records_to_rows",
    "run_fig8",
    "run_fig9",
    "run_fig10",
    "run_fig11",
    "run_fig12",
    "run_table1",
    "run_table2",
    "table1_report",
    "table2_report",
]
