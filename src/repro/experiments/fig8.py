"""Figure 8: extra operation depth after mapping to a 2D grid (Sec. 7.2).

For each QRAM width ``m`` the virtual QRAM circuit is embedded into a 2D grid
with the H-tree construction and the communication overhead of swap-based and
teleportation-based routing is accumulated.  The paper's claims to reproduce:

* swap-based routing's extra depth grows exponentially with ``m`` (the top
  arms of the H-tree have length ``~2**(m/2)`` and are traversed every round);
* teleportation-based routing adds only a constant per remote layer, so its
  extra depth stays linear in the logical depth and the ``O(log M)`` query
  latency survives the mapping;
* the embedding wastes only ~25% of the grid qubits.
"""

from __future__ import annotations

from repro.experiments.common import format_table, random_memory
from repro.mapping.embedding import verify_topological_minor
from repro.mapping.htree import HTreeEmbedding
from repro.mapping.mapped_circuit import MappedQRAM
from repro.mapping.routing import SwapRouting, TeleportationRouting
from repro.qram.virtual_qram import VirtualQRAM
from repro.sweep import SweepRunner

DEFAULT_WIDTHS: tuple[int, ...] = (1, 2, 3, 4, 5, 6, 7, 8, 9)


def _fig8_point(spec: tuple) -> dict[str, object]:
    """Routing-overhead record for one width (deterministic sweep point)."""
    m, seed = spec
    memory = random_memory(m, seed)
    architecture = VirtualQRAM(memory=memory, qram_width=m)
    circuit = architecture.build_circuit()
    embedding = HTreeEmbedding(tree_depth=m)
    report = verify_topological_minor(embedding)
    mapped = MappedQRAM(circuit, embedding)
    swap = mapped.overhead(SwapRouting())
    teleport = mapped.overhead(TeleportationRouting())
    layout = embedding.routing_resource_summary()
    return {
        "m": m,
        "grid": f"{layout['grid_rows']}x{layout['grid_cols']}",
        "grid_qubits": layout["grid_qubits"],
        "unused_fraction": layout["unused_fraction"],
        "topological_minor": report.is_topological_minor,
        "logical_depth": swap.logical_depth,
        "swap_extra_depth": swap.extra_depth,
        "swap_extra_operations": swap.extra_operations,
        "teleport_extra_depth": teleport.extra_depth,
        "teleport_extra_operations": teleport.extra_operations,
        "max_gate_distance": swap.max_gate_distance,
    }


def run_fig8(
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    *,
    seed: int | None = None,
    workers: int | None = None,
) -> list[dict[str, object]]:
    """Routing-overhead records for each QRAM width (k = 0, as in the figure).

    The sweep is deterministic (no Monte-Carlo shots), so each width is one
    :class:`~repro.sweep.SweepRunner` point; ``workers`` parallelises the
    embedding/routing work without changing any record.
    """
    runner = SweepRunner(workers=workers)
    return runner.map_points(_fig8_point, [(m, seed) for m in widths])


def fig8_report(
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    *,
    seed: int | None = None,
    records: list[dict[str, object]] | None = None,
) -> str:
    """Human-readable Figure 8 series (pass ``records`` to skip recomputing)."""
    if records is None:
        records = run_fig8(widths, seed=seed)
    columns = [
        "m",
        "grid",
        "logical_depth",
        "swap_extra_depth",
        "teleport_extra_depth",
        "unused_fraction",
    ]
    rows = [[record[column] for column in columns] for record in records]
    return "Figure 8 reproduction (extra operation depth after 2D mapping)\n" + format_table(
        columns, rows
    )
