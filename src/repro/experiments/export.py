"""Exporting experiment records to CSV, JSON and Markdown.

The experiment runners return lists of plain dictionaries; this module turns
them into artefacts that can be checked into a paper repository or compared
across runs: CSV files (one row per record), JSON (for downstream tooling
and the benchmark regression gates) and Markdown tables (for
EXPERIMENTS.md-style reports).  Only the standard library is used so exports
work in any environment the simulator runs in.
"""

from __future__ import annotations

import csv
import json
from pathlib import Path
from typing import Iterable, Mapping, Sequence


def collect_columns(records: Iterable[Mapping[str, object]]) -> list[str]:
    """Union of the record keys, in first-seen order."""
    columns: list[str] = []
    for record in records:
        for key in record:
            if key not in columns:
                columns.append(key)
    return columns


def records_to_csv(
    records: Sequence[Mapping[str, object]],
    path: str | Path,
    *,
    columns: Sequence[str] | None = None,
) -> Path:
    """Write ``records`` to ``path`` as CSV and return the path.

    Missing keys are written as empty cells; the column order defaults to
    first-seen order across all records.
    """
    if not records:
        raise ValueError("cannot export an empty record list")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    fieldnames = list(columns) if columns is not None else collect_columns(records)
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames, extrasaction="ignore")
        writer.writeheader()
        for record in records:
            writer.writerow({key: record.get(key, "") for key in fieldnames})
    return path


def records_to_json(
    records: Sequence[Mapping[str, object]],
    path: str | Path,
) -> Path:
    """Write ``records`` to ``path`` as a sorted-key JSON array.

    Keys are sorted and the layout is fixed so two runs of the same sweep
    produce byte-identical files -- the property the CI determinism gate
    diffs on.
    """
    if not records:
        raise ValueError("cannot export an empty record list")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump([dict(record) for record in records], handle, indent=2, sort_keys=True)
        handle.write("\n")
    return path


def records_to_markdown(
    records: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    float_precision: int = 4,
) -> str:
    """Render ``records`` as a GitHub-flavoured Markdown table."""
    if not records:
        raise ValueError("cannot render an empty record list")
    fieldnames = list(columns) if columns is not None else collect_columns(records)

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_precision}g}"
        return str(value)

    header = "| " + " | ".join(fieldnames) + " |"
    separator = "| " + " | ".join("---" for _ in fieldnames) + " |"
    rows = [
        "| " + " | ".join(render(record.get(key, "")) for key in fieldnames) + " |"
        for record in records
    ]
    return "\n".join([header, separator, *rows])


def export_experiment(
    records: Sequence[Mapping[str, object]],
    output_directory: str | Path,
    name: str,
) -> dict[str, Path]:
    """Write CSV, JSON and Markdown renderings of one experiment's records.

    Returns the mapping ``{"csv": path, "json": path, "markdown": path}``.
    """
    output_directory = Path(output_directory)
    output_directory.mkdir(parents=True, exist_ok=True)
    csv_path = records_to_csv(records, output_directory / f"{name}.csv")
    json_path = records_to_json(records, output_directory / f"{name}.json")
    markdown_path = output_directory / f"{name}.md"
    markdown_path.write_text(records_to_markdown(records) + "\n", encoding="utf-8")
    return {"csv": csv_path, "json": json_path, "markdown": markdown_path}
