"""Exporting experiment records to CSV, JSON, Markdown and packed binary.

The experiment runners return lists of plain dictionaries; this module turns
them into artefacts that can be checked into a paper repository or compared
across runs: CSV files (one row per record), JSON (for downstream tooling
and the benchmark regression gates), Markdown tables (for
EXPERIMENTS.md-style reports) and -- for scenario records -- the packed
``.rrec`` binary format of :mod:`repro.records`.  Only the standard library
plus numpy is needed so exports work in any environment the simulator runs
in.

Schema strictness: when the CSV column set is *derived* from the records,
every record must carry exactly those keys -- a record missing a field (or
smuggling an extra one past a caller-pinned header) raises ``ValueError``
instead of silently dropping data into empty cells.  Passing ``columns=``
explicitly selects a projection, which stays permissive by design.  JSON
export is strict about floats: NaN encodes as ``null`` (the non-standard
``NaN`` literal never reaches disk).
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path
from typing import Iterable, Mapping, Sequence


def collect_columns(records: Iterable[Mapping[str, object]]) -> list[str]:
    """Union of the record keys, in first-seen order."""
    columns: list[str] = []
    for record in records:
        for key in record:
            if key not in columns:
                columns.append(key)
    return columns


def records_to_csv(
    records: Sequence[Mapping[str, object]],
    path: str | Path,
    *,
    columns: Sequence[str] | None = None,
) -> Path:
    """Write ``records`` to ``path`` as CSV and return the path.

    With ``columns=None`` (the default) the header is the first-seen union
    of the record keys and the schema is *strict*: a record missing any
    derived column raises ``ValueError`` -- no field is ever silently
    dropped or blank-filled.  An explicit ``columns=`` sequence selects a
    projection instead: extra keys are ignored and missing ones render as
    empty cells.
    """
    if not records:
        raise ValueError("cannot export an empty record list")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    if columns is not None:
        fieldnames = list(columns)
        rows = [{key: record.get(key, "") for key in fieldnames} for record in records]
    else:
        fieldnames = collect_columns(records)
        rows = []
        for index, record in enumerate(records):
            missing = [key for key in fieldnames if key not in record]
            if missing:
                raise ValueError(
                    f"record {index} is missing fields {missing} present in "
                    "other records; pass columns= to project a subset "
                    "explicitly"
                )
            rows.append({key: record[key] for key in fieldnames})
    with path.open("w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=fieldnames)
        writer.writeheader()
        writer.writerows(rows)
    return path


def _null_nan(record: Mapping[str, object]) -> dict[str, object]:
    """A copy of ``record`` with float NaN values replaced by ``None``."""
    copied = {}
    for key in record:
        value = record[key]
        copied[key] = None if isinstance(value, float) and math.isnan(value) else value
    return copied


def records_to_json(
    records: Sequence[Mapping[str, object]],
    path: str | Path,
) -> Path:
    """Write ``records`` to ``path`` as a sorted-key JSON array.

    Keys are sorted and the layout is fixed so two runs of the same sweep
    produce byte-identical files -- the property the CI determinism gate
    diffs on.  Strict JSON: NaN values (an all-rejected postselected point's
    fidelity) encode as ``null``, never as the non-standard ``NaN`` literal.
    """
    if not records:
        raise ValueError("cannot export an empty record list")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", encoding="utf-8") as handle:
        json.dump(
            [_null_nan(record) for record in records],
            handle,
            indent=2,
            sort_keys=True,
            allow_nan=False,
        )
        handle.write("\n")
    return path


def records_to_binary(
    records: Sequence[Mapping[str, object]],
    path: str | Path,
    *,
    tag: str = "",
) -> Path:
    """Write scenario ``records`` to ``path`` as a packed ``.rrec`` file.

    Records must be :class:`~repro.scenarios.record.ScenarioRecord` rows (or
    mappings validating through ``ScenarioRecord.from_dict``); anything else
    raises :class:`~repro.records.format.RecordFormatError`.  The bytes are
    a pure function of ``(records, tag)``, so the CI determinism diff can
    compare the artefact across worker counts directly.
    """
    # Imported lazily: repro.records serializes the scenario-record schema,
    # and repro.scenarios pulls this module in through the experiment
    # runners, so a module-level import would be circular.
    from repro.records import write_records

    if not records:
        raise ValueError("cannot export an empty record list")
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    return write_records(path, records, tag=tag)


def records_to_markdown(
    records: Sequence[Mapping[str, object]],
    *,
    columns: Sequence[str] | None = None,
    float_precision: int = 4,
) -> str:
    """Render ``records`` as a GitHub-flavoured Markdown table."""
    if not records:
        raise ValueError("cannot render an empty record list")
    fieldnames = list(columns) if columns is not None else collect_columns(records)

    def render(value: object) -> str:
        if isinstance(value, float):
            return f"{value:.{float_precision}g}"
        return str(value)

    header = "| " + " | ".join(fieldnames) + " |"
    separator = "| " + " | ".join("---" for _ in fieldnames) + " |"
    rows = [
        "| " + " | ".join(render(record.get(key, "")) for key in fieldnames) + " |"
        for record in records
    ]
    return "\n".join([header, separator, *rows])


#: Formats ``export_experiment`` understands; ``rrec`` is scenario-only.
EXPORT_FORMATS = ("csv", "json", "markdown", "rrec")

#: What ``export_experiment`` writes when no formats are requested.
DEFAULT_EXPORT_FORMATS = ("csv", "json", "markdown")


def export_experiment(
    records: Sequence[Mapping[str, object]],
    output_directory: str | Path,
    name: str,
    *,
    formats: Sequence[str] | None = None,
) -> dict[str, Path]:
    """Write the requested renderings of one experiment's records.

    ``formats`` is a subset of :data:`EXPORT_FORMATS` (default: CSV, JSON
    and Markdown); ``"rrec"`` additionally writes the packed binary artefact
    and is only valid for scenario records.  Returns the mapping from format
    name to written path, in :data:`EXPORT_FORMATS` order.
    """
    chosen = tuple(formats) if formats is not None else DEFAULT_EXPORT_FORMATS
    unknown = sorted(set(chosen) - set(EXPORT_FORMATS))
    if unknown:
        raise ValueError(
            f"unknown export formats {unknown}; choose from {EXPORT_FORMATS}"
        )
    output_directory = Path(output_directory)
    output_directory.mkdir(parents=True, exist_ok=True)
    paths: dict[str, Path] = {}
    if "csv" in chosen:
        paths["csv"] = records_to_csv(records, output_directory / f"{name}.csv")
    if "json" in chosen:
        paths["json"] = records_to_json(records, output_directory / f"{name}.json")
    if "markdown" in chosen:
        markdown_path = output_directory / f"{name}.md"
        markdown_path.write_text(records_to_markdown(records) + "\n", encoding="utf-8")
        paths["markdown"] = markdown_path
    if "rrec" in chosen:
        paths["rrec"] = records_to_binary(records, output_directory / f"{name}.rrec")
    return paths
