"""Table 1: resource improvements from the three key optimizations (Sec. 7.1).

For each optimization column (RAW, OPT1 recycling, OPT2 lazy swapping,
OPT3 pipelining, ALL) the runner reports both the paper's closed-form entry
and the value measured on a circuit actually built with those options, so the
claimed savings (fewer qubits, linear instead of quadratic loading depth,
half the classically-controlled gates) can be checked end to end.
"""

from __future__ import annotations

from repro.analysis.resources import (
    OPTIMIZATION_COLUMNS,
    measured_table1_row,
    table1_formulas,
)
from repro.experiments.common import format_table, random_memory
from repro.sweep import SweepRunner

#: Metrics reported per column, in Table 1's row order.
TABLE1_METRICS: tuple[str, ...] = (
    "qubits",
    "circuit_depth",
    "classical_controlled_gates",
)


def _table1_point(spec: tuple) -> list[dict[str, object]]:
    """All records of one ``(m, k)`` configuration (deterministic point)."""
    m, k, seed = spec
    memory = random_memory(m + k, seed)
    formulas = table1_formulas(m, k)
    measured = measured_table1_row(memory, m)
    records: list[dict[str, object]] = []
    for metric in TABLE1_METRICS:
        for column in OPTIMIZATION_COLUMNS:
            records.append(
                {
                    "metric": metric,
                    "column": column,
                    "m": m,
                    "k": k,
                    "formula": formulas[column][metric],
                    "measured": measured[column][metric],
                }
            )
    return records


def run_table1(
    m: int = 4,
    k: int = 2,
    *,
    seed: int | None = None,
    workers: int | None = None,
) -> list[dict[str, object]]:
    """Measured-vs-formula records for one ``(m, k)`` configuration."""
    runner = SweepRunner(workers=workers)
    return runner.map_points(_table1_point, [(m, k, seed)])[0]


def table1_report(
    m: int = 4,
    k: int = 2,
    *,
    seed: int | None = None,
    records: list[dict[str, object]] | None = None,
) -> str:
    """Human-readable Table 1 (one block per metric)."""
    if records is None:
        records = run_table1(m, k, seed=seed)
    lines = [f"Table 1 reproduction (m={m}, k={k})"]
    for metric in TABLE1_METRICS:
        subset = [r for r in records if r["metric"] == metric]
        rows = [
            [r["column"], r["formula"], r["measured"]] for r in subset
        ]
        lines.append("")
        lines.append(metric)
        lines.append(format_table(["column", "paper formula", "measured"], rows))
    return "\n".join(lines)


def optimization_savings(m: int = 4, k: int = 2, *, seed: int | None = None) -> dict[str, float]:
    """Headline ratios the paper highlights, measured on built circuits.

    * ``qubit_ratio``: qubits with recycling / qubits without (should be < 1).
    * ``depth_ratio``: depth with pipelining / depth without (should shrink
      as ``m`` grows, approaching ``1/m``  asymptotically in the loading term).
    * ``classical_gate_ratio``: classically-controlled gates with lazy
      swapping / without (should be about 0.5 for random data).
    """
    memory = random_memory(m + k, seed)
    measured = measured_table1_row(memory, m)
    return {
        "qubit_ratio": measured["OPT1"]["qubits"] / measured["RAW"]["qubits"],
        "depth_ratio": measured["OPT3"]["circuit_depth"]
        / measured["RAW"]["circuit_depth"],
        "classical_gate_ratio": measured["OPT2"]["classical_controlled_gates"]
        / max(measured["RAW"]["classical_controlled_gates"], 1),
    }
