"""Figure 11: fidelity trade-off between the QRAM width m and the SQC width k.

For a fixed total address width ``n = m + k`` the designer can trade physical
QRAM size (``m``) against sequential paging (``k``).  The figure sweeps the
``(m, k)`` plane under single-qubit Z and X error models for error-reduction
factors ``eps_r`` in {1, 10, 100}; the shape to reproduce is that the fidelity
decays *exponentially faster in k* than in m -- paging through the SQC is far
more damaging than growing the router tree, which is the argument for making
the physical QRAM as large as the hardware allows.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.fidelity import virtual_x_fidelity_bound, virtual_z_fidelity_bound
from repro.experiments.common import format_table, random_memory, resolve_seed
from repro.qram.virtual_qram import VirtualQRAM
from repro.sim.engine import get_default_engine
from repro.sim.noise import GateNoiseModel, PauliChannel
from repro.sweep import ShotShard, SweepRunner

DEFAULT_QRAM_WIDTHS: tuple[int, ...] = (1, 2, 3, 4)
DEFAULT_SQC_WIDTHS: tuple[int, ...] = (0, 1, 2, 3)
DEFAULT_REDUCTION_FACTORS: tuple[float, ...] = (1.0, 10.0, 100.0)
DEFAULT_BASE_EPSILON = 1e-3
DEFAULT_SHOTS = 512

ERROR_CHANNELS = {
    "Z": PauliChannel.phase_flip,
    "X": PauliChannel.bit_flip,
}


@lru_cache(maxsize=64)
def _fig11_architecture(m: int, k: int, seed: int) -> VirtualQRAM:
    """Process-local build cache keyed on the (m, k) design point."""
    return VirtualQRAM(memory=random_memory(m + k, seed), qram_width=m)


def _fig11_shard(spec: tuple, shard: ShotShard) -> np.ndarray:
    """Per-shard fidelities for one (m, k, error, factor) sweep point."""
    m, k, error_name, epsilon, seed, engine = spec
    architecture = _fig11_architecture(m, k, seed)
    noise = GateNoiseModel(ERROR_CHANNELS[error_name](epsilon))
    result = architecture.run_query(
        noise, shard.shots, rng=shard.seeds(), engine=engine
    )
    return result.fidelities


def run_fig11(
    qram_widths: tuple[int, ...] = DEFAULT_QRAM_WIDTHS,
    sqc_widths: tuple[int, ...] = DEFAULT_SQC_WIDTHS,
    reduction_factors: tuple[float, ...] = DEFAULT_REDUCTION_FACTORS,
    *,
    base_epsilon: float = DEFAULT_BASE_EPSILON,
    shots: int = DEFAULT_SHOTS,
    errors: tuple[str, ...] = ("Z", "X"),
    seed: int | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
) -> list[dict[str, object]]:
    """Fidelity records over the (m, k) plane for each error channel and eps_r."""
    seed_value = resolve_seed(seed)
    engine = get_default_engine()
    points = [
        (m, k, error_name, factor)
        for m in qram_widths
        for k in sqc_widths
        for error_name in errors
        for factor in reduction_factors
    ]
    specs = [
        (m, k, error_name, base_epsilon / factor, seed_value, engine)
        for m, k, error_name, factor in points
    ]
    runner = SweepRunner(workers=workers, shard_size=shard_size)
    merged = runner.map_shards(_fig11_shard, specs, shots=shots, seed=seed_value)
    records: list[dict[str, object]] = []
    for (m, k, error_name, factor), result in zip(points, merged):
        epsilon = base_epsilon / factor
        bound = (
            virtual_z_fidelity_bound(epsilon, m, k)
            if error_name == "Z"
            else virtual_x_fidelity_bound(epsilon, m, k)
        )
        records.append(
            {
                "error": error_name,
                "m": m,
                "k": k,
                "error_reduction_factor": factor,
                "epsilon": epsilon,
                "shots": shots,
                "fidelity": result.mean_fidelity,
                "std_error": result.std_error,
                "analytic_bound": bound,
            }
        )
    return records


def fig11_report(
    qram_widths: tuple[int, ...] = DEFAULT_QRAM_WIDTHS,
    sqc_widths: tuple[int, ...] = DEFAULT_SQC_WIDTHS,
    reduction_factors: tuple[float, ...] = DEFAULT_REDUCTION_FACTORS,
    *,
    shots: int = DEFAULT_SHOTS,
    seed: int | None = None,
    records: list[dict[str, object]] | None = None,
) -> str:
    """Human-readable Figure 11 grids (one per error channel and eps_r)."""
    if records is None:
        records = run_fig11(
            qram_widths, sqc_widths, reduction_factors, shots=shots, seed=seed
        )
    lines = []
    for error_name in ("Z", "X"):
        for factor in reduction_factors:
            lines.append(
                f"Figure 11 reproduction ({error_name} error, eps_r={factor:g})"
            )
            headers = ["m \\ k"] + [f"k={k}" for k in sqc_widths]
            rows = []
            for m in qram_widths:
                row: list[object] = [m]
                for k in sqc_widths:
                    entry = next(
                        r
                        for r in records
                        if r["error"] == error_name
                        and r["m"] == m
                        and r["k"] == k
                        and r["error_reduction_factor"] == factor
                    )
                    row.append(entry["fidelity"])
                rows.append(row)
            lines.append(format_table(headers, rows))
            lines.append("")
    return "\n".join(lines)


def k_versus_m_decay(
    records: list[dict[str, object]], error: str = "Z", factor: float = 1.0
) -> dict[str, float]:
    """Quantify the claim that fidelity decays faster in k than in m.

    Returns the average fidelity drop per unit increase of ``k`` (at fixed
    ``m``) and per unit increase of ``m`` (at fixed ``k``); the former should
    be the larger of the two.
    """
    subset = [
        r
        for r in records
        if r["error"] == error and r["error_reduction_factor"] == factor
    ]

    def average_drop(axis: str, other: str) -> float:
        drops = []
        other_values = sorted({r[other] for r in subset})
        for other_value in other_values:
            series = sorted(
                (r for r in subset if r[other] == other_value),
                key=lambda r: r[axis],
            )
            for first, second in zip(series, series[1:]):
                drops.append(first["fidelity"] - second["fidelity"])
        return sum(drops) / len(drops) if drops else 0.0

    return {
        "average_drop_per_k": average_drop("k", "m"),
        "average_drop_per_m": average_drop("m", "k"),
    }
