"""Figure 12 / Appendix A: small virtual QRAMs under device-derived noise.

The four configurations of the paper's hardware study are routed onto the
matching device topology (``ibm_perth``-like for ``m = 1``,
``ibmq_guadalupe``-like for ``m = 2``), which forces extra SWAP gates because
of the sparse connectivity, and then simulated under the device noise model
scaled by an error-reduction factor ``eps_r``.  The observations to reproduce:

* at current error rates (``eps_r = 1``) the fidelity is poor;
* an order-of-magnitude improvement (``eps_r = 10``) already yields usable
  small-QRAM fidelities;
* at ``eps_r = 1000`` (error rates ~1e-5, e.g. via small-distance error
  correction) the query fidelity exceeds 0.98;
* larger configurations need more SWAPs and correspondingly better hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.experiments.common import format_table, random_memory, resolve_seed
from repro.hardware.devices import DEVICES, DeviceModel
from repro.hardware.noise_model import device_noise_model
from repro.hardware.router import get_default_router, make_router
from repro.qram.virtual_qram import VirtualQRAM
from repro.sim.engine import get_default_engine
from repro.sim.feynman import FeynmanPathSimulator
from repro.sweep import ShotShard, SweepRunner

DEFAULT_REDUCTION_FACTORS: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0, 1000.0)
DEFAULT_SHOTS = 200


@dataclass(frozen=True)
class HardwareConfiguration:
    """One (m, k, device) point of the Appendix-A study."""

    m: int
    k: int
    device_name: str

    @property
    def label(self) -> str:
        """Human-readable configuration label used in the report."""
        return f"m={self.m},k={self.k}"


DEFAULT_CONFIGURATIONS: tuple[HardwareConfiguration, ...] = (
    HardwareConfiguration(m=1, k=0, device_name="ibm_perth"),
    HardwareConfiguration(m=1, k=1, device_name="ibm_perth"),
    HardwareConfiguration(m=2, k=0, device_name="ibmq_guadalupe"),
    HardwareConfiguration(m=2, k=1, device_name="ibmq_guadalupe"),
)


def route_configuration(
    configuration: HardwareConfiguration,
    *,
    seed: int | None = None,
    router: str | None = None,
):
    """Build and route one configuration; returns (architecture, routed circuit).

    ``router`` resolves through the pluggable registry
    (:func:`repro.hardware.router.make_router`); ``None`` uses the session
    default, so ``python -m repro.experiments --router`` reaches the Figure 12
    hardware study exactly like every other routed experiment.
    """
    device: DeviceModel = DEVICES[configuration.device_name]
    memory = random_memory(configuration.m + configuration.k, seed)
    architecture = VirtualQRAM(memory=memory, qram_width=configuration.m)
    routed = make_router(router, device).route(architecture.build_circuit())
    return architecture, routed


@lru_cache(maxsize=16)
def _fig12_bundle(configuration: HardwareConfiguration, seed: int, router: str):
    """Route one configuration and precompute everything the shards share.

    Returns ``(routed, physical_input, physical_ideal, keep_qubits)``.
    Routing plus state mapping dominates the small fig12 workloads, so the
    bundle is cached per process: every (configuration, eps_r, router) shard
    that lands on a worker reuses its build.  The router name is part of the
    key (and of the shard spec -- worker processes do not inherit the
    session's default-router setting).
    """
    architecture, routed = route_configuration(
        configuration, seed=seed, router=router
    )
    logical_input = architecture.input_state()
    physical_input = routed.map_state(logical_input, final=False)
    physical_ideal = routed.map_state(
        architecture.ideal_output(logical_input), final=True
    )
    keep = routed.physical_qubits(architecture.kept_qubits(), final=True)
    return routed, physical_input, physical_ideal, keep


def _fig12_shard(spec: tuple, shard: ShotShard) -> np.ndarray:
    """Per-shard fidelities for one (configuration, eps_r) sweep point."""
    configuration, factor, seed, engine, router = spec
    routed, physical_input, physical_ideal, keep = _fig12_bundle(
        configuration, seed, router
    )
    device = DEVICES[configuration.device_name]
    noise = device_noise_model(device, error_reduction_factor=factor)
    result = FeynmanPathSimulator(engine=engine).query_fidelities(
        routed.circuit,
        physical_input,
        noise,
        shard.shots,
        keep_qubits=keep,
        ideal_output=physical_ideal,
        rng=shard.seeds(),
    )
    return result.fidelities


def run_fig12(
    configurations: tuple[HardwareConfiguration, ...] = DEFAULT_CONFIGURATIONS,
    reduction_factors: tuple[float, ...] = DEFAULT_REDUCTION_FACTORS,
    *,
    shots: int = DEFAULT_SHOTS,
    seed: int | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
) -> list[dict[str, object]]:
    """Fidelity records for every (configuration, eps_r) pair, plus SWAP counts."""
    seed_value = resolve_seed(seed)
    engine = get_default_engine()
    router = get_default_router()
    points = [
        (configuration, factor)
        for configuration in configurations
        for factor in reduction_factors
    ]
    specs = [
        (configuration, factor, seed_value, engine, router)
        for configuration, factor in points
    ]
    runner = SweepRunner(workers=workers, shard_size=shard_size)
    merged = runner.map_shards(_fig12_shard, specs, shots=shots, seed=seed_value)
    records: list[dict[str, object]] = []
    for (configuration, factor), result in zip(points, merged):
        routed, _, _, _ = _fig12_bundle(configuration, seed_value, router)
        device = DEVICES[configuration.device_name]
        records.append(
            {
                "configuration": configuration.label,
                "m": configuration.m,
                "k": configuration.k,
                "device": device.name,
                "extra_swaps": routed.swap_count,
                "error_reduction_factor": factor,
                "shots": shots,
                "fidelity": result.mean_fidelity,
                "std_error": result.std_error,
            }
        )
    return records


def fig12_report(
    configurations: tuple[HardwareConfiguration, ...] = DEFAULT_CONFIGURATIONS,
    reduction_factors: tuple[float, ...] = DEFAULT_REDUCTION_FACTORS,
    *,
    shots: int = DEFAULT_SHOTS,
    seed: int | None = None,
    records: list[dict[str, object]] | None = None,
) -> str:
    """Human-readable Figure 12 series."""
    if records is None:
        records = run_fig12(
            configurations, reduction_factors, shots=shots, seed=seed
        )
    labels = [configuration.label for configuration in configurations]
    swaps = {
        record["configuration"]: record["extra_swaps"] for record in records
    }
    headers = ["eps_r"] + [f"{label} (SWAP={swaps[label]})" for label in labels]
    rows = []
    for factor in reduction_factors:
        row: list[object] = [factor]
        for label in labels:
            entry = next(
                r
                for r in records
                if r["configuration"] == label
                and r["error_reduction_factor"] == factor
            )
            row.append(entry["fidelity"])
        rows.append(row)
    title = f"Figure 12 reproduction (device noise, shots={shots})"
    return title + "\n" + format_table(headers, rows)
