"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro.experiments list
    python -m repro.experiments table1 [--out results/]
    python -m repro.experiments fig9 --shots 256 --seed 7 [--out results/]
    python -m repro.experiments fig10 --engine feynman-interp
    python -m repro.experiments all --quick
    python -m repro.experiments scenario --list
    python -m repro.experiments scenario htree-swap-m3 --workers 4 --out out/
    python -m repro.experiments scenario htree-swap-m3 --router lookahead
    python -m repro.experiments scenario htree-swap-m3 --cache
    python -m repro.experiments scenario htree-swap-m3 --out out/ --format rrec

Each experiment prints the same rows/series the paper reports (via the
``*_report`` helpers) and, when ``--out`` is given, also writes the raw
records through :mod:`repro.experiments.export` -- CSV, JSON and Markdown
by default, plus the packed binary ``.rrec`` artefact for scenario runs
(``--format`` narrows the set; multiple scenarios additionally merge into
one ``scenario_sweep.rrec`` via the memory-mapped shard merge).

``scenario`` runs named end-to-end configurations from the
:mod:`repro.scenarios` registry (``--list`` enumerates them); any number of
scenario names can be given and each exports as ``scenario_<name>``.

The ``--quick`` flag shrinks shot counts and sweep ranges so a full
regeneration finishes in a couple of minutes on a laptop; omit it for the
paper-scale parameters recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable

from repro.experiments import (
    fig8_report,
    fig9_report,
    fig10_report,
    fig11_report,
    fig12_report,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_table1,
    run_table2,
    table1_report,
    table2_report,
)
from repro.experiments.export import (
    DEFAULT_EXPORT_FORMATS,
    EXPORT_FORMATS,
    export_experiment,
)
from repro.hardware.router import (
    available_routers,
    get_default_router,
    set_default_router,
)
from repro.sim.engine import available_engines, get_default_engine, set_default_engine


# Each wrapper runs its sweep exactly once and renders the report from the
# same records, so a CLI invocation pays for one Monte-Carlo pass, not two.
def _table1(args) -> tuple[str, list[dict]]:
    records = run_table1(args.m, args.k, seed=args.seed, workers=args.workers)
    return table1_report(m=args.m, k=args.k, records=records), records


def _table2(args) -> tuple[str, list[dict]]:
    configurations = [(2, 1), (3, 2)] if args.quick else [(2, 1), (3, 2), (4, 3)]
    records = run_table2(configurations, seed=args.seed, workers=args.workers)
    return table2_report(configurations, records=records), records


def _fig8(args) -> tuple[str, list[dict]]:
    widths = tuple(range(1, 7)) if args.quick else tuple(range(1, 10))
    records = run_fig8(widths, seed=args.seed, workers=args.workers)
    return fig8_report(widths, records=records), records


def _fig9(args) -> tuple[str, list[dict]]:
    widths = (1, 2, 3, 4) if args.quick else (1, 2, 3, 4, 5, 6)
    shots = args.shots or (128 if args.quick else 1024)
    records = run_fig9(
        widths,
        shots=shots,
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
    )
    return fig9_report(widths, shots=shots, records=records), records


def _fig10(args) -> tuple[str, list[dict]]:
    widths = (1, 2, 3) if args.quick else (1, 2, 3, 4, 5, 6)
    shots = args.shots or (128 if args.quick else 1024)
    records = run_fig10(
        widths,
        shots=shots,
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
    )
    return fig10_report(widths, shots=shots, records=records), records


def _fig11(args) -> tuple[str, list[dict]]:
    qram_widths = (1, 2) if args.quick else (1, 2, 3, 4)
    sqc_widths = (0, 1, 2) if args.quick else (0, 1, 2, 3)
    shots = args.shots or (128 if args.quick else 512)
    records = run_fig11(
        qram_widths,
        sqc_widths,
        shots=shots,
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
    )
    return fig11_report(qram_widths, sqc_widths, shots=shots, records=records), records


def _fig12(args) -> tuple[str, list[dict]]:
    shots = args.shots or (100 if args.quick else 200)
    records = run_fig12(
        shots=shots,
        seed=args.seed,
        workers=args.workers,
        shard_size=args.shard_size,
    )
    return fig12_report(shots=shots, records=records), records


EXPERIMENTS: dict[str, Callable] = {
    "table1": _table1,
    "table2": _table2,
    "fig8": _fig8,
    "fig9": _fig9,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the experiments CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Regenerate the tables and figures of the MICRO 2023 QRAM paper.",
    )
    parser.add_argument(
        "experiment",
        choices=sorted(EXPERIMENTS) + ["all", "list", "scenario"],
        help="which experiment to run ('all' for every one, 'list' to "
        "enumerate, 'scenario' for the end-to-end scenario registry)",
    )
    parser.add_argument(
        "names",
        nargs="*",
        help="scenario names to run (only with the 'scenario' experiment)",
    )
    parser.add_argument(
        "--list",
        action="store_true",
        help="with 'scenario': list registered scenarios and exit",
    )
    parser.add_argument("--shots", type=int, default=None, help="Monte-Carlo shots override")
    parser.add_argument("--quick", action="store_true", help="smaller sweeps for a fast run")
    parser.add_argument("--m", type=int, default=4, help="QRAM width for table1")
    parser.add_argument("--k", type=int, default=2, help="SQC width for table1")
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        help="random seed forwarded to every runner (default: the project-wide "
        "DEFAULT_SEED, so figures are reproducible bit-for-bit)",
    )
    parser.add_argument(
        "--engine",
        choices=available_engines(),
        default=None,
        help="execution engine for every simulation (default: the compiled "
        "'feynman-tape' engine)",
    )
    parser.add_argument(
        "--router",
        choices=available_routers(),
        default=None,
        help="SWAP router for scenario compiles whose spec leaves the router "
        "unset (default: the greedy router; 'lookahead' is the SABRE-style "
        "pass with fewer SWAPs)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker processes for sharded sweeps (1 = serial, 0 = all cores; "
        "default: the REPRO_SWEEP_WORKERS environment variable, else 1). "
        "Deterministic seed-splitting makes the artefacts bit-identical for "
        "every worker count",
    )
    parser.add_argument(
        "--shard-size",
        type=int,
        default=None,
        help="Monte-Carlo shots per work unit (scheduling granularity only; "
        "results are bit-identical for every shard size)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default=None,
        help="directory to write record artefacts into",
    )
    parser.add_argument(
        "--format",
        dest="formats",
        action="append",
        choices=sorted(EXPORT_FORMATS) + ["all"],
        default=None,
        help="artefact format(s) to write under --out (repeatable; 'all' "
        "selects every one). Default: csv, json and markdown, plus the "
        "packed binary 'rrec' for scenario runs. 'rrec' is scenario-only",
    )
    cache_group = parser.add_mutually_exclusive_group()
    cache_group.add_argument(
        "--cache",
        action="store_true",
        help="consult the content-addressed result cache for scenario runs "
        "($REPRO_CACHE_DIR, else ~/.cache/repro-qram): warm hits return the "
        "stored records, bit-identical to a fresh run, without executing "
        "anything",
    )
    cache_group.add_argument(
        "--no-cache",
        action="store_true",
        help="ignore the result cache even when REPRO_CACHE_DIR is set",
    )
    return parser


def resolve_formats(args, *, scenario: bool) -> tuple[str, ...]:
    """The export formats one run writes, from the ``--format`` flags.

    ``rrec`` requires scenario records (figure runners return plain dicts
    with no binary schema), so scenario runs default to every format and
    figure runs to the JSON-family three; asking for ``rrec`` on a figure is
    a usage error raised here.
    """
    if args.formats is None:
        return EXPORT_FORMATS if scenario else DEFAULT_EXPORT_FORMATS
    chosen: list[str] = []
    for entry in args.formats:
        expansion = (
            (EXPORT_FORMATS if scenario else DEFAULT_EXPORT_FORMATS)
            if entry == "all"
            else (entry,)
        )
        for fmt in expansion:
            if fmt not in chosen:
                chosen.append(fmt)
    if "rrec" in chosen and not scenario:
        raise ValueError(
            "--format rrec only applies to 'scenario' runs; figure records "
            "have no binary schema"
        )
    return tuple(chosen)


def run_experiment(name: str, args) -> None:
    """Run one named experiment and print/export its records."""
    report, records = EXPERIMENTS[name](args)
    print(report)
    if args.out:
        formats = resolve_formats(args, scenario=False)
        paths = export_experiment(records, args.out, name, formats=formats)
        written = ", ".join(str(paths[fmt]) for fmt in paths)
        print(f"[{name}] wrote {written}")


def run_scenarios(args) -> int:
    """Handle the ``scenario`` experiment: listing and named runs."""
    from repro.scenarios import (
        available_scenarios,
        get_scenario,
        run_scenario,
        scenario_report,
    )

    if args.list:
        for name in available_scenarios():
            print(f"{name}: {get_scenario(name).description}")
        return 0
    if not args.names:
        print(
            "error: 'scenario' needs at least one scenario name "
            "(use --list to enumerate)",
            file=sys.stderr,
        )
        return 2
    try:
        for name in args.names:
            get_scenario(name)  # fail fast on unknown names before running any
    except KeyError as exc:
        print(f"error: {exc.args[0]}", file=sys.stderr)
        return 2
    from repro.circuit.ir import BranchBudgetError

    # Neither flag: cache iff $REPRO_CACHE_DIR is set (see repro.cache.store).
    cache = True if args.cache else (False if args.no_cache else None)
    formats = resolve_formats(args, scenario=True)
    shard_paths = []
    for name in args.names:
        try:
            records = run_scenario(
                name,
                shots=args.shots,
                seed=args.seed,
                workers=args.workers,
                shard_size=args.shard_size,
                cache=cache,
            )
        except BranchBudgetError as exc:
            print(f"error: branch budget exceeded: {exc}", file=sys.stderr)
            return 2
        print(scenario_report(name, records))
        if args.out:
            paths = export_experiment(
                records, args.out, f"scenario_{name}", formats=formats
            )
            if "rrec" in paths:
                shard_paths.append(paths["rrec"])
            written = ", ".join(str(paths[fmt]) for fmt in paths)
            print(f"[scenario {name}] wrote {written}")
    if len(shard_paths) > 1:
        # One merged artefact across every requested scenario, produced by
        # the mmap k-way merge -- byte-identical to a serial re-encode of
        # the concatenated records.
        from pathlib import Path

        from repro.records import merge_record_files

        merged = merge_record_files(
            shard_paths, Path(args.out) / "scenario_sweep.rrec"
        )
        print(f"[scenario] merged {len(shard_paths)} artefacts into {merged}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.experiment == "list":
        for name in sorted(EXPERIMENTS):
            print(name)
        print("scenario (see 'scenario --list')")
        return 0
    if args.names and args.experiment != "scenario":
        parser.error("positional scenario names are only valid with 'scenario'")
    try:
        resolve_formats(args, scenario=args.experiment == "scenario")
    except ValueError as exc:
        parser.error(str(exc))
    previous_engine = get_default_engine()
    previous_router = get_default_router()
    if args.engine is not None:
        set_default_engine(args.engine)
    if args.router is not None:
        set_default_router(args.router)
    if args.experiment == "scenario":
        try:
            return run_scenarios(args)
        finally:
            set_default_engine(previous_engine)
            set_default_router(previous_router)
    run_all = args.experiment == "all"
    names = sorted(EXPERIMENTS) if run_all else [args.experiment]
    failures: list[str] = []
    try:
        for name in names:
            try:
                run_experiment(name, args)
            except NotImplementedError as exc:
                # e.g. --engine statevector on a Monte-Carlo figure.
                print(f"error: [{name}] {exc}", file=sys.stderr)
                if not run_all:
                    return 2
                failures.append(name)
            except Exception as exc:
                if not run_all:
                    raise
                # 'all' keeps going so one broken experiment does not hide
                # the rest -- but the failure must surface in the exit code.
                print(f"error: [{name}] failed: {exc}", file=sys.stderr)
                failures.append(name)
    finally:
        set_default_engine(previous_engine)
        set_default_router(previous_router)
    if failures:
        print(
            f"error: {len(failures)} of {len(names)} experiments failed: "
            + ", ".join(failures),
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover - exercised via tests calling main()
    sys.exit(main())
