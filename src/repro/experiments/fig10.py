"""Figure 10: virtual QRAM fidelity vs error-reduction factor (Sec. 7.3).

The base error rate ``eps = 1e-3`` is divided by an error-reduction factor
``eps_r`` swept over 0.1 ... 1000, for QRAM widths ``m = 1 .. 6`` at ``k = 0``.
The left panel uses the phase-flip (Z) channel, the right panel the bit-flip
(X) channel; the fidelity gap between the two panels -- much better behaviour
under Z-biased noise -- is the paper's headline resilience claim, and curves
for larger ``m`` require proportionally larger ``eps_r`` to saturate.
"""

from __future__ import annotations

from functools import lru_cache

import numpy as np

from repro.analysis.fidelity import qram_x_fidelity_bound, qram_z_fidelity_bound
from repro.experiments.common import format_table, random_memory, resolve_seed
from repro.qram.virtual_qram import VirtualQRAM
from repro.sim.engine import get_default_engine
from repro.sim.noise import GateNoiseModel, PauliChannel
from repro.sweep import ShotShard, SweepRunner

DEFAULT_WIDTHS: tuple[int, ...] = (1, 2, 3, 4, 5, 6)
DEFAULT_REDUCTION_FACTORS: tuple[float, ...] = (0.1, 1.0, 10.0, 100.0, 1000.0)
DEFAULT_BASE_EPSILON = 1e-3
DEFAULT_SHOTS = 1024

ERROR_CHANNELS = {
    "Z": PauliChannel.phase_flip,
    "X": PauliChannel.bit_flip,
}


@lru_cache(maxsize=64)
def _fig10_architecture(m: int, seed: int) -> VirtualQRAM:
    """Process-local build cache: every (error, factor) point of a width
    shares one compiled circuit, in workers and in the serial path alike."""
    return VirtualQRAM(memory=random_memory(m, seed), qram_width=m)


def _fig10_shard(spec: tuple, shard: ShotShard) -> np.ndarray:
    """Per-shard fidelities for one (error, width, reduction factor) point."""
    error_name, m, epsilon, seed, engine = spec
    architecture = _fig10_architecture(m, seed)
    noise = GateNoiseModel(ERROR_CHANNELS[error_name](epsilon))
    result = architecture.run_query(
        noise, shard.shots, rng=shard.seeds(), engine=engine
    )
    return result.fidelities


def run_fig10(
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    reduction_factors: tuple[float, ...] = DEFAULT_REDUCTION_FACTORS,
    *,
    base_epsilon: float = DEFAULT_BASE_EPSILON,
    shots: int = DEFAULT_SHOTS,
    errors: tuple[str, ...] = ("Z", "X"),
    seed: int | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
) -> list[dict[str, object]]:
    """Fidelity records for every (error, width, reduction factor) triple."""
    seed_value = resolve_seed(seed)
    engine = get_default_engine()
    points = [
        (error_name, m, factor)
        for m in widths
        for error_name in errors
        for factor in reduction_factors
    ]
    specs = [
        (error_name, m, base_epsilon / factor, seed_value, engine)
        for error_name, m, factor in points
    ]
    runner = SweepRunner(workers=workers, shard_size=shard_size)
    merged = runner.map_shards(_fig10_shard, specs, shots=shots, seed=seed_value)
    records: list[dict[str, object]] = []
    for (error_name, m, factor), result in zip(points, merged):
        epsilon = base_epsilon / factor
        bound = (
            qram_z_fidelity_bound(epsilon, m)
            if error_name == "Z"
            else qram_x_fidelity_bound(epsilon, m)
        )
        records.append(
            {
                "error": error_name,
                "m": m,
                "k": 0,
                "error_reduction_factor": factor,
                "epsilon": epsilon,
                "shots": shots,
                "fidelity": result.mean_fidelity,
                "std_error": result.std_error,
                "analytic_bound": bound,
            }
        )
    return records


def fig10_report(
    widths: tuple[int, ...] = DEFAULT_WIDTHS,
    reduction_factors: tuple[float, ...] = DEFAULT_REDUCTION_FACTORS,
    *,
    base_epsilon: float = DEFAULT_BASE_EPSILON,
    shots: int = DEFAULT_SHOTS,
    seed: int | None = None,
    records: list[dict[str, object]] | None = None,
) -> str:
    """Human-readable Figure 10 series (one table per error channel)."""
    if records is None:
        records = run_fig10(
            widths,
            reduction_factors,
            base_epsilon=base_epsilon,
            shots=shots,
            seed=seed,
        )
    lines = []
    for error_name, panel in (("Z", "left panel: phase flip"), ("X", "right panel: bit flip")):
        lines.append(f"Figure 10 reproduction ({panel})")
        headers = ["eps_r"] + [f"m={m}" for m in widths]
        rows = []
        for factor in reduction_factors:
            row: list[object] = [factor]
            for m in widths:
                entry = next(
                    r
                    for r in records
                    if r["error"] == error_name
                    and r["m"] == m
                    and r["error_reduction_factor"] == factor
                )
                row.append(entry["fidelity"])
            rows.append(row)
        lines.append(format_table(headers, rows))
        lines.append("")
    return "\n".join(lines)
