"""Materialise an H-tree embedding as a routable :class:`DeviceModel`.

:class:`~repro.mapping.mapped_circuit.MappedQRAM` *accounts* communication
overhead analytically (Figure 8); the scenario subsystem needs the routing to
be **executable** so that every inserted SWAP actually incurs gate noise.
This module bridges the two views: it turns an
:class:`~repro.mapping.htree.HTreeEmbedding` into a coupling map any
registered SWAP router (:func:`repro.hardware.router.make_router`: the
greedy walker or the SABRE-style lookahead pass) can route onto.

Each H-tree *node* hosts a small cluster of logical qubits (router + wire +
data qubits of that tree node; address, SQC and bus registers co-locate with
the root).  The device graph therefore has one vertex per logical qubit plus
one vertex per interior grid point of every tree-edge path:

* qubits inside one node cluster are fully connected (a node is a single
  physical region -- local operations are free of routing);
* each tree edge becomes a chain of routing-qubit vertices whose endpoints
  couple to every qubit of the parent and child clusters, so the hop count
  between two clusters equals the embedding's grid (arm) distance.

Routing a QRAM circuit onto this device reproduces Figure 8's swap-overhead
geometry -- the long top-level arms of the H-tree (length ``~2**(m/2)``)
force proportionally long SWAP chains -- while producing a functionally
correct physical circuit the noisy Feynman-path engines can execute.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.hardware.devices import DeviceModel
from repro.mapping.htree import HTreeEmbedding

#: Grid coordinate type re-exported for chain lookups.
Coordinate = tuple[int, int]


@dataclass(frozen=True)
class HTreeDevice:
    """An executable H-tree device plus the layout that places a circuit on it.

    Attributes
    ----------
    device:
        Coupling map over ``num_logical + num_routing`` vertices (logical
        qubits keep their circuit indices; routing-chain vertices follow).
    initial_layout:
        Identity placement of every logical qubit on its own device vertex,
        ready to pass to :meth:`~repro.hardware.router.GreedySwapRouter.route`.
    num_logical:
        Number of logical circuit qubits.
    num_routing:
        Number of routing-chain vertices appended after the logical qubits.
    chain_vertices:
        Interior routing-chain vertex ids of every materialised tree edge,
        keyed ``(parent grid coordinate, child grid coordinate)`` and ordered
        parent to child.  This is the lookup the executed-teleportation
        expansion (:mod:`repro.mapping.teleport`) hops along.
    """

    device: DeviceModel
    initial_layout: dict[int, int]
    num_logical: int
    num_routing: int
    chain_vertices: dict[tuple[Coordinate, Coordinate], tuple[int, ...]] = field(
        default_factory=dict
    )

    def chain_between(
        self, a: Coordinate, b: Coordinate
    ) -> tuple[int, ...] | None:
        """Interior chain vertices from coordinate ``a`` to ``b``, or ``None``.

        Accepts either orientation of a materialised tree edge and returns
        the chain ordered ``a -> b``.
        """
        chain = self.chain_vertices.get((a, b))
        if chain is not None:
            return chain
        chain = self.chain_vertices.get((b, a))
        if chain is not None:
            return tuple(reversed(chain))
        return None

    def route(self, circuit: QuantumCircuit, *, router: str | None = None):
        """Route ``circuit`` onto this device from its cluster layout.

        ``router`` names a registered router
        (:func:`repro.hardware.router.make_router`); ``None`` uses the
        session default.  Returns a
        :class:`~repro.hardware.router.RoutedCircuit`.
        """
        from repro.hardware.router import make_router

        return make_router(router, self.device).route(circuit, self.initial_layout)


def htree_device(
    embedding: HTreeEmbedding,
    circuit: QuantumCircuit,
    *,
    name: str | None = None,
    calibration: DeviceModel | None = None,
) -> HTreeDevice:
    """Build the executable device for ``circuit`` under ``embedding``.

    ``calibration`` optionally supplies the error rates (single/two-qubit,
    idle) the device should carry; topology always comes from the embedding.
    Raises if the circuit contains a logical qubit the embedding cannot
    place (see :meth:`HTreeEmbedding.logical_positions`).
    """
    positions = embedding.logical_positions(circuit)
    missing = set(range(circuit.num_qubits)) - set(positions)
    if missing:
        raise ValueError(
            f"{len(missing)} logical qubits have no H-tree position: "
            f"{sorted(missing)[:8]}"
        )

    clusters: dict[tuple[int, int], list[int]] = {}
    for qubit in range(circuit.num_qubits):
        clusters.setdefault(positions[qubit], []).append(qubit)

    edges: set[tuple[int, int]] = set()

    def connect(a: int, b: int) -> None:
        if a != b:
            edges.add((min(a, b), max(a, b)))

    for members in clusters.values():
        for i, a in enumerate(members):
            for b in members[i + 1 :]:
                connect(a, b)

    next_vertex = circuit.num_qubits
    chain_vertices: dict[tuple[Coordinate, Coordinate], tuple[int, ...]] = {}
    for (parent, child), path in sorted(embedding.edge_paths.items()):
        parent_cluster = clusters.get(path[0], [])
        child_cluster = clusters.get(path[-1], [])
        if not parent_cluster or not child_cluster:
            # A tree region the circuit allocates no qubits in contributes
            # no executable couplings.
            continue
        chain: list[int] = []
        for _ in path[1:-1]:
            chain.append(next_vertex)
            next_vertex += 1
        chain_vertices[(path[0], path[-1])] = tuple(chain)
        if chain:
            for qubit in parent_cluster:
                connect(qubit, chain[0])
            for a, b in zip(chain, chain[1:]):
                connect(a, b)
            for qubit in child_cluster:
                connect(chain[-1], qubit)
        else:
            for a in parent_cluster:
                for b in child_cluster:
                    connect(a, b)

    rates = (
        dict(
            single_qubit_error=calibration.single_qubit_error,
            two_qubit_error=calibration.two_qubit_error,
            readout_error=calibration.readout_error,
            idle_error=calibration.idle_error,
        )
        if calibration is not None
        else {}
    )
    device = DeviceModel(
        name=name or f"htree-m{embedding.tree_depth}",
        num_qubits=next_vertex,
        coupling_map=tuple(sorted(edges)),
        **rates,
    )
    return HTreeDevice(
        device=device,
        initial_layout={q: q for q in range(circuit.num_qubits)},
        num_logical=circuit.num_qubits,
        num_routing=next_vertex - circuit.num_qubits,
        chain_vertices=chain_vertices,
    )
