"""Communication schemes for remote gates on 2D hardware (Sec. 4.3, Fig. 6d/e).

When a gate's operands are mapped to grid positions that are not adjacent,
the compiler must move quantum information across the intervening qubits.
Two schemes are compared in Figure 8:

* **Swap-based routing** -- the conventional approach: SWAP one operand along
  the path until the operands are adjacent, execute the gate, and SWAP back.
  The added circuit depth is linear in the distance, so the long arms at the
  top of the H-tree (length ``~2**(m/2)``) make the overall overhead grow
  exponentially with the QRAM width ``m``.

* **Teleportation-based routing** -- the paper's scheme: the unused routing
  qubits along the path are prepared in EPR pairs and Bell-measured
  (entanglement swapping), creating a long-range entangled link in *constant*
  depth regardless of distance.  Remote gates therefore add only ``O(1)``
  depth each and the QRAM's ``O(log M)`` query latency survives the mapping.

Both schemes are expressed as a cost model ``(extra operations, extra depth)``
per remote gate so the mapper can accumulate Figure 8's totals from a real
circuit.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class CommunicationCost:
    """Cost of executing one remote gate under a routing scheme."""

    extra_operations: int
    extra_depth: int


class RoutingScheme:
    """Base class: maps a grid distance to a communication cost."""

    name = "abstract"

    def cost(self, distance: int) -> CommunicationCost:
        """Cost of a gate whose operands are ``distance`` grid edges apart."""
        raise NotImplementedError


@dataclass(frozen=True)
class SwapRouting(RoutingScheme):
    """Move an operand with nearest-neighbour SWAPs, execute, and move it back.

    ``swap_depth`` is the depth charged per SWAP (3 when decomposed into CX
    gates, 1 if the hardware supports native SWAP/iSWAP); the default of 1
    matches the paper's operation-level accounting in Figure 8.
    """

    swap_depth: int = 1
    round_trip: bool = True

    name = "swap"

    def cost(self, distance: int) -> CommunicationCost:
        """Swap-routing cost: ``2 (d - 1)`` SWAPs, linear depth."""
        if distance <= 1:
            return CommunicationCost(extra_operations=0, extra_depth=0)
        swaps_one_way = distance - 1
        factor = 2 if self.round_trip else 1
        swaps = factor * swaps_one_way
        return CommunicationCost(
            extra_operations=swaps, extra_depth=swaps * self.swap_depth
        )


@dataclass(frozen=True)
class TeleportationRouting(RoutingScheme):
    """Entanglement-swapping teleportation across the free routing qubits.

    EPR preparation on the path qubits and the Bell-state measurements all
    happen in parallel, so the depth contribution is a constant
    (``link_depth``, default 2: one layer of EPR preparation and one layer of
    Bell measurements, with the conditional Pauli corrections absorbed into
    Pauli-frame tracking) while the operation count grows with the number of
    routing qubits consumed along the path.
    """

    link_depth: int = 2

    name = "teleportation"

    def cost(self, distance: int) -> CommunicationCost:
        """Teleportation cost: ``2 (d - 1)`` link operations, constant depth."""
        if distance <= 1:
            return CommunicationCost(extra_operations=0, extra_depth=0)
        routing_qubits = distance - 1
        return CommunicationCost(
            extra_operations=2 * routing_qubits, extra_depth=self.link_depth
        )
