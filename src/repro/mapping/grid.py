"""2D square-grid hardware connectivity (the NISQ/FTQC substrate of Sec. 4)."""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx

Coordinate = tuple[int, int]


@dataclass(frozen=True)
class Grid2D:
    """A ``rows x cols`` square grid of physical qubits with nearest-neighbour edges.

    Coordinates are ``(row, col)`` pairs; two qubits are connected when their
    Manhattan distance is 1.  This is the 2D square-grid connectivity the
    paper assumes for both NISQ devices and surface-code FTQC layouts
    (Sec. 6.3).
    """

    rows: int
    cols: int

    def __post_init__(self) -> None:
        if self.rows < 1 or self.cols < 1:
            raise ValueError("grid dimensions must be positive")

    # -------------------------------------------------------------- inspection
    @property
    def num_qubits(self) -> int:
        """Total number of grid vertices."""
        return self.rows * self.cols

    def contains(self, coordinate: Coordinate) -> bool:
        """True when ``coordinate`` lies inside the grid."""
        row, col = coordinate
        return 0 <= row < self.rows and 0 <= col < self.cols

    def coordinates(self) -> list[Coordinate]:
        """All grid coordinates in row-major order."""
        return [(row, col) for row in range(self.rows) for col in range(self.cols)]

    def index(self, coordinate: Coordinate) -> int:
        """Row-major integer index of ``coordinate``."""
        if not self.contains(coordinate):
            raise ValueError(f"{coordinate} outside {self.rows}x{self.cols} grid")
        row, col = coordinate
        return row * self.cols + col

    def neighbors(self, coordinate: Coordinate) -> list[Coordinate]:
        """The 4-neighbourhood of ``coordinate`` within the grid."""
        row, col = coordinate
        candidates = [(row - 1, col), (row + 1, col), (row, col - 1), (row, col + 1)]
        return [c for c in candidates if self.contains(c)]

    @staticmethod
    def manhattan_distance(a: Coordinate, b: Coordinate) -> int:
        """L1 distance between two grid coordinates."""
        return abs(a[0] - b[0]) + abs(a[1] - b[1])

    def straight_path(self, a: Coordinate, b: Coordinate) -> list[Coordinate]:
        """Grid path from ``a`` to ``b`` along a single row or column.

        The H-tree embedding only ever connects nodes that share a row or a
        column; requesting a bent path is a logic error and raises.
        """
        if not (self.contains(a) and self.contains(b)):
            raise ValueError("path endpoints must lie on the grid")
        if a[0] == b[0]:
            step = 1 if b[1] >= a[1] else -1
            return [(a[0], col) for col in range(a[1], b[1] + step, step)]
        if a[1] == b[1]:
            step = 1 if b[0] >= a[0] else -1
            return [(row, a[1]) for row in range(a[0], b[0] + step, step)]
        raise ValueError(f"{a} and {b} do not share a row or column")

    def to_networkx(self) -> nx.Graph:
        """The connectivity graph (nodes are coordinates)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.coordinates())
        for row in range(self.rows):
            for col in range(self.cols):
                if col + 1 < self.cols:
                    graph.add_edge((row, col), (row, col + 1))
                if row + 1 < self.rows:
                    graph.add_edge((row, col), (row + 1, col))
        return graph
