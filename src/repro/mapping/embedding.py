"""Topological-minor verification of tree embeddings (Sec. 4.2).

The teleportation-based routing scheme requires that no routing qubit carry
logical information: every tree edge must map to a grid path whose *interior*
vertices are dedicated to that edge alone and host no tree node.  That is
precisely the definition of a topological minor embedding, and this module
checks it exhaustively for a given :class:`~repro.mapping.htree.HTreeEmbedding`
(or any object exposing ``node_positions`` and ``edge_paths``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.mapping.grid import Coordinate
from repro.mapping.htree import HTreeEmbedding


@dataclass
class EmbeddingReport:
    """Result of verifying an embedding."""

    is_topological_minor: bool
    problems: list[str] = field(default_factory=list)
    num_nodes: int = 0
    num_edges: int = 0
    num_routing_vertices: int = 0

    def __bool__(self) -> bool:
        return self.is_topological_minor


def verify_topological_minor(embedding: HTreeEmbedding) -> EmbeddingReport:
    """Check the three topological-minor conditions of the H-tree placement.

    1. Distinct tree nodes occupy distinct grid vertices.
    2. Every edge path is a valid grid path between its endpoints' positions
       (consecutive vertices adjacent, endpoints correct).
    3. Interior path vertices are not occupied by any tree node and are not
       shared between different edges.
    """
    problems: list[str] = []

    node_positions = embedding.node_positions
    position_to_node: dict[Coordinate, tuple[int, int]] = {}
    for node, position in node_positions.items():
        if not embedding.grid.contains(position):
            problems.append(f"node {node} placed off-grid at {position}")
        if position in position_to_node:
            problems.append(
                f"nodes {position_to_node[position]} and {node} collide at {position}"
            )
        position_to_node[position] = node

    interior_owner: dict[Coordinate, tuple] = {}
    routing_vertices: set[Coordinate] = set()
    for (parent, child), path in embedding.edge_paths.items():
        if len(path) < 2:
            problems.append(f"edge {parent}->{child} has a degenerate path")
            continue
        if path[0] != node_positions[parent] or path[-1] != node_positions[child]:
            problems.append(f"edge {parent}->{child} path endpoints are wrong")
        for first, second in zip(path, path[1:]):
            if embedding.grid.manhattan_distance(first, second) != 1:
                problems.append(
                    f"edge {parent}->{child} path is not a grid path at {first}->{second}"
                )
                break
        for vertex in path[1:-1]:
            if vertex in position_to_node:
                problems.append(
                    f"edge {parent}->{child} passes through node "
                    f"{position_to_node[vertex]} at {vertex}"
                )
            previous_owner = interior_owner.get(vertex)
            if previous_owner is not None and previous_owner != (parent, child):
                problems.append(
                    f"routing vertex {vertex} shared by edges {previous_owner} "
                    f"and {(parent, child)}"
                )
            interior_owner[vertex] = (parent, child)
            routing_vertices.add(vertex)

    return EmbeddingReport(
        is_topological_minor=not problems,
        problems=problems,
        num_nodes=len(node_positions),
        num_edges=len(embedding.edge_paths),
        num_routing_vertices=len(routing_vertices),
    )
