"""ASCII rendering of H-tree layouts and mapping overhead summaries.

The paper communicates its mapping results with layout diagrams (Fig. 6);
this module provides the text equivalent so users can eyeball an embedding in
a terminal or paste it into a design document:

* :func:`render_layout` draws the grid with one character per physical qubit
  (``R`` router node, ``D`` leaf data node, ``·`` routing qubit, ``.`` unused);
* :func:`render_levels` overlays the tree level of each node instead, which
  makes the recursive H-tree structure visible;
* :func:`layout_legend` returns the legend used by both.
"""

from __future__ import annotations

from repro.mapping.htree import HTreeEmbedding, QubitRole

#: Character used for each role in :func:`render_layout`.
ROLE_GLYPHS = {
    QubitRole.QRAM: "R",
    QubitRole.DATA: "D",
    QubitRole.ROUTING: "+",
    QubitRole.UNUSED: ".",
}


def layout_legend() -> str:
    """One-line legend for the layout glyphs."""
    return "R = router node   D = leaf data   + = routing qubit   . = unused"


def render_layout(embedding: HTreeEmbedding, *, legend: bool = True) -> str:
    """Draw the embedding as a grid of role glyphs (Fig. 6a/6c style)."""
    roles = embedding.roles()
    rows = []
    for row in range(embedding.grid.rows):
        rows.append(
            " ".join(
                ROLE_GLYPHS[roles[(row, col)]] for col in range(embedding.grid.cols)
            )
        )
    picture = "\n".join(rows)
    if legend:
        picture += "\n" + layout_legend()
    return picture


def render_levels(embedding: HTreeEmbedding) -> str:
    """Draw the tree level of every node (root = 0), '.' elsewhere.

    Levels of 10 and above are rendered with letters (a = 10, b = 11, ...)
    so the grid stays aligned.
    """
    def level_glyph(level: int) -> str:
        if level < 10:
            return str(level)
        return chr(ord("a") + level - 10)

    by_position = {
        position: level for (level, _idx), position in embedding.node_positions.items()
    }
    rows = []
    for row in range(embedding.grid.rows):
        cells = []
        for col in range(embedding.grid.cols):
            level = by_position.get((row, col))
            cells.append("." if level is None else level_glyph(level))
        rows.append(" ".join(cells))
    return "\n".join(rows)


def render_overhead_summary(embedding: HTreeEmbedding) -> str:
    """Compact textual summary of the layout statistics (Sec. 7.2 numbers)."""
    summary = embedding.routing_resource_summary()
    return (
        f"capacity {1 << summary['tree_depth']} QRAM on a "
        f"{summary['grid_rows']}x{summary['grid_cols']} grid: "
        f"{summary['qram_nodes']} router nodes, {summary['data_nodes']} data nodes, "
        f"{summary['routing_qubits']} routing qubits, "
        f"{summary['unused_qubits']} unused ({summary['unused_fraction']:.0%})"
    )
