"""Dual-rail erasure-detecting encoding with postselected parity checks.

Each logical qubit ``q`` becomes two physical *rails* ``(2 q, 2 q + 1)``
holding ``|0>_L = |10>`` and ``|1>_L = |01>`` -- the photonic/superconducting
dual-rail code whose single-rail ``X``/``Y`` errors leave the codespace
(pair parity ``r0 XOR r1`` drops from 1 to 0) and are therefore *detectable
erasures*, while ``Z`` on the occupied rail is the one undetectable logical
phase error.  The transform rewrites the Feynman-simulable QRAM gate set
into parity-preserving dual-rail gadgets:

========  ==========================================================
logical   dual-rail gadget
========  ==========================================================
``X``     ``SWAP(r0, r1)`` -- a rail swap
``Y``     ``SWAP(r0, r1)`` then ``S(r1)``, ``SDG(r0)`` (exact phases)
``Z``     ``Z(r1)``
``S-4``   ``S``/``SDG``/``T``/``TDG`` on ``r1`` (phase on occupied rail)
``CX``    ``CSWAP(c1, t0, t1)`` -- the router-style controlled rail swap
``CZ``    ``CZ(a1, b1)``
``SWAP``  ``SWAP(a0, b0)``, ``SWAP(a1, b1)``
``CSWAP`` ``CSWAP(c1, a0, b0)``, ``CSWAP(c1, a1, b1)``
``CCX``   ``CX(t1, t0)``, ``MCX([a1, b1, t0], t1)``, ``CX(t1, t0)``
``MCX``   same ladder with every control's ``1``-rail (plus ``t0``)
``I``     ``I(r0)``, ``I(r1)``
========  ==========================================================

Every gadget preserves **every** pair parity unconditionally -- for the
``CCX`` ladder: ``t0'' XOR t1' = (t0 XOR t1)`` algebraically, controls
untouched -- so along any Feynman path the final parity vector equals
all-ones XOR the accumulated single-rail bit flips.  Pauli noise applies
per *shot* (uniformly across that shot's paths), hence each parity-check
outcome is path-uniform: the engines' true-marginal ``Z`` measurement
computes ``p0`` exactly ``0.0`` or ``1.0`` in floating point and projects
with scale exactly ``1.0``.  Postselected fidelities are therefore exact
per kept shot, and at zero noise every check passes -- ``kept_fraction ==
1.0`` with the transformed circuit statevector-equivalent to the logical
one under :meth:`DualRailExpansion.map_state`.

Checks are emitted with the :mod:`repro.circuit.feedforward` measure-and-
reset idiom: per logical qubit a parity ancilla accumulates ``r0 XOR r1``
through two CXs, is measured into its own classical slot and frame-reset
to ``|0>``; optional *flag* rounds interleave a global parity probe (XOR of
every rail, expected ``n mod 2``) inside the circuit body, catching mid-
circuit erasures whose rail has already routed elsewhere by circuit end.
:attr:`DualRailExpansion.postselect` lists every ``(cbit, expected)`` pair
-- the postselection mask :meth:`~repro.sim.feynman.FeynmanPathSimulator.
query_fidelities` partitions shots by.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.sim.paths import PathState

__all__ = ["CHECK_TAG", "DualRailExpansion", "encode_dual_rail", "rail_pair"]

#: Tag carried by every check instruction (ancilla CXs, measurements,
#: frame resets) the transform inserts, so resource accounting can split
#: detection overhead from the encoded computation.
CHECK_TAG = "dual-rail-check"

#: Gates the transform rewrites; anything else (``H`` branches out of the
#: codespace, ``MEASURE``/``CPAULI`` would need a logical-readout gadget)
#: is refused outright rather than silently mangled.
_ENCODABLE = frozenset(
    {
        "I",
        "X",
        "Y",
        "Z",
        "S",
        "SDG",
        "T",
        "TDG",
        "CX",
        "CZ",
        "SWAP",
        "CSWAP",
        "CCX",
        "MCX",
    }
)


def rail_pair(qubit: int) -> tuple[int, int]:
    """Physical rail indices ``(2 q, 2 q + 1)`` of logical qubit ``q``."""
    return 2 * qubit, 2 * qubit + 1


@dataclass(frozen=True)
class DualRailExpansion:
    """A logical circuit encoded into dual-rail gadgets plus parity checks.

    Attributes
    ----------
    circuit:
        The encoded circuit: rails first (logical ``q`` on ``2 q`` and
        ``2 q + 1``), then one parity ancilla per logical qubit, then the
        shared flag ancilla when ``flag_rounds > 0``.
    num_logical:
        Number of logical qubits of the source circuit.
    checks:
        ``(cbit, expected_outcome)`` of the end-of-circuit per-qubit parity
        checks, in logical-qubit order (expected outcome is always ``1``).
    flag_checks:
        ``(cbit, expected_outcome)`` of the interleaved global-parity flag
        probes (expected ``num_logical mod 2``); empty without flag rounds.
    """

    circuit: QuantumCircuit
    num_logical: int
    checks: tuple[tuple[int, int], ...]
    flag_checks: tuple[tuple[int, int], ...]

    @property
    def postselect(self) -> tuple[tuple[int, int], ...]:
        """Every check's ``(cbit, expected)`` pair -- the keep condition."""
        return self.checks + self.flag_checks

    def map_state(self, state: PathState) -> PathState:
        """Encode a logical :class:`PathState` onto the rails.

        Bit ``b`` of a logical qubit becomes rails ``(not b, b)`` -- the
        ``|10>`` / ``|01>`` codewords -- and every ancilla starts in
        ``|0>``.  Amplitudes carry over unchanged: the encoding is a basis
        relabelling, so this maps ideal inputs and ideal outputs alike.
        """
        if state.num_qubits != self.num_logical:
            raise ValueError(
                f"state has {state.num_qubits} qubits, expansion encodes "
                f"{self.num_logical} logical qubits"
            )
        bits = np.zeros((state.num_paths, self.circuit.num_qubits), dtype=bool)
        rails = 2 * self.num_logical
        bits[:, 0:rails:2] = ~state.bits
        bits[:, 1:rails:2] = state.bits
        return PathState(bits=bits, amplitudes=state.amplitudes.copy())


class _Encoder:
    """Single-pass gadget rewriter: the output circuit plus check records."""

    def __init__(self, source: QuantumCircuit, *, flag_rounds: int) -> None:
        self.n = source.num_qubits
        self.flag_ancilla = 3 * self.n if flag_rounds > 0 else None
        num_qubits = 3 * self.n + (1 if flag_rounds > 0 else 0)
        self.out = QuantumCircuit(
            num_qubits=num_qubits, metadata=dict(source.metadata)
        )
        self.checks: list[tuple[int, int]] = []
        self.flag_checks: list[tuple[int, int]] = []

    # ------------------------------------------------------------- gadgets
    def encode_instruction(self, instr: Instruction) -> None:
        """Rewrite one logical instruction into its dual-rail gadget."""
        if instr.is_barrier:
            rails = tuple(r for q in instr.qubits for r in rail_pair(q))
            self.out.barrier(*rails)
            return
        gate = instr.gate
        if gate not in _ENCODABLE:
            raise ValueError(
                f"gate {gate} has no dual-rail gadget; the transform encodes "
                "the permutation/phase QRAM gate set only"
            )
        kw = {"tags": instr.tags}
        if gate in ("I", "X", "Y", "Z", "S", "SDG", "T", "TDG"):
            r0, r1 = rail_pair(instr.qubits[0])
            if gate == "I":
                self.out.i(r0, **kw)
                self.out.i(r1, **kw)
            elif gate == "X":
                self.out.swap(r0, r1, **kw)
            elif gate == "Y":
                # Y = i X Z on the logical level: rail swap plus the exact
                # +-i phases (S on the new occupied rail, SDG on the other).
                self.out.swap(r0, r1, **kw)
                self.out.s(r1, **kw)
                self.out.sdg(r0, **kw)
            elif gate == "Z":
                self.out.z(r1, **kw)
            else:  # S / SDG / T / TDG phase the occupied (|1>_L) rail.
                self.out.add(gate, r1, **kw)
        elif gate == "CX":
            control_1 = rail_pair(instr.qubits[0])[1]
            t0, t1 = rail_pair(instr.qubits[1])
            self.out.cswap(control_1, t0, t1, **kw)
        elif gate == "CZ":
            a1 = rail_pair(instr.qubits[0])[1]
            b1 = rail_pair(instr.qubits[1])[1]
            self.out.cz(a1, b1, **kw)
        elif gate == "SWAP":
            a0, a1 = rail_pair(instr.qubits[0])
            b0, b1 = rail_pair(instr.qubits[1])
            self.out.swap(a0, b0, **kw)
            self.out.swap(a1, b1, **kw)
        elif gate == "CSWAP":
            control_1 = rail_pair(instr.qubits[0])[1]
            a0, a1 = rail_pair(instr.qubits[1])
            b0, b1 = rail_pair(instr.qubits[2])
            self.out.cswap(control_1, a0, b0, **kw)
            self.out.cswap(control_1, a1, b1, **kw)
        else:  # CCX / MCX: the controlled rail swap as an MCX ladder.
            controls = [rail_pair(q)[1] for q in instr.qubits[:-1]]
            t0, t1 = rail_pair(instr.qubits[-1])
            # CX(t1,t0); MCX(controls + [t0], t1); CX(t1,t0) swaps the
            # target rails iff every control's 1-rail is set, and restores
            # t0'' = t0 XOR (and(controls) AND (t0 XOR t1)) otherwise --
            # pair parity t0'' XOR t1' == t0 XOR t1 identically.
            self.out.cx(t1, t0, **kw)
            self.out.mcx([*controls, t0], t1, **kw)
            self.out.cx(t1, t0, **kw)

    # -------------------------------------------------------------- checks
    def emit_parity_checks(self) -> None:
        """End-of-circuit per-qubit parity checks onto fresh ancillas."""
        for q in range(self.n):
            r0, r1 = rail_pair(q)
            ancilla = 2 * self.n + q
            self.out.cx(r0, ancilla, tags=(CHECK_TAG,))
            self.out.cx(r1, ancilla, tags=(CHECK_TAG,))
            cbit = self.out.measure(ancilla, tags=(CHECK_TAG,))
            self.out.cpauli("X", ancilla, [cbit], tags=(CHECK_TAG,))
            self.checks.append((cbit, 1))

    def emit_flag_check(self) -> None:
        """Mid-circuit global-parity probe: XOR of every rail onto the flag."""
        flag = self.flag_ancilla
        for rail in range(2 * self.n):
            self.out.cx(rail, flag, tags=(CHECK_TAG,))
        cbit = self.out.measure(flag, tags=(CHECK_TAG,))
        self.out.cpauli("X", flag, [cbit], tags=(CHECK_TAG,))
        self.flag_checks.append((cbit, self.n & 1))


def encode_dual_rail(
    circuit: QuantumCircuit, *, flag_rounds: int = 0
) -> DualRailExpansion:
    """Encode ``circuit`` into dual-rail gadgets with postselected checks.

    The source circuit must stay inside the permutation/phase gate set the
    gadget table covers (``H``, ``MEASURE`` and ``CPAULI`` raise
    ``ValueError``).  ``flag_rounds`` interleaves that many global-parity
    flag probes at evenly spaced points of the circuit body -- each costs
    ``2 n`` CXs onto the shared flag ancilla but catches erasures that a
    later router ``CSWAP`` would have moved off the originally struck pair.

    Returns a :class:`DualRailExpansion` whose circuit the noisy Feynman
    engines execute directly: check outcomes come from each shot's seeded
    stream (deterministically, see the module docstring), and
    :attr:`~DualRailExpansion.postselect` feeds straight into
    :meth:`~repro.sim.feynman.FeynmanPathSimulator.query_fidelities`.
    """
    if flag_rounds < 0:
        raise ValueError("flag_rounds must be non-negative")
    encoder = _Encoder(circuit, flag_rounds=flag_rounds)
    body = list(circuit.instructions)
    # Evenly spaced flag points: probe r of R lands after logical
    # instruction (r + 1) * len(body) / (R + 1) (rounded down), splitting
    # the body into R + 1 roughly equal spans.  The sorted-position cursor
    # keeps the probe count exact even when positions coincide (short
    # bodies) or land at position 0 (empty bodies).
    positions = sorted(
        (round_index + 1) * len(body) // (flag_rounds + 1)
        for round_index in range(flag_rounds)
    )
    cursor = 0
    while cursor < len(positions) and positions[cursor] == 0:
        encoder.emit_flag_check()
        cursor += 1
    for index, instr in enumerate(body):
        encoder.encode_instruction(instr)
        while cursor < len(positions) and positions[cursor] <= index + 1:
            encoder.emit_flag_check()
            cursor += 1
    encoder.emit_parity_checks()
    return DualRailExpansion(
        circuit=encoder.out,
        num_logical=circuit.num_qubits,
        checks=tuple(encoder.checks),
        flag_checks=tuple(encoder.flag_checks),
    )
