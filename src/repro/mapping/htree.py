"""Recursive H-tree embedding of the QRAM router tree into a 2D grid (Sec. 4.2).

The complete binary tree behind a capacity-``2**m`` QRAM has ``m + 1`` node
levels: the router nodes at levels ``0 .. m-1`` and the leaf data nodes at
level ``m``.  The H-tree construction places the root at the centre of the
grid and alternates horizontal and vertical arms whose length halves every
two levels, which is the classic VLSI layout (Browning 1980) the paper builds
on.  The resulting placement is a *topological minor* embedding: every tree
edge maps to a straight grid path whose interior vertices carry no logical
information and can therefore serve as routing qubits for the
teleportation-based communication of Sec. 4.3.

Grid-vertex roles (Fig. 6a legend):

* ``QRAM`` -- internal router nodes (router + wire qubits of the node);
* ``DATA`` -- leaf data nodes;
* ``ROUTING`` -- interior vertices of edge paths (used for teleportation);
* ``UNUSED`` -- everything else (the paper reports ~25% of the grid).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.circuit.circuit import QuantumCircuit
from repro.mapping.grid import Coordinate, Grid2D

NodeId = tuple[int, int]


class QubitRole(Enum):
    """Role of a physical grid qubit in the H-tree layout."""

    QRAM = "qram"
    DATA = "data"
    ROUTING = "routing"
    UNUSED = "unused"


def _arm_lengths(depth: int) -> list[int]:
    """Arm length of the edges between level ``i-1`` and ``i`` for ``i = 1..depth``.

    Arms halve every two levels so the four grandchild subtrees of any node
    tile the four quadrants around it without overlapping.
    """
    return [1 << ((depth - i) // 2) for i in range(1, depth + 1)]


@dataclass
class HTreeEmbedding:
    """H-tree placement of a depth-``tree_depth`` complete binary tree.

    Parameters
    ----------
    tree_depth:
        Number of edge levels ``m`` (the QRAM width); the embedded tree has
        ``m + 1`` node levels and ``2**m`` leaves.
    """

    tree_depth: int
    grid: Grid2D = field(init=False)
    node_positions: dict[NodeId, Coordinate] = field(init=False, default_factory=dict)
    edge_paths: dict[tuple[NodeId, NodeId], list[Coordinate]] = field(
        init=False, default_factory=dict
    )

    def __post_init__(self) -> None:
        if self.tree_depth < 1:
            raise ValueError("tree depth must be at least 1")
        arms = _arm_lengths(self.tree_depth)
        # Edge i (1-based) is horizontal when i is odd, vertical when even.
        x_half = sum(arm for i, arm in enumerate(arms, start=1) if i % 2 == 1)
        y_half = sum(arm for i, arm in enumerate(arms, start=1) if i % 2 == 0)
        self.grid = Grid2D(rows=2 * y_half + 1, cols=2 * x_half + 1)
        root = (y_half, x_half)
        self._place(node=(0, 0), position=root, arms=arms)

    # ----------------------------------------------------------- construction
    def _place(self, node: NodeId, position: Coordinate, arms: list[int]) -> None:
        level, index = node
        self.node_positions[node] = position
        if level == self.tree_depth:
            return
        edge_number = level + 1  # 1-based edge level
        arm = arms[edge_number - 1]
        horizontal = edge_number % 2 == 1
        for side, direction in ((0, -1), (1, +1)):
            child: NodeId = (level + 1, 2 * index + side)
            if horizontal:
                child_position = (position[0], position[1] + direction * arm)
            else:
                child_position = (position[0] + direction * arm, position[1])
            self.edge_paths[(node, child)] = self.grid.straight_path(
                position, child_position
            )
            self._place(child, child_position, arms)

    # -------------------------------------------------------------- inspection
    @property
    def num_leaves(self) -> int:
        """Number of leaf nodes, ``2**tree_depth``."""
        return 1 << self.tree_depth

    def node_position(self, level: int, index: int) -> Coordinate:
        """Grid coordinate of tree node ``(level, index)``."""
        return self.node_positions[(level, index)]

    def edge_distance(self, parent: NodeId, child: NodeId) -> int:
        """Grid distance between a parent node and one of its children."""
        path = self.edge_paths[(parent, child)]
        return len(path) - 1

    def roles(self) -> dict[Coordinate, QubitRole]:
        """Role of every grid coordinate (Fig. 6a classification)."""
        roles = {coord: QubitRole.UNUSED for coord in self.grid.coordinates()}
        for (parent, child), path in self.edge_paths.items():
            for coord in path[1:-1]:
                roles[coord] = QubitRole.ROUTING
        for (level, _index), coord in self.node_positions.items():
            roles[coord] = QubitRole.DATA if level == self.tree_depth else QubitRole.QRAM
        return roles

    def role_counts(self) -> dict[QubitRole, int]:
        """Number of grid qubits per role (used for the 25%-unused claim)."""
        counts = {role: 0 for role in QubitRole}
        for role in self.roles().values():
            counts[role] += 1
        return counts

    def unused_fraction(self) -> float:
        """Fraction of grid qubits that carry no logical or routing duty."""
        counts = self.role_counts()
        return counts[QubitRole.UNUSED] / self.grid.num_qubits

    # -------------------------------------------------- logical qubit placement
    def logical_positions(self, circuit: QuantumCircuit) -> dict[int, Coordinate]:
        """Map every logical qubit of a router-tree QRAM circuit to a grid position.

        Register naming follows :class:`~repro.qram.tree.RouterTree`:
        ``router_L{u}``/``wire_L{u}``/``tree_data_L{u}`` live on node ``(u, j)``,
        ``leaf_data``/``leaf_ancilla`` on node ``(tree_depth, i)``.  The
        address, SQC and bus registers enter the tree at the root and are
        co-located with it (their communication to the root is charged zero
        distance; the overhead of interest is internal to the tree).
        """
        positions: dict[int, Coordinate] = {}
        root = self.node_positions[(0, 0)]
        for name, register in circuit.registers.items():
            if name.startswith(("router_L", "wire_L", "tree_data_L")):
                level = int(name.rsplit("L", 1)[1])
                for index, qubit in enumerate(register):
                    positions[qubit] = self.node_positions[(level, index)]
            elif name in ("leaf_data", "leaf_ancilla"):
                for index, qubit in enumerate(register):
                    positions[qubit] = self.node_positions[(self.tree_depth, index)]
            else:
                for qubit in register:
                    positions[qubit] = root
        return positions

    def routing_resource_summary(self) -> dict:
        """Aggregate layout statistics reported by the mapping benchmarks."""
        counts = self.role_counts()
        return {
            "tree_depth": self.tree_depth,
            "grid_rows": self.grid.rows,
            "grid_cols": self.grid.cols,
            "grid_qubits": self.grid.num_qubits,
            "qram_nodes": counts[QubitRole.QRAM],
            "data_nodes": counts[QubitRole.DATA],
            "routing_qubits": counts[QubitRole.ROUTING],
            "unused_qubits": counts[QubitRole.UNUSED],
            "unused_fraction": self.unused_fraction(),
        }
