"""Executed measurement-based teleportation links for H-tree circuits.

:class:`~repro.mapping.routing.TeleportationRouting` *models* the paper's
Sec. 4.3 communication scheme as a cost formula, and the ``htree-teleport``
scenarios charge that cost as an analytic noise multiplier.  This module
*executes* the links instead: every remote gate of an H-tree-mapped circuit
is expanded into entanglement-link CX hops over the free routing-chain
vertices, mid-circuit ``MEASURE`` instructions and classically-controlled
``CPAULI`` corrections -- the measurement-based one-bit teleportation
primitive (Zhou-Leung-Chuang), which stays inside the Feynman-path-simulable
gate set because every hop is ``CX`` + X-basis measurement + Pauli frame.

The expansion is built from three gadgets, chosen per remote gate so the
noise-site count matches the analytic model wherever the gate's structure
allows:

``ladder`` (remote ``CX``, exact cost match)
    Copy the control along the chain -- ``CX c->i1``, ``CX i1->i2``, ...,
    with the final ``CX`` landing on the target -- then disentangle each
    chain vertex with an X measurement, a ``Z`` frame on the control and an
    ``X`` frame resetting the vertex to |0>.  ``d`` CXs in total: the
    analytic model's gate cost (2 sites) plus ``2 (d - 1)`` link sites.

``move`` (remote SWAP tagged ``move:<k>``, exact cost match)
    The router-tree builders tag traversal SWAPs whose destination wire is
    structurally |0> (see :meth:`repro.qram.tree.RouterTree.route_down_level`).
    Such a SWAP *is* a payload move, so it executes as a chain of one-bit
    teleportation hops -- ``CX a->b``; measure ``a`` in X; ``Z`` frame on
    ``b``; ``X`` frame resetting ``a`` -- again ``d`` CXs total.

``control-extension`` (lone remote operand is a control, exact cost match)
    Copy the remote control to the chain vertex adjacent to the other
    operands (``d - 1`` CXs), execute the gate with the copy substituted,
    and disentangle as in the ladder: ``2 (d - 1)`` link sites plus the
    gate's own operand sites.

``bounce`` (any other remote gate: 2 extra link ops per routing qubit)
    Teleport-move the lone remote operand to the chain vertex adjacent to
    the other cluster, execute the gate locally, and teleport it back.  The
    round trip costs ``4 (d - 1)`` link sites where the analytic model
    charges ``2 (d - 1)`` -- the price of a genuine state exchange, paid by
    the upstream router-tree ``CSWAP``s whose empty side is
    router-conditioned and therefore unknowable at compile time.

Every expansion hop draws its measurement outcome from the executing shot's
own seeded stream (see :mod:`repro.sim.engine`), so executed-teleport sweeps
keep the bit-identical-for-any-sharding contract, and all chain vertices are
frame-reset to |0> -- the expanded circuit's ideal output is the logical
ideal output zero-extended over the routing vertices.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.feedforward import (
    LINK_TAG,
    emit_bell_pair,
    emit_bsm_measurements,
    emit_disentangle,
    emit_hop,
)
from repro.circuit.instruction import Instruction
from repro.mapping.device import HTreeDevice, htree_device
from repro.mapping.grid import Grid2D
from repro.mapping.htree import HTreeEmbedding
from repro.sim.paths import PathState

__all__ = ["LINK_TAG", "TeleportExpansion", "expand_teleport_links"]

#: Operand positions that act as controls, per gate (``CX``/``CCX``/``MCX``
#: use all-but-last; ``CSWAP`` uses its first operand).
_CONTROL_SLICES = {"CX": slice(0, -1), "CCX": slice(0, -1), "MCX": slice(0, -1)}


def _move_destination(instr: Instruction) -> int | None:
    """Operand index a ``move:<k>`` tag declares structurally empty, if any."""
    for tag in instr.tags:
        if tag.startswith("move:"):
            return int(tag.split(":", 1)[1])
    return None


@dataclass(frozen=True)
class TeleportExpansion:
    """An H-tree circuit with its remote gates executed as teleported links.

    Attributes
    ----------
    circuit:
        The expanded circuit on the executable H-tree device's vertex space
        (logical qubits keep their indices, routing-chain vertices follow).
    layout:
        The :class:`~repro.mapping.device.HTreeDevice` the expansion hops
        across.
    remote_gates:
        Number of logical gates that needed a teleported link.
    link_operations:
        Entanglement-link CX hops emitted (instructions tagged
        ``"teleport"``).
    measurements:
        Mid-circuit measurements emitted (one per link hop / ladder rung).
    """

    circuit: QuantumCircuit
    layout: HTreeDevice
    remote_gates: int
    link_operations: int
    measurements: int
    #: True when payload moves use constant-depth entanglement swapping
    #: (Bell pairs + Bell-state measurements) instead of sequential hops.
    fused: bool = False

    def map_state(self, state: PathState) -> PathState:
        """Zero-extend a logical :class:`PathState` over the routing vertices.

        Logical qubits keep their indices on the device, so both the input
        state and the expected ideal output embed the same way -- chain
        vertices start in |0> and are frame-reset to |0> by every link.
        """
        if state.num_qubits != self.layout.num_logical:
            raise ValueError(
                f"state has {state.num_qubits} qubits, expansion expects "
                f"{self.layout.num_logical} logical qubits"
            )
        bits = np.zeros(
            (state.num_paths, self.layout.device.num_qubits), dtype=bool
        )
        bits[:, : self.layout.num_logical] = state.bits
        return PathState(bits=bits, amplitudes=state.amplitudes.copy())


class _Expander:
    """Single-pass expansion state: the output circuit plus counters."""

    def __init__(
        self, layout: HTreeDevice, source: QuantumCircuit, *, fused: bool = False
    ) -> None:
        self.layout = layout
        self.fused = fused
        # Logical registers stay valid: logical qubits keep their indices on
        # the device, routing-chain vertices are appended after them.
        self.out = QuantumCircuit(
            num_qubits=layout.device.num_qubits,
            registers=dict(source.registers),
            metadata=dict(source.metadata),
        )
        self.remote_gates = 0
        self.link_operations = 0
        self.measurements = 0

    # ------------------------------------------------------------- primitives
    def _link_cx(self, control: int, target: int) -> None:
        self.out.cx(control, target, tags=(LINK_TAG,))
        self.link_operations += 1

    def _disentangle(self, vertex: int, control: int) -> None:
        """X-measure a ladder copy; Z-frame the original, reset the vertex."""
        emit_disentangle(self.out, vertex, control)
        self.measurements += 1

    def _hop(self, source: int, target: int) -> None:
        """One-bit teleportation hop: move the payload ``source -> target``.

        ``target`` must be in |0>: a routing-chain vertex (fresh or
        frame-reset by the previous hop) or a ``move:<k>``-tagged empty wire.
        """
        emit_hop(self.out, source, target)
        self.link_operations += 1
        self.measurements += 1

    def _move(self, source: int, chain: tuple[int, ...], target: int) -> None:
        """Teleport a payload along ``chain`` from ``source`` into ``target``."""
        if self.fused:
            self._fused_move(source, chain, target)
            return
        stops = [source, *chain, target]
        for a, b in zip(stops, stops[1:]):
            self._hop(a, b)

    def _fused_move(self, source: int, chain: tuple[int, ...], target: int) -> None:
        """Constant-depth payload move: entanglement swapping over ``chain``.

        The chain wires plus the target pair up into Bell pairs, prepared in
        one layer (each ``H`` branches the path set, see
        :mod:`repro.circuit.ir`), then one layer of Bell-state-measurement
        CXs stitches payload and pairs together; every BSM's ``Z``-basis
        measurement collapses its pair's branch, so the link leaves the
        branch level where it found it.  Depth is constant in the chain
        length -- an ``H`` layer, two CX layers and the measurements --
        where the sequential hop chain needs one CX layer per hop; the
        classical frame corrections are free either way.

        With an odd wire count (even chain length) one plain hop brings the
        payload onto the first chain vertex and the remaining even run
        teleports fused; the hop CX sits in the Bell layer, so depth stays
        constant.

        Exactness of the frame: stage ``i``'s BSM outcomes ``(x_i, z_i)``
        leave the payload carrying ``X**z_i Z**x_i``, composed outermost
        stage last, so the corrections are emitted per stage in reverse
        order -- ``CPAULI X`` on ``z_i`` then ``CPAULI Z`` on ``x_i``.
        XOR-merging the cbits instead would drop a ``(-1)**(x z)`` global
        phase per stage, which the amplitude-level engine tests would see.
        """
        wires = [*chain, target]
        if len(wires) % 2 == 1:
            self._hop(source, wires[0])
            source = wires[0]
            wires = wires[1:]
        if not wires:
            return
        pairs = [(wires[i], wires[i + 1]) for i in range(0, len(wires), 2)]
        for a, b in pairs:
            emit_bell_pair(self.out, a, b)
            self.link_operations += 1
        bsm_pairs = [(source, wires[0])] + [
            (wires[2 * i - 1], wires[2 * i]) for i in range(1, len(pairs))
        ]
        for a, b in bsm_pairs:
            self._link_cx(a, b)
        records = []
        for a, b in bsm_pairs:
            x, z = emit_bsm_measurements(self.out, a, b)
            self.measurements += 2
            records.append((a, b, x, z))
        for _, _, x, z in reversed(records):
            self.out.cpauli("X", target, [z], tags=(LINK_TAG,))
            self.out.cpauli("Z", target, [x], tags=(LINK_TAG,))
        for a, b, x, z in records:
            self.out.cpauli("X", a, [x], tags=(LINK_TAG,))
            self.out.cpauli("X", b, [z], tags=(LINK_TAG,))

    # ------------------------------------------------------------ gate shapes
    def ladder_cx(self, instr: Instruction, chain: tuple[int, ...]) -> None:
        """Remote CX: fan the control down the chain, fire, disentangle."""
        control, target = instr.qubits
        stops = [control, *chain]
        for a, b in zip(stops, stops[1:]):
            self._link_cx(a, b)
        self.out.cx(stops[-1], target, tags=instr.tags)
        for vertex in reversed(chain):
            self._disentangle(vertex, control)

    def extend_control(
        self, instr: Instruction, lone: int, chain: tuple[int, ...]
    ) -> None:
        """Remote control: substitute a chain-end copy of it into the gate."""
        stops = [instr.qubits[lone], *chain]
        for a, b in zip(stops, stops[1:]):
            self._link_cx(a, b)
        substituted = list(instr.qubits)
        substituted[lone] = stops[-1]
        self.out.append(
            Instruction(gate=instr.gate, qubits=tuple(substituted), tags=instr.tags)
        )
        for vertex in reversed(chain):
            self._disentangle(vertex, instr.qubits[lone])

    def bounce(self, instr: Instruction, lone: int, chain: tuple[int, ...]) -> None:
        """General remote gate: round-trip the lone operand over the chain.

        ``chain`` is oriented from the lone operand's cluster towards the
        other operands, so the landing vertex ``chain[-1]`` is adjacent to
        them and the substituted gate acts on a connected patch.
        """
        source = instr.qubits[lone]
        self._move(source, chain[:-1], chain[-1])
        substituted = list(instr.qubits)
        substituted[lone] = chain[-1]
        self.out.append(
            Instruction(gate=instr.gate, qubits=tuple(substituted), tags=instr.tags)
        )
        self._move(chain[-1], tuple(reversed(chain[:-1])), source)


def expand_teleport_links(
    circuit: QuantumCircuit,
    embedding: HTreeEmbedding,
    *,
    calibration=None,
    name: str | None = None,
    fused: bool = False,
) -> TeleportExpansion:
    """Expand every remote gate of ``circuit`` into executed teleport links.

    ``circuit`` must be an H-tree-mappable QRAM circuit (register naming per
    :meth:`~repro.mapping.htree.HTreeEmbedding.logical_positions`); remote
    gates may span exactly one tree edge, which holds for every router-tree
    circuit because gates only couple a node to its parent.  ``calibration``
    optionally supplies the device error rates, as in
    :func:`~repro.mapping.device.htree_device`.

    Returns a :class:`TeleportExpansion` whose circuit the noisy Feynman
    engines execute directly: link noise arises from the hop CXs' real gate
    noise instead of an analytic multiplier, measurement outcomes come from
    each shot's seeded stream, and Pauli-frame corrections are free (and
    noise-free), mirroring hardware Pauli-frame tracking.

    With ``fused=True`` every payload move (``move:<k>`` SWAPs and bounce
    round-trips) executes as a constant-depth entanglement-swapping link --
    Bell pairs over the chain prepared in one layer, a layer of Bell-state
    measurements, and exact per-stage frame corrections (see
    :meth:`_Expander._fused_move`) -- instead of a depth-``d`` hop chain.
    The Bell-pair ``H`` gates branch the path set, so fused expansions
    require the bounded-branching engine support of :mod:`repro.sim.engine`
    and are subject to the branch budget of
    :func:`repro.circuit.ir.get_max_branches`.
    """
    positions = embedding.logical_positions(circuit)
    layout = htree_device(embedding, circuit, calibration=calibration, name=name)
    expander = _Expander(layout, circuit, fused=fused)
    out = expander.out

    for instr in circuit.instructions:
        if instr.is_barrier:
            out.append(instr)
            continue
        coordinates = [positions[q] for q in instr.qubits]
        distance = max(
            (
                Grid2D.manhattan_distance(a, b)
                for i, a in enumerate(coordinates)
                for b in coordinates[i + 1 :]
            ),
            default=0,
        )
        if distance <= 1:
            out.append(instr)
            continue

        expander.remote_gates += 1
        distinct = sorted(set(coordinates))
        if len(distinct) != 2:
            raise ValueError(
                f"remote gate {instr} spans {len(distinct)} clusters; "
                "teleport expansion supports gates along a single tree edge"
            )
        side_a = [i for i, c in enumerate(coordinates) if c == distinct[0]]
        side_b = [i for i, c in enumerate(coordinates) if c == distinct[1]]
        chain = layout.chain_between(distinct[0], distinct[1])
        if chain is None or not chain:
            raise ValueError(
                f"no routing chain between {distinct[0]} and {distinct[1]} "
                f"for remote gate {instr}"
            )

        move_to = _move_destination(instr)
        if instr.gate == "CX":
            oriented = chain if coordinates[0] == distinct[0] else tuple(reversed(chain))
            expander.ladder_cx(instr, oriented)
            continue
        if instr.gate == "SWAP" and move_to is not None:
            source = instr.qubits[1 - move_to]
            source_side = coordinates[1 - move_to]
            oriented = (
                chain if source_side == distinct[0] else tuple(reversed(chain))
            )
            expander._move(source, oriented, instr.qubits[move_to])
            continue
        # Control extension and bounce relocate exactly one operand, so one
        # side must hold exactly one; a gate split 2-2 (or wider) across the
        # edge would stay non-local after the relocation.
        if len(side_a) != 1 and len(side_b) != 1:
            raise ValueError(
                f"remote gate {instr} has {len(side_a)} and {len(side_b)} "
                "operands on the two clusters; teleport expansion needs a "
                "lone operand on one side"
            )
        # The lone remote operand: the side with fewer operands (ties go to
        # the side holding the later operand, e.g. a remote SWAP partner).
        lone = (
            side_a[0]
            if len(side_a) < len(side_b)
            else side_b[0]
            if len(side_b) < len(side_a)
            else max(side_a[0], side_b[0])
        )
        lone_side = coordinates[lone]
        oriented = chain if lone_side == distinct[0] else tuple(reversed(chain))
        controls = _CONTROL_SLICES.get(instr.gate)
        is_control = (
            lone in range(*controls.indices(len(instr.qubits)))
            if controls is not None
            else instr.gate == "CSWAP" and lone == 0
        )
        if is_control and len({coordinates[i] for i in range(len(coordinates)) if i != lone}) == 1:
            expander.extend_control(instr, lone, oriented)
        else:
            expander.bounce(instr, lone, oriented)

    return TeleportExpansion(
        circuit=out,
        layout=layout,
        remote_gates=expander.remote_gates,
        link_operations=expander.link_operations,
        measurements=expander.measurements,
        fused=fused,
    )
