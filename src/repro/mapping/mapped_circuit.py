"""Apply an H-tree embedding to a QRAM circuit and account the routing overhead.

This is the measurement behind Figure 8: take the logical query circuit of a
router-tree QRAM, place every logical qubit on the grid according to the
H-tree embedding, and accumulate the extra operations and extra depth that
each communication scheme adds for gates whose operands are not adjacent.

Depth is accumulated layer by layer over the ASAP schedule of the logical
circuit: within one layer the remote gates execute concurrently, so the layer
pays the *maximum* communication depth among its gates; operation counts are
simply summed.  This mirrors how the paper reports "extra operation depth"
versus QRAM width.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.scheduling import asap_layers
from repro.mapping.grid import Grid2D
from repro.mapping.htree import HTreeEmbedding
from repro.mapping.routing import RoutingScheme


@dataclass(frozen=True)
class MappingOverhead:
    """Communication overhead of one circuit under one routing scheme."""

    scheme: str
    logical_depth: int
    extra_depth: int
    extra_operations: int
    remote_gates: int
    max_gate_distance: int

    @property
    def total_depth(self) -> int:
        """Logical depth plus communication depth."""
        return self.logical_depth + self.extra_depth

    def as_dict(self) -> dict:
        """Plain-dict form of the overhead record (export/tables)."""
        return {
            "scheme": self.scheme,
            "logical_depth": self.logical_depth,
            "extra_depth": self.extra_depth,
            "extra_operations": self.extra_operations,
            "remote_gates": self.remote_gates,
            "max_gate_distance": self.max_gate_distance,
            "total_depth": self.total_depth,
        }


@dataclass
class MappedQRAM:
    """A QRAM circuit placed on a 2D grid via an H-tree embedding."""

    circuit: QuantumCircuit
    embedding: HTreeEmbedding

    def __post_init__(self) -> None:
        self.positions = self.embedding.logical_positions(self.circuit)
        missing = set(range(self.circuit.num_qubits)) - set(self.positions)
        if missing:
            raise ValueError(
                f"{len(missing)} logical qubits have no grid position: "
                f"{sorted(missing)[:8]}..."
            )

    # -------------------------------------------------------------- distances
    def gate_distance(self, qubits: tuple[int, ...]) -> int:
        """Largest pairwise grid distance among a gate's operands."""
        coordinates = [self.positions[q] for q in qubits]
        worst = 0
        for i, a in enumerate(coordinates):
            for b in coordinates[i + 1:]:
                worst = max(worst, Grid2D.manhattan_distance(a, b))
        return worst

    # --------------------------------------------------------------- overhead
    def overhead(self, scheme: RoutingScheme) -> MappingOverhead:
        """Accumulate the communication overhead under ``scheme`` (Figure 8)."""
        layers = asap_layers(self.circuit)
        extra_depth = 0
        extra_operations = 0
        remote_gates = 0
        max_distance = 0
        for layer in layers:
            layer_depth = 0
            for instr in layer:
                if len(instr.qubits) < 2:
                    continue
                distance = self.gate_distance(instr.qubits)
                max_distance = max(max_distance, distance)
                if distance <= 1:
                    continue
                cost = scheme.cost(distance)
                remote_gates += 1
                extra_operations += cost.extra_operations
                layer_depth = max(layer_depth, cost.extra_depth)
            extra_depth += layer_depth
        return MappingOverhead(
            scheme=scheme.name,
            logical_depth=len(layers),
            extra_depth=extra_depth,
            extra_operations=extra_operations,
            remote_gates=remote_gates,
            max_gate_distance=max_distance,
        )

    def compare_schemes(self, schemes: list[RoutingScheme]) -> list[MappingOverhead]:
        """Overhead of every scheme on the same placement (one Figure 8 column)."""
        return [self.overhead(scheme) for scheme in schemes]
