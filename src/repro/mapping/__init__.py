"""Mapping QRAM onto 2D nearest-neighbour hardware (Sec. 4 of the paper).

The router tree of a capacity-``M`` QRAM must be embedded into the sparse
connectivity of real hardware (a 2D square grid for superconducting NISQ
devices or surface-code FTQC layouts).  This package provides:

* :class:`~repro.mapping.grid.Grid2D` -- the hardware connectivity graph;
* :class:`~repro.mapping.htree.HTreeEmbedding` -- the recursive H-tree
  placement of the complete binary tree (Sec. 4.2), classifying every grid
  vertex as a QRAM node, a routing qubit or unused;
* :mod:`~repro.mapping.embedding` -- verification that the placement is a
  *topological minor* embedding (tree edges map to vertex-disjoint grid
  paths), the property that makes teleportation-based routing possible;
* :mod:`~repro.mapping.routing` -- the two communication schemes compared in
  Figure 8: swap-based routing (depth linear in distance) and
  teleportation-based routing via entanglement swapping (constant depth);
* :class:`~repro.mapping.mapped_circuit.MappedQRAM` -- applies an embedding to
  a built QRAM circuit and accounts the extra communication operations and
  depth, reproducing Figure 8's overhead comparison.
"""

from repro.mapping.device import HTreeDevice, htree_device
from repro.mapping.dual_rail import (
    CHECK_TAG,
    DualRailExpansion,
    encode_dual_rail,
    rail_pair,
)
from repro.mapping.embedding import EmbeddingReport, verify_topological_minor
from repro.mapping.grid import Grid2D
from repro.mapping.htree import HTreeEmbedding, QubitRole
from repro.mapping.mapped_circuit import MappedQRAM, MappingOverhead
from repro.mapping.render import render_layout, render_levels, render_overhead_summary
from repro.mapping.routing import (
    RoutingScheme,
    SwapRouting,
    TeleportationRouting,
)

__all__ = [
    "CHECK_TAG",
    "DualRailExpansion",
    "EmbeddingReport",
    "Grid2D",
    "HTreeDevice",
    "HTreeEmbedding",
    "MappedQRAM",
    "MappingOverhead",
    "QubitRole",
    "RoutingScheme",
    "SwapRouting",
    "TeleportationRouting",
    "encode_dual_rail",
    "htree_device",
    "rail_pair",
    "render_layout",
    "render_levels",
    "render_overhead_summary",
    "verify_topological_minor",
]
