"""``repro.records``: the packed binary scenario-record store.

The versioned ``.rrec`` format (magic, container format version, the live
``RECORD_SCHEMA_VERSION``, a self-describing field table, fixed-width
packed rows with string interning for the categorical columns, and a
whole-file CRC-32) replaces JSON record lists wherever parse and merge
cost matters at sweep scale:

* :class:`~repro.records.writer.RecordWriter` / :func:`write_records` --
  append-only encoding, byte-deterministic for a given record sequence;
* :class:`~repro.records.reader.RecordFile` / :func:`read_records` --
  zero-copy memory-mapped reads, every structural invariant (including the
  CRC) validated before the first row decodes;
* :func:`~repro.records.merge.merge_record_files` -- mmap k-way shard
  merge, bit-identical to a serial re-encode of the concatenated records;
* :class:`~repro.records.format.RecordFormatError` -- the single typed
  error for every malformed input, which the result cache maps to a miss.

Every byte of the format is pinned by the differential and fuzz suites
under ``tests/records/`` and throughput-gated by
``benchmarks/bench_records.py``.
"""

from repro.records.format import (
    MAGIC,
    RECORD_FORMAT_VERSION,
    RecordFormatError,
    schema_fields,
)
from repro.records.merge import merge_record_files
from repro.records.reader import RecordFile, read_records
from repro.records.writer import RecordWriter, write_records

__all__ = [
    "MAGIC",
    "RECORD_FORMAT_VERSION",
    "RecordFile",
    "RecordFormatError",
    "RecordWriter",
    "merge_record_files",
    "read_records",
    "schema_fields",
    "write_records",
]
