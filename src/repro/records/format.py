"""The ``.rrec`` packed binary record format: layout constants and schema.

A ``.rrec`` file is the struct-packed, versioned binary serialization of a
list of :class:`~repro.scenarios.record.ScenarioRecord` rows -- the format
the result cache, the sweep CLI export and the HTTP artefact route use
where JSON records would dominate merge and parse time at fleet scale.

File layout (all integers little-endian)::

    offset 0   magic            4s   b"RREC"
           4   format_version   u16  RECORD_FORMAT_VERSION (container layout)
           6   schema_version   u16  RECORD_SCHEMA_VERSION (field semantics)
           8   field_count      u16
          10   reserved         u16  always 0
          12   row_count        u64
          20   tag              u16 len, then utf-8 bytes (application label;
                                the result cache stamps the run fingerprint
                                here so a renamed artefact can never be
                                served under another address)
           .   field table      field_count x (u8 name_len, name utf-8,
                                               u8 type_code)
           .   rows             row_count x (8 * field_count) bytes
           .   string table     u32 count, then count x (u32 len, utf-8)
           .   footer           u32 CRC-32 over every preceding byte

Every field is exactly eight bytes wide: ``int`` fields are signed 64-bit,
``float`` fields are IEEE-754 doubles (NaN payloads included, bit-exact),
and ``str`` fields hold a 64-bit index into the file's string-interning
table, so the categorical columns (scenario, engine, router, ...) cost one
integer per row no matter how long the names are.  A row block is therefore
a dense ``(row_count, field_count)`` int64 matrix -- the property the
memory-mapped reader and the k-way shard merge exploit to stay zero-copy.

Versioning/CRC contract:

* ``RECORD_FORMAT_VERSION`` names the *container* layout above; any change
  to it bumps the version and old files read as
  :class:`RecordFormatError`, never as garbage rows.
* ``schema_version`` is :data:`repro.scenarios.record.RECORD_SCHEMA_VERSION`
  at write time; a mismatch on read (or a field table that differs from the
  current dataclass) is a typed error, which the result cache treats as a
  clean miss.
* The trailing CRC-32 covers the whole file, so *any* corruption --
  truncated tail, bit flip, foreign bytes -- surfaces as
  :class:`RecordFormatError` before a single row is decoded.
"""

from __future__ import annotations

import struct
from dataclasses import fields

from repro.scenarios.record import RECORD_SCHEMA_VERSION, ScenarioRecord

#: First four bytes of every ``.rrec`` file.
MAGIC = b"RREC"

#: Version of the container layout documented above.  Bump on any change to
#: the header, field-table, row or string-table encoding.
RECORD_FORMAT_VERSION = 1

#: Fixed-size header preceding the field table.
HEADER_STRUCT = struct.Struct("<4sHHHHQ")

#: Field type codes used in the on-disk field table.
TYPE_INT = 0
TYPE_FLOAT = 1
TYPE_STR = 2

#: Python annotation -> on-disk type code (the record dataclass uses
#: ``from __future__ import annotations``, so ``field.type`` is a string).
_TYPE_CODES = {"int": TYPE_INT, "float": TYPE_FLOAT, "str": TYPE_STR}

#: Bytes per packed field (int64 / float64 / string-intern index).
FIELD_WIDTH = 8

#: Signed 64-bit bounds every packed ``int`` field must respect.
INT64_MIN = -(2**63)
INT64_MAX = 2**63 - 1


class RecordFormatError(ValueError):
    """A ``.rrec`` file (or record list) violates the binary format contract.

    Raised for *every* malformed input -- truncated or zero-length files,
    bad magic, unknown format or schema versions, field tables that drift
    from the current :class:`~repro.scenarios.record.ScenarioRecord`
    schema, CRC mismatches, out-of-range intern indices, and records whose
    values cannot be packed (non-int64 integers, wrong schema stamp).  The
    result cache maps it to a miss; no caller ever sees a garbage record.
    """


def schema_fields() -> tuple[tuple[str, int], ...]:
    """The current record schema as ``(field_name, type_code)`` pairs.

    Derived from the :class:`~repro.scenarios.record.ScenarioRecord`
    dataclass in declaration order, so the binary field table can never
    drift from the JSON schema it mirrors.
    """
    table = []
    for field in fields(ScenarioRecord):
        try:
            code = _TYPE_CODES[field.type]
        except KeyError:  # pragma: no cover - schema-evolution guard
            raise RecordFormatError(
                f"record field {field.name!r} has unpackable type {field.type!r}"
            ) from None
        table.append((field.name, code))
    return tuple(table)


def encode_field_table() -> bytes:
    """Serialize :func:`schema_fields` into the on-disk field-table bytes."""
    chunks = []
    for name, code in schema_fields():
        encoded = name.encode("utf-8")
        chunks.append(struct.pack("<B", len(encoded)) + encoded + struct.pack("<B", code))
    return b"".join(chunks)


def encode_header(row_count: int, tag: str = "") -> bytes:
    """Fixed header, tag and field table for a file of ``row_count`` rows."""
    table = schema_fields()
    encoded_tag = tag.encode("utf-8")
    if len(encoded_tag) > 0xFFFF:
        raise RecordFormatError(f"tag is {len(encoded_tag)} bytes, max 65535")
    return (
        HEADER_STRUCT.pack(
            MAGIC,
            RECORD_FORMAT_VERSION,
            RECORD_SCHEMA_VERSION,
            len(table),
            0,
            row_count,
        )
        + struct.pack("<H", len(encoded_tag))
        + encoded_tag
        + encode_field_table()
    )


def row_struct() -> struct.Struct:
    """The packer for one row: ``q`` per int/str field, ``d`` per float."""
    codes = "".join(
        "d" if code == TYPE_FLOAT else "q" for _, code in schema_fields()
    )
    return struct.Struct("<" + codes)
