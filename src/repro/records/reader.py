"""Zero-copy memory-mapped reader for ``.rrec`` packed record files.

:class:`RecordFile` maps the file once, validates *everything* up front --
magic, format and schema versions, the field table against the live
:class:`~repro.scenarios.record.ScenarioRecord` schema, section bounds, the
string-interning table, every intern index, and the trailing CRC-32 -- and
then exposes the rows lazily: ``record_file[i]`` materializes one
:class:`~repro.scenarios.record.ScenarioRecord` (the same read-only mapping
protocol every exporter already consumes) straight off the mapping, and
``record_file.rows`` is the raw ``(row_count, field_count)`` int64 matrix
view the k-way shard merge copies without ever decoding a record.

Any violation raises :class:`~repro.records.format.RecordFormatError`
during construction; once a :class:`RecordFile` exists, every row decode is
guaranteed to succeed.
"""

from __future__ import annotations

import mmap
import struct
import zlib
from pathlib import Path
from typing import Iterator

import numpy as np

from repro.records.format import (
    FIELD_WIDTH,
    HEADER_STRUCT,
    MAGIC,
    RECORD_FORMAT_VERSION,
    TYPE_FLOAT,
    TYPE_STR,
    RecordFormatError,
    schema_fields,
)
from repro.scenarios.record import RECORD_SCHEMA_VERSION, ScenarioRecord

_U32 = struct.Struct("<I")


class RecordFile:
    """A validated, memory-mapped ``.rrec`` file of scenario records.

    Sequence protocol: ``len(rf)``, ``rf[i]`` (negative indices and slices
    included), iteration.  Also usable as a context manager; :meth:`close`
    releases the mapping.  :attr:`strings` is the file's interning table
    and :attr:`rows` the packed int64 row matrix -- the merge path's inputs.
    """

    def __init__(self, path: str | Path) -> None:
        self.path = Path(path)
        self._fields = schema_fields()
        self._mm: mmap.mmap | None = None
        self._handle = None
        try:
            self._handle = self.path.open("rb")
        except OSError as exc:
            raise RecordFormatError(f"cannot open {self.path}: {exc}") from exc
        try:
            self._mm = mmap.mmap(self._handle.fileno(), 0, access=mmap.ACCESS_READ)
        except (ValueError, OSError) as exc:
            self._handle.close()
            self._handle = None
            raise RecordFormatError(
                f"{self.path} is empty or unmappable: {exc}"
            ) from exc
        try:
            self._parse()
        except RecordFormatError:
            self.close()
            raise

    # ------------------------------------------------------------ validation
    def _fail(self, reason: str) -> RecordFormatError:
        return RecordFormatError(f"{self.path}: {reason}")

    def _parse(self) -> None:
        mm = self._mm
        size = len(mm)
        if size < HEADER_STRUCT.size + _U32.size + _U32.size:
            raise self._fail(f"truncated: {size} bytes is smaller than any valid file")
        magic, fmt_version, schema_version, field_count, reserved, row_count = (
            HEADER_STRUCT.unpack_from(mm, 0)
        )
        if magic != MAGIC:
            raise self._fail(f"bad magic {magic!r}, expected {MAGIC!r}")
        if fmt_version != RECORD_FORMAT_VERSION:
            raise self._fail(
                f"format version {fmt_version} != supported {RECORD_FORMAT_VERSION}"
            )
        if schema_version != RECORD_SCHEMA_VERSION:
            raise self._fail(
                f"record schema version {schema_version} != "
                f"current {RECORD_SCHEMA_VERSION}"
            )
        if reserved != 0:
            raise self._fail(f"reserved header word is {reserved}, expected 0")
        offset = HEADER_STRUCT.size
        if offset + 2 > size:
            raise self._fail("truncated tag")
        (tag_length,) = struct.unpack_from("<H", mm, offset)
        offset += 2
        if offset + tag_length > size:
            raise self._fail("truncated tag")
        try:
            self.tag = mm[offset : offset + tag_length].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise self._fail(f"undecodable tag: {exc}") from None
        offset += tag_length
        table: list[tuple[str, int]] = []
        for _ in range(field_count):
            if offset + 1 > size:
                raise self._fail("truncated field table")
            name_length = mm[offset]
            offset += 1
            if offset + name_length + 1 > size:
                raise self._fail("truncated field table")
            try:
                name = mm[offset : offset + name_length].decode("utf-8")
            except UnicodeDecodeError as exc:
                raise self._fail(f"undecodable field name: {exc}") from None
            offset += name_length
            table.append((name, mm[offset]))
            offset += 1
        if tuple(table) != self._fields:
            raise self._fail(
                f"field table {table!r} does not match the current "
                f"record schema {self._fields!r}"
            )
        row_bytes = row_count * FIELD_WIDTH * field_count
        rows_offset = offset
        offset += row_bytes
        if offset + _U32.size + _U32.size > size:
            raise self._fail("truncated row block")
        (string_count,) = _U32.unpack_from(mm, offset)
        offset += _U32.size
        strings: list[str] = []
        for _ in range(string_count):
            if offset + _U32.size > size:
                raise self._fail("truncated string table")
            (length,) = _U32.unpack_from(mm, offset)
            offset += _U32.size
            if offset + length + _U32.size > size:
                raise self._fail("truncated string table")
            try:
                strings.append(mm[offset : offset + length].decode("utf-8"))
            except UnicodeDecodeError as exc:
                raise self._fail(f"undecodable interned string: {exc}") from None
            offset += length
        if offset + _U32.size != size:
            raise self._fail(
                f"{size - offset - _U32.size} bytes of trailing garbage after "
                "the string table"
            )
        (stored_crc,) = _U32.unpack_from(mm, offset)
        computed = zlib.crc32(memoryview(mm)[:offset]) & 0xFFFFFFFF
        if computed != stored_crc:
            raise self._fail(
                f"CRC mismatch: stored {stored_crc:#010x}, "
                f"computed {computed:#010x}"
            )
        self.strings: tuple[str, ...] = tuple(strings)
        count = row_count * field_count
        ints = np.frombuffer(mm, dtype="<i8", count=count, offset=rows_offset)
        self._ints = ints.reshape(row_count, field_count)
        self._floats = ints.view("<f8").reshape(row_count, field_count)
        for column, (name, code) in enumerate(self._fields):
            if code != TYPE_STR or row_count == 0:
                continue
            indices = self._ints[:, column]
            if ((indices < 0) | (indices >= len(strings))).any():
                raise self._fail(
                    f"string column {name!r} holds an out-of-range intern index"
                )

    # -------------------------------------------------------------- protocol
    @property
    def rows(self) -> np.ndarray:
        """The packed ``(row_count, field_count)`` int64 matrix (mmap view)."""
        return self._ints

    def __len__(self) -> int:
        return self._ints.shape[0]

    def _decode(self, index: int) -> ScenarioRecord:
        values: dict[str, object] = {}
        for column, (name, code) in enumerate(self._fields):
            if code == TYPE_FLOAT:
                values[name] = float(self._floats[index, column])
            elif code == TYPE_STR:
                values[name] = self.strings[self._ints[index, column]]
            else:
                values[name] = int(self._ints[index, column])
        return ScenarioRecord(**values)

    def __getitem__(
        self, index: int | slice
    ) -> "ScenarioRecord | list[ScenarioRecord]":
        if isinstance(index, slice):
            return [self._decode(i) for i in range(*index.indices(len(self)))]
        length = len(self)
        if index < 0:
            index += length
        if not 0 <= index < length:
            raise IndexError(f"record index {index} out of range ({length} rows)")
        return self._decode(index)

    def __iter__(self) -> Iterator[ScenarioRecord]:
        for index in range(len(self)):
            yield self._decode(index)

    def records(self) -> list[ScenarioRecord]:
        """Decode every row into a fresh list (the JSON-parity escape hatch)."""
        return list(self)

    def tobytes(self) -> bytes:
        """The complete validated file bytes, read off the mapping.

        This is what the HTTP artefact route serves: the exact bytes the
        writer committed, guaranteed well-formed by construction, with no
        per-record dict ever materialized.
        """
        return bytes(self._mm)

    # ------------------------------------------------------------- lifecycle
    def close(self) -> None:
        """Release the numpy views, the mapping and the file handle."""
        self._ints = None
        self._floats = None
        if self._mm is not None:
            self._mm.close()
            self._mm = None
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "RecordFile":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_records(path: str | Path) -> list[ScenarioRecord]:
    """Decode a ``.rrec`` file into records (validates, reads, closes)."""
    with RecordFile(path) as record_file:
        return record_file.records()
