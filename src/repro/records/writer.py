"""Append-only writer for ``.rrec`` packed binary record files.

:class:`RecordWriter` streams rows to disk as they arrive (a million-row
sweep never has to sit in memory as packed bytes) and finalizes the file on
:meth:`~RecordWriter.close`: the string-interning table is appended, the
header's row count is patched in, and the trailing CRC-32 is computed over
the finished bytes.  Until ``close()`` completes the file has no valid
footer, so a crashed writer leaves behind something every reader rejects
with :class:`~repro.records.format.RecordFormatError` -- never a silently
short record list.

Writes are *not* atomic against concurrent readers; callers that need that
(the result cache) write to a temp name and ``os.replace`` into place.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Iterable, Mapping

from repro.records.format import (
    TYPE_STR,
    RecordFormatError,
    encode_header,
    row_struct,
    schema_fields,
)
from repro.scenarios.record import RECORD_SCHEMA_VERSION, ScenarioRecord

#: Chunk size for the close-time CRC pass over the written file.
_CRC_CHUNK = 1 << 20


class RecordWriter:
    """Append :class:`~repro.scenarios.record.ScenarioRecord` rows to a file.

    Usable as a context manager; on a clean exit the file is finalized, on
    an exception it is left unfinalized (readers reject it).  Records must
    carry the current ``RECORD_SCHEMA_VERSION`` -- the file-level stamp in
    the header must be truthful for every row it covers.
    """

    def __init__(self, path: str | Path, *, tag: str = "") -> None:
        self.path = Path(path)
        self.tag = tag
        self._fields = schema_fields()
        self._packer = row_struct()
        self._strings: dict[str, int] = {}
        self._rows = 0
        self._closed = False
        self._file = self.path.open("w+b")
        self._file.write(encode_header(0, tag))

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"RecordWriter({str(self.path)!r}, rows={self._rows})"

    def _intern(self, value: str) -> int:
        index = self._strings.get(value)
        if index is None:
            index = len(self._strings)
            self._strings[value] = index
        return index

    def append(self, record: ScenarioRecord | Mapping[str, object]) -> None:
        """Pack one record and append its fixed-width row.

        Plain mappings are validated through
        :meth:`~repro.scenarios.record.ScenarioRecord.from_dict` first;
        any value the format cannot represent (an integer outside int64, a
        stale ``schema_version``) raises :class:`RecordFormatError`.
        """
        if self._closed:
            raise RecordFormatError(f"writer for {self.path} is closed")
        if not isinstance(record, ScenarioRecord):
            try:
                record = ScenarioRecord.from_dict(dict(record))
            except (ValueError, TypeError) as exc:
                raise RecordFormatError(f"unpackable record: {exc}") from exc
        if record.schema_version != RECORD_SCHEMA_VERSION:
            raise RecordFormatError(
                f"record schema_version {record.schema_version!r} != "
                f"current {RECORD_SCHEMA_VERSION}"
            )
        values = [
            self._intern(getattr(record, name)) if code == TYPE_STR
            else getattr(record, name)
            for name, code in self._fields
        ]
        try:
            self._file.write(self._packer.pack(*values))
        except struct.error as exc:
            raise RecordFormatError(
                f"record value does not fit the packed row format: {exc}"
            ) from exc
        self._rows += 1

    def extend(self, records: Iterable[ScenarioRecord | Mapping[str, object]]) -> None:
        """Append every record in ``records`` in order."""
        for record in records:
            self.append(record)

    def close(self) -> Path:
        """Finalize the file (string table, row count, CRC); return the path."""
        if self._closed:
            return self.path
        self._closed = True
        table = [struct.pack("<I", len(self._strings))]
        for value in self._strings:  # dict preserves first-interned order
            encoded = value.encode("utf-8")
            table.append(struct.pack("<I", len(encoded)) + encoded)
        self._file.write(b"".join(table))
        self._file.seek(0)
        self._file.write(encode_header(self._rows, self.tag))
        self._file.flush()
        self._file.seek(0)
        crc = 0
        while chunk := self._file.read(_CRC_CHUNK):
            crc = zlib.crc32(chunk, crc)
        self._file.seek(0, 2)
        self._file.write(struct.pack("<I", crc & 0xFFFFFFFF))
        self._file.close()
        return self.path

    def __enter__(self) -> "RecordWriter":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
        else:
            # Leave the file unfinalized (no footer): readers reject it.
            self._closed = True
            self._file.close()


def write_records(
    path: str | Path,
    records: Iterable[ScenarioRecord | Mapping[str, object]],
    *,
    tag: str = "",
) -> Path:
    """Write ``records`` to ``path`` as a finalized ``.rrec`` file.

    The empty list is legal (a zero-row file round-trips to an empty list);
    the bytes are a pure function of ``(records, tag)``, so two processes
    encoding the same records produce byte-identical files -- the property
    the cache's content addressing and the CI artefact diffs rely on.
    ``tag`` is the header's free-form application label (the cache stamps
    the run fingerprint there).
    """
    writer = RecordWriter(path, tag=tag)
    with writer:
        writer.extend(records)
    return writer.path
