"""Memory-mapped k-way merge of ``.rrec`` shard files.

A fleet-scale sweep lands as many shard artefacts -- one per worker, per
point range, or per scenario -- and the merged artefact must be
byte-identical to what a single serial writer would have produced from the
concatenated records.  Doing that through JSON means parsing and
re-serializing every record; this module instead maps each shard
(:class:`~repro.records.reader.RecordFile` validates layout and CRC on
open), unions the string-interning tables in first-seen order, bulk-copies
the packed int64 row matrices, and rewrites only the string columns through
a per-shard index remap -- float bit patterns (NaN payloads included) are
never reinterpreted, so the merge is exact by construction.

The first-seen union order makes the output *bytes* equal to a direct
:func:`~repro.records.writer.write_records` over the concatenated records,
which is what lets the differential suite pin ``merge == serial JSON
merge`` all the way down to the artefact bytes.
"""

from __future__ import annotations

import struct
import zlib
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.records.format import (
    TYPE_STR,
    RecordFormatError,
    encode_header,
    schema_fields,
)
from repro.records.reader import RecordFile


def merge_record_files(
    inputs: Sequence[str | Path], output: str | Path, *, tag: str = ""
) -> Path:
    """Merge ``.rrec`` shards into one file; returns the output path.

    Shards are concatenated in the given order (the sweep's point order);
    every input is fully validated -- a corrupt shard raises
    :class:`~repro.records.format.RecordFormatError` and nothing is
    written.  The output bytes equal a serial re-encode of the concatenated
    records under the same ``tag`` (the shards' own tags are not
    propagated), so merging is associative and deterministic.
    """
    if not inputs:
        raise RecordFormatError("cannot merge zero record shards")
    output = Path(output)
    fields = schema_fields()
    string_columns = [
        column for column, (_, code) in enumerate(fields) if code == TYPE_STR
    ]
    shards = [RecordFile(path) for path in inputs]
    try:
        interned: dict[str, int] = {}
        remaps = []
        for shard in shards:
            remap = np.empty(len(shard.strings), dtype=np.int64)
            for index, value in enumerate(shard.strings):
                slot = interned.get(value)
                if slot is None:
                    slot = len(interned)
                    interned[value] = slot
                remap[index] = slot
            remaps.append(remap)
        total = sum(len(shard) for shard in shards)
        merged = np.empty((total, len(fields)), dtype="<i8")
        position = 0
        for shard, remap in zip(shards, remaps):
            count = len(shard)
            block = merged[position : position + count]
            block[:] = shard.rows
            for column in string_columns:
                block[:, column] = remap[shard.rows[:, column]]
            position += count
    finally:
        for shard in shards:
            shard.close()

    table = [struct.pack("<I", len(interned))]
    for value in interned:
        encoded = value.encode("utf-8")
        table.append(struct.pack("<I", len(encoded)) + encoded)
    header = encode_header(total, tag)
    rows = merged.tobytes()
    table_bytes = b"".join(table)
    crc = zlib.crc32(header)
    crc = zlib.crc32(rows, crc)
    crc = zlib.crc32(table_bytes, crc)
    with output.open("wb") as handle:
        handle.write(header)
        handle.write(rows)
        handle.write(table_bytes)
        handle.write(struct.pack("<I", crc & 0xFFFFFFFF))
    return output
