"""Named qubit registers and a simple contiguous allocator.

The QRAM builders need to address dozens of structurally distinct groups of
qubits (address qubits, the bus, per-level router qubits, leaf data qubits,
...).  Working with raw integer indices quickly becomes unreadable, so each
builder allocates named registers through :class:`QubitAllocator` and the
resulting :class:`QubitRegister` objects are kept on the built circuit for
introspection by the simulator, the mapper and the tests.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator


@dataclass(frozen=True)
class QubitRegister:
    """A named, ordered collection of qubit indices."""

    name: str
    qubits: tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        if len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"register {self.name!r} has duplicate qubits")

    def __len__(self) -> int:
        return len(self.qubits)

    def __iter__(self) -> Iterator[int]:
        return iter(self.qubits)

    def __getitem__(self, index: int) -> int:
        return self.qubits[index]

    def __contains__(self, qubit: int) -> bool:
        return qubit in self.qubits


@dataclass
class QubitAllocator:
    """Hands out contiguous qubit indices and remembers them by name.

    Example
    -------
    >>> alloc = QubitAllocator()
    >>> address = alloc.register("address", 3)
    >>> bus = alloc.register("bus", 1)
    >>> alloc.num_qubits
    4
    >>> address.qubits, bus.qubits
    ((0, 1, 2), (3,))
    """

    _next: int = 0
    _registers: dict[str, QubitRegister] = field(default_factory=dict)

    @property
    def num_qubits(self) -> int:
        """Total number of qubits allocated so far."""
        return self._next

    @property
    def registers(self) -> dict[str, QubitRegister]:
        """Mapping from register name to register (insertion ordered)."""
        return dict(self._registers)

    def register(self, name: str, size: int) -> QubitRegister:
        """Allocate ``size`` fresh qubits under ``name``.

        A ``size`` of zero is allowed and produces an empty register, which is
        convenient for optional structures (e.g. the SQC address register when
        ``k == 0``).
        """
        if name in self._registers:
            raise ValueError(f"register {name!r} already allocated")
        if size < 0:
            raise ValueError("register size must be non-negative")
        qubits = tuple(range(self._next, self._next + size))
        self._next += size
        reg = QubitRegister(name=name, qubits=qubits)
        self._registers[name] = reg
        return reg

    def get(self, name: str) -> QubitRegister:
        """Return a previously allocated register by name."""
        return self._registers[name]

    def __contains__(self, name: str) -> bool:
        return name in self._registers
