"""Compiled gate-tape intermediate representation.

Interpreting a :class:`~repro.circuit.circuit.QuantumCircuit` instruction by
instruction costs a Python-level string dispatch, attribute lookups and a
fresh set of NumPy temporaries per gate, and the Monte-Carlo noise runner on
top of it used to draw one ``rng.choice`` per (gate, qubit) error site.  For
the paper's sweeps the same circuit is executed thousands of times, so this
module compiles a circuit **once** into a :class:`GateTape`:

* every gate becomes an integer opcode plus packed ``int32`` operand arrays;
* consecutive gates with the same opcode acting on **pairwise-disjoint**
  qubits are fused into one :class:`TapeGroup`, which the execution engines
  apply as a single batched NumPy column operation (QRAM circuits are full of
  such runs: router-tree levels are layers of parallel ``SWAP``/``CSWAP``);
* a :class:`NoiseSiteTable` enumerates every (gate, qubit) error site of a
  noise model so all Pauli codes for a shot batch can be drawn up front.

Fusing is only performed when it is *exactly* equivalent to sequential
application: gates inside a group touch disjoint qubit sets, so they commute
with each other and with any Pauli error on an earlier group member's
operands.  That is what lets the noisy engine apply a group's error sites
after the whole group without changing the sampled trajectory.

Mid-circuit measurement (``MEASURE``) and Pauli-frame feedforward
(``CPAULI``) compile to their own opcodes with **fusion-barrier** semantics:
each becomes a lone :class:`TapeGroup` carrying its classical payload, and no
run is fused across it.  The tape records the measurement order
(:attr:`GateTape.measurements`) because every measurement consumes exactly
one uniform variate of the shot's random stream -- drawn *before* the shot's
noise-site codes -- which is what keeps seeded trajectories of measured
circuits bit-identical across engines and across any sweep sharding.

Path branching (``H``)
----------------------
A mid-circuit Hadamard is the one gate the Feynman engines execute by
*doubling* the path set: ``H|b> = (|0> + (-1)**b |1>) / sqrt(2)`` splits
every path into two amplitude-weighted branches.  The compiler tags every
tape position with its **branch level** (:attr:`GateTape.branch_levels`, the
base-2 logarithm of the path multiplier after the group) and pre-computes a
deterministic **collapse plan** (:attr:`GateTape.collapse_strides`): for each
``Z``-basis measurement it decides statically -- from exact GF(2) tracking of
every branch axis's bit-difference vector -- whether the true-marginal
projection annihilates exactly one branch of some axis, in which case every
engine contracts that axis and the path set halves again.  Because the plan
is a pure function of the instruction sequence, all engines collapse
identically and the result is invariant under any sweep sharding.  Circuits
whose branch level would exceed the configurable budget
(:func:`get_max_branches`) raise the typed :class:`BranchBudgetError` before
any shot executes.

The tape is cached on the circuit (``circuit._tape``) and invalidated by
:meth:`QuantumCircuit.append`; as a second line of defence the cache is also
dropped when the instruction count changed (catching direct appends to
``circuit.instructions``).  Same-length in-place *replacement* of
instructions bypasses both checks -- circuits are treated as append-only,
which every builder in the library respects.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.circuit.gates import is_path_simulable
from repro.circuit.instruction import Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import QuantumCircuit
    from repro.sim.noise import NoiseModel, PauliChannel


# --------------------------------------------------------------------- opcodes
#: Integer opcodes, one per gate the registry knows.  ``OP_NOP`` stands for the
#: identity gate, which executes nothing but still carries noise sites.
#: ``OP_MEASURE``/``OP_CPAULI`` are the mid-circuit measurement and
#: Pauli-frame feedforward instructions; both act as **fusion barriers** (see
#: :func:`compile_circuit`).
(
    OP_NOP,
    OP_X,
    OP_Y,
    OP_Z,
    OP_S,
    OP_SDG,
    OP_T,
    OP_TDG,
    OP_H,
    OP_CX,
    OP_CZ,
    OP_SWAP,
    OP_CCX,
    OP_CSWAP,
    OP_MCX,
    OP_MEASURE,
    OP_CPAULI,
) = range(17)

#: Gate name -> opcode.  ``BARRIER`` is intentionally absent: barriers are
#: dropped at compile time (they only matter for depth scheduling).
GATE_OPCODES: dict[str, int] = {
    "I": OP_NOP,
    "X": OP_X,
    "Y": OP_Y,
    "Z": OP_Z,
    "S": OP_S,
    "SDG": OP_SDG,
    "T": OP_T,
    "TDG": OP_TDG,
    "H": OP_H,
    "CX": OP_CX,
    "CZ": OP_CZ,
    "SWAP": OP_SWAP,
    "CCX": OP_CCX,
    "CSWAP": OP_CSWAP,
    "MCX": OP_MCX,
    "MEASURE": OP_MEASURE,
    "CPAULI": OP_CPAULI,
}

#: Opcode -> gate name (debugging / error messages).
OPCODE_NAMES: dict[int, str] = {op: name for name, op in GATE_OPCODES.items()}


# ------------------------------------------------------------- branch budget
class BranchBudgetError(ValueError):
    """A circuit's path-branching level exceeds the configured budget.

    Every mid-circuit ``H`` doubles the Feynman path set until a later
    measurement collapses the branch, so unbounded branching would defeat
    the whole point of path-sum simulation.  The budget caps the number of
    *concurrently live* branch axes; see :func:`set_max_branches`.
    """


#: Default cap on concurrently live branch axes (path multiplier 2**budget).
DEFAULT_MAX_BRANCHES = 10

_MAX_BRANCHES = DEFAULT_MAX_BRANCHES


def get_max_branches() -> int:
    """Current branch budget: the maximum concurrently live branch level."""
    return _MAX_BRANCHES


def set_max_branches(budget: int) -> None:
    """Globally set the branch budget (``DEFAULT_MAX_BRANCHES`` initially).

    Raises
    ------
    ValueError
        If ``budget`` is negative.
    """
    global _MAX_BRANCHES
    if budget < 0:
        raise ValueError("the branch budget cannot be negative")
    _MAX_BRANCHES = budget

# ---------------------------------------------------------------- phase tables
#: ``i ** k`` for ``k`` in 0..3: the phase a run of ``S`` gates (or ``Y``
#: phase bookkeeping) accumulates, indexed by the exponent modulo 4.
PHASE_I_POW = np.array([1.0, 1j, -1.0, -1j], dtype=complex)
PHASE_I_POW_CONJ = np.conj(PHASE_I_POW)

#: ``exp(i pi/4) ** k`` for ``k`` in 0..7, built by cumulative multiplication
#: so a fused run of ``T`` gates matches sequential application to the ulp.
PHASE_T_POW = np.concatenate(
    ([1.0 + 0.0j], np.cumprod(np.full(7, np.exp(1j * np.pi / 4), dtype=complex)))
)
PHASE_T_POW_CONJ = np.conj(PHASE_T_POW)


# ---------------------------------------------------------------------- groups
@dataclass(frozen=True)
class TapeGroup:
    """A run of same-opcode gates on pairwise-disjoint qubits.

    ``qubits`` has shape ``(n_gates, arity)``; for ``MCX`` all gates in the
    group share the same arity (controls first, target last, as in
    :class:`~repro.circuit.instruction.Instruction`).

    ``MEASURE``/``CPAULI`` groups always hold exactly one instruction (they
    are fusion barriers) and carry its classical payload in ``params``:
    ``(cbit, basis)`` for a measurement, ``(pauli, cbit, ...)`` for a frame
    correction.  Ordinary gate groups leave ``params`` empty.
    """

    opcode: int
    qubits: np.ndarray
    params: tuple = ()

    @property
    def size(self) -> int:
        """Number of fused gates in the group."""
        return self.qubits.shape[0]

    @property
    def single(self) -> bool:
        """True when the group holds exactly one gate."""
        return self.qubits.shape[0] == 1

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"TapeGroup({OPCODE_NAMES[self.opcode]} x{self.size})"


# ----------------------------------------------------------------- noise sites
@dataclass(frozen=True)
class NoiseSiteTable:
    """Every (gate, qubit) error site of a noise model, in execution order.

    The site order is exactly the order the interpreted runner samples in
    (gates in instruction order, operand qubits in gate order, trivial
    channels skipped, then the model's end-of-circuit sites), so drawing all
    codes up front with :meth:`draw` consumes the random stream identically
    and reproduces the interpreted engine's trajectories bit for bit under a
    fixed seed.  End-of-circuit sites carry ``gate_index == -1`` and
    ``group_index == num_groups``.
    """

    gate_index: np.ndarray  # (n_sites,) int32: index into GateTape.gates
    qubit: np.ndarray  # (n_sites,) int32
    group_index: np.ndarray  # (n_sites,) int32: group after which the site fires
    channels: tuple  # (n_sites,) PauliChannel per site
    _run_cache: tuple | None = field(
        default=None, repr=False, compare=False
    )  # lazily computed (start, stop, channel) runs

    @property
    def n_sites(self) -> int:
        """Number of error sites in the table."""
        return len(self.channels)

    def _channel_runs(self) -> tuple:
        """Maximal runs of consecutive equal channels: ``(start, stop, channel)``.

        Computed once per table (the table itself is memoized per noise
        model) so every per-shot draw walks a handful of runs instead of
        comparing channels site by site.
        """
        if self._run_cache is None:
            runs: list[tuple[int, int, "PauliChannel"]] = []
            start = 0
            n = self.n_sites
            channels = self.channels
            while start < n:
                channel = channels[start]
                stop = start + 1
                while stop < n and channels[stop] == channel:
                    stop += 1
                runs.append((start, stop, channel))
                start = stop
            object.__setattr__(self, "_run_cache", tuple(runs))
        return self._run_cache

    def draw(self, shots: int, rng: np.random.Generator) -> np.ndarray:
        """Draw Pauli codes for every site: shape ``(n_sites, shots)``.

        Consecutive sites sharing a channel are drawn in one bulk
        ``rng.choice`` call, which consumes the generator exactly like the
        equivalent sequence of per-site :meth:`PauliChannel.sample` calls.
        """
        if self.n_sites == 0:
            return np.empty((0, shots), dtype=np.int64)
        codes = np.empty((self.n_sites, shots), dtype=np.int64)
        for start, stop, channel in self._channel_runs():
            codes[start:stop] = channel.sample_block(rng, stop - start, shots)
        return codes

    def draw_shot(self, rng: np.random.Generator) -> np.ndarray:
        """Draw one shot's Pauli codes from its own generator: ``(n_sites,)``.

        This is the per-shot seeded mode used by deterministic sharding
        (:class:`repro.sim.seeding.ShotSeeds`): the codes for a shot depend
        only on that shot's generator, so any partition of a shot range into
        shards reproduces the unsharded batch exactly.  Sites are drawn in
        execution order via the threshold sampler, one ``rng.random`` value
        per site.
        """
        codes = np.empty(self.n_sites, dtype=np.int64)
        for start, stop, channel in self._channel_runs():
            codes[start:stop] = channel.sample_thresholded(rng, stop - start)
        return codes

    def draw_sparse(
        self, shots: int, rng: np.random.Generator
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Sample only the non-identity error events: ``(site, shot, code)``.

        Aggregate rare-event sampling for the batch engine's bulk-generator
        mode.  Per channel run, the number of events over the run's
        ``sites * shots`` Bernoulli cells is drawn from the exact Binomial
        marginal, the event cells from the uniform-subset distribution, and
        each event's Pauli from the channel's conditional ``X``/``Y``/``Z``
        weights -- distributionally identical to the dense grid of
        :meth:`draw` while consuming ``O(events)`` randomness instead of
        ``O(n_sites * shots)``.  The stream consumption necessarily differs
        from :meth:`draw`, so bulk-generator trajectories are seed-
        reproducible but not cell-identical to the dense samplers; the
        seeded per-shot mode (:meth:`draw_per_shot`) remains the cross-engine
        bit-identity contract.  Events are returned site-major, i.e. in
        execution order.
        """
        site_parts: list[np.ndarray] = []
        shot_parts: list[np.ndarray] = []
        code_parts: list[np.ndarray] = []
        for start, stop, channel in self._channel_runs():
            cells = (stop - start) * shots
            p_total = channel.p_total
            if cells == 0 or p_total <= 0.0:
                continue
            count = int(rng.binomial(cells, p_total))
            if count == 0:
                continue
            flat = np.sort(rng.choice(cells, size=count, replace=False))
            conditional = (
                np.array([channel.p_x, channel.p_x + channel.p_y]) / p_total
            )
            codes = (
                np.searchsorted(conditional, rng.random(count), side="right") + 1
            ).astype(np.int64)
            site_parts.append(start + flat // shots)
            shot_parts.append(flat % shots)
            code_parts.append(codes)
        if not site_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy(), empty.copy()
        return (
            np.concatenate(site_parts),
            np.concatenate(shot_parts),
            np.concatenate(code_parts),
        )

    def draw_per_shot(self, seeds, shots: int) -> np.ndarray:
        """Draw codes for ``shots`` independently seeded shots: ``(n_sites, shots)``.

        ``seeds`` is a :class:`repro.sim.seeding.ShotSeeds` window; column
        ``s`` is :meth:`draw_shot` under the stream of absolute shot
        ``seeds.start + s``.  Delegates to the shared
        :func:`repro.sim.seeding.draw_shot_randomness` helper (imported
        lazily: ``repro.sim`` depends on this module at import time).
        """
        from repro.sim.seeding import draw_shot_randomness

        codes, _ = draw_shot_randomness(self, seeds, shots)
        return codes


# ------------------------------------------------------------------------ tape
@dataclass
class GateTape:
    """Packed, execution-ready form of a circuit (see module docstring)."""

    num_qubits: int
    groups: list[TapeGroup]
    gates: list[Instruction]  # barrier-free gates in original order
    gate_group: np.ndarray  # (n_gates,) int32: group each gate belongs to
    unsupported_path_gates: tuple[str, ...]  # gates Feynman engines must reject
    source_length: int  # len(circuit.instructions) at compile time
    #: ``(cbit, basis)`` of every MEASURE instruction in execution order --
    #: the order engines consume measurement randomness in (one uniform per
    #: entry, drawn before any noise-site randomness of the same shot).
    measurements: tuple[tuple[int, str], ...] = ()
    num_clbits: int = 0
    #: Branch level *after* each group: log2 of the path multiplier relative
    #: to the input path count.  Level rises by one per fused ``H`` and falls
    #: by one at every measurement group with a non-zero collapse stride.
    branch_levels: tuple[int, ...] = ()
    #: Per-group collapse plan: ``0`` everywhere except at ``Z``-basis
    #: measurement groups whose projection provably annihilates one branch of
    #: a live axis, where it holds that axis's pair stride (a power of two,
    #: in units of the *input* path count).  Engines contract the tagged axis
    #: right after applying the measurement.
    collapse_strides: tuple[int, ...] = ()
    #: Peak of :attr:`branch_levels` (0 for branch-free circuits).
    max_branch_level: int = 0
    _site_cache: dict = field(default_factory=dict, repr=False, compare=False)

    @property
    def num_gates(self) -> int:
        """Number of barrier-free gates on the tape."""
        return len(self.gates)

    @property
    def num_groups(self) -> int:
        """Number of fused execution groups."""
        return len(self.groups)

    @property
    def num_measurements(self) -> int:
        """Number of mid-circuit measurements on the tape."""
        return len(self.measurements)

    def require_branch_budget(self, budget: int | None = None) -> None:
        """Raise :class:`BranchBudgetError` if the tape exceeds ``budget``.

        ``None`` checks against the global budget
        (:func:`get_max_branches`).  Engines call this before executing a
        single shot, and the scenario compiler calls it when expanding
        fused teleportation links, so the typed error surfaces before any
        randomness is consumed.
        """
        limit = get_max_branches() if budget is None else budget
        if self.max_branch_level > limit:
            raise BranchBudgetError(
                f"circuit reaches branch level {self.max_branch_level} "
                f"(path multiplier {2 ** self.max_branch_level}) but the "
                f"branch budget is {limit}; raise it with "
                "repro.circuit.ir.set_max_branches or restructure the "
                "circuit so measurements collapse branches earlier"
            )

    def noise_sites(self, noise: "NoiseModel") -> NoiseSiteTable:
        """Memoized :class:`NoiseSiteTable` for ``noise``.

        The table only depends on the (hashable, frozen) noise model, so
        repeated Monte-Carlo calls over a sweep reuse it.
        """
        try:
            cached = self._site_cache.get(noise)
        except TypeError:  # unhashable custom model: recompute every call
            return self._build_noise_sites(noise)
        if cached is None:
            cached = self._build_noise_sites(noise)
            self._site_cache[noise] = cached
        return cached

    def _build_noise_sites(self, noise: "NoiseModel") -> NoiseSiteTable:
        gate_index: list[int] = []
        qubits: list[int] = []
        channels: list["PauliChannel"] = []
        later_in_group: dict[int, set[int]] | None = None
        for index, instr in enumerate(self.gates):
            for qubit, channel in noise.gate_error_channels_indexed(index, instr):
                if channel.is_trivial:
                    continue
                if qubit not in instr.qubits:
                    # Off-operand site (e.g. a crosstalk model): deferring it
                    # to the end of the fused group is only sound if no later
                    # gate in the group touches that qubit.
                    if later_in_group is None:
                        later_in_group = self._later_group_qubits()
                    if qubit in later_in_group[index]:
                        raise ValueError(
                            f"noise model places an error on qubit {qubit} "
                            f"after {instr}, but a later gate in the same "
                            "fused run touches that qubit; the compiled "
                            "engine cannot order this -- use "
                            "engine='feynman-interp'"
                        )
                gate_index.append(index)
                qubits.append(qubit)
                channels.append(channel)
        gate_arr = np.asarray(gate_index, dtype=np.int32)
        group_arr = (
            self.gate_group[gate_arr]
            if len(gate_index)
            else np.empty(0, dtype=np.int32)
        )
        # End-of-circuit sites (idle-noise flushes): fired after every group,
        # encoded with sentinel gate index -1 and group index num_groups so
        # the engines' group-bucketed event walk picks them up last.
        final = [
            (qubit, channel)
            for qubit, channel in noise.final_error_channels()
            if not channel.is_trivial
        ]
        if final:
            gate_arr = np.concatenate(
                [gate_arr, np.full(len(final), -1, dtype=np.int32)]
            )
            qubits.extend(qubit for qubit, _ in final)
            channels.extend(channel for _, channel in final)
            group_arr = np.concatenate(
                [group_arr, np.full(len(final), len(self.groups), dtype=np.int32)]
            )
        return NoiseSiteTable(
            gate_index=gate_arr,
            qubit=np.asarray(qubits, dtype=np.int32),
            group_index=group_arr,
            channels=tuple(channels),
        )

    def _later_group_qubits(self) -> dict[int, set[int]]:
        """For each gate, the qubits touched by later gates of its group.

        Suffix scan per group: walk backwards accumulating operand sets.
        """
        later: dict[int, set[int]] = {}
        accumulated: dict[int, set[int]] = {}
        for index in range(len(self.gates) - 1, -1, -1):
            group = int(self.gate_group[index])
            later[index] = set(accumulated.get(group, ()))
            accumulated.setdefault(group, set()).update(self.gates[index].qubits)
        return later


class _BranchTracker:
    """Exact static tracking of live branch axes during tape compilation.

    Every mid-circuit ``H`` opens one **branch axis**: path ``j`` splits
    into ``2 j + b`` (the newest axis is always the innermost stride-1
    pairing; every older axis's stride doubles).  For each axis the tracker
    maintains the GF(2) *bit-difference vector* between branch partners --
    the set of qubits whose bits differ inside every partner pair -- which
    evolves linearly and shot-independently under the path-simulable gate
    set: full-shot Pauli noise, frame corrections and uniform bit flips
    never change it, ``CX`` XORs the control's difference into the target,
    ``SWAP`` permutes entries.  A nonlinear gate (``CCX``/``CSWAP``/``MCX``)
    whose value-dependent update would touch a differing qubit marks that
    axis *opaque* (difference unknown, never collapsible).

    A ``Z``-basis measurement of a qubit that differs along a live
    non-opaque axis annihilates exactly one partner of every pair of that
    axis, for every shot -- so the compiler schedules a deterministic
    contraction of the innermost such axis (recorded as the group's collapse
    stride) and the path multiplier halves again.  Because the schedule is a
    pure function of the instruction sequence, every engine collapses
    identically and sharded sweeps stay bit-identical.
    """

    def __init__(self) -> None:
        #: Oldest-first difference vectors; ``None`` marks an opaque axis.
        self.axes: list[set[int] | None] = []

    @property
    def level(self) -> int:
        """Number of live branch axes (log2 of the path multiplier)."""
        return len(self.axes)

    def _opacify(self, qubits: Sequence[int]) -> None:
        touched = set(qubits)
        for index, diff in enumerate(self.axes):
            if diff is not None and diff & touched:
                self.axes[index] = None

    def apply(self, instr: Instruction) -> None:
        """Advance the tracker over one (non-measurement) instruction."""
        gate = instr.gate
        q = instr.qubits
        if gate == "H":
            for diff in self.axes:
                if diff is not None:
                    diff.discard(q[0])
            self.axes.append({q[0]})
        elif gate == "CX":
            for diff in self.axes:
                if diff is not None and q[0] in diff:
                    diff.symmetric_difference_update((q[1],))
        elif gate == "SWAP":
            for diff in self.axes:
                if diff is not None:
                    a, b = q[0] in diff, q[1] in diff
                    if a != b:
                        diff.symmetric_difference_update(q)
        elif gate == "CCX":
            self._opacify(q[:2])
        elif gate == "MCX":
            self._opacify(q[:-1])
        elif gate == "CSWAP":
            control, a, b = q
            for index, diff in enumerate(self.axes):
                if diff is None:
                    continue
                if control in diff or ((a in diff) != (b in diff)):
                    self.axes[index] = None
        # Every other path-simulable gate is diagonal or a uniform bit flip
        # (X/Y/Z/S/SDG/T/TDG/CZ/I, CPAULI): partner differences unchanged.

    def measure(self, qubit: int, basis: str) -> int:
        """Advance over a measurement; returns the collapse stride (0: none).

        An ``X``-basis measurement overwrites the measured column with the
        sampled outcome, so the qubit stops differing along every live axis
        but no axis is contracted.  A ``Z``-basis measurement contracts the
        innermost non-opaque axis whose partners differ at ``qubit``; every
        other live axis still differing there absorbs the contracted axis's
        difference vector (the surviving partner depends on its branch bit).
        """
        if basis == "X":
            for diff in self.axes:
                if diff is not None:
                    diff.discard(qubit)
            return 0
        chosen = -1
        for index in range(len(self.axes) - 1, -1, -1):
            diff = self.axes[index]
            if diff is not None and qubit in diff:
                chosen = index
                break
        if chosen < 0:
            return 0
        stride = 2 ** (len(self.axes) - 1 - chosen)
        contracted = self.axes.pop(chosen)
        for diff in self.axes:
            if diff is not None and qubit in diff:
                diff.symmetric_difference_update(contracted)
        return stride


def _flush(
    groups: list[TapeGroup], opcode: int | None, rows: list[Sequence[int]]
) -> None:
    if opcode is None or not rows:
        return
    groups.append(
        TapeGroup(opcode=opcode, qubits=np.asarray(rows, dtype=np.int32))
    )


def compile_circuit(circuit: "QuantumCircuit") -> GateTape:
    """Compile ``circuit`` into a :class:`GateTape`, caching it on the circuit.

    The cache is invalidated by :meth:`QuantumCircuit.append` and, as a
    safety net, whenever the instruction count no longer matches the one the
    tape was compiled from.  Replacing an instruction in place without
    changing the count is not detected (see module docstring).

    ``MEASURE`` and ``CPAULI`` instructions are **fusion barriers**: each
    becomes its own single-instruction group (carrying its classical payload
    in :attr:`TapeGroup.params`), and the run being accumulated is flushed on
    both sides.  Fusing across a measurement would be unsound twice over --
    a deferred gate could change the measured qubit's marginal, and a noise
    site deferred past the projection would act on the collapsed state.
    """
    cached = getattr(circuit, "_tape", None)
    if cached is not None and cached.source_length == len(circuit.instructions):
        return cached

    groups: list[TapeGroup] = []
    gates: list[Instruction] = []
    gate_group: list[int] = []
    unsupported: list[str] = []
    measurements: list[tuple[int, str]] = []
    num_clbits = 0
    tracker = _BranchTracker()
    gate_levels: list[int] = []
    collapse_by_group: dict[int, int] = {}

    current_opcode: int | None = None
    current_arity = -1
    current_rows: list[Sequence[int]] = []
    current_qubits: set[int] = set()

    for instr in circuit.instructions:
        if instr.is_barrier:
            continue
        opcode = GATE_OPCODES[instr.gate]
        if not is_path_simulable(instr.gate) and instr.gate not in unsupported:
            unsupported.append(instr.gate)
        if opcode in (OP_MEASURE, OP_CPAULI):
            # Fusion barrier: close the open run, emit a lone group with the
            # classical payload, and start the next run from scratch.
            _flush(groups, current_opcode, current_rows)
            current_opcode = None
            current_arity = -1
            current_rows = []
            current_qubits = set()
            gates.append(instr)
            gate_group.append(len(groups))
            groups.append(
                TapeGroup(
                    opcode=opcode,
                    qubits=np.asarray([instr.qubits], dtype=np.int32),
                    params=instr.params,
                )
            )
            if opcode == OP_MEASURE:
                stride = tracker.measure(instr.qubits[0], instr.basis)
                if stride:
                    collapse_by_group[len(groups) - 1] = stride
                measurements.append((instr.cbit, instr.basis))
                num_clbits = max(num_clbits, instr.cbit + 1)
            else:
                # A CPAULI may reference slots no measurement wrote (they
                # read as 0); the classical register must still cover them.
                num_clbits = max(
                    num_clbits, max(instr.condition_bits, default=-1) + 1
                )
            gate_levels.append(tracker.level)
            continue
        operands = instr.qubits
        fits = (
            opcode == current_opcode
            and len(operands) == current_arity
            and not current_qubits.intersection(operands)
        )
        if not fits:
            _flush(groups, current_opcode, current_rows)
            current_opcode = opcode
            current_arity = len(operands)
            current_rows = []
            current_qubits = set()
        current_rows.append(operands)
        current_qubits.update(operands)
        gates.append(instr)
        gate_group.append(len(groups))
        tracker.apply(instr)
        gate_levels.append(tracker.level)
    _flush(groups, current_opcode, current_rows)

    group_levels = [0] * len(groups)
    for gate_index, level in enumerate(gate_levels):
        # Gates of a group are consecutive, so the last write per group is
        # the level after the group's final gate.
        group_levels[gate_group[gate_index]] = level

    tape = GateTape(
        num_qubits=circuit.num_qubits,
        groups=groups,
        gates=gates,
        gate_group=np.asarray(gate_group, dtype=np.int32),
        unsupported_path_gates=tuple(unsupported),
        source_length=len(circuit.instructions),
        measurements=tuple(measurements),
        num_clbits=num_clbits,
        branch_levels=tuple(group_levels),
        collapse_strides=tuple(
            collapse_by_group.get(index, 0) for index in range(len(groups))
        ),
        max_branch_level=max(gate_levels, default=0),
    )
    circuit._tape = tape
    return tape
