"""ASAP scheduling of circuits into layers of non-overlapping gates.

Circuit depth in this library is always the ASAP (as-soon-as-possible) depth:
each gate is placed in the earliest layer in which none of its operand qubits
is still busy.  Barriers force every listed qubit to synchronise, which is how
the naive (non-pipelined) address-loading schedule of Sec. 3.2.3 is modelled:
the builder inserts a barrier after each address qubit finishes routing, and
the pipelined variant simply omits the barriers, letting ASAP scheduling
overlap consecutive address qubits exactly as the paper describes.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.circuit.instruction import Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import QuantumCircuit


def asap_layers(
    circuit: "QuantumCircuit",
    *,
    respect_barriers: bool = True,
    include_noise: bool = False,
) -> list[list[Instruction]]:
    """Group the circuit's gates into ASAP layers.

    Parameters
    ----------
    circuit:
        Circuit to schedule.
    respect_barriers:
        When True (default) a ``BARRIER`` forces all its qubits to the same
        frontier before later gates are scheduled.  When False barriers are
        ignored entirely.
    include_noise:
        When False (default) instructions tagged ``"noise"`` are skipped, so
        that depth reflects the logical circuit rather than injected errors.

    Returns
    -------
    list of layers, each a list of :class:`Instruction` that act on disjoint
    qubits and can execute simultaneously.
    """
    frontier = [0] * circuit.num_qubits
    layers: list[list[Instruction]] = []

    for instr in circuit.instructions:
        if instr.is_barrier:
            if respect_barriers:
                qubits = instr.qubits if instr.qubits else range(circuit.num_qubits)
                sync = max((frontier[q] for q in qubits), default=0)
                for q in qubits:
                    frontier[q] = sync
            continue
        if not include_noise and instr.is_noise:
            continue
        layer_index = max((frontier[q] for q in instr.qubits), default=0)
        while len(layers) <= layer_index:
            layers.append([])
        layers[layer_index].append(instr)
        for q in instr.qubits:
            frontier[q] = layer_index + 1

    return layers


def circuit_depth(
    circuit: "QuantumCircuit",
    *,
    respect_barriers: bool = True,
    include_noise: bool = False,
) -> int:
    """Number of ASAP layers of ``circuit`` (0 for an empty circuit)."""
    return len(
        asap_layers(
            circuit,
            respect_barriers=respect_barriers,
            include_noise=include_noise,
        )
    )


def layer_widths(circuit: "QuantumCircuit", **kwargs) -> list[int]:
    """Number of gates in each ASAP layer (useful for parallelism analysis)."""
    return [len(layer) for layer in asap_layers(circuit, **kwargs)]


def critical_path_qubits(circuit: "QuantumCircuit") -> set[int]:
    """Qubits that appear in at least one gate of the final (deepest) layer.

    This is a cheap proxy for identifying the critical path; the mapping
    benchmarks use it to report which registers dominate latency after
    routing overhead is added.
    """
    layers = asap_layers(circuit)
    if not layers:
        return set()
    qubits: set[int] = set()
    for instr in layers[-1]:
        qubits.update(instr.qubits)
    return qubits
