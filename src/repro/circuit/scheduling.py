"""ASAP scheduling of circuits into layers of non-overlapping gates.

Circuit depth in this library is always the ASAP (as-soon-as-possible) depth:
each gate is placed in the earliest layer in which none of its operand qubits
is still busy.  Barriers force every listed qubit to synchronise, which is how
the naive (non-pipelined) address-loading schedule of Sec. 3.2.3 is modelled:
the builder inserts a barrier after each address qubit finishes routing, and
the pipelined variant simply omits the barriers, letting ASAP scheduling
overlap consecutive address qubits exactly as the paper describes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuit.instruction import Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import QuantumCircuit


def asap_layers(
    circuit: "QuantumCircuit",
    *,
    respect_barriers: bool = True,
    include_noise: bool = False,
) -> list[list[Instruction]]:
    """Group the circuit's gates into ASAP layers.

    Parameters
    ----------
    circuit:
        Circuit to schedule.
    respect_barriers:
        When True (default) a ``BARRIER`` forces all its qubits to the same
        frontier before later gates are scheduled.  When False barriers are
        ignored entirely.
    include_noise:
        When False (default) instructions tagged ``"noise"`` and ``CPAULI``
        frame corrections are skipped, so that depth reflects the physical
        schedule: injected errors are bookkeeping and Pauli-frame updates are
        software (hardware never executes them as gates).  ``MEASURE``
        instructions are always scheduled -- a mid-circuit measurement
        occupies its qubit for a layer like any gate.

    Returns
    -------
    list of layers, each a list of :class:`Instruction` that act on disjoint
    qubits and can execute simultaneously.
    """
    frontier = [0] * circuit.num_qubits
    layers: list[list[Instruction]] = []

    for instr in circuit.instructions:
        if instr.is_barrier:
            if respect_barriers:
                qubits = instr.qubits if instr.qubits else range(circuit.num_qubits)
                sync = max((frontier[q] for q in qubits), default=0)
                for q in qubits:
                    frontier[q] = sync
            continue
        if not include_noise and (instr.is_noise or instr.is_frame):
            continue
        layer_index = max((frontier[q] for q in instr.qubits), default=0)
        while len(layers) <= layer_index:
            layers.append([])
        layers[layer_index].append(instr)
        for q in instr.qubits:
            frontier[q] = layer_index + 1

    return layers


def circuit_depth(
    circuit: "QuantumCircuit",
    *,
    respect_barriers: bool = True,
    include_noise: bool = False,
) -> int:
    """Number of ASAP layers of ``circuit`` (0 for an empty circuit)."""
    return len(
        asap_layers(
            circuit,
            respect_barriers=respect_barriers,
            include_noise=include_noise,
        )
    )


def layer_widths(circuit: "QuantumCircuit", **kwargs) -> list[int]:
    """Number of gates in each ASAP layer (useful for parallelism analysis)."""
    return [len(layer) for layer in asap_layers(circuit, **kwargs)]


@dataclass(frozen=True)
class ScheduleSlack:
    """Idle time of every qubit under the ASAP schedule (see :func:`idle_slack`).

    Attributes
    ----------
    gate_idle:
        One entry per **barrier-free** instruction of the circuit (the same
        enumeration :func:`repro.circuit.ir.compile_circuit` packs into the
        gate tape): a tuple of ``(qubit, idle_layers)`` pairs giving, for each
        operand of that gate, how many ASAP layers the qubit sat idle since
        its previous gate (or since the circuit started).  Zero-idle operands
        are omitted.  Noise-tagged instructions get an empty entry -- they
        are zero-duration bookkeeping, not scheduled gates -- but still
        consume an index so the enumeration stays aligned with the tape.
    final_idle:
        ``(qubit, idle_layers)`` pairs for the idling between each qubit's
        last gate and the end of the circuit (qubits the circuit never
        touches idle for the full depth).  Zero-idle qubits are omitted.
    depth:
        Total number of ASAP layers (the schedule length all trailing idle
        is measured against).
    """

    gate_idle: tuple[tuple[tuple[int, int], ...], ...]
    final_idle: tuple[tuple[int, int], ...]
    depth: int

    @property
    def total_idle_layers(self) -> int:
        """Sum of idle layers over all qubits (the idle-noise site budget)."""
        per_gate = sum(
            layers for entry in self.gate_idle for _, layers in entry
        )
        return per_gate + sum(layers for _, layers in self.final_idle)


def idle_slack(
    circuit: "QuantumCircuit", *, respect_barriers: bool = True
) -> ScheduleSlack:
    """Per-qubit idle layers under the ASAP schedule, charged gate by gate.

    A qubit is *idle* during every ASAP layer in which it participates in no
    gate.  The slack is reported where a schedule-aware noise model can apply
    it: each gate's entry carries the idle layers its operands accumulated
    since their previous gate, and :attr:`ScheduleSlack.final_idle` carries
    the idling between each qubit's last gate and the end of the circuit.
    The layer walk mirrors :func:`asap_layers` exactly (same barrier
    handling; noise-tagged instructions and ``CPAULI`` frame corrections are
    zero-duration), so ``depth`` equals :func:`circuit_depth`.  Idle time is measured against each qubit's last
    *gate*, not its scheduling frontier: a barrier delays when the next gate
    may start but does not make the waiting qubit any less idle.
    """
    frontier = [0] * circuit.num_qubits
    last_busy = [0] * circuit.num_qubits
    gate_idle: list[tuple[tuple[int, int], ...]] = []
    depth = 0

    for instr in circuit.instructions:
        if instr.is_barrier:
            if respect_barriers:
                qubits = instr.qubits if instr.qubits else range(circuit.num_qubits)
                sync = max((frontier[q] for q in qubits), default=0)
                for q in qubits:
                    frontier[q] = sync
            continue
        if instr.is_noise or instr.is_frame:
            # Zero-duration bookkeeping (injected errors, Pauli-frame
            # updates): keep the index aligned with the tape.
            gate_idle.append(())
            continue
        layer_index = max((frontier[q] for q in instr.qubits), default=0)
        gate_idle.append(
            tuple(
                (q, layer_index - last_busy[q])
                for q in instr.qubits
                if layer_index > last_busy[q]
            )
        )
        for q in instr.qubits:
            frontier[q] = layer_index + 1
            last_busy[q] = layer_index + 1
        depth = max(depth, layer_index + 1)

    final_idle = tuple(
        (q, depth - last_busy[q])
        for q in range(circuit.num_qubits)
        if depth > last_busy[q]
    )
    return ScheduleSlack(
        gate_idle=tuple(gate_idle), final_idle=final_idle, depth=depth
    )


def critical_path_qubits(circuit: "QuantumCircuit") -> set[int]:
    """Qubits that appear in at least one gate of the final (deepest) layer.

    This is a cheap proxy for identifying the critical path; the mapping
    benchmarks use it to report which registers dominate latency after
    routing overhead is added.
    """
    layers = asap_layers(circuit)
    if not layers:
        return set()
    qubits: set[int] = set()
    for instr in layers[-1]:
        qubits.update(instr.qubits)
    return qubits
