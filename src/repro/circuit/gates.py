"""Gate registry for the QRAM circuit model.

Every gate used anywhere in the reproduction is declared here together with
the structural facts the rest of the library relies on:

* how many qubits it acts on (``None`` means variable arity, e.g. ``MCX``);
* whether it is a *classical reversible* gate, i.e. a permutation of
  computational basis states (the property that makes Feynman-path simulation
  efficient, Sec. 6.2 of the paper);
* whether it is a Clifford gate (used for Clifford-depth accounting in
  Table 2);
* whether it is diagonal in the computational basis (such gates only add
  phases along a path and never branch it);
* whether it is self-inverse, and if not, the name of its inverse;
* whether it is unitary at all -- ``MEASURE`` collapses its qubit and has no
  inverse, and ``CPAULI`` (a classically-controlled Pauli-frame correction)
  is only defined together with the measurement record it is conditioned on.

The registry is intentionally small: QRAM circuits only need classical
reversible gates plus Pauli errors, and the statevector reference simulator
additionally understands ``H``, ``S`` and ``T`` so that decomposed circuits
can be validated against it in the test suite.  Mid-circuit measurement
(``MEASURE``) and feedforward Pauli corrections (``CPAULI``) were added for
the executed teleportation links of Sec. 4.3: both stay inside the
Feynman-path-simulable set because a sampled measurement outcome turns the
projection into a per-path bit/phase update (see
:mod:`repro.sim.engine`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class GateSpec:
    """Static description of a gate type.

    Attributes
    ----------
    name:
        Canonical upper-case gate name, e.g. ``"CSWAP"``.
    num_qubits:
        Fixed arity, or ``None`` for variable-arity gates (``MCX``).
    classical_reversible:
        True when the gate maps every computational basis state to a single
        computational basis state with a +1 phase (a permutation matrix).
    clifford:
        True when the gate is in the Clifford group.
    diagonal:
        True when the gate is diagonal in the computational basis.
    self_inverse:
        True when the gate is its own inverse.
    inverse_name:
        Name of the inverse gate (equals ``name`` for self-inverse gates).
    unitary:
        False for instructions that are not unitary operations on the
        quantum state: ``MEASURE`` (projective, irreversible) and ``CPAULI``
        (unitary only relative to a classical measurement record).
        :meth:`repro.circuit.instruction.Instruction.inverse` refuses to
        invert non-unitary instructions.
    """

    name: str
    num_qubits: int | None
    classical_reversible: bool
    clifford: bool
    diagonal: bool
    self_inverse: bool
    inverse_name: str
    unitary: bool = True


def _spec(
    name: str,
    num_qubits: int | None,
    *,
    classical_reversible: bool,
    clifford: bool,
    diagonal: bool,
    self_inverse: bool = True,
    inverse_name: str | None = None,
    unitary: bool = True,
) -> GateSpec:
    return GateSpec(
        name=name,
        num_qubits=num_qubits,
        classical_reversible=classical_reversible,
        clifford=clifford,
        diagonal=diagonal,
        self_inverse=self_inverse,
        inverse_name=inverse_name if inverse_name is not None else name,
        unitary=unitary,
    )


#: Registry of every gate understood by the library, keyed by canonical name.
ALL_GATES: dict[str, GateSpec] = {
    # --- single-qubit Paulis -------------------------------------------------
    "I": _spec("I", 1, classical_reversible=True, clifford=True, diagonal=True),
    "X": _spec("X", 1, classical_reversible=True, clifford=True, diagonal=False),
    "Y": _spec("Y", 1, classical_reversible=False, clifford=True, diagonal=False),
    "Z": _spec("Z", 1, classical_reversible=False, clifford=True, diagonal=True),
    # --- other single-qubit gates -------------------------------------------
    "H": _spec("H", 1, classical_reversible=False, clifford=True, diagonal=False),
    "S": _spec(
        "S",
        1,
        classical_reversible=False,
        clifford=True,
        diagonal=True,
        self_inverse=False,
        inverse_name="SDG",
    ),
    "SDG": _spec(
        "SDG",
        1,
        classical_reversible=False,
        clifford=True,
        diagonal=True,
        self_inverse=False,
        inverse_name="S",
    ),
    "T": _spec(
        "T",
        1,
        classical_reversible=False,
        clifford=False,
        diagonal=True,
        self_inverse=False,
        inverse_name="TDG",
    ),
    "TDG": _spec(
        "TDG",
        1,
        classical_reversible=False,
        clifford=False,
        diagonal=True,
        self_inverse=False,
        inverse_name="T",
    ),
    # --- two-qubit gates ------------------------------------------------------
    "CX": _spec("CX", 2, classical_reversible=True, clifford=True, diagonal=False),
    "CZ": _spec("CZ", 2, classical_reversible=False, clifford=True, diagonal=True),
    "SWAP": _spec("SWAP", 2, classical_reversible=True, clifford=True, diagonal=False),
    # --- three-qubit gates ----------------------------------------------------
    "CCX": _spec("CCX", 3, classical_reversible=True, clifford=False, diagonal=False),
    "CSWAP": _spec(
        "CSWAP", 3, classical_reversible=True, clifford=False, diagonal=False
    ),
    # --- variable-arity gates -------------------------------------------------
    # MCX(controls..., target); the number of controls is len(qubits) - 1.
    "MCX": _spec("MCX", None, classical_reversible=True, clifford=False, diagonal=False),
    # --- measurement and feedforward -----------------------------------------
    # MEASURE(q) projects one qubit in the Z or X basis (the basis and the
    # classical result slot travel in Instruction.params) and records the
    # outcome; CPAULI(q) applies a Pauli correction conditioned on the XOR of
    # recorded outcomes -- the Pauli-frame feedforward of the executed
    # teleportation links.  Neither is unitary in the ordinary sense, so both
    # refuse inversion; CPAULI is marked self-inverse because replaying it
    # under the same classical record undoes it.
    "MEASURE": _spec(
        "MEASURE",
        1,
        classical_reversible=False,
        clifford=True,
        diagonal=False,
        self_inverse=False,
        unitary=False,
    ),
    "CPAULI": _spec(
        "CPAULI",
        1,
        classical_reversible=False,
        clifford=True,
        diagonal=False,
        self_inverse=True,
        unitary=False,
    ),
    # --- pseudo instructions --------------------------------------------------
    # BARRIER synchronises the listed qubits (all qubits when empty); it is
    # used to model the *non*-pipelined address loading schedule of Sec 3.2.3.
    "BARRIER": _spec(
        "BARRIER", None, classical_reversible=True, clifford=True, diagonal=True
    ),
}

#: Gates that permute computational basis states (Feynman-path friendly).
REVERSIBLE_CLASSICAL_GATES: frozenset[str] = frozenset(
    name for name, spec in ALL_GATES.items() if spec.classical_reversible
)

#: Gates in the Clifford group.
CLIFFORD_GATES: frozenset[str] = frozenset(
    name for name, spec in ALL_GATES.items() if spec.clifford
)

#: Gates the Feynman-path simulator can execute.  In addition to the
#: permutation gates it supports the diagonal gates (``Z``, ``CZ``, ``S``,
#: ``T`` and their inverses) and ``Y`` because these only multiply a path's
#: amplitude by a phase / flip one bit, never branching the path.  ``MEASURE``
#: and ``CPAULI`` qualify too: once the measurement outcome is sampled, the
#: projection is a per-path bit/phase update (X basis) or an amplitude mask
#: (Z basis), and the frame correction is an outcome-conditioned Pauli.
#: ``H`` is the sole *branching* member of the set: each application doubles
#: the path count (up to the budget of
#: :func:`repro.circuit.ir.get_max_branches`), and later ``Z``-basis
#: measurements collapse branches again -- see the "Path branching" notes in
#: :mod:`repro.circuit.ir`.
PATH_SIMULABLE_GATES: frozenset[str] = REVERSIBLE_CLASSICAL_GATES | frozenset(
    {"Y", "Z", "CZ", "S", "SDG", "T", "TDG", "H", "MEASURE", "CPAULI"}
)

#: Members of :data:`PATH_SIMULABLE_GATES` that branch the path set.
BRANCHING_GATES: frozenset[str] = frozenset({"H"})

#: Instructions that are not unitary operations on the quantum state.
NON_UNITARY_GATES: frozenset[str] = frozenset(
    name for name, spec in ALL_GATES.items() if not spec.unitary
)


def gate_spec(name: str) -> GateSpec:
    """Return the :class:`GateSpec` for ``name`` (case-insensitive).

    Raises
    ------
    KeyError
        If the gate name is not registered.
    """
    key = name.upper()
    if key not in ALL_GATES:
        raise KeyError(f"unknown gate {name!r}")
    return ALL_GATES[key]


def is_clifford(name: str) -> bool:
    """True when ``name`` is a Clifford gate."""
    return gate_spec(name).clifford


def is_classical_reversible(name: str) -> bool:
    """True when ``name`` is a permutation of computational basis states."""
    return gate_spec(name).classical_reversible


def is_path_simulable(name: str) -> bool:
    """True when the Feynman-path simulator can execute ``name``."""
    return name.upper() in PATH_SIMULABLE_GATES


def is_unitary(name: str) -> bool:
    """True when ``name`` is a unitary operation on the quantum state."""
    return gate_spec(name).unitary


def inverse_gate_name(name: str) -> str:
    """Name of the inverse of ``name``.

    Raises
    ------
    ValueError
        For irreversible instructions (``MEASURE`` has no inverse).
    """
    spec = gate_spec(name)
    if not spec.unitary and not spec.self_inverse:
        raise ValueError(f"{spec.name} is irreversible and has no inverse")
    return spec.inverse_name


def validate_arity(name: str, num_qubits: int) -> None:
    """Raise ``ValueError`` if ``num_qubits`` operands are invalid for ``name``.

    Variable-arity gates (``MCX`` needs at least a control and a target,
    ``BARRIER`` accepts any number including zero) are validated by their own
    rules.
    """
    spec = gate_spec(name)
    if spec.name == "MCX":
        if num_qubits < 2:
            raise ValueError("MCX needs at least one control and one target")
        return
    if spec.name == "BARRIER":
        return
    if spec.num_qubits is not None and num_qubits != spec.num_qubits:
        raise ValueError(
            f"gate {spec.name} acts on {spec.num_qubits} qubits, got {num_qubits}"
        )
