"""Clifford+T decomposition and resource accounting.

Table 2 of the paper compares architectures by qubit count, circuit depth,
T count, T depth and Clifford depth.  This module provides:

* a per-gate cost model (:func:`gate_cost`) based on the standard
  decompositions the paper cites in Sec. 2.2.1:

  - ``CCX`` (Toffoli): T count 7, T depth 3, total depth 11 (Amy et al.);
  - ``CSWAP`` (Fredkin): a Toffoli conjugated by two CX gates -- circuit depth
    12, T depth 3, T count 7, no ancillae (the figure quoted by the paper);
  - ``MCX`` with ``c >= 3`` controls: a V-chain of ``2(c - 2) + 1`` Toffolis
    using ``c - 2`` clean ancillae;

* a whole-circuit aggregator (:func:`circuit_cost`) returning a
  :class:`CliffordTCost`;

* explicit gate-level decompositions (:func:`decompose_ccx`,
  :func:`decompose_cswap`, :func:`decompose_mcx`) used by the test suite to
  verify, against the statevector simulator, that the decomposed circuits are
  unitarily equivalent to the primitives they replace.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuit.instruction import Instruction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import QuantumCircuit


@dataclass(frozen=True)
class CliffordTCost:
    """Fault-tolerant resource cost of a gate or circuit.

    ``t_depth`` and ``clifford_depth`` are additive upper bounds obtained by
    summing per-gate costs along the ASAP layering; they match the asymptotic
    entries in Table 2 (which are stated in Big-O).
    """

    t_count: int = 0
    t_depth: int = 0
    clifford_count: int = 0
    clifford_depth: int = 0
    total_depth: int = 0
    ancillae: int = 0

    def __add__(self, other: "CliffordTCost") -> "CliffordTCost":
        return CliffordTCost(
            t_count=self.t_count + other.t_count,
            t_depth=self.t_depth + other.t_depth,
            clifford_count=self.clifford_count + other.clifford_count,
            clifford_depth=self.clifford_depth + other.clifford_depth,
            total_depth=self.total_depth + other.total_depth,
            ancillae=max(self.ancillae, other.ancillae),
        )

    def scaled(self, factor: int) -> "CliffordTCost":
        """Cost of ``factor`` sequential repetitions."""
        return CliffordTCost(
            t_count=self.t_count * factor,
            t_depth=self.t_depth * factor,
            clifford_count=self.clifford_count * factor,
            clifford_depth=self.clifford_depth * factor,
            total_depth=self.total_depth * factor,
            ancillae=self.ancillae,
        )


#: Costs of the fixed-arity gates.  Single-qubit Cliffords and CX/CZ/SWAP are
#: native Cliffords of depth 1 (SWAP counts as 3 CX but depth is dominated by
#: the abstraction level used in Table 2, so it is charged depth 3).
_FIXED_GATE_COSTS: dict[str, CliffordTCost] = {
    "I": CliffordTCost(),
    "X": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "Y": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "Z": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "H": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "S": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "SDG": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "T": CliffordTCost(t_count=1, t_depth=1, total_depth=1),
    "TDG": CliffordTCost(t_count=1, t_depth=1, total_depth=1),
    "CX": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "CZ": CliffordTCost(clifford_count=1, clifford_depth=1, total_depth=1),
    "SWAP": CliffordTCost(clifford_count=3, clifford_depth=3, total_depth=3),
    # Toffoli: Amy-Maslov-Mosca T-depth-3 decomposition.
    "CCX": CliffordTCost(
        t_count=7, t_depth=3, clifford_count=9, clifford_depth=8, total_depth=11
    ),
    # Fredkin = CX . Toffoli . CX : depth 12, T depth 3 (paper Sec. 2.2.1).
    "CSWAP": CliffordTCost(
        t_count=7, t_depth=3, clifford_count=11, clifford_depth=9, total_depth=12
    ),
    "BARRIER": CliffordTCost(),
}


def mcx_cost(num_controls: int) -> CliffordTCost:
    """Cost of an ``MCX`` with ``num_controls`` controls.

    * 0 controls: an ``X`` gate.
    * 1 control: a ``CX``.
    * 2 controls: a Toffoli.
    * ``c >= 3`` controls: the clean-ancilla V-chain construction using
      ``c - 2`` ancillae and ``2(c - 2) + 1`` Toffolis (compute chain, central
      Toffoli, uncompute chain); T depth ``~ 2c`` because the chain is
      sequential.
    """
    if num_controls < 0:
        raise ValueError("number of controls must be non-negative")
    if num_controls == 0:
        return _FIXED_GATE_COSTS["X"]
    if num_controls == 1:
        return _FIXED_GATE_COSTS["CX"]
    if num_controls == 2:
        return _FIXED_GATE_COSTS["CCX"]
    num_toffolis = 2 * (num_controls - 2) + 1
    toffoli = _FIXED_GATE_COSTS["CCX"]
    return CliffordTCost(
        t_count=toffoli.t_count * num_toffolis,
        t_depth=toffoli.t_depth * num_toffolis,
        clifford_count=toffoli.clifford_count * num_toffolis,
        clifford_depth=toffoli.clifford_depth * num_toffolis,
        total_depth=toffoli.total_depth * num_toffolis,
        ancillae=num_controls - 2,
    )


def gate_cost(instr: Instruction) -> CliffordTCost:
    """Clifford+T cost of a single instruction."""
    if instr.gate == "MCX":
        return mcx_cost(len(instr.qubits) - 1)
    return _FIXED_GATE_COSTS[instr.gate]


def circuit_cost(circuit: "QuantumCircuit", *, include_noise: bool = False) -> CliffordTCost:
    """Aggregate Clifford+T cost of a circuit.

    Counts (``t_count``, ``clifford_count``) are exact sums over gates.  The
    depth figures are computed by charging each ASAP layer the maximum
    per-gate depth inside it, which matches how Table 2's Big-O entries are
    derived (layers of identical router gates execute in parallel).
    """
    from repro.circuit.scheduling import asap_layers

    t_count = 0
    clifford_count = 0
    ancillae = 0
    for instr in circuit.gates:
        if not include_noise and instr.is_noise:
            continue
        cost = gate_cost(instr)
        t_count += cost.t_count
        clifford_count += cost.clifford_count
        ancillae = max(ancillae, cost.ancillae)

    t_depth = 0
    clifford_depth = 0
    total_depth = 0
    for layer in asap_layers(circuit, include_noise=include_noise):
        layer_costs = [gate_cost(instr) for instr in layer]
        if not layer_costs:
            continue
        t_depth += max(c.t_depth for c in layer_costs)
        clifford_depth += max(c.clifford_depth for c in layer_costs)
        total_depth += max(c.total_depth for c in layer_costs)

    return CliffordTCost(
        t_count=t_count,
        t_depth=t_depth,
        clifford_count=clifford_count,
        clifford_depth=clifford_depth,
        total_depth=total_depth,
        ancillae=ancillae,
    )


# --------------------------------------------------------------------------
# Explicit decompositions (validated against the statevector simulator).
# --------------------------------------------------------------------------


def decompose_ccx(control_a: int, control_b: int, target: int) -> list[Instruction]:
    """Standard 7-T Toffoli decomposition over {H, T, TDG, CX}."""
    a, b, c = control_a, control_b, target
    ops = [
        ("H", (c,)),
        ("CX", (b, c)),
        ("TDG", (c,)),
        ("CX", (a, c)),
        ("T", (c,)),
        ("CX", (b, c)),
        ("TDG", (c,)),
        ("CX", (a, c)),
        ("T", (b,)),
        ("T", (c,)),
        ("H", (c,)),
        ("CX", (a, b)),
        ("T", (a,)),
        ("TDG", (b,)),
        ("CX", (a, b)),
    ]
    return [Instruction(gate=name, qubits=qubits) for name, qubits in ops]


def decompose_cswap(control: int, a: int, b: int) -> list[Instruction]:
    """Fredkin as ``CX(b,a) . CCX(control,a,b) . CX(b,a)`` with the CCX expanded."""
    instrs = [Instruction(gate="CX", qubits=(b, a))]
    instrs.extend(decompose_ccx(control, a, b))
    instrs.append(Instruction(gate="CX", qubits=(b, a)))
    return instrs


def decompose_mcx(
    controls: tuple[int, ...] | list[int],
    target: int,
    ancillae: tuple[int, ...] | list[int],
) -> list[Instruction]:
    """V-chain MCX decomposition into Toffolis using clean ancillae.

    Requires ``len(ancillae) >= len(controls) - 2`` clean (|0>) ancilla qubits;
    the ancillae are returned to |0> by the uncompute chain.  For 2 or fewer
    controls the primitive gate is returned directly.
    """
    controls = tuple(controls)
    ancillae = tuple(ancillae)
    c = len(controls)
    if c == 0:
        return [Instruction(gate="X", qubits=(target,))]
    if c == 1:
        return [Instruction(gate="CX", qubits=(controls[0], target))]
    if c == 2:
        return [Instruction(gate="CCX", qubits=(controls[0], controls[1], target))]
    needed = c - 2
    if len(ancillae) < needed:
        raise ValueError(f"MCX with {c} controls needs {needed} ancillae")

    instrs: list[Instruction] = []
    # Compute chain: anc[i] accumulates the AND of the first i+2 controls.
    instrs.append(
        Instruction(gate="CCX", qubits=(controls[0], controls[1], ancillae[0]))
    )
    for i in range(1, needed):
        instrs.append(
            Instruction(gate="CCX", qubits=(controls[i + 1], ancillae[i - 1], ancillae[i]))
        )
    # Central Toffoli onto the target.
    instrs.append(
        Instruction(gate="CCX", qubits=(controls[-1], ancillae[needed - 1], target))
    )
    # Uncompute chain (reverse order).
    for i in range(needed - 1, 0, -1):
        instrs.append(
            Instruction(gate="CCX", qubits=(controls[i + 1], ancillae[i - 1], ancillae[i]))
        )
    instrs.append(
        Instruction(gate="CCX", qubits=(controls[0], controls[1], ancillae[0]))
    )
    return instrs
