"""Quantum circuit substrate used throughout the QRAM reproduction.

This package provides a small, self-contained circuit model tailored to the
needs of the paper "Systems Architecture for Quantum Random Access Memory"
(MICRO 2023).  QRAM circuits are built almost exclusively from classical
reversible gates (``X``, ``CX``, ``CCX``, ``MCX``, ``SWAP``, ``CSWAP``) plus
Pauli error insertions, so the model is intentionally lean:

* :class:`~repro.circuit.instruction.Instruction` -- a single gate application
  (name, qubits, optional tags used for accounting such as ``"classical"`` for
  classically-controlled gates or ``"noise"`` for injected errors).
* :class:`~repro.circuit.circuit.QuantumCircuit` -- an ordered instruction
  list over a fixed set of qubits, with convenience builders for every gate
  the paper uses, ASAP-depth scheduling, inversion, and composition.
* :class:`~repro.circuit.registers.QubitAllocator` /
  :class:`~repro.circuit.registers.QubitRegister` -- named, contiguous groups
  of qubit indices so QRAM builders can talk about "the bus qubit" or "the
  level-2 routers" instead of raw integers.
* :mod:`~repro.circuit.decompose` -- Clifford+T resource accounting (T count,
  T depth, Clifford depth) using the standard decompositions cited by the
  paper (Sec. 2.2.1), plus explicit gate-level decompositions of ``CCX`` and
  ``CSWAP`` used to cross-validate the accounting in tests.
* :mod:`~repro.circuit.scheduling` -- ASAP layering used both for logical
  depth and for the pipelining analysis of Sec. 3.2.3.
* :mod:`~repro.circuit.ir` -- the compiled :class:`~repro.circuit.ir.GateTape`
  intermediate representation (packed opcodes, fused gate runs, noise-site
  table) executed by the engines in :mod:`repro.sim.engine`.
"""

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import (
    CliffordTCost,
    circuit_cost,
    decompose_ccx,
    decompose_cswap,
    decompose_mcx,
    gate_cost,
)
from repro.circuit.gates import (
    ALL_GATES,
    CLIFFORD_GATES,
    GateSpec,
    REVERSIBLE_CLASSICAL_GATES,
    gate_spec,
    is_classical_reversible,
    is_clifford,
)
from repro.circuit.instruction import Instruction
from repro.circuit.ir import GateTape, NoiseSiteTable, TapeGroup, compile_circuit
from repro.circuit.qasm import to_qasm, write_qasm
from repro.circuit.registers import QubitAllocator, QubitRegister
from repro.circuit.scheduling import (
    ScheduleSlack,
    asap_layers,
    circuit_depth,
    idle_slack,
)

__all__ = [
    "ALL_GATES",
    "CLIFFORD_GATES",
    "CliffordTCost",
    "GateSpec",
    "GateTape",
    "Instruction",
    "NoiseSiteTable",
    "QuantumCircuit",
    "QubitAllocator",
    "QubitRegister",
    "REVERSIBLE_CLASSICAL_GATES",
    "ScheduleSlack",
    "TapeGroup",
    "asap_layers",
    "circuit_cost",
    "circuit_depth",
    "compile_circuit",
    "decompose_ccx",
    "decompose_cswap",
    "decompose_mcx",
    "gate_cost",
    "gate_spec",
    "idle_slack",
    "is_classical_reversible",
    "is_clifford",
    "to_qasm",
    "write_qasm",
]
