"""The one-bit teleportation hop gadget shared by every link emitter.

Measurement-based links are built from a single primitive (Zhou-Leung-Chuang
one-bit teleportation): move a payload from ``source`` onto a fresh ``|0>``
``target`` with ``CX source->target``, an X-basis measurement of the source,
a ``Z`` frame correction on the target and an ``X`` frame resetting the
source.  Both link emitters -- the H-tree expansion
(:mod:`repro.mapping.teleport`) and the teleport-aware router
(:mod:`repro.hardware.teleport_router`) -- emit hops through this module, so
the gadget's convention (gate order, basis, frame targets) is defined
exactly once.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit

#: Tag carried by every entanglement-link operation a hop emits.
LINK_TAG = "teleport"


def emit_hop(circuit: QuantumCircuit, source: int, target: int) -> int:
    """Append one teleportation hop ``source -> target``; return the cbit.

    ``target`` must be in ``|0>`` (a fresh routing vertex, one reset by a
    previous hop's frame, or a destination a ``move:<k>`` tag declares
    empty).  After the hop the payload sits on ``target`` and ``source`` is
    frame-reset to ``|0>``.  All four instructions are tagged
    :data:`LINK_TAG`; the hop CX is the link's only noise-bearing gate
    (measurements and frames are free, see :mod:`repro.sim.noise`).
    """
    circuit.cx(source, target, tags=(LINK_TAG,))
    cbit = circuit.measure(source, basis="X", tags=(LINK_TAG,))
    circuit.cpauli("Z", target, [cbit], tags=(LINK_TAG,))
    circuit.cpauli("X", source, [cbit], tags=(LINK_TAG,))
    return cbit


def emit_bell_pair(circuit: QuantumCircuit, a: int, b: int) -> None:
    """Append a Bell-pair preparation ``(|00> + |11>)/sqrt(2)`` on ``(a, b)``.

    Both wires must be in ``|0>``.  The ``H`` branches the path set (see
    :mod:`repro.circuit.ir`), which is what lets the fused teleport links
    run all their pair preparations in one constant-depth layer.
    """
    circuit.h(a, tags=(LINK_TAG,))
    circuit.cx(a, b, tags=(LINK_TAG,))


def emit_bsm_measurements(
    circuit: QuantumCircuit, a: int, b: int
) -> tuple[int, int]:
    """Append the measurement half of a Bell-state measurement on ``(a, b)``.

    The BSM's ``CX a->b`` must already have been emitted (the fused links
    batch all BSM CXs into one layer); this records the X-basis outcome of
    ``a`` and the Z-basis outcome of ``b`` and returns their cbits
    ``(x, z)``.  Conditioned on ``(x, z)`` the teleported payload carries
    the Pauli ``X**z Z**x``, undone exactly by a ``CPAULI X`` on ``z``
    followed by a ``CPAULI Z`` on ``x``.
    """
    x = circuit.measure(a, basis="X", tags=(LINK_TAG,))
    z = circuit.measure(b, basis="Z", tags=(LINK_TAG,))
    return x, z


def emit_disentangle(circuit: QuantumCircuit, vertex: int, control: int) -> int:
    """Uncompute a CX-ladder copy on ``vertex``; return the cbit.

    The vertex holds a coherent copy of ``control``: an X measurement turns
    the copy into a phase ``(-1)**(control * m)``, corrected by a ``Z``
    frame on the original control, and an ``X`` frame resets the vertex for
    reuse.
    """
    cbit = circuit.measure(vertex, basis="X", tags=(LINK_TAG,))
    circuit.cpauli("Z", control, [cbit], tags=(LINK_TAG,))
    circuit.cpauli("X", vertex, [cbit], tags=(LINK_TAG,))
    return cbit
