"""OpenQASM 2.0 export for the circuits built by this library.

The reproduction is self-contained, but downstream users frequently want to
inspect or transpile the generated QRAM circuits with external tooling
(Qiskit, tket, staq, ...).  This module serialises any
:class:`~repro.circuit.circuit.QuantumCircuit` into OpenQASM 2.0:

* the reversible-classical gates map to the standard library (``x``, ``cx``,
  ``ccx``, ``swap``, ``cswap``);
* ``MCX`` gates with more than two controls are exported via the V-chain
  decomposition of :func:`repro.circuit.decompose.decompose_mcx`, with the
  required clean ancillae appended as an extra register;
* barriers are preserved, and noise-tagged Pauli insertions can be included
  or skipped.

The exporter is intentionally one-way: parsing QASM back is out of scope.
"""

from __future__ import annotations

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import decompose_mcx
from repro.circuit.instruction import Instruction

#: Gate-name translation for instructions that map 1:1 onto qelib1.inc.
_DIRECT_GATES = {
    "I": "id",
    "X": "x",
    "Y": "y",
    "Z": "z",
    "H": "h",
    "S": "s",
    "SDG": "sdg",
    "T": "t",
    "TDG": "tdg",
    "CX": "cx",
    "CZ": "cz",
    "SWAP": "swap",
    "CCX": "ccx",
    "CSWAP": "cswap",
}


def _max_extra_ancillae(circuit: QuantumCircuit) -> int:
    """Clean ancillae needed to export every MCX in the circuit."""
    needed = 0
    for instr in circuit.gates:
        if instr.gate == "MCX":
            controls = len(instr.qubits) - 1
            needed = max(needed, max(controls - 2, 0))
    return needed


def _format_direct(instr: Instruction, register: str) -> str:
    name = _DIRECT_GATES[instr.gate]
    operands = ", ".join(f"{register}[{qubit}]" for qubit in instr.qubits)
    return f"{name} {operands};"


def to_qasm(
    circuit: QuantumCircuit,
    *,
    include_noise: bool = False,
    register_name: str = "q",
) -> str:
    """Serialise ``circuit`` to an OpenQASM 2.0 program string.

    Parameters
    ----------
    circuit:
        The circuit to export.
    include_noise:
        When False (default) Pauli instructions tagged ``"noise"`` are dropped
        so the export reflects the logical circuit.
    register_name:
        Name of the main quantum register.  MCX ancillae, if any are needed,
        are placed in a second register called ``anc``.
    """
    ancillae_needed = _max_extra_ancillae(circuit)
    lines = [
        "OPENQASM 2.0;",
        'include "qelib1.inc";',
        f"qreg {register_name}[{circuit.num_qubits}];",
    ]
    if ancillae_needed:
        lines.append(f"qreg anc[{ancillae_needed}];")
    if circuit.num_clbits:
        lines.append(f"creg c[{circuit.num_clbits}];")

    comments = {
        name: f"// register {name}: qubits {list(reg.qubits)}"
        for name, reg in circuit.registers.items()
        if len(reg) > 0
    }
    lines.extend(comments.values())

    for instr in circuit.instructions:
        if instr.is_noise and not include_noise:
            continue
        if instr.is_barrier:
            if instr.qubits:
                operands = ", ".join(f"{register_name}[{q}]" for q in instr.qubits)
                lines.append(f"barrier {operands};")
            else:
                lines.append(f"barrier {register_name};")
            continue
        if instr.gate == "MEASURE":
            # X-basis measurements rotate into the computational basis first.
            if instr.basis == "X":
                lines.append(f"h {register_name}[{instr.qubits[0]}];")
            lines.append(
                f"measure {register_name}[{instr.qubits[0]}] -> c[{instr.cbit}];"
            )
            continue
        if instr.gate == "CPAULI":
            # OpenQASM 2.0 `if` only tests whole-register equality, so the
            # XOR-conditioned frame correction is exported as an annotation
            # (downstream tools track Pauli frames in software anyway).
            bits = " ^ ".join(f"c[{b}]" for b in instr.condition_bits)
            lines.append(
                f"// pauli-frame: {instr.frame_pauli.lower()} "
                f"{register_name}[{instr.qubits[0]}] if {bits};"
            )
            continue
        if instr.gate in _DIRECT_GATES:
            lines.append(_format_direct(instr, register_name))
            continue
        if instr.gate == "MCX":
            controls, target = instr.controls_and_target()
            if len(controls) <= 2:
                lines.append(
                    _format_direct(
                        Instruction(gate="CCX" if len(controls) == 2 else "CX",
                                    qubits=instr.qubits),
                        register_name,
                    )
                )
                continue
            # Export through the V-chain; the ancilla register supplies clean
            # workspace, referenced with a sentinel offset so the decomposition
            # (which works on flat indices) can be re-targeted per operand.
            sentinel = circuit.num_qubits
            ancilla_indices = tuple(range(sentinel, sentinel + len(controls) - 2))
            for sub in decompose_mcx(controls, target, ancilla_indices):
                operands = ", ".join(
                    f"anc[{qubit - sentinel}]" if qubit >= sentinel else f"{register_name}[{qubit}]"
                    for qubit in sub.qubits
                )
                lines.append(f"ccx {operands};")
            continue
        raise ValueError(f"gate {instr.gate} has no OpenQASM export")

    return "\n".join(lines) + "\n"


def write_qasm(circuit: QuantumCircuit, path: str, **kwargs) -> None:
    """Write :func:`to_qasm` output to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_qasm(circuit, **kwargs))
