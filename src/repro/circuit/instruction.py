"""A single gate application inside a :class:`~repro.circuit.circuit.QuantumCircuit`."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gates import gate_spec, inverse_gate_name, validate_arity


@dataclass(frozen=True)
class Instruction:
    """One gate applied to a concrete tuple of qubits.

    Attributes
    ----------
    gate:
        Canonical gate name (see :mod:`repro.circuit.gates`).
    qubits:
        Qubit indices the gate acts on.  For ``MCX`` the last index is the
        target and all preceding ones are controls.  For ``CSWAP`` the first
        index is the control.
    tags:
        Free-form labels used for accounting.  The QRAM builders use
        ``"classical"`` for classically-controlled gates (Table 1 counts
        these), ``"noise"`` for Pauli errors injected by a noise model and
        ``"routing"`` for communication operations added by the mapper.
    """

    gate: str
    qubits: tuple[int, ...]
    tags: frozenset[str] = field(default_factory=frozenset)

    def __post_init__(self) -> None:
        spec = gate_spec(self.gate)
        object.__setattr__(self, "gate", spec.name)
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "tags", frozenset(self.tags))
        validate_arity(spec.name, len(self.qubits))
        if spec.name != "BARRIER" and len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubit operands in {spec.name}: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in {self.qubits}")

    @property
    def num_qubits(self) -> int:
        """Number of qubit operands."""
        return len(self.qubits)

    @property
    def is_barrier(self) -> bool:
        """True for synchronisation barriers (they are not physical gates)."""
        return self.gate == "BARRIER"

    @property
    def is_noise(self) -> bool:
        """True for Pauli errors injected by a noise model."""
        return "noise" in self.tags

    @property
    def is_classically_controlled(self) -> bool:
        """True for gates whose application was conditioned on classical data."""
        return "classical" in self.tags

    def controls_and_target(self) -> tuple[tuple[int, ...], int]:
        """Split an ``MCX``/``CX``/``CCX`` instruction into (controls, target)."""
        if self.gate not in ("CX", "CCX", "MCX"):
            raise ValueError(f"{self.gate} has no (controls, target) structure")
        return self.qubits[:-1], self.qubits[-1]

    def inverse(self) -> "Instruction":
        """Return the instruction implementing the inverse gate."""
        return Instruction(
            gate=inverse_gate_name(self.gate), qubits=self.qubits, tags=self.tags
        )

    def remapped(self, mapping: dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices translated through ``mapping``."""
        return Instruction(
            gate=self.gate,
            qubits=tuple(mapping[q] for q in self.qubits),
            tags=self.tags,
        )

    def with_tags(self, *extra: str) -> "Instruction":
        """Return a copy with ``extra`` labels added to :attr:`tags`."""
        return Instruction(
            gate=self.gate, qubits=self.qubits, tags=self.tags | frozenset(extra)
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        qubits = ", ".join(str(q) for q in self.qubits)
        suffix = f"  # {','.join(sorted(self.tags))}" if self.tags else ""
        return f"{self.gate}({qubits}){suffix}"
