"""A single gate application inside a :class:`~repro.circuit.circuit.QuantumCircuit`."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.gates import gate_spec, inverse_gate_name, validate_arity

#: Pauli labels a ``CPAULI`` frame correction may apply.
FRAME_PAULIS = ("X", "Y", "Z")


def _validate_params(gate: str, params: tuple) -> None:
    """Check the ``params`` payload of measurement/feedforward instructions.

    ``MEASURE`` carries ``(cbit, basis)`` -- the classical result slot the
    outcome is recorded into and the measurement basis (``"Z"`` or ``"X"``).
    ``CPAULI`` carries ``(pauli, cbit, cbit, ...)`` -- the Pauli applied when
    the XOR of the listed classical bits is 1.  Every other gate must carry
    no params.
    """
    if gate == "MEASURE":
        if len(params) != 2:
            raise ValueError("MEASURE params must be (cbit, basis)")
        cbit, basis = params
        if not isinstance(cbit, int) or cbit < 0:
            raise ValueError(f"MEASURE cbit must be a non-negative int, got {cbit!r}")
        if basis not in ("Z", "X"):
            raise ValueError(f"MEASURE basis must be 'Z' or 'X', got {basis!r}")
    elif gate == "CPAULI":
        if len(params) < 2:
            raise ValueError("CPAULI params must be (pauli, cbit, ...)")
        pauli, *cbits = params
        if pauli not in FRAME_PAULIS:
            raise ValueError(f"CPAULI pauli must be one of {FRAME_PAULIS}, got {pauli!r}")
        for cbit in cbits:
            if not isinstance(cbit, int) or cbit < 0:
                raise ValueError(
                    f"CPAULI condition bits must be non-negative ints, got {cbit!r}"
                )
        if len(set(cbits)) != len(cbits):
            raise ValueError(f"duplicate CPAULI condition bits: {cbits}")
    elif params:
        raise ValueError(f"gate {gate} takes no params, got {params!r}")


@dataclass(frozen=True)
class Instruction:
    """One gate applied to a concrete tuple of qubits.

    Attributes
    ----------
    gate:
        Canonical gate name (see :mod:`repro.circuit.gates`).
    qubits:
        Qubit indices the gate acts on.  For ``MCX`` the last index is the
        target and all preceding ones are controls.  For ``CSWAP`` the first
        index is the control.
    tags:
        Free-form labels used for accounting.  The QRAM builders use
        ``"classical"`` for classically-controlled gates (Table 1 counts
        these), ``"noise"`` for Pauli errors injected by a noise model,
        ``"routing"`` for communication operations added by the mapper and
        ``"teleport"`` for the entanglement-link operations of an executed
        teleportation chain.
    params:
        Classical payload of measurement/feedforward instructions (empty for
        every ordinary gate).  ``MEASURE``: ``(cbit, basis)`` with ``basis``
        in ``("Z", "X")``.  ``CPAULI``: ``(pauli, cbit, ...)`` -- apply
        ``pauli`` when the XOR of the recorded classical bits is 1.
    """

    gate: str
    qubits: tuple[int, ...]
    tags: frozenset[str] = field(default_factory=frozenset)
    params: tuple = ()

    def __post_init__(self) -> None:
        spec = gate_spec(self.gate)
        object.__setattr__(self, "gate", spec.name)
        object.__setattr__(self, "qubits", tuple(int(q) for q in self.qubits))
        object.__setattr__(self, "tags", frozenset(self.tags))
        object.__setattr__(self, "params", tuple(self.params))
        validate_arity(spec.name, len(self.qubits))
        _validate_params(spec.name, self.params)
        if spec.name != "BARRIER" and len(set(self.qubits)) != len(self.qubits):
            raise ValueError(f"duplicate qubit operands in {spec.name}: {self.qubits}")
        if any(q < 0 for q in self.qubits):
            raise ValueError(f"negative qubit index in {self.qubits}")

    @property
    def num_qubits(self) -> int:
        """Number of qubit operands."""
        return len(self.qubits)

    @property
    def is_barrier(self) -> bool:
        """True for synchronisation barriers (they are not physical gates)."""
        return self.gate == "BARRIER"

    @property
    def is_noise(self) -> bool:
        """True for Pauli errors injected by a noise model."""
        return "noise" in self.tags

    @property
    def is_classically_controlled(self) -> bool:
        """True for gates whose application was conditioned on classical data."""
        return "classical" in self.tags

    @property
    def is_measurement(self) -> bool:
        """True for mid-circuit ``MEASURE`` instructions."""
        return self.gate == "MEASURE"

    @property
    def is_frame(self) -> bool:
        """True for ``CPAULI`` Pauli-frame corrections.

        Frame corrections are software: hardware tracks them in the Pauli
        frame instead of applying a physical gate, so noise models and the
        depth scheduler treat them as zero-cost bookkeeping.
        """
        return self.gate == "CPAULI"

    @property
    def cbit(self) -> int:
        """Classical result slot of a ``MEASURE`` instruction."""
        if not self.is_measurement:
            raise ValueError(f"{self.gate} records no classical bit")
        return self.params[0]

    @property
    def basis(self) -> str:
        """Measurement basis (``"Z"`` or ``"X"``) of a ``MEASURE`` instruction."""
        if not self.is_measurement:
            raise ValueError(f"{self.gate} has no measurement basis")
        return self.params[1]

    @property
    def frame_pauli(self) -> str:
        """Pauli label applied by a ``CPAULI`` correction."""
        if not self.is_frame:
            raise ValueError(f"{self.gate} is not a frame correction")
        return self.params[0]

    @property
    def condition_bits(self) -> tuple[int, ...]:
        """Classical bits whose XOR triggers a ``CPAULI`` correction."""
        if not self.is_frame:
            raise ValueError(f"{self.gate} is not a frame correction")
        return tuple(self.params[1:])

    def controls_and_target(self) -> tuple[tuple[int, ...], int]:
        """Split an ``MCX``/``CX``/``CCX`` instruction into (controls, target)."""
        if self.gate not in ("CX", "CCX", "MCX"):
            raise ValueError(f"{self.gate} has no (controls, target) structure")
        return self.qubits[:-1], self.qubits[-1]

    def inverse(self) -> "Instruction":
        """Return the instruction implementing the inverse gate.

        Raises
        ------
        ValueError
            For irreversible instructions (``MEASURE``).
        """
        return Instruction(
            gate=inverse_gate_name(self.gate),
            qubits=self.qubits,
            tags=self.tags,
            params=self.params,
        )

    def remapped(self, mapping: dict[int, int]) -> "Instruction":
        """Return a copy with qubit indices translated through ``mapping``."""
        return Instruction(
            gate=self.gate,
            qubits=tuple(mapping[q] for q in self.qubits),
            tags=self.tags,
            params=self.params,
        )

    def with_tags(self, *extra: str) -> "Instruction":
        """Return a copy with ``extra`` labels added to :attr:`tags`."""
        return Instruction(
            gate=self.gate,
            qubits=self.qubits,
            tags=self.tags | frozenset(extra),
            params=self.params,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        qubits = ", ".join(str(q) for q in self.qubits)
        payload = f"; {','.join(str(p) for p in self.params)}" if self.params else ""
        suffix = f"  # {','.join(sorted(self.tags))}" if self.tags else ""
        return f"{self.gate}({qubits}{payload}){suffix}"
