"""The :class:`QuantumCircuit` container used by every subsystem."""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.circuit.instruction import Instruction
from repro.circuit.registers import QubitRegister


@dataclass
class QuantumCircuit:
    """An ordered list of gate applications over ``num_qubits`` qubits.

    Classically-controlled gates conditioned on *memory contents* are
    resolved at construction time -- the gate is appended only when the
    classical condition holds, and it is tagged ``"classical"`` so that
    Table 1's accounting of classically-controlled gates can be reproduced
    from the built circuit.

    Mid-circuit measurement is supported through two instructions:
    :meth:`measure` records a qubit's ``Z``- or ``X``-basis outcome into a
    classical bit, and :meth:`cpauli` applies a Pauli correction conditioned
    on the XOR of recorded outcomes (Pauli-frame feedforward).  Classical
    bits form a flat register of size :attr:`num_clbits`, allocated
    implicitly by :meth:`measure` or explicitly via its ``cbit`` argument.

    Parameters
    ----------
    num_qubits:
        Number of qubits the circuit acts on.
    registers:
        Optional named views onto the qubits (see
        :class:`~repro.circuit.registers.QubitRegister`); purely descriptive.
    metadata:
        Free-form dictionary the QRAM builders use to record the architecture
        parameters (``m``, ``k``, memory contents hash, options).
    """

    num_qubits: int
    instructions: list[Instruction] = field(default_factory=list)
    registers: dict[str, QubitRegister] = field(default_factory=dict)
    metadata: dict = field(default_factory=dict)
    #: Compiled gate tape (see :mod:`repro.circuit.ir`), populated lazily by
    #: :func:`repro.circuit.ir.compile_circuit` and dropped on mutation.
    _tape: object | None = field(default=None, init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        if self.num_qubits < 0:
            raise ValueError("num_qubits must be non-negative")
        self._num_clbits = 0
        self._written_clbits: set[int] = set()
        for instr in self.instructions:
            self._check_bounds(instr)
            self._track_clbits(instr)

    # ------------------------------------------------------------------ basics
    def _check_bounds(self, instr: Instruction) -> None:
        if any(q >= self.num_qubits for q in instr.qubits):
            raise ValueError(
                f"instruction {instr} references qubit outside "
                f"range(0, {self.num_qubits})"
            )

    def _track_clbits(self, instr: Instruction) -> None:
        # Instruction validation already guarantees MEASURE cbits are
        # non-negative ints; only the one-write-per-slot rule lives here.
        if instr.is_measurement:
            if instr.cbit in self._written_clbits:
                raise ValueError(
                    f"classical slot {instr.cbit} is already written by an "
                    "earlier measurement; every MEASURE outcome needs its own "
                    "slot (pass cbit=None to auto-allocate a fresh one)"
                )
            self._written_clbits.add(instr.cbit)
            self._num_clbits = max(self._num_clbits, instr.cbit + 1)

    @property
    def num_clbits(self) -> int:
        """Size of the classical register (one slot per recorded measurement)."""
        return self._num_clbits

    def append(self, instr: Instruction) -> None:
        """Append a prepared :class:`Instruction` (invalidates the compiled tape).

        Validation happens *before* the instruction lands, so a rejected
        append (out-of-range qubit, duplicate classical slot) leaves the
        circuit unchanged.
        """
        self._check_bounds(instr)
        self._track_clbits(instr)
        self.instructions.append(instr)
        self._tape = None

    def extend(self, instrs: Iterable[Instruction]) -> None:
        """Append each instruction in ``instrs`` in order."""
        for instr in instrs:
            self.append(instr)

    def add(self, gate: str, *qubits: int, tags: Iterable[str] = ()) -> None:
        """Build and append an instruction from a gate name and qubit indices."""
        self.append(Instruction(gate=gate, qubits=tuple(qubits), tags=frozenset(tags)))

    def __len__(self) -> int:
        return len(self.instructions)

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __getitem__(self, index: int) -> Instruction:
        return self.instructions[index]

    # ---------------------------------------------------------- gate builders
    def i(self, qubit: int, **kw) -> None:
        """Append an identity gate on ``qubit``."""
        self.add("I", qubit, **kw)

    def x(self, qubit: int, **kw) -> None:
        """Append an ``X`` gate on ``qubit``."""
        self.add("X", qubit, **kw)

    def y(self, qubit: int, **kw) -> None:
        """Append a ``Y`` gate on ``qubit``."""
        self.add("Y", qubit, **kw)

    def z(self, qubit: int, **kw) -> None:
        """Append a ``Z`` gate on ``qubit``."""
        self.add("Z", qubit, **kw)

    def h(self, qubit: int, **kw) -> None:
        """Append a Hadamard gate on ``qubit``."""
        self.add("H", qubit, **kw)

    def s(self, qubit: int, **kw) -> None:
        """Append an ``S`` phase gate on ``qubit``."""
        self.add("S", qubit, **kw)

    def sdg(self, qubit: int, **kw) -> None:
        """Append an ``S``-dagger gate on ``qubit``."""
        self.add("SDG", qubit, **kw)

    def t(self, qubit: int, **kw) -> None:
        """Append a ``T`` gate on ``qubit``."""
        self.add("T", qubit, **kw)

    def tdg(self, qubit: int, **kw) -> None:
        """Append a ``T``-dagger gate on ``qubit``."""
        self.add("TDG", qubit, **kw)

    def cx(self, control: int, target: int, **kw) -> None:
        """Append a CNOT with the given control and target."""
        self.add("CX", control, target, **kw)

    def cz(self, control: int, target: int, **kw) -> None:
        """Append a controlled-``Z`` between the two qubits."""
        self.add("CZ", control, target, **kw)

    def swap(self, a: int, b: int, **kw) -> None:
        """Append a SWAP of qubits ``a`` and ``b``."""
        self.add("SWAP", a, b, **kw)

    def ccx(self, control_a: int, control_b: int, target: int, **kw) -> None:
        """Append a Toffoli (two controls, one target)."""
        self.add("CCX", control_a, control_b, target, **kw)

    def cswap(self, control: int, a: int, b: int, **kw) -> None:
        """Append a Fredkin gate (``control`` swaps ``a`` and ``b``)."""
        self.add("CSWAP", control, a, b, **kw)

    def mcx(self, controls: Sequence[int], target: int, **kw) -> None:
        """Multi-controlled X.  With 1 (2) controls a ``CX`` (``CCX``) is emitted."""
        controls = tuple(controls)
        if len(controls) == 0:
            self.add("X", target, **kw)
        elif len(controls) == 1:
            self.add("CX", controls[0], target, **kw)
        elif len(controls) == 2:
            self.add("CCX", controls[0], controls[1], target, **kw)
        else:
            self.add("MCX", *controls, target, **kw)

    def mcx_on_pattern(
        self,
        controls: Sequence[int],
        pattern: int,
        target: int,
        **kw,
    ) -> None:
        """Multi-controlled X that fires when ``controls`` encode ``pattern``.

        ``pattern`` is interpreted with ``controls[0]`` as the most significant
        bit.  Controls whose pattern bit is 0 are conjugated by ``X`` gates so
        the overall gate triggers on the requested bit-string, which is how the
        SQC/QROM and the page-selection MCX of the virtual QRAM condition on a
        specific address value.
        """
        controls = tuple(controls)
        width = len(controls)
        if pattern < 0 or pattern >= (1 << width):
            raise ValueError(f"pattern {pattern} does not fit in {width} controls")
        zero_controls = [
            q
            for bit_index, q in enumerate(controls)
            if not (pattern >> (width - 1 - bit_index)) & 1
        ]
        for q in zero_controls:
            self.x(q)
        self.mcx(controls, target, **kw)
        for q in zero_controls:
            self.x(q)

    def measure(
        self,
        qubit: int,
        cbit: int | None = None,
        *,
        basis: str = "Z",
        tags: Iterable[str] = (),
    ) -> int:
        """Measure ``qubit`` mid-circuit and record the outcome; return the cbit.

        ``basis`` is ``"Z"`` (computational) or ``"X"`` (Hadamard, the basis
        teleportation measures in).  ``cbit`` names the classical result
        slot; ``None`` allocates the next free slot.  The outcome is sampled
        at execution time by the engines (see :mod:`repro.sim.engine`) --
        per shot, from the shot's own seeded stream.

        Classical-slot contract: every slot is written by **at most one**
        measurement -- a second write to the same slot raises ``ValueError``
        (it would silently overwrite the first outcome, corrupting every
        downstream ``cpauli`` frame and postselection check conditioned on
        it).  An explicit ``cbit`` may skip ahead and leave *gap* slots
        (``measure(q, cbit=7)`` on a fresh circuit makes ``num_clbits`` 8):
        gap slots are never written at execution time and read as ``0``, so
        a ``cpauli`` conditioned on one is inert; later auto-allocations
        continue from ``num_clbits`` and never land in a gap.
        """
        slot = self._num_clbits if cbit is None else cbit
        self.append(
            Instruction(
                gate="MEASURE",
                qubits=(qubit,),
                tags=frozenset(tags),
                params=(slot, basis),
            )
        )
        return slot

    def cpauli(
        self,
        pauli: str,
        qubit: int,
        condition_bits: Sequence[int],
        *,
        tags: Iterable[str] = (),
    ) -> None:
        """Apply ``pauli`` to ``qubit`` when the XOR of ``condition_bits`` is 1.

        This is the feedforward half of measurement-based teleportation: the
        correction is conditioned on earlier :meth:`measure` outcomes and is
        tracked as a Pauli-frame update -- noise models and the depth
        scheduler treat it as zero-cost software (see
        :attr:`~repro.circuit.instruction.Instruction.is_frame`).
        """
        self.append(
            Instruction(
                gate="CPAULI",
                qubits=(qubit,),
                tags=frozenset(tags),
                params=(pauli, *condition_bits),
            )
        )

    def barrier(self, *qubits: int) -> None:
        """Insert a scheduling barrier.

        With no arguments the barrier synchronises every qubit in the circuit;
        otherwise only the listed qubits.  Barriers are ignored by the
        simulators and by gate counting but respected by depth scheduling,
        which is how the *non*-pipelined address-loading schedule (Sec. 3.2.3)
        is modelled.
        """
        targets = qubits if qubits else tuple(range(self.num_qubits))
        self.append(Instruction(gate="BARRIER", qubits=targets))

    # -------------------------------------------------------------- transforms
    def copy(self) -> "QuantumCircuit":
        """Shallow-copy the circuit (instructions are immutable)."""
        return QuantumCircuit(
            num_qubits=self.num_qubits,
            instructions=list(self.instructions),
            registers=dict(self.registers),
            metadata=dict(self.metadata),
        )

    def inverse(self) -> "QuantumCircuit":
        """Return the inverse circuit (gates inverted, order reversed)."""
        inv = QuantumCircuit(
            num_qubits=self.num_qubits,
            registers=dict(self.registers),
            metadata=dict(self.metadata),
        )
        for instr in reversed(self.instructions):
            inv.append(instr.inverse())
        return inv

    def compose(self, other: "QuantumCircuit") -> "QuantumCircuit":
        """Return a new circuit running ``self`` then ``other``.

        Both circuits must have the same qubit count; registers of ``self``
        take precedence on name clashes.
        """
        if other.num_qubits != self.num_qubits:
            raise ValueError("cannot compose circuits with different qubit counts")
        merged = self.copy()
        merged.extend(other.instructions)
        for name, reg in other.registers.items():
            merged.registers.setdefault(name, reg)
        return merged

    def without_barriers(self) -> "QuantumCircuit":
        """Return a copy with all barriers removed (used to model pipelining)."""
        out = QuantumCircuit(
            num_qubits=self.num_qubits,
            registers=dict(self.registers),
            metadata=dict(self.metadata),
        )
        out.extend(instr for instr in self.instructions if not instr.is_barrier)
        return out

    def remapped(self, mapping: dict[int, int], num_qubits: int) -> "QuantumCircuit":
        """Return a copy acting on a new qubit index space via ``mapping``."""
        out = QuantumCircuit(num_qubits=num_qubits, metadata=dict(self.metadata))
        out.extend(instr.remapped(mapping) for instr in self.instructions)
        return out

    # -------------------------------------------------------------- accounting
    @property
    def gates(self) -> list[Instruction]:
        """All physical gates (barriers excluded)."""
        return [instr for instr in self.instructions if not instr.is_barrier]

    @property
    def num_gates(self) -> int:
        """Number of physical gates (barriers excluded)."""
        return len(self.gates)

    def count_ops(self, include_noise: bool = True) -> Counter:
        """Histogram of gate names.

        Parameters
        ----------
        include_noise:
            When False, gates tagged ``"noise"`` (Pauli errors inserted by a
            noise model) are excluded so that logical resource counts are not
            polluted by error injection.
        """
        counter: Counter = Counter()
        for instr in self.gates:
            if not include_noise and instr.is_noise:
                continue
            counter[instr.gate] += 1
        return counter

    def count_tagged(self, tag: str) -> int:
        """Number of gates carrying ``tag`` (e.g. ``"classical"``)."""
        return sum(1 for instr in self.gates if tag in instr.tags)

    def used_qubits(self) -> set[int]:
        """Set of qubit indices touched by at least one gate."""
        used: set[int] = set()
        for instr in self.gates:
            used.update(instr.qubits)
        return used

    def depth(self, *, respect_barriers: bool = True) -> int:
        """ASAP circuit depth (see :mod:`repro.circuit.scheduling`)."""
        from repro.circuit.scheduling import circuit_depth

        return circuit_depth(self, respect_barriers=respect_barriers)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        header = f"QuantumCircuit({self.num_qubits} qubits, {self.num_gates} gates)"
        body = "\n".join(f"  {instr}" for instr in self.instructions[:50])
        if len(self.instructions) > 50:
            body += f"\n  ... ({len(self.instructions) - 50} more)"
        return f"{header}\n{body}"
