"""The typed, versioned scenario sweep-point record.

:func:`repro.scenarios.run.run_scenario` historically returned ad-hoc
``dict[str, object]`` rows.  :class:`ScenarioRecord` replaces them with a
frozen dataclass carrying an explicit ``schema_version``, a canonical
``to_json``/``from_json`` round trip (the serialization the result cache
and the HTTP API store and serve), and full read-only mapping duck-typing
(``record["fidelity"]``, ``dict(record)``, ``record.get(...)``) so every
existing consumer -- ``format_table``, ``records_to_csv/json/markdown``,
the tests -- keeps working unchanged.

Versioning contract: any change to the field set or to a field's meaning
bumps :data:`RECORD_SCHEMA_VERSION`; the cache fingerprint includes the
version, so artefacts written under an old schema can never be served as
current ones.
"""

from __future__ import annotations

import json
import math
import operator
from dataclasses import dataclass, fields
from typing import Iterator

#: Version of the record field set below.  Bump on any field change: the
#: cache fingerprint mixes it in, so stale artefacts miss instead of lying.
#: v2 added ``kept_fraction`` (dual-rail postselection accounting).
RECORD_SCHEMA_VERSION = 2


@dataclass(frozen=True)
class ScenarioRecord:
    """One sweep point of one scenario run, fully self-describing.

    Every configuration axis that influenced the numbers is stamped in --
    including the *resolved* ``engine`` and ``router`` names (never ``None``
    or a session default left implicit), so a record pulled out of the cache
    or served over HTTP is interpretable without the session that made it.

    The class is a read-only mapping over its field names: ``record[key]``,
    ``key in record``, ``iter(record)``, ``len(record)``, ``record.get(key)``
    and therefore ``dict(record)`` all work, matching the historical plain
    dict rows byte-for-byte in the JSON/CSV exports.
    """

    scenario: str
    architecture: str
    m: int
    k: int
    mapping: str
    routing: str
    router: str
    device: str
    num_qubits: int
    logical_gates: int
    executed_gates: int
    extra_swaps: int
    link_operations: int
    measurements: int
    logical_depth: int
    executed_depth: int
    idle_error: float
    readout_error: float
    error_reduction_factor: float
    shots: int
    engine: str
    fidelity: float
    std_error: float
    #: Fraction of shots that survived postselection on the run's recorded
    #: check outcomes (``1.0`` for scenarios without postselection).  The
    #: dual-rail mapping keeps this *in the data model* rather than folding
    #: the discard silently into ``fidelity``: ``fidelity`` is the mean over
    #: kept shots only, and ``kept_fraction`` says how many those were.
    #: When every shot is rejected it is ``0.0`` and ``fidelity`` is ``NaN``
    #: -- never a silently 0-filled fidelity.
    kept_fraction: float = 1.0
    schema_version: int = RECORD_SCHEMA_VERSION

    def __post_init__(self) -> None:
        """Canonicalize value types so equal records serialize identically.

        Float fields are coerced through ``float`` (an integer-valued
        ``10`` and ``10.0`` must produce the same JSON bytes and the same
        packed binary row), int fields through ``__index__`` (accepting
        numpy integers, rejecting floats), and string fields must be
        ``str``.  Anything uncoercible raises ``ValueError``/``TypeError``,
        which the cache's corruption-tolerant readers treat as a miss.
        """
        for field in fields(self):
            value = getattr(self, field.name)
            if field.type == "float":
                object.__setattr__(self, field.name, float(value))
            elif field.type == "int":
                object.__setattr__(self, field.name, operator.index(value))
            elif not isinstance(value, str):
                raise ValueError(
                    f"record field {field.name!r} must be a string, "
                    f"got {type(value).__name__}"
                )

    # ------------------------------------------------------------- equality
    def __eq__(self, other: object) -> bool:
        """Field-wise equality, NaN-aware.

        An all-rejected postselected point has ``fidelity = NaN``; two such
        records are the *same result*, so NaN compares equal to NaN here
        (per field, both sides float).  This is what lets
        ``decode(encode(records)) == records`` hold for every record the
        pipeline can produce, not just the finite ones.
        """
        if other.__class__ is not self.__class__:
            return NotImplemented
        for key in self.keys():
            mine, theirs = getattr(self, key), getattr(other, key)
            if mine == theirs:
                continue
            if not (
                isinstance(mine, float)
                and isinstance(theirs, float)
                and math.isnan(mine)
                and math.isnan(theirs)
            ):
                return False
        return True

    def __hash__(self) -> int:
        """Hash consistent with the NaN-aware ``__eq__`` (NaN canonicalized)."""
        return hash(
            tuple(
                "nan" if isinstance(value, float) and math.isnan(value) else value
                for value in (getattr(self, key) for key in self.keys())
            )
        )

    # ------------------------------------------------------- mapping protocol
    def keys(self) -> tuple[str, ...]:
        """Field names in declaration order (the export column order)."""
        return tuple(field.name for field in fields(self))

    def __getitem__(self, key: str) -> object:
        if not isinstance(key, str) or key.startswith("_") or not hasattr(self, key):
            raise KeyError(key)
        return getattr(self, key)

    def get(self, key: str, default: object = None) -> object:
        """Mapping-style lookup with a default, mirroring ``dict.get``."""
        try:
            return self[key]
        except KeyError:
            return default

    def __iter__(self) -> Iterator[str]:
        return iter(self.keys())

    def __len__(self) -> int:
        return len(self.keys())

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and not key.startswith("_") and hasattr(self, key)

    # --------------------------------------------------------- serialization
    def as_dict(self) -> dict[str, object]:
        """Plain ``dict`` escape hatch, in field order (NaN kept as NaN)."""
        return {key: getattr(self, key) for key in self.keys()}

    def json_dict(self) -> dict[str, object]:
        """:meth:`as_dict` with NaN encoded as ``None`` -- the JSON view.

        ``json.dumps`` would otherwise emit the non-standard ``NaN``
        literal (invalid JSON: strict parsers and every HTTP client
        reject it).  The canonical encoding is ``null``;
        :meth:`from_dict` maps it back to NaN for float fields, so the
        round trip is lossless for all-rejected postselected points.
        """
        return {
            key: None
            if isinstance(value, float) and math.isnan(value)
            else value
            for key, value in self.as_dict().items()
        }

    def to_json(self) -> str:
        """Canonical strict JSON: sorted keys, no whitespace, NaN as ``null``."""
        return json.dumps(
            self.json_dict(), sort_keys=True, separators=(",", ":"), allow_nan=False
        )

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ScenarioRecord":
        """Rebuild a record from :meth:`as_dict` output.

        Rejects unknown keys, missing keys and schema-version mismatches
        outright rather than guessing at a migration -- the cache treats the
        resulting ``ValueError`` as a miss and re-runs.  ``schema_version``
        itself must be present: a truncated or foreign payload without one
        would otherwise be waved through as current-schema, which is exactly
        the lie the version stamp exists to prevent.
        """
        if not isinstance(payload, dict):
            raise ValueError(f"record payload must be a dict, got {type(payload)}")
        expected = {field.name for field in fields(cls)}
        unknown = set(payload) - expected
        if unknown:
            raise ValueError(f"unknown record fields: {sorted(unknown)}")
        missing = expected - set(payload)
        if missing:
            raise ValueError(f"missing record fields: {sorted(missing)}")
        version = payload["schema_version"]
        if version != RECORD_SCHEMA_VERSION:
            raise ValueError(
                f"record schema_version {version!r} != "
                f"current {RECORD_SCHEMA_VERSION}"
            )
        decoded = {
            key: math.nan
            if value is None and key in _FLOAT_FIELDS
            else value
            for key, value in payload.items()
        }
        return cls(**decoded)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioRecord":
        """Inverse of :meth:`to_json` (same validation as :meth:`from_dict`)."""
        return cls.from_dict(json.loads(text))


#: Float-typed field names: the ones whose JSON ``null`` decodes to NaN.
_FLOAT_FIELDS = frozenset(
    field.name for field in fields(ScenarioRecord) if field.type == "float"
)
