"""Execute compiled scenarios through the sharded sweep runner.

One scenario run is a Monte-Carlo sweep over the spec's error-reduction
grid: each ``(eps_r, shot shard)`` work unit routes through
:class:`repro.sweep.SweepRunner`, draws its Pauli codes from the shard's
:class:`~repro.sim.seeding.ShotSeeds` window and returns per-shot
fidelities, so merged records are bit-identical for any worker count and
shard size -- the same contract every figure sweep honours.  The worker
rebuilds the (process-cached) compiled scenario from the pickled spec, so
pools work under both ``fork`` and ``spawn`` start methods for registered
and ad-hoc specs alike.

Because of that determinism, a run is a pure function of
``(spec, seed, shots, engine, router)`` -- so :func:`run_scenario` first
resolves the session-default engine and router into concrete names (stamped
into every :class:`~repro.scenarios.record.ScenarioRecord`), derives the
run's content address (:func:`repro.cache.run_fingerprint`), and consults
the result cache when one is configured: a warm hit returns the stored
records without touching an engine or consuming any randomness, provably
bit-identical to the fresh run it replaces.
"""

from __future__ import annotations

from dataclasses import replace
from typing import TYPE_CHECKING

import numpy as np

from repro.experiments.common import format_table, resolve_seed
from repro.hardware.router import get_default_router
from repro.scenarios.compile import CompiledScenario, compile_scenario
from repro.scenarios.record import ScenarioRecord
from repro.scenarios.spec import ScenarioSpec, get_scenario
from repro.sim.engine import get_default_engine
from repro.sim.feynman import FeynmanPathSimulator
from repro.sweep import ShotShard, SweepRunner

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.cache.store import ResultCache


def _scenario_shard(spec_bundle: tuple, shard: ShotShard) -> np.ndarray:
    """Per-shard fidelities of one ``(scenario, eps_r)`` sweep point."""
    spec, factor, seed, engine = spec_bundle
    compiled = compile_scenario(spec, seed)
    result = FeynmanPathSimulator(engine=engine).query_fidelities(
        compiled.circuit,
        compiled.input_state,
        compiled.noise_model(factor),
        shard.shots,
        keep_qubits=list(compiled.keep_qubits),
        ideal_output=compiled.ideal_output,
        rng=shard.seeds(),
        postselect=compiled.postselect or None,
    )
    # Readout error is one closed-form survival factor per shot (no random
    # stream consumed), so folding it here keeps sharding bit-identical.
    # Postselection-rejected shots are NaN and stay NaN through the
    # multiplication, so shard concatenation keeps them countable.
    survival = compiled.readout_survival(factor)
    if survival != 1.0:
        return result.fidelities * survival
    return result.fidelities


def _point_record(
    compiled: CompiledScenario,
    factor: float,
    shots: int,
    engine: str,
    fidelity: float,
    std_error: float,
    kept_fraction: float,
) -> ScenarioRecord:
    """One sweep point as a typed record (resolved names come off the spec)."""
    spec = compiled.spec
    return ScenarioRecord(
        scenario=spec.name,
        architecture=spec.architecture,
        m=spec.qram_width,
        k=spec.sqc_width,
        mapping=spec.mapping,
        routing=spec.routing if spec.mapping == "htree" else (
            "swap" if spec.mapping == "device" else "-"
        ),
        # The resolved router is stamped even where the mapping never
        # invokes it: records (and the cache fingerprint built from the same
        # resolved spec) must be self-describing, never "whatever the
        # session default happened to be".
        router=spec.router,
        device=compiled.device.name,
        num_qubits=compiled.circuit.num_qubits,
        logical_gates=compiled.logical_gates,
        executed_gates=compiled.executed_gates,
        extra_swaps=compiled.extra_swaps,
        link_operations=compiled.link_operations,
        measurements=compiled.measurements,
        logical_depth=compiled.logical_depth,
        executed_depth=compiled.executed_depth,
        idle_error=compiled.idle_error_rate,
        readout_error=compiled.readout_error_rate,
        error_reduction_factor=factor,
        shots=shots,
        engine=engine,
        fidelity=fidelity,
        std_error=std_error,
        kept_fraction=kept_fraction,
    )


def resolve_run(
    scenario: str | ScenarioSpec,
    *,
    shots: int | None = None,
    seed: int | None = None,
    engine: str | None = None,
) -> tuple[ScenarioSpec, int, int, str, str]:
    """Pin every defaulted run input and derive the run's content address.

    Returns ``(spec, seed, shots, engine, fingerprint)`` with the spec's
    router resolved to a concrete registered name and the engine resolved to
    a concrete registry entry -- the exact inputs the sweep executes, the
    records describe and the cache keys on.
    """
    # Imported lazily: repro.cache serializes the spec/record schema defined
    # here, so a module-level import would be circular.
    from repro.cache.fingerprint import run_fingerprint

    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    if spec.router is None:
        # Resolve the session-default router here, like the engine: the spec
        # is pickled into pool workers, and a spawned worker's module-global
        # default would silently fall back to the greedy router.
        spec = replace(spec, router=get_default_router())
    seed_value = resolve_seed(seed)
    engine_name = get_default_engine() if engine is None else engine
    shot_count = spec.shots if shots is None else shots
    fingerprint = run_fingerprint(
        spec, seed=seed_value, shots=shot_count, engine=engine_name
    )
    return spec, seed_value, shot_count, engine_name, fingerprint


def run_scenario(
    scenario: str | ScenarioSpec,
    *,
    shots: int | None = None,
    seed: int | None = None,
    workers: int | None = None,
    shard_size: int | None = None,
    engine: str | None = None,
    cache: ResultCache | bool | str | None = None,
) -> list[ScenarioRecord]:
    """Run one scenario's full sweep and return one record per sweep point.

    ``scenario`` is a registered name or an ad-hoc :class:`ScenarioSpec`.
    ``shots`` defaults to the spec's; ``seed`` to the project-wide default;
    ``engine`` to the session default.  Records are bit-identical across
    ``workers`` and ``shard_size``.

    ``cache`` selects the content-addressed result cache
    (see :func:`repro.cache.store.resolve_cache`): ``None`` uses
    ``$REPRO_CACHE_DIR`` when set, ``True``/``False`` force it on/off, and a
    path or :class:`~repro.cache.store.ResultCache` names one explicitly.  A
    warm hit returns the cached records directly -- no compilation, no
    engine execution, no randomness consumed.
    """
    from repro.cache.store import resolve_cache

    spec, seed_value, shot_count, engine_name, fingerprint = resolve_run(
        scenario, shots=shots, seed=seed, engine=engine
    )
    store = resolve_cache(cache)
    if store is not None:
        cached = store.get(fingerprint)
        if cached is not None:
            return cached
    bundles = [
        (spec, factor, seed_value, engine_name)
        for factor in spec.error_reduction_factors
    ]
    runner = SweepRunner(workers=workers, shard_size=shard_size)
    merged = runner.map_shards(
        _scenario_shard, bundles, shots=shot_count, seed=seed_value
    )
    compiled = compile_scenario(spec, seed_value)
    records = [
        _point_record(
            compiled,
            factor,
            shot_count,
            engine_name,
            result.mean_fidelity,
            result.std_error,
            result.kept_fraction,
        )
        for factor, result in zip(spec.error_reduction_factors, merged)
    ]
    if store is not None:
        store.put(fingerprint, records)
    return records


def scenario_report(
    scenario: str | ScenarioSpec,
    records: list[ScenarioRecord],
) -> str:
    """Human-readable summary of one scenario's sweep records."""
    spec = get_scenario(scenario) if isinstance(scenario, str) else scenario
    first = records[0]
    header = (
        f"Scenario '{spec.name}': {spec.description}\n"
        f"  architecture={spec.architecture} m={spec.qram_width} "
        f"k={spec.sqc_width} mapping={spec.mapping} routing={first['routing']} "
        f"router={first['router']} device={first['device']}\n"
        f"  qubits={first['num_qubits']} gates={first['executed_gates']} "
        f"(logical {first['logical_gates']}) "
        f"depth={first['executed_depth']} (logical {first['logical_depth']}) "
        f"extra_swaps={first['extra_swaps']} "
        f"link_ops={first['link_operations']} "
        f"measurements={first['measurements']} "
        f"idle_error={first['idle_error']} "
        f"readout_error={first['readout_error']}\n"
        f"  shots={first['shots']} engine={first['engine']}"
    )
    columns = ["error_reduction_factor", "fidelity", "std_error", "kept_fraction"]
    rows = [[record[column] for column in columns] for record in records]
    return header + "\n" + format_table(
        ["eps_r", "fidelity", "std_error", "kept_fraction"], rows
    )
