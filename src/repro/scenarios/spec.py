"""Declarative scenario specifications and the scenario registry.

A *scenario* names one end-to-end configuration of the reproduction stack:
which QRAM architecture to build, how wide, how (and whether) to embed it on
hardware, which device calibration supplies the noise, whether schedule-aware
idle noise is attached, and which error-reduction factors to sweep.  Specs
are declarative and frozen -- compiling and executing them is the job of
:mod:`repro.scenarios.compile` and :mod:`repro.scenarios.run` -- so they can
be registered by name, listed from the CLI, pickled into sweep workers and
used as cache keys.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

ARCHITECTURES: tuple[str, ...] = ("virtual", "bucket-brigade", "fanout")
MAPPINGS: tuple[str, ...] = ("none", "htree", "device", "dual-rail")
ROUTINGS: tuple[str, ...] = (
    "swap",
    "teleport",
    "teleport-executed",
    "teleport-fused",
)


@dataclass(frozen=True)
class ScenarioSpec:
    """One named, sweepable end-to-end simulation configuration.

    Parameters
    ----------
    name / description:
        Registry key and the one-line summary ``--list`` prints.
    architecture:
        QRAM construction: ``"virtual"`` (the paper's proposal),
        ``"bucket-brigade"`` or ``"fanout"`` (the baselines).
    qram_width / sqc_width:
        The paper's ``m`` and ``k``; the memory holds ``2**(m + k)`` cells.
    mapping:
        ``"none"`` executes the logical circuit as built; ``"htree"`` embeds
        it in the 2D H-tree layout (Sec. 4.2) and makes the communication
        real; ``"device"`` routes it onto a named sparse-connectivity backend
        (the Figure 12 methodology); ``"dual-rail"`` encodes every logical
        qubit as two erasure-detecting rails with postselected parity checks
        (see :mod:`repro.mapping.dual_rail`) -- sweep points then report the
        surviving ``kept_fraction`` alongside the postselected fidelity.
    routing:
        Communication scheme for ``mapping="htree"``: ``"swap"`` materialises
        SWAP chains along the tree arms (every SWAP incurs gate noise),
        ``"teleport"`` executes remote gates in place at constant depth but
        charges the entanglement-link noise of the consumed routing qubits
        *analytically*, and ``"teleport-executed"`` executes the links for
        real -- entanglement-link CX hops over the routing-chain vertices,
        mid-circuit measurements and Pauli-frame feedforward (see
        :mod:`repro.mapping.teleport`), with link noise arising from the hop
        gates' own error channels.  ``"teleport-fused"`` also executes the
        links but replaces every sequential hop chain with a constant-depth
        entanglement-swapping link (Bell pairs + Bell-state measurements),
        which branches the path set through the bounded-``H`` support of the
        Feynman engines and is subject to the branch budget of
        :func:`repro.circuit.ir.get_max_branches`.  ``mapping="device"``
        always swap-routes; ``mapping="none"`` ignores this field.
    router:
        Which registered router resolves blocked gates (see
        :mod:`repro.hardware.router`): ``"greedy-swap"``, ``"lookahead"``
        or ``"lookahead-teleport"`` (SWAPs plus measurement-based teleport
        relocations through free vertices).  ``None`` uses the session
        default
        (:func:`~repro.hardware.router.get_default_router`, the CLI
        ``--router`` override).  Ignored unless the mapping swap-routes.
    device:
        Name in :data:`repro.hardware.devices.DEVICES` supplying topology
        (for ``mapping="device"``) and/or calibration.  ``None`` uses the
        reference grid calibration (the Sec. 6.3 error scale).
    error_reduction_factors:
        The ``eps_r`` sweep grid (Appendix A): every gate/idle error rate is
        divided by each factor in turn.
    idle_error:
        Per-idle-layer dephasing probability at ``eps_r = 1``.  ``0.0``
        disables idle noise; ``None`` uses the device calibration's
        :attr:`~repro.hardware.devices.DeviceModel.idle_error`.
    readout:
        When True, fold the device calibration's
        :attr:`~repro.hardware.devices.DeviceModel.readout_error` into every
        sweep point's fidelity: each kept qubit survives readout with
        probability ``1 - readout_error / eps_r``, so the recorded fidelity
        is multiplied by ``(1 - readout_error / eps_r) ** len(keep_qubits)``
        (see :meth:`~repro.scenarios.compile.CompiledScenario.readout_survival`).
        Off by default -- the paper's fidelity experiments measure state
        overlap without readout noise.
    shots:
        Default Monte-Carlo shots per sweep point (CLI ``--shots`` overrides).
    """

    name: str
    description: str
    architecture: str = "virtual"
    qram_width: int = 2
    sqc_width: int = 0
    mapping: str = "none"
    routing: str = "swap"
    router: str | None = None
    device: str | None = None
    error_reduction_factors: tuple[float, ...] = (1.0, 10.0, 100.0)
    idle_error: float | None = 0.0
    readout: bool = False
    shots: int = 200

    def __post_init__(self) -> None:
        from repro.hardware.devices import DEVICES
        from repro.hardware.router import available_routers

        if not self.name:
            raise ValueError("scenario name must be non-empty")
        if self.architecture not in ARCHITECTURES:
            raise ValueError(
                f"unknown architecture {self.architecture!r}; "
                f"choose from {ARCHITECTURES}"
            )
        if self.mapping not in MAPPINGS:
            raise ValueError(
                f"unknown mapping {self.mapping!r}; choose from {MAPPINGS}"
            )
        if self.routing not in ROUTINGS:
            raise ValueError(
                f"unknown routing {self.routing!r}; choose from {ROUTINGS}"
            )
        if self.router is not None and self.router not in available_routers():
            raise ValueError(
                f"unknown router {self.router!r}; "
                f"available: {available_routers()}"
            )
        if self.qram_width < 1:
            raise ValueError("qram_width must be at least 1")
        if self.sqc_width < 0:
            raise ValueError("sqc_width must be non-negative")
        if self.mapping == "device" and self.device is None:
            raise ValueError('mapping="device" needs a named device')
        if self.device is not None and self.device not in DEVICES:
            raise ValueError(
                f"unknown device {self.device!r}; available: {sorted(DEVICES)}"
            )
        if not self.error_reduction_factors:
            raise ValueError("error_reduction_factors must be non-empty")
        if any(factor <= 0 for factor in self.error_reduction_factors):
            raise ValueError("error reduction factors must be positive")
        if self.idle_error is not None and self.idle_error < 0:
            raise ValueError("idle_error must be non-negative (or None)")
        if self.shots <= 0:
            raise ValueError("shots must be positive")

    @property
    def memory_width(self) -> int:
        """Address width ``n = m + k`` of the queried memory."""
        return self.qram_width + self.sqc_width

    def variant(self, name: str, description: str, **overrides) -> "ScenarioSpec":
        """A renamed copy with field overrides (for ablation families)."""
        return replace(self, name=name, description=description, **overrides)


# ------------------------------------------------------------------ registry
_REGISTRY: dict[str, ScenarioSpec] = {}


def register_scenario(spec: ScenarioSpec, *, replace: bool = False) -> ScenarioSpec:
    """Register ``spec`` under its name and return it.

    Built-in scenarios register at import; user code can add its own (pass
    ``replace=True`` to overwrite).  Workers re-import this module, so
    scenarios registered at import time resolve under any multiprocessing
    start method; runtime registrations additionally rely on the ``fork``
    start the sweep runner prefers.
    """
    if not replace and spec.name in _REGISTRY:
        raise ValueError(f"scenario {spec.name!r} is already registered")
    _REGISTRY[spec.name] = spec
    return spec


def get_scenario(name: str) -> ScenarioSpec:
    """Look a scenario up by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown scenario {name!r}; available: {available_scenarios()}"
        ) from None


def available_scenarios() -> list[str]:
    """Sorted names of every registered scenario."""
    return sorted(_REGISTRY)


def iter_scenarios() -> list[ScenarioSpec]:
    """Every registered spec, sorted by name."""
    return [_REGISTRY[name] for name in available_scenarios()]
