"""Compile a :class:`ScenarioSpec` into an executable simulation bundle.

Compilation is the expensive, deterministic half of a scenario run: build
the QRAM circuit, embed/route it according to the spec's mapping strategy,
precompute the input state, ideal output and kept qubits, and derive the
*structure* of the position-dependent noise (teleportation-link site table).
The cheap, per-sweep-point half -- instantiating the noise model at one
error-reduction factor -- happens in :meth:`CompiledScenario.noise_model`
inside the sweep workers.

Mapping strategies
------------------
``none``
    Execute the logical circuit as built (all-to-all connectivity).

``dual-rail``
    Encode every logical qubit as two erasure-detecting rails
    (:func:`repro.mapping.dual_rail.encode_dual_rail`): gates become
    parity-preserving dual-rail gadgets, and per-qubit parity-check
    ancillas are measured into classical bits.  The compiled bundle carries
    the resulting ``(cbit, expected)`` pairs in
    :attr:`CompiledScenario.postselect`; sweep shards postselect shots on
    them, so records report the postselected fidelity plus the surviving
    ``kept_fraction``.

``htree`` + ``swap``
    Place the circuit on the executable H-tree device
    (:func:`repro.mapping.device.htree_device`) and route it with the greedy
    SWAP router: every communication SWAP becomes a real gate and incurs the
    device's two-qubit noise, and the longer schedule accrues more idle
    noise.

``htree`` + ``teleport``
    Remote gates execute in place (entanglement-swapping links are constant
    depth), but each remote gate at grid distance ``d`` consumed
    ``2 * (d - 1)`` link operations on the routing qubits; their noise is
    charged as that many applications of the device's two-qubit channel on
    the gate's first operand -- the qubit the link teleports.  This mirrors
    the cost model of :class:`repro.mapping.routing.TeleportationRouting`
    while keeping the circuit inside the original Feynman gate set.

``htree`` + ``teleport-executed``
    The same workload with the links *executed* rather than modelled:
    :func:`repro.mapping.teleport.expand_teleport_links` rewrites every
    remote gate into entanglement-link CX hops over the routing-chain
    vertices, mid-circuit ``MEASURE`` instructions and ``CPAULI``
    Pauli-frame feedforward.  Link noise now arises from the hop gates' own
    error channels, measurement outcomes are drawn from each shot's seeded
    stream (sharding-invariant), and at zero noise the expanded circuit
    reproduces the logical ideal output exactly -- the convergence the
    executed-vs-analytic ablation tests pin down.

``htree`` + ``teleport-fused``
    Like ``teleport-executed``, but every payload hop chain becomes one
    constant-depth entanglement-swapping link: Bell pairs over the routing
    chain prepared in a single layer (mid-circuit ``H``, branching the path
    set), one layer of Bell-state-measurement CXs, and exact per-stage
    Pauli-frame corrections.  The shorter schedule accrues less idle noise
    than the hop chains at comparable link-gate counts; circuits whose
    simultaneous Bell pairs exceed the branch budget raise
    :class:`repro.circuit.ir.BranchBudgetError` at compile time.

``device``
    Route onto a named sparse backend -- the Figure 12 methodology, now
    composable with idle noise and sweeps.

Both swap-routed mappings resolve their router through the registry of
:mod:`repro.hardware.router` (``spec.router``, or the session default when
the spec leaves it ``None``): ``"greedy-swap"`` reproduces the historical
behaviour bit for bit, ``"lookahead"`` routes SABRE-style with fewer SWAPs
and a searched initial layout.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from functools import lru_cache

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.ir import compile_circuit
from repro.circuit.scheduling import circuit_depth
from repro.experiments.common import random_memory
from repro.hardware.devices import DEVICES, DeviceModel, grid_device
from repro.hardware.noise_model import scheduled_device_noise_model
from repro.hardware.router import get_default_router, make_router
from repro.mapping.device import htree_device
from repro.mapping.dual_rail import encode_dual_rail, rail_pair
from repro.mapping.grid import Grid2D
from repro.mapping.htree import HTreeEmbedding
from repro.mapping.teleport import expand_teleport_links
from repro.qram.base import QRAMArchitecture
from repro.qram.bucket_brigade import BucketBrigadeQRAM
from repro.qram.fanout import FanoutQRAM
from repro.qram.virtual_qram import VirtualQRAM
from repro.scenarios.spec import ScenarioSpec
from repro.sim.noise import NoiseModel, PauliChannel, ScheduledNoiseModel
from repro.sim.paths import PathState

_ARCHITECTURE_CLASSES = {
    "virtual": VirtualQRAM,
    "bucket-brigade": BucketBrigadeQRAM,
    "fanout": FanoutQRAM,
}

#: Calibration used when a scenario names no device: the representative
#: error scale of Sec. 6.3 (the :class:`DeviceModel` defaults).
REFERENCE_CALIBRATION = grid_device(1, 2, name="reference")


@dataclass(frozen=True)
class CompiledScenario:
    """Everything the sweep workers need to run one scenario's shots.

    ``circuit`` is the *executed* circuit (routed when the mapping
    materialises communication); ``link_sites`` is the per-gate
    teleportation-link site table (empty outside htree+teleport).
    """

    spec: ScenarioSpec
    seed: int
    circuit: QuantumCircuit
    input_state: PathState
    ideal_output: PathState
    keep_qubits: tuple[int, ...]
    device: DeviceModel
    extra_swaps: int
    link_sites: tuple[tuple[int, int], ...]  # (gate_index, charged qubit) x link ops
    logical_gates: int
    logical_depth: int
    #: Entanglement-link hops physically present in ``circuit`` (the
    #: ``teleport-executed`` routing); 0 when links are analytic or absent.
    executed_link_operations: int = 0
    #: Mid-circuit measurements in ``circuit`` (executed teleport links and
    #: dual-rail parity checks).
    measurements: int = 0
    #: ``(cbit, expected_outcome)`` postselection checks (the dual-rail
    #: mapping's parity/flag outcomes); empty means keep every shot.
    postselect: tuple[tuple[int, int], ...] = ()

    @property
    def executed_gates(self) -> int:
        """Number of gates actually executed (includes expanded link ops)."""
        return len(self.circuit.gates)

    @property
    def executed_depth(self) -> int:
        """ASAP depth of the executed circuit (frame corrections are free)."""
        return circuit_depth(self.circuit)

    @property
    def link_operations(self) -> int:
        """Teleport-link operations, analytic (site table) or executed."""
        return len(self.link_sites) + self.executed_link_operations

    @property
    def idle_error_rate(self) -> float:
        """Idle dephasing probability at ``eps_r = 1`` (spec override or device)."""
        if self.spec.idle_error is not None:
            return self.spec.idle_error
        return self.device.idle_error

    @property
    def readout_error_rate(self) -> float:
        """Per-qubit readout error rate at ``eps_r = 1`` (0.0 when not folded)."""
        return self.device.readout_error if self.spec.readout else 0.0

    def readout_survival(self, error_reduction_factor: float) -> float:
        """Probability every kept qubit reads out correctly at one ``eps_r``.

        Readout is one measurement per kept qubit at the end of the query,
        so its closed form multiplies the state-overlap fidelity:
        ``(1 - readout_error / eps_r) ** len(keep_qubits)``.  Returns 1.0
        unless the spec opted in via :attr:`ScenarioSpec.readout`.
        """
        if not self.spec.readout:
            return 1.0
        rate = self.device.readout_error / error_reduction_factor
        return (1.0 - rate) ** len(self.keep_qubits)

    def noise_model(self, error_reduction_factor: float) -> NoiseModel:
        """Instantiate the scenario's noise at one error-reduction factor.

        Layering (and therefore random-stream site order) is fixed: device
        gate noise, then schedule-aware idle noise
        (:func:`~repro.hardware.noise_model.scheduled_device_noise_model`),
        then teleportation-link noise.  Every layer divides its rates by the
        same ``eps_r``.
        """
        model: NoiseModel = scheduled_device_noise_model(
            self.device,
            self.circuit,
            error_reduction_factor=error_reduction_factor,
            idle_error=self.idle_error_rate,
        )
        if self.link_sites:
            link_channel = PauliChannel.depolarizing(
                self.device.two_qubit_error / error_reduction_factor
            )
            per_gate: dict[int, list[tuple[int, PauliChannel]]] = {}
            for gate_index, qubit in self.link_sites:
                per_gate.setdefault(gate_index, []).append((qubit, link_channel))
            n_gates = len(self.circuit.gates)
            model = ScheduledNoiseModel(
                base=model,
                gate_sites=tuple(
                    tuple(per_gate.get(index, ())) for index in range(n_gates)
                ),
            )
        return model


def _build_architecture(spec: ScenarioSpec, seed: int) -> QRAMArchitecture:
    memory = random_memory(spec.memory_width, seed)
    cls = _ARCHITECTURE_CLASSES[spec.architecture]
    return cls(memory=memory, qram_width=spec.qram_width)


def _calibration(spec: ScenarioSpec) -> DeviceModel:
    if spec.device is not None:
        return DEVICES[spec.device]
    return REFERENCE_CALIBRATION


def _teleport_link_sites(
    circuit: QuantumCircuit, embedding: HTreeEmbedding
) -> tuple[tuple[int, int], ...]:
    """Link-noise sites of every remote gate: ``(gate_index, charged qubit)``.

    A gate whose operands sit ``d > 1`` apart on the grid consumes
    ``2 * (d - 1)`` entanglement-link operations (EPR halves plus Bell
    measurements on the ``d - 1`` routing qubits of the path); each shows up
    as one site on the gate's first operand.  ``gate_index`` counts
    barrier-free gates, matching the tape enumeration.
    """
    positions = embedding.logical_positions(circuit)
    sites: list[tuple[int, int]] = []
    gate_index = 0
    for instr in circuit.instructions:
        if instr.is_barrier:
            continue
        if len(instr.qubits) >= 2:
            coordinates = [positions[q] for q in instr.qubits]
            distance = max(
                Grid2D.manhattan_distance(a, b)
                for i, a in enumerate(coordinates)
                for b in coordinates[i + 1 :]
            )
            if distance > 1:
                sites.extend(
                    (gate_index, instr.qubits[0]) for _ in range(2 * (distance - 1))
                )
        gate_index += 1
    return tuple(sites)


def compile_scenario(spec: ScenarioSpec, seed: int) -> CompiledScenario:
    """Build, embed and route one scenario (memoised per process).

    A spec with ``router=None`` is first pinned to the *current* default
    router, so the memoised result can never go stale when the session
    default changes (and ``CompiledScenario.spec.router`` always names the
    router that actually ran).  The cache is what lets every
    ``(sweep point, shot shard)`` work unit landing on a pool worker reuse
    the routed circuit and precomputed states, mirroring the Figure 12
    bundle pattern.
    """
    if spec.router is None:
        spec = replace(spec, router=get_default_router())
    return _compile_resolved(spec, seed)


@lru_cache(maxsize=32)
def _compile_resolved(spec: ScenarioSpec, seed: int) -> CompiledScenario:
    architecture = _build_architecture(spec, seed)
    logical = architecture.build_circuit()
    logical_input = architecture.input_state()
    logical_ideal = architecture.ideal_output(logical_input)
    calibration = _calibration(spec)
    logical_gates = len(logical.gates)
    logical_depth = circuit_depth(logical)

    if spec.mapping == "none":
        return CompiledScenario(
            spec=spec,
            seed=seed,
            circuit=logical,
            input_state=logical_input,
            ideal_output=logical_ideal,
            keep_qubits=tuple(architecture.kept_qubits()),
            device=calibration,
            extra_swaps=0,
            link_sites=(),
            logical_gates=logical_gates,
            logical_depth=logical_depth,
        )

    if spec.mapping == "dual-rail":
        expansion = encode_dual_rail(logical)
        return CompiledScenario(
            spec=spec,
            seed=seed,
            circuit=expansion.circuit,
            input_state=expansion.map_state(logical_input),
            ideal_output=expansion.map_state(logical_ideal),
            # The algorithm consumes the *logical* kept registers, so the
            # reduced fidelity keeps both rails of each kept logical qubit
            # (non-kept rails park in the fixed |10> codeword and the
            # ancillae frame-reset to |0>, so the ideal output stays a
            # product across the cut).
            keep_qubits=tuple(
                rail
                for q in architecture.kept_qubits()
                for rail in rail_pair(q)
            ),
            device=calibration,
            extra_swaps=0,
            link_sites=(),
            logical_gates=logical_gates,
            logical_depth=logical_depth,
            measurements=len(expansion.postselect),
            postselect=expansion.postselect,
        )

    if spec.mapping == "htree" and spec.routing in (
        "teleport-executed",
        "teleport-fused",
    ):
        embedding = HTreeEmbedding(tree_depth=spec.qram_width)
        expansion = expand_teleport_links(
            logical,
            embedding,
            calibration=calibration,
            fused=spec.routing == "teleport-fused",
        )
        # Fused links branch the path set; surface an over-budget circuit
        # here, at compile time, instead of deep inside a sweep worker.
        compile_circuit(expansion.circuit).require_branch_budget()
        return CompiledScenario(
            spec=spec,
            seed=seed,
            circuit=expansion.circuit,
            input_state=expansion.map_state(logical_input),
            ideal_output=expansion.map_state(logical_ideal),
            keep_qubits=tuple(architecture.kept_qubits()),
            device=expansion.layout.device,
            extra_swaps=0,
            link_sites=(),
            logical_gates=logical_gates,
            logical_depth=logical_depth,
            executed_link_operations=expansion.link_operations,
            measurements=expansion.measurements,
        )

    if spec.mapping == "htree" and spec.routing == "teleport":
        embedding = HTreeEmbedding(tree_depth=spec.qram_width)
        return CompiledScenario(
            spec=spec,
            seed=seed,
            circuit=logical,
            input_state=logical_input,
            ideal_output=logical_ideal,
            keep_qubits=tuple(architecture.kept_qubits()),
            device=calibration,
            extra_swaps=0,
            link_sites=_teleport_link_sites(logical, embedding),
            logical_gates=logical_gates,
            logical_depth=logical_depth,
        )

    if spec.mapping == "htree":
        embedding = HTreeEmbedding(tree_depth=spec.qram_width)
        layout = htree_device(embedding, logical, calibration=calibration)
        routed = make_router(spec.router, layout.device).route(
            logical, layout.initial_layout
        )
    else:  # mapping == "device"
        routed = make_router(spec.router, calibration).route(logical)

    return CompiledScenario(
        spec=spec,
        seed=seed,
        circuit=routed.circuit,
        input_state=routed.map_state(logical_input, final=False),
        ideal_output=routed.map_state(logical_ideal, final=True),
        keep_qubits=tuple(
            routed.physical_qubits(architecture.kept_qubits(), final=True)
        ),
        device=routed.device,
        extra_swaps=routed.swap_count,
        link_sites=(),
        logical_gates=logical_gates,
        logical_depth=logical_depth,
    )
