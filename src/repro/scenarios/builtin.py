"""Built-in scenarios: the comparisons the paper's story is built on.

Three families, all registered at import time:

* **Mapping ablation at m = 3** (``ideal-m3`` / ``htree-swap-m3`` /
  ``htree-teleport-m3``): the same virtual QRAM under identical reference
  calibration, differing only in how communication is realised.  Routing
  overhead is *simulated*, not just counted, so the mapped variants must
  come out strictly below the ideal one at equal noise -- with swap routing
  paying a deeper schedule than teleportation's constant-depth links, which
  is the paper's core Sec. 4 claim.

* **Executed-vs-analytic teleport ablation** (``htree-teleport-m3`` /
  ``htree-teleport-executed`` / ``htree-teleport-executed-idle``): the same
  teleport-routed workload with the links *modelled* (analytic fidelity
  multiplier) versus *executed* (entanglement-link hop CXs, mid-circuit
  measurement, Pauli-frame feedforward -- see
  :mod:`repro.mapping.teleport`).  At zero noise the executed links
  reproduce the logical output exactly; at finite noise the two variants
  agree within Monte-Carlo error wherever the gate structure lets the
  expansion match the analytic site count (the upstream router CSWAPs pay a
  genuine state-exchange round trip on top).  The ``-idle`` variant turns on
  schedule-aware idle noise, exposing the depth cost the analytic
  constant-depth model hides.

* **Fused-link ablation** (``htree-teleport-fused`` /
  ``htree-teleport-fused-idle``): the executed workload with every payload
  hop chain replaced by one constant-depth entanglement-swapping link (Bell
  pairs prepared in a single mid-circuit-``H`` layer, one layer of
  Bell-state measurements, exact per-stage frame corrections).  At zero
  noise it reproduces the logical output exactly like the hop chains; under
  schedule-aware idle dephasing the constant link depth must beat
  ``htree-teleport-executed-idle`` -- the comparison the branching engine
  support exists to make.

* **Dual-rail erasure-detection ablation** (``htree-dual-rail-m3`` /
  ``htree-dual-rail-idle`` and the bare-vs-dual pair ``bare-bb-m2`` /
  ``dual-rail-bb-m2``): the same workloads encoded with two erasure-
  detecting rails per logical qubit and postselected parity checks
  (:mod:`repro.mapping.dual_rail`).  Single-rail ``X``/``Y`` noise leaves
  the codespace and is *detected* -- rejected shots are discarded and
  accounted in the records' ``kept_fraction``.  The ``bb-m2`` pair runs on
  the erasure-biased ``dual-rail-cavity`` calibration (X/Y-dominant noise,
  the physical regime dual-rail qubits are built for), where the encoded
  variant's postselected fidelity must beat its bare partner at equal
  ``eps_r`` (gated in ``benchmarks/bench_dual_rail.py``) -- at the price of
  more physical qubits, more gates, and the discarded shots.

* **Device studies** (``perth-m1`` / ``guadalupe-m2``): the Figure 12
  methodology as sweepable scenarios -- route onto the named backend, sweep
  the error-reduction factor.

* **Idle-noise ablations** (``ideal-m3-idle`` / ``perth-m1-idle``): the same
  workloads with schedule-aware idle dephasing switched from 0 to the device
  calibration, isolating what waiting qubits cost.

* **Router ablations** (``perth-m1-lookahead`` / ``guadalupe-m2-lookahead``):
  the device studies re-routed with the SABRE-style lookahead router -- same
  workload and noise, fewer SWAPs, so the fidelity at equal ``eps_r`` comes
  out *above* the greedy-routed variant (routing quality is a noise lever).

* **Readout ablation** (``perth-m1-readout``): the ``m = 1`` device study
  with the device's readout-error calibration folded into the fidelity
  (each kept qubit survives readout with probability
  ``1 - readout_error / eps_r``).
"""

from __future__ import annotations

from repro.scenarios.spec import ScenarioSpec, register_scenario

_SWEEP = (1.0, 10.0, 100.0)

BUILTIN_SCENARIOS: tuple[ScenarioSpec, ...] = (
    ScenarioSpec(
        name="ideal-m3",
        description="virtual QRAM m=3, unmapped (all-to-all), reference noise",
        qram_width=3,
        mapping="none",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-swap-m3",
        description="virtual QRAM m=3 on the H-tree grid, SWAP-chain routing",
        qram_width=3,
        mapping="htree",
        routing="swap",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-teleport-m3",
        description="virtual QRAM m=3 on the H-tree grid, teleported links",
        qram_width=3,
        mapping="htree",
        routing="teleport",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-teleport-executed",
        description=(
            "htree-teleport-m3 with links executed: measured hop chains + "
            "Pauli-frame feedforward"
        ),
        qram_width=3,
        mapping="htree",
        routing="teleport-executed",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-teleport-executed-idle",
        description=(
            "executed teleport links plus schedule-aware idle dephasing "
            "(the links' real depth cost)"
        ),
        qram_width=3,
        mapping="htree",
        routing="teleport-executed",
        idle_error=None,
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-teleport-fused",
        description=(
            "executed teleport links fused into constant-depth "
            "entanglement-swapping (Bell pairs + BSMs, branched paths)"
        ),
        qram_width=3,
        mapping="htree",
        routing="teleport-fused",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-teleport-fused-idle",
        description=(
            "fused teleport links plus schedule-aware idle dephasing "
            "(constant link depth pays less idle cost than hop chains)"
        ),
        qram_width=3,
        mapping="htree",
        routing="teleport-fused",
        idle_error=None,
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-dual-rail-m3",
        description=(
            "virtual QRAM m=3 (the H-tree workload) dual-rail encoded: "
            "erasure-detecting rails + postselected parity checks"
        ),
        qram_width=3,
        mapping="dual-rail",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="htree-dual-rail-idle",
        description=(
            "htree-dual-rail-m3 plus schedule-aware idle dephasing "
            "(the encoding's depth overhead priced in)"
        ),
        qram_width=3,
        mapping="dual-rail",
        idle_error=None,
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="bare-bb-m2",
        description=(
            "bucket-brigade QRAM m=2, unencoded on erasure-biased noise -- "
            "the bare half of the bare-vs-dual-rail ablation"
        ),
        architecture="bucket-brigade",
        qram_width=2,
        mapping="none",
        device="dual-rail-cavity",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="dual-rail-bb-m2",
        description=(
            "bucket-brigade QRAM m=2, dual-rail encoded on erasure-biased "
            "noise -- postselected partner of bare-bb-m2"
        ),
        architecture="bucket-brigade",
        qram_width=2,
        mapping="dual-rail",
        device="dual-rail-cavity",
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="perth-m1",
        description="virtual QRAM m=1,k=1 routed onto ibm_perth (Fig. 12)",
        qram_width=1,
        sqc_width=1,
        mapping="device",
        device="ibm_perth",
        error_reduction_factors=(1.0, 10.0, 100.0, 1000.0),
    ),
    ScenarioSpec(
        name="guadalupe-m2",
        description="virtual QRAM m=2 routed onto ibmq_guadalupe (Fig. 12)",
        qram_width=2,
        mapping="device",
        device="ibmq_guadalupe",
        error_reduction_factors=(1.0, 10.0, 100.0, 1000.0),
    ),
    ScenarioSpec(
        name="ideal-m3-idle",
        description="ideal-m3 plus schedule-aware idle dephasing (device T2)",
        qram_width=3,
        mapping="none",
        idle_error=None,
        error_reduction_factors=_SWEEP,
    ),
    ScenarioSpec(
        name="perth-m1-idle",
        description="perth-m1 plus schedule-aware idle dephasing (device T2)",
        qram_width=1,
        sqc_width=1,
        mapping="device",
        device="ibm_perth",
        idle_error=None,
        error_reduction_factors=(1.0, 10.0, 100.0, 1000.0),
    ),
    ScenarioSpec(
        name="perth-m1-lookahead",
        description="perth-m1 re-routed with the SABRE-style lookahead router",
        qram_width=1,
        sqc_width=1,
        mapping="device",
        device="ibm_perth",
        router="lookahead",
        error_reduction_factors=(1.0, 10.0, 100.0, 1000.0),
    ),
    ScenarioSpec(
        name="guadalupe-m2-lookahead",
        description="guadalupe-m2 re-routed with the SABRE-style lookahead router",
        qram_width=2,
        mapping="device",
        device="ibmq_guadalupe",
        router="lookahead",
        error_reduction_factors=(1.0, 10.0, 100.0, 1000.0),
    ),
    ScenarioSpec(
        name="perth-m1-readout",
        description="perth-m1 with device readout error folded into fidelity",
        qram_width=1,
        sqc_width=1,
        mapping="device",
        device="ibm_perth",
        readout=True,
        error_reduction_factors=(1.0, 10.0, 100.0, 1000.0),
    ),
)

for _spec in BUILTIN_SCENARIOS:
    register_scenario(_spec)
