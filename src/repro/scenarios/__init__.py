"""Named, sweepable end-to-end simulation scenarios.

The figure experiments each exercise one slice of the stack -- Figure 8 maps
without noise, Figure 12 adds device noise without the H-tree geometry.  A
*scenario* composes every layer into one declarative spec:

    architecture -> circuit -> embedding/routing -> device noise (+ idle)
        -> sharded Monte-Carlo sweep

Specs live in :mod:`~repro.scenarios.spec` (with a name registry), compile
in :mod:`~repro.scenarios.compile` and execute through the deterministic
sweep runner in :mod:`~repro.scenarios.run`.  Importing this package
registers the built-in scenarios of :mod:`~repro.scenarios.builtin`;
``python -m repro.experiments scenario --list`` enumerates them.
"""

from repro.scenarios.builtin import BUILTIN_SCENARIOS
from repro.scenarios.compile import CompiledScenario, compile_scenario
from repro.scenarios.record import RECORD_SCHEMA_VERSION, ScenarioRecord
from repro.scenarios.run import resolve_run, run_scenario, scenario_report
from repro.scenarios.spec import (
    ScenarioSpec,
    available_scenarios,
    get_scenario,
    iter_scenarios,
    register_scenario,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "CompiledScenario",
    "RECORD_SCHEMA_VERSION",
    "ScenarioRecord",
    "ScenarioSpec",
    "available_scenarios",
    "compile_scenario",
    "get_scenario",
    "iter_scenarios",
    "register_scenario",
    "resolve_run",
    "run_scenario",
    "scenario_report",
]
