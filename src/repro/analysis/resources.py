"""Resource formulas of Tables 1 and 2, plus measured counterparts.

Two complementary views are provided for each table:

* the **paper formulas** (``table1_formulas`` / ``table2_formulas``), the
  closed-form expressions printed in the paper (Table 2's entries are Big-O,
  so constant factors are not meaningful there); and
* the **measured rows** (``measured_table1_row`` / ``measured_table2_row``),
  obtained by actually building the circuits with the corresponding options
  and counting qubits, depth, classically-controlled gates and Clifford+T
  costs.  The benchmarks print both so the scaling claims can be checked
  against real circuits rather than formulas alone.
"""

from __future__ import annotations

from typing import Callable

from repro.qram.bucket_brigade import BucketBrigadeQRAM
from repro.qram.memory import ClassicalMemory
from repro.qram.select_swap import SelectSwapQRAM
from repro.qram.virtual_qram import VirtualQRAM, VirtualQRAMOptions

#: Table 1 column order.
OPTIMIZATION_COLUMNS: tuple[str, ...] = ("RAW", "OPT1", "OPT2", "OPT3", "ALL")

#: Options object used to build the circuit for each Table 1 column.
OPTIMIZATION_OPTIONS: dict[str, VirtualQRAMOptions] = {
    "RAW": VirtualQRAMOptions.raw(),
    "OPT1": VirtualQRAMOptions.only("recycling"),
    "OPT2": VirtualQRAMOptions.only("lazy"),
    "OPT3": VirtualQRAMOptions.only("pipelining"),
    "ALL": VirtualQRAMOptions.all_enabled(),
}


# ---------------------------------------------------------------------------
# Table 1: optimization ablation formulas (paper, Sec. 7.1)
# ---------------------------------------------------------------------------


def table1_formulas(m: int, k: int) -> dict[str, dict[str, float]]:
    """Closed-form Table 1 entries for QRAM width ``m`` and SQC width ``k``.

    Qubits: the RAW layout spends 6 qubits per tree cell (router, wire and a
    dedicated data qubit per internal node plus the leaf layer); recycling
    (OPT1) removes the dedicated data qubits, leaving 4 per cell.
    Circuit depth: pipelining (OPT3) turns the quadratic address-loading term
    ``m^2`` into ``m``.  Classically-controlled gates: lazy swapping (OPT2)
    halves the expected count for uniformly random data.
    """
    capacity = 1 << m
    pages = 1 << k

    def depth(pipelined: bool) -> float:
        loading = m if pipelined else m * m
        return loading + (m + 1) * pages

    def classical(lazy: bool) -> float:
        total = (1 << (m + k)) / 2.0  # expected number of 1-bits in the memory
        return total / 2.0 if lazy else total

    def qubits(recycled: bool) -> float:
        per_cell = 4 if recycled else 6
        return per_cell * capacity + k

    table: dict[str, dict[str, float]] = {}
    for column in OPTIMIZATION_COLUMNS:
        recycled = column in ("OPT1", "ALL")
        lazy = column in ("OPT2", "ALL")
        pipelined = column in ("OPT3", "ALL")
        table[column] = {
            "qubits": qubits(recycled),
            "circuit_depth": depth(pipelined),
            "classical_controlled_gates": classical(lazy),
        }
    return table


def measured_table1_row(
    memory: ClassicalMemory, qram_width: int
) -> dict[str, dict[str, int]]:
    """Table 1 measured on built circuits (one column per optimization set)."""
    table: dict[str, dict[str, int]] = {}
    for column in OPTIMIZATION_COLUMNS:
        options = OPTIMIZATION_OPTIONS[column]
        architecture = VirtualQRAM(
            memory=memory, qram_width=qram_width, options=options
        )
        report = architecture.resource_report()
        table[column] = {
            "qubits": report.qubits,
            "circuit_depth": report.circuit_depth,
            "classical_controlled_gates": report.classical_controlled_gates,
        }
    return table


# ---------------------------------------------------------------------------
# Table 2: architecture comparison formulas (paper, Sec. 7.1)
# ---------------------------------------------------------------------------

#: Table 2 row labels in paper order.
TABLE2_METRICS: tuple[str, ...] = (
    "qubits",
    "circuit_depth",
    "t_count",
    "t_depth",
    "clifford_depth",
)


def table2_formulas(m: int, k: int) -> dict[str, dict[str, float]]:
    """Big-O formulas of Table 2 evaluated at concrete ``(m, k)``.

    The entries are the expressions printed in the paper with implicit
    constants set to one; only their scaling (ratios between architectures as
    ``m`` and ``k`` grow) is meaningful.
    """
    capacity = 1 << m
    pages = 1 << k
    return {
        "SQC+BB": {
            "qubits": capacity + k,
            "circuit_depth": m * pages,
            "t_count": (capacity + k) * pages,
            "t_depth": (m + k) * pages,
            "clifford_depth": (m + k) * pages,
        },
        "SQC+SS": {
            "qubits": capacity + k,
            "circuit_depth": m * m * pages,
            "t_count": capacity + k * pages,
            "t_depth": m + k * pages,
            "clifford_depth": (m * m + k) * pages,
        },
        "Ours": {
            "qubits": capacity + k,
            "circuit_depth": m * pages,
            "t_count": capacity + k * pages,
            "t_depth": m + k * pages,
            "clifford_depth": (m + k) * pages,
        },
    }


#: Builders used for the measured Table 2 rows.
TABLE2_BUILDERS: dict[str, Callable[[ClassicalMemory, int], object]] = {
    "SQC+BB": lambda memory, m: BucketBrigadeQRAM(memory=memory, qram_width=m),
    "SQC+SS": lambda memory, m: SelectSwapQRAM(memory=memory, qram_width=m),
    "Ours": lambda memory, m: VirtualQRAM(memory=memory, qram_width=m),
}


def measured_table2_row(
    memory: ClassicalMemory, qram_width: int
) -> dict[str, dict[str, int]]:
    """Table 2 measured on built circuits for the three compared architectures."""
    table: dict[str, dict[str, int]] = {}
    for label, builder in TABLE2_BUILDERS.items():
        architecture = builder(memory, qram_width)
        report = architecture.resource_report()
        table[label] = {
            "qubits": report.qubits,
            "circuit_depth": report.circuit_depth,
            "t_count": report.clifford_t.t_count,
            "t_depth": report.clifford_t.t_depth,
            "clifford_depth": report.clifford_t.clifford_depth,
        }
    return table
