"""Pauli error-cone propagation through QRAM circuits (Sec. 5.1, Fig. 7).

The structural reason the virtual QRAM is resilient to Z noise is a
commutation fact: a Z error on the *control* of a CX (or on any control of a
CCX/MCX/CSWAP) commutes with the gate, so it never spreads to other qubits;
an X error on a CX control, by contrast, propagates onto the target and --
through the data-retrieval CX array -- all the way to the root and the bus.

This module makes that argument executable: :func:`error_cone` conjugates a
single inserted Pauli through the remainder of a circuit and reports the set
of qubits it can reach.  Conjugation through the non-Clifford classical gates
(CCX, MCX, CSWAP) does not stay inside the Pauli group; in those cases the
cone is widened conservatively (the affected qubits are an over-estimate, so
"the cone never reaches the bus" remains a sound conclusion).

:func:`z_error_locality_fraction` sweeps every possible error location of a
circuit and reports how often the cone avoids a chosen register -- applied to
the bus of a virtual QRAM it demonstrates the paper's locality claim, and the
test-suite pins the resulting asymmetry between Z and X errors.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction


@dataclass
class ErrorCone:
    """Forward-propagated support of one inserted Pauli error."""

    origin_qubit: int
    origin_pauli: str
    start_index: int
    x_support: set[int] = field(default_factory=set)
    z_support: set[int] = field(default_factory=set)
    clifford_only: bool = True

    @property
    def support(self) -> set[int]:
        """All qubits the error can touch by the end of the circuit."""
        return self.x_support | self.z_support

    def reaches(self, qubits: list[int]) -> bool:
        """True when the cone intersects ``qubits`` with a *bit-flip* component.

        Phase information on traced-out ancillas is harmless; what corrupts a
        query is an X component on the kept registers (wrong data/address) or
        a Z component on them (dephasing), so both supports are checked.
        """
        targets = set(qubits)
        return bool(self.support & targets)


def _propagate_through(instr: Instruction, cone: ErrorCone) -> None:
    """Update the cone supports by conjugating through one gate."""
    gate = instr.gate
    qubits = instr.qubits
    x_set, z_set = cone.x_support, cone.z_support

    if gate in ("I", "BARRIER", "X", "Y", "Z", "S", "SDG", "T", "TDG", "H"):
        # Single-qubit gates permute X/Z on the same qubit; the support sets
        # are unchanged (H swaps X and Z supports on its qubit).
        if gate == "H" and qubits[0] in (x_set | z_set):
            has_x = qubits[0] in x_set
            has_z = qubits[0] in z_set
            if has_x and not has_z:
                x_set.discard(qubits[0])
                z_set.add(qubits[0])
            elif has_z and not has_x:
                z_set.discard(qubits[0])
                x_set.add(qubits[0])
        return

    if gate == "CX":
        control, target = qubits
        if control in x_set:
            x_set.add(target)
        if target in z_set:
            z_set.add(control)
        return

    if gate == "CZ":
        control, target = qubits
        if control in x_set:
            z_set.add(target)
        if target in x_set:
            z_set.add(control)
        return

    if gate == "SWAP":
        a, b = qubits
        for support in (x_set, z_set):
            has_a, has_b = a in support, b in support
            if has_a != has_b:
                support.symmetric_difference_update({a, b})
        return

    if gate in ("CCX", "MCX"):
        controls, target = qubits[:-1], qubits[-1]
        # Z on a control commutes (diagonal in the control basis): no spread.
        # X on the target commutes with the X-type action: no spread.
        if any(c in x_set for c in controls):
            # Bit-flipping a control toggles whether the target flips: the
            # conjugated operator is no longer a Pauli; widen conservatively.
            cone.clifford_only = False
            x_set.add(target)
        if target in z_set:
            cone.clifford_only = False
            z_set.update(controls)
        return

    if gate == "CSWAP":
        control, a, b = qubits
        if control in x_set:
            cone.clifford_only = False
            x_set.update({a, b})
        if a in (x_set | z_set) or b in (x_set | z_set):
            # The payload may sit on either output depending on the control.
            cone.clifford_only = False
            if a in x_set or b in x_set:
                x_set.update({a, b})
            if a in z_set or b in z_set:
                z_set.update({a, b})
            if control in z_set or a in z_set or b in z_set:
                pass
        return

    raise ValueError(f"unsupported gate {gate} in error propagation")


def error_cone(
    circuit: QuantumCircuit, start_index: int, qubit: int, pauli: str
) -> ErrorCone:
    """Propagate a Pauli inserted *after* instruction ``start_index``.

    ``pauli`` is one of ``"X"``, ``"Y"``, ``"Z"``; a Y error seeds both
    supports.  The returned :class:`ErrorCone` describes every qubit the error
    may have spread to by the end of the circuit.
    """
    pauli = pauli.upper()
    if pauli not in ("X", "Y", "Z"):
        raise ValueError(f"pauli must be X, Y or Z, got {pauli!r}")
    cone = ErrorCone(origin_qubit=qubit, origin_pauli=pauli, start_index=start_index)
    if pauli in ("X", "Y"):
        cone.x_support.add(qubit)
    if pauli in ("Z", "Y"):
        cone.z_support.add(qubit)
    for instr in circuit.instructions[start_index + 1:]:
        if instr.is_barrier:
            continue
        _propagate_through(instr, cone)
    return cone


def pauli_weight_at_output(
    circuit: QuantumCircuit, start_index: int, qubit: int, pauli: str
) -> int:
    """Number of output qubits the propagated error can touch."""
    return len(error_cone(circuit, start_index, qubit, pauli).support)


def z_error_locality_fraction(
    circuit: QuantumCircuit,
    protected_qubits: list[int],
    pauli: str = "Z",
) -> float:
    """Fraction of error locations whose cone avoids ``protected_qubits``.

    An error location is (gate index, operand qubit) for every gate in the
    circuit, matching the gate-based noise model.  Applied with
    ``pauli="Z"`` to a virtual QRAM and the bus qubit, this fraction stays
    close to 1 (locality, Fig. 7); with ``pauli="X"`` it collapses because
    bit flips ride the CX compression array to the root.
    """
    locations = 0
    avoided = 0
    for index, instr in enumerate(circuit.instructions):
        if instr.is_barrier or instr.is_noise:
            continue
        for qubit in instr.qubits:
            locations += 1
            cone = error_cone(circuit, index, qubit, pauli)
            if not cone.reaches(protected_qubits):
                avoided += 1
    if locations == 0:
        return 1.0
    return avoided / locations
