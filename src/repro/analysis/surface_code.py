"""Asymmetric (rectangular) surface-code model for fault-tolerant QRAM (Sec. 5.2).

The virtual QRAM tolerates Z errors far better than X errors, so a logical
qubit protecting it should spend more code distance on the X-type checks than
on the Z-type checks.  A rectangular surface code with distances ``d_x`` and
``d_z`` has logical error rates whose *ratio* depends only on the distance
difference (Eq. 7's premise, after Bonilla Ataides et al.):

    p_x^L / p_z^L  ~=  (p / p_th) ** (d_x - d_z)

Setting the residual logical X and Z infidelity contributions of the QRAM
equal (using the bounds of Eqs. 5 and 6) gives the design rule of Eq. 7:

    d_x - d_z  ~=  log((k + m) / (k + 2**m)) / log(p / p_th)

The SQC address qubits have no bias to exploit, so they keep a square code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class RectangularSurfaceCode:
    """A rotated surface code patch with independent X/Z distances.

    Parameters
    ----------
    d_x, d_z:
        Code distances against logical X and logical Z errors.
    physical_error_rate:
        Per-operation physical error rate ``p``.
    threshold:
        Code threshold ``p_th`` (the paper's Appendix assumes ~1e-2).
    prefactor:
        Constant in the logical-error-rate fit ``A (p / p_th)**d``.
    """

    d_x: int
    d_z: int
    physical_error_rate: float = 1e-3
    threshold: float = 1e-2
    prefactor: float = 0.1

    def __post_init__(self) -> None:
        if self.d_x < 1 or self.d_z < 1:
            raise ValueError("code distances must be positive")
        if not 0 < self.physical_error_rate < 1:
            raise ValueError("physical error rate must be in (0, 1)")
        if not 0 < self.threshold < 1:
            raise ValueError("threshold must be in (0, 1)")
        if self.physical_error_rate >= self.threshold:
            raise ValueError("physical error rate must be below threshold")

    @property
    def ratio(self) -> float:
        """``p / p_th`` (the suppression base)."""
        return self.physical_error_rate / self.threshold

    def logical_x_rate(self) -> float:
        """Logical X (bit-flip) error rate, suppressed by ``d_x``."""
        return self.prefactor * self.ratio**self.d_x

    def logical_z_rate(self) -> float:
        """Logical Z (phase-flip) error rate, suppressed by ``d_z``."""
        return self.prefactor * self.ratio**self.d_z

    def logical_bias(self) -> float:
        """The logical error-rate ratio ``p_x^L / p_z^L = (p/p_th)^(d_x-d_z)``."""
        return self.ratio ** (self.d_x - self.d_z)

    def physical_qubits(self) -> int:
        """Physical qubits per logical patch (data + measure, ~2 d_x d_z)."""
        return 2 * self.d_x * self.d_z - 1


def balanced_distance_gap(
    m: int, k: int, physical_error_rate: float, threshold: float
) -> float:
    """Eq. (7): the distance gap ``d_x - d_z`` that balances logical X/Z damage.

    The target ratio of logical rates equals the ratio of the virtual QRAM's
    sensitivity coefficients, ``(k + m) / (k + 2**m)`` -- the architecture is
    far more sensitive to X errors, so the X distance must be larger
    (the gap is positive because the log of a ratio < 1 divided by the log of
    ``p/p_th`` < 1 is positive).
    """
    if m < 1:
        raise ValueError("QRAM width m must be at least 1")
    if k < 0:
        raise ValueError("SQC width k must be non-negative")
    if not 0 < physical_error_rate < threshold:
        raise ValueError("need 0 < p < p_th")
    sensitivity_ratio = (k + m) / (k + 2**m)
    return math.log(sensitivity_ratio) / math.log(physical_error_rate / threshold)


@dataclass(frozen=True)
class SurfaceCodeDesign:
    """A complete code assignment for one virtual QRAM configuration."""

    m: int
    k: int
    qram_code: RectangularSurfaceCode
    sqc_code: RectangularSurfaceCode
    target_logical_rate: float

    def total_physical_qubits(self, logical_qram_qubits: int, logical_sqc_qubits: int) -> int:
        """Physical qubit budget for a given count of logical qubits."""
        return (
            logical_qram_qubits * self.qram_code.physical_qubits()
            + logical_sqc_qubits * self.sqc_code.physical_qubits()
        )

    def summary(self) -> dict:
        """Plain-dict summary of the surface-code analysis."""
        return {
            "m": self.m,
            "k": self.k,
            "qram_d_x": self.qram_code.d_x,
            "qram_d_z": self.qram_code.d_z,
            "sqc_distance": self.sqc_code.d_x,
            "qram_logical_x": self.qram_code.logical_x_rate(),
            "qram_logical_z": self.qram_code.logical_z_rate(),
            "target_logical_rate": self.target_logical_rate,
        }


def design_asymmetric_code(
    m: int,
    k: int,
    *,
    physical_error_rate: float = 1e-3,
    threshold: float = 1e-2,
    target_logical_rate: float = 1e-9,
    prefactor: float = 0.1,
) -> SurfaceCodeDesign:
    """Choose rectangular-code distances for the QRAM part and a square code for the SQC.

    The Z distance is the smallest value whose logical Z rate meets
    ``target_logical_rate``; the X distance adds the (rounded-up) balanced gap
    of Eq. 7.  The SQC register, having no bias to exploit, uses a square code
    at the larger of the two distances.
    """
    ratio = physical_error_rate / threshold
    if ratio >= 1:
        raise ValueError("physical error rate must be below threshold")

    d_z = 1
    while prefactor * ratio**d_z > target_logical_rate:
        d_z += 1
        if d_z > 1000:
            raise RuntimeError("failed to reach the target logical rate")
    gap = math.ceil(balanced_distance_gap(m, k, physical_error_rate, threshold))
    d_x = d_z + max(gap, 0)

    qram_code = RectangularSurfaceCode(
        d_x=d_x,
        d_z=d_z,
        physical_error_rate=physical_error_rate,
        threshold=threshold,
        prefactor=prefactor,
    )
    sqc_distance = max(d_x, d_z)
    sqc_code = RectangularSurfaceCode(
        d_x=sqc_distance,
        d_z=sqc_distance,
        physical_error_rate=physical_error_rate,
        threshold=threshold,
        prefactor=prefactor,
    )
    return SurfaceCodeDesign(
        m=m,
        k=k,
        qram_code=qram_code,
        sqc_code=sqc_code,
        target_logical_rate=target_logical_rate,
    )
