"""Closed-form query-fidelity lower bounds (Sec. 5.1 of the paper).

The bounds quantify the *intrinsic* biased-noise resilience of the router
architectures: under a per-qubit phase-flip (Z) channel of strength ``eps``
the infidelity of the QRAM part grows only polynomially with the address
width ``m`` (Eq. 3), whereas bit-flip (X) errors propagate through the CX
compression array and destroy the query, giving an infidelity that grows with
the full tree size ``2**m``.  The hybrid bounds (Eqs. 5 and 6) add the SQC
part, which has no resilience to any Pauli error.

All functions return a value clamped to ``[0, 1]`` so they can be compared
directly against Monte-Carlo fidelity estimates; the raw (unclamped) bound is
available through ``clamp=False`` where the asymptotic expression matters.
"""

from __future__ import annotations


def _clamp(value: float, clamp: bool) -> float:
    if not clamp:
        return value
    return max(0.0, min(1.0, value))


def expected_good_branch_fraction(epsilon: float, m: int) -> float:
    """Probability that one address branch sees no Z error on its routers.

    Each branch traverses ``m`` routers and the paper charges each router an
    error opportunity per traversal level, giving ``(1 - eps)**(m**2)`` --
    the quantity ``E[c] / 2**m`` in the derivation of Eq. (4).
    """
    if epsilon < 0 or epsilon > 1:
        raise ValueError("epsilon must be in [0, 1]")
    if m < 0:
        raise ValueError("m must be non-negative")
    return (1.0 - epsilon) ** (m * m)


def qram_z_fidelity_bound(epsilon: float, m: int, *, clamp: bool = True) -> float:
    """Eq. (3): the QRAM part's fidelity under Z noise, ``F >= 1 - 4 eps m^2``."""
    return _clamp(1.0 - 4.0 * epsilon * m * m, clamp)


def dual_rail_z_fidelity_bound(epsilon: float, m: int, *, clamp: bool = True) -> float:
    """Dual-rail variant of Eq. (3): ``F >= 1 - 8 eps m^2`` (doubled qubit count)."""
    return _clamp(1.0 - 8.0 * epsilon * m * m, clamp)


def qram_x_fidelity_bound(epsilon: float, m: int, *, clamp: bool = True) -> float:
    """X-error fidelity of the QRAM part: ``F >= 1 - 8 eps m 2^m``.

    A single bit-flip anywhere in the compression tree reaches the root, so
    the exponent carries the full qubit count -- the "exponential difference"
    between the Z and X channels discussed below Eq. (4).
    """
    return _clamp(1.0 - 8.0 * epsilon * m * (1 << m), clamp)


def sqc_fidelity_bound(epsilon: float, k: int, *, clamp: bool = True) -> float:
    """SQC part under arbitrary Pauli noise: ``F >= 1 - eps k 2^k``.

    Every gate of the sequential query acts directly on the address/bus
    registers, so any single error is fatal; the bound simply counts error
    opportunities.
    """
    return _clamp(1.0 - epsilon * k * (1 << k), clamp)


def virtual_z_fidelity_bound(
    epsilon: float, m: int, k: int, *, clamp: bool = True
) -> float:
    """Eq. (5): virtual QRAM (QRAM width ``m``, SQC width ``k``) under Z noise."""
    return _clamp(1.0 - 8.0 * epsilon * (m + 1) * (1 << k) * (k + m), clamp)


def virtual_x_fidelity_bound(
    epsilon: float, m: int, k: int, *, clamp: bool = True
) -> float:
    """Eq. (6): virtual QRAM under X noise."""
    return _clamp(1.0 - 8.0 * epsilon * (m + 1) * (1 << k) * (k + 2**m), clamp)


def bucket_brigade_fidelity_bound(
    epsilon: float, m: int, *, clamp: bool = True
) -> float:
    """Bucket-brigade resilience to generic noise (Hann et al., cited as [28]).

    The bucket-brigade baseline tolerates arbitrary Pauli noise with an
    infidelity polynomial in the address width; the paper states it matches
    the virtual QRAM's Z-error scaling, so the same ``1 - 4 eps m^2`` form is
    used as its reference curve in the Figure 9 comparison.
    """
    return _clamp(1.0 - 4.0 * epsilon * m * m, clamp)


def expected_z_fidelity(epsilon: float, m: int) -> float:
    """The sharper expectation ``E[F] >= (2 (1-eps)^{m^2} - 1)^2`` of Eq. (4)."""
    good = expected_good_branch_fraction(epsilon, m)
    return max(0.0, 2.0 * good - 1.0) ** 2


def error_reduction_factor_needed(
    target_fidelity: float, m: int, k: int, base_epsilon: float = 1e-3
) -> float:
    """Error-reduction factor ``eps_r`` needed to reach ``target_fidelity``.

    Inverts Eq. (5) (the binding Z-error bound) for the Appendix-A style
    question "how much better must hardware get before a virtual QRAM of this
    size reaches fidelity F?".
    """
    if not 0.0 < target_fidelity < 1.0:
        raise ValueError("target fidelity must be strictly between 0 and 1")
    required_epsilon = (1.0 - target_fidelity) / (
        8.0 * (m + 1) * (1 << k) * (k + m if (k + m) > 0 else 1)
    )
    return base_epsilon / required_epsilon
