"""Deployment planner: size a virtual QRAM for a target workload and fidelity.

The paper's conclusion is a list of "technology advances needed to scale up
QRAM"; this module turns that discussion into a small decision procedure a
systems designer can run:

    given a memory size N, a target query fidelity, the physical error rate
    of the hardware (or a range of error-reduction factors), and a qubit
    budget -- which (m, k) split should be used, does it need error
    correction, and what does it cost?

The planner combines the analytic fidelity bounds (Sec. 5.1), the resource
models behind Tables 1-2, the H-tree layout statistics (Sec. 4.2) and the
asymmetric surface-code design rule (Sec. 5.2).  It is deliberately
conservative: it uses the lower bounds, so a plan it accepts will not be
invalidated by the Monte-Carlo simulation (the planner tests check this).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.fidelity import (
    virtual_x_fidelity_bound,
    virtual_z_fidelity_bound,
)
from repro.analysis.surface_code import SurfaceCodeDesign, design_asymmetric_code
from repro.mapping.htree import HTreeEmbedding


@dataclass(frozen=True)
class DeploymentPlan:
    """One feasible virtual-QRAM deployment."""

    memory_size: int
    m: int
    k: int
    epsilon: float
    predicted_fidelity_z: float
    predicted_fidelity_x: float
    logical_qubits: int
    grid_rows: int
    grid_cols: int
    needs_error_correction: bool
    code_design: SurfaceCodeDesign | None = None

    @property
    def predicted_fidelity(self) -> float:
        """The binding (worst-case over the two channels) fidelity bound."""
        return min(self.predicted_fidelity_z, self.predicted_fidelity_x)

    def physical_qubits(self) -> int:
        """Physical qubits of the plan (logical count if no code is needed)."""
        if self.code_design is None:
            return self.logical_qubits
        tree_logical = self.logical_qubits - self.k
        return self.code_design.total_physical_qubits(tree_logical, self.k)

    def summary(self) -> dict:
        """Plain-dict summary of the plan (for tables and JSON export)."""
        return {
            "memory_size": self.memory_size,
            "m": self.m,
            "k": self.k,
            "epsilon": self.epsilon,
            "predicted_fidelity": self.predicted_fidelity,
            "logical_qubits": self.logical_qubits,
            "grid": f"{self.grid_rows}x{self.grid_cols}",
            "needs_error_correction": self.needs_error_correction,
            "physical_qubits": self.physical_qubits(),
        }


def logical_qubit_count(m: int, k: int) -> int:
    """Logical qubits of the (recycled) virtual QRAM layout.

    Two qubits per internal router node, one per leaf, plus the address and
    bus registers -- the same accounting the builders use.
    """
    internal = (1 << m) - 1
    leaves = 1 << m
    return 2 * internal + leaves + m + k + 1


def candidate_splits(memory_size: int) -> list[tuple[int, int]]:
    """All (m, k) splits of a power-of-two memory, largest tree first."""
    if memory_size < 2 or memory_size & (memory_size - 1):
        raise ValueError("memory size must be a power of two and at least 2")
    n = memory_size.bit_length() - 1
    return [(m, n - m) for m in range(n, 0, -1)]


def plan_deployment(
    memory_size: int,
    *,
    target_fidelity: float = 0.99,
    epsilon: float = 1e-3,
    max_logical_qubits: int | None = None,
    allow_error_correction: bool = True,
    code_threshold: float = 1e-2,
) -> DeploymentPlan | None:
    """Choose an (m, k) split meeting the fidelity target within the qubit budget.

    The search prefers the largest physical tree that fits the budget (the
    Figure 11 guidance), and falls back to an error-corrected deployment (the
    Sec. 5.2 asymmetric code, with the physical error rate suppressed to the
    code's logical rate) when no bare-hardware split meets the target.
    Returns ``None`` when no plan is feasible under the given constraints.
    """
    if not 0.0 < target_fidelity < 1.0:
        raise ValueError("target fidelity must be in (0, 1)")
    if epsilon <= 0 or epsilon >= 1:
        raise ValueError("epsilon must be in (0, 1)")

    feasible_bare: list[DeploymentPlan] = []
    feasible_corrected: list[DeploymentPlan] = []
    for m, k in candidate_splits(memory_size):
        logical = logical_qubit_count(m, k)
        if max_logical_qubits is not None and logical > max_logical_qubits:
            continue
        embedding = HTreeEmbedding(tree_depth=m)
        fidelity_z = virtual_z_fidelity_bound(epsilon, m, k)
        fidelity_x = virtual_x_fidelity_bound(epsilon, m, k)
        plan = DeploymentPlan(
            memory_size=memory_size,
            m=m,
            k=k,
            epsilon=epsilon,
            predicted_fidelity_z=fidelity_z,
            predicted_fidelity_x=fidelity_x,
            logical_qubits=logical,
            grid_rows=embedding.grid.rows,
            grid_cols=embedding.grid.cols,
            needs_error_correction=False,
        )
        if plan.predicted_fidelity >= target_fidelity:
            feasible_bare.append(plan)
            continue
        if not allow_error_correction or epsilon >= code_threshold:
            continue
        # Error-corrected fallback: pick code distances so the *logical* error
        # rate brings the bound above the target.
        required_epsilon = _epsilon_for_target(target_fidelity, m, k)
        code = design_asymmetric_code(
            m,
            k,
            physical_error_rate=epsilon,
            threshold=code_threshold,
            target_logical_rate=required_epsilon,
        )
        logical_epsilon = max(
            code.qram_code.logical_x_rate(), code.qram_code.logical_z_rate()
        )
        corrected = DeploymentPlan(
            memory_size=memory_size,
            m=m,
            k=k,
            epsilon=logical_epsilon,
            predicted_fidelity_z=virtual_z_fidelity_bound(logical_epsilon, m, k),
            predicted_fidelity_x=virtual_x_fidelity_bound(logical_epsilon, m, k),
            logical_qubits=logical,
            grid_rows=embedding.grid.rows,
            grid_cols=embedding.grid.cols,
            needs_error_correction=True,
            code_design=code,
        )
        if corrected.predicted_fidelity >= target_fidelity:
            feasible_corrected.append(corrected)

    if feasible_bare:
        # Largest tree first (the candidate order), i.e. fewest pages.
        return feasible_bare[0]
    if feasible_corrected:
        return min(feasible_corrected, key=lambda plan: plan.physical_qubits())
    return None


def _epsilon_for_target(target_fidelity: float, m: int, k: int) -> float:
    """Per-qubit error rate at which the binding bound reaches the target."""
    infidelity = 1.0 - target_fidelity
    z_coefficient = 8.0 * (m + 1) * (1 << k) * (k + m if (k + m) > 0 else 1)
    x_coefficient = 8.0 * (m + 1) * (1 << k) * (k + 2**m)
    return infidelity / max(z_coefficient, x_coefficient)


def required_error_reduction(
    memory_size: int,
    target_fidelity: float,
    *,
    current_epsilon: float = 1e-3,
) -> dict[tuple[int, int], float]:
    """Error-reduction factor each (m, k) split needs to hit the target.

    This is the planner's view of the Appendix-A question: for every split of
    the memory, how much better than today's hardware must the error rate be?
    """
    requirements: dict[tuple[int, int], float] = {}
    for m, k in candidate_splits(memory_size):
        needed_epsilon = _epsilon_for_target(target_fidelity, m, k)
        requirements[(m, k)] = current_epsilon / needed_epsilon
    return requirements
