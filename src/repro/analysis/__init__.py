"""Analytic models from the paper: fidelity bounds, noise propagation, codes, resources.

* :mod:`~repro.analysis.fidelity` -- the closed-form query-fidelity lower
  bounds of Sec. 5.1 (Eqs. 3, 5, 6 and the dual-rail/X-error variants);
* :mod:`~repro.analysis.biased_noise` -- Pauli error-cone propagation through
  QRAM circuits, the structural argument behind the Z-bias resilience (Fig. 7);
* :mod:`~repro.analysis.surface_code` -- the rectangular (asymmetric) surface
  code model and the distance-gap design rule of Eq. 7 (Sec. 5.2);
* :mod:`~repro.analysis.resources` -- the resource formulas of Tables 1 and 2
  together with helpers that compare them against counts measured on built
  circuits.
"""

from repro.analysis.biased_noise import (
    ErrorCone,
    error_cone,
    pauli_weight_at_output,
    z_error_locality_fraction,
)
from repro.analysis.fidelity import (
    bucket_brigade_fidelity_bound,
    dual_rail_z_fidelity_bound,
    expected_good_branch_fraction,
    qram_x_fidelity_bound,
    qram_z_fidelity_bound,
    sqc_fidelity_bound,
    virtual_x_fidelity_bound,
    virtual_z_fidelity_bound,
)
from repro.analysis.planner import (
    DeploymentPlan,
    candidate_splits,
    logical_qubit_count,
    plan_deployment,
    required_error_reduction,
)
from repro.analysis.resources import (
    OPTIMIZATION_COLUMNS,
    measured_table1_row,
    measured_table2_row,
    table1_formulas,
    table2_formulas,
)
from repro.analysis.surface_code import (
    RectangularSurfaceCode,
    SurfaceCodeDesign,
    balanced_distance_gap,
    design_asymmetric_code,
)

__all__ = [
    "DeploymentPlan",
    "ErrorCone",
    "OPTIMIZATION_COLUMNS",
    "candidate_splits",
    "logical_qubit_count",
    "plan_deployment",
    "required_error_reduction",
    "RectangularSurfaceCode",
    "SurfaceCodeDesign",
    "balanced_distance_gap",
    "bucket_brigade_fidelity_bound",
    "design_asymmetric_code",
    "dual_rail_z_fidelity_bound",
    "error_cone",
    "expected_good_branch_fraction",
    "measured_table1_row",
    "measured_table2_row",
    "pauli_weight_at_output",
    "qram_x_fidelity_bound",
    "qram_z_fidelity_bound",
    "sqc_fidelity_bound",
    "table1_formulas",
    "table2_formulas",
    "virtual_x_fidelity_bound",
    "virtual_z_fidelity_bound",
    "z_error_locality_fraction",
]
