"""Teleport-aware SABRE routing (the ``"lookahead-teleport"`` registry entry).

The lookahead router resolves blocked gates exclusively with SWAPs: moving a
logical qubit ``d`` coupling edges costs ``d`` SWAPs and drags every qubit on
the way out of place.  On devices with *free* vertices -- the H-tree layouts,
whose routing-chain qubits carry no logical state, or any backend larger than
the circuit -- measurement-based teleportation offers a second primitive: hop
the qubit across a chain of free vertices with the one-bit teleportation
gadget (``CX`` + X-basis ``MEASURE`` + ``CPAULI`` Pauli-frame corrections,
see :mod:`repro.mapping.teleport`), leaving the intermediate vertices reset
to |0> and *no other logical qubit disturbed*.

:class:`TeleportSwapRouter` scores both primitives in the same candidate
loop (the ROADMAP's "bridge/teleport-aware routing" unification): each
decision step compares the best SWAP against the best teleport relocation --
a front-layer operand hopping through currently-free vertices to a free
vertex adjacent to its gate's other operands -- under the same
decay-weighted front + lookahead-window heuristic, with a per-hop penalty
(``hop_weight``) standing in for the link operations a relocation consumes.
Whichever move scores lower is applied; layout-selection passes apply the
same relocations to the layout without emitting instructions.

Routed circuits therefore mix SWAPs (tagged ``"routing"``) with teleport
hops (tagged ``"teleport"``), and remain fully executable by every engine:
measurement outcomes are sampled per shot from the seeded streams and the
frame corrections keep :meth:`RoutedCircuit.map_state` exact -- the routed
circuit reproduces the logical outcome for *every* outcome realisation,
which the routing-equivalence property harness pins down.

Determinism matches the base router: candidates are enumerated in sorted
order with strict first-minimum tie-breaking, so routed circuits -- and
seeded noisy trajectories through them -- are bit-for-bit reproducible.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import ClassVar

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.feedforward import emit_hop
from repro.circuit.instruction import Instruction
from repro.hardware.lookahead import LookaheadSwapRouter
from repro.hardware.router import apply_swap, register_router


@dataclass
class TeleportSwapRouter(LookaheadSwapRouter):
    """Lookahead router that scores teleport relocations alongside SWAPs.

    Parameters (beyond :class:`LookaheadSwapRouter`)
    ------------------------------------------------
    hop_weight:
        Heuristic cost per teleport hop, in the same units as the
        MST-excess distance heuristic (one SWAP shortens a route by at most
        one edge, one hop by arbitrarily many).  Under the device noise
        model a hop CX and a native SWAP both cost two operand error sites,
        but a hop only consumes *free* ancillas while a SWAP drags a second
        logical qubit out of place -- the default ``0.75`` encodes that
        discount, so relocations fire on long free chains (where they
        genuinely shorten the route or spare the neighbourhood) and pure
        SWAP routing wins at the short distances that dominate small H-tree
        and IBM-backend workloads.
    max_hops:
        Longest free-vertex chain a single relocation may hop across (a
        cost guard for the BFS; relocations this long are rarely scored
        best anyway).
    """

    name: ClassVar[str] = "lookahead-teleport"

    hop_weight: float = 0.75
    max_hops: int = 16

    # ------------------------------------------------------------- candidates
    def _free_chain(
        self,
        source: int,
        targets: set[int],
        physical_to_logical: dict[int, int],
    ) -> list[int] | None:
        """Shortest hop chain ``source -> free ... free`` ending in ``targets``.

        Interior vertices and the landing vertex must all be free (host no
        logical qubit).  BFS over free vertices guarantees minimality;
        neighbour iteration is sorted for determinism.  Returns the chain
        *excluding* ``source``, or ``None``.
        """
        parents: dict[int, int] = {source: source}
        queue = deque([(source, 0)])
        while queue:
            vertex, hops = queue.popleft()
            if hops >= self.max_hops:
                continue
            for neighbour in sorted(self._adjacency[vertex]):
                if neighbour in parents or neighbour in physical_to_logical:
                    continue
                parents[neighbour] = vertex
                if neighbour in targets:
                    chain = [neighbour]
                    while parents[chain[-1]] != source:
                        chain.append(parents[chain[-1]])
                    return chain[::-1]
                queue.append((neighbour, hops + 1))
        return None

    def _teleport_candidates(
        self,
        front: list[int],
        instructions: list[Instruction],
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
    ) -> list[tuple[int, list[int]]]:
        """Relocations worth scoring: ``(logical qubit, hop chain)`` pairs.

        For every blocked front gate and every operand, try to land the
        operand on a free vertex adjacent to one of the gate's *other*
        operands.  Deduplicated by logical qubit (first -- i.e. shortest
        BFS -- chain wins; candidate enumeration order is deterministic).
        """
        candidates: list[tuple[int, list[int]]] = []
        seen: set[int] = set()
        for index in front:
            operands = instructions[index].qubits
            for operand in operands:
                if operand in seen:
                    continue
                source = logical_to_physical[operand]
                landing_zone = {
                    neighbour
                    for other in operands
                    if other != operand
                    for neighbour in self._adjacency[logical_to_physical[other]]
                    if neighbour not in physical_to_logical
                }
                landing_zone.discard(source)
                if not landing_zone:
                    continue
                chain = self._free_chain(source, landing_zone, physical_to_logical)
                if chain:
                    seen.add(operand)
                    candidates.append((operand, chain))
        return candidates

    # ------------------------------------------------------------------ moves
    def _relocation_score(
        self,
        logical: int,
        landing: int,
        hops: int,
        front: list[int],
        window: list[int],
        instructions: list[Instruction],
        logical_to_physical: dict[int, int],
        decay: np.ndarray,
    ) -> float:
        """Score a relocation under the SWAP heuristic plus the hop penalty."""
        source = logical_to_physical[logical]

        def moved(qubit: int) -> int:
            physical = logical_to_physical[qubit]
            return landing if qubit == logical else physical

        front_cost = sum(
            self._gate_cost([moved(q) for q in instructions[index].qubits])
            for index in front
        ) / len(front)
        window_cost = (
            sum(
                self._gate_cost([moved(q) for q in instructions[index].qubits])
                for index in window
            )
            / len(window)
            if window
            else 0.0
        )
        return max(decay[source], decay[landing]) * (
            front_cost
            + self.lookahead_weight * window_cost
            + self.hop_weight * hops
        )

    def _emit_hop(
        self, source: int, target: int, routed: QuantumCircuit | None
    ) -> None:
        """One one-bit teleportation hop ``source -> target`` (both physical).

        The gadget itself is shared with the H-tree link expansion
        (:func:`repro.circuit.feedforward.emit_hop`), so both link emitters
        stay convention-identical by construction.
        """
        if routed is None:
            return
        emit_hop(routed, source, target)

    def _apply_best_move(
        self,
        front: list[int],
        instructions: list[Instruction],
        done: list[bool],
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        decay: np.ndarray,
        routed: QuantumCircuit | None,
    ) -> tuple[int, int]:
        """Score SWAPs and teleport relocations together; apply the winner."""
        (swap_a, swap_b), swap_score = self._best_swap(
            front, instructions, done, logical_to_physical, decay
        )
        window = self._extended_window(front, instructions, done)
        best_relocation: tuple[int, list[int]] | None = None
        best_score = swap_score
        for logical, chain in self._teleport_candidates(
            front, instructions, logical_to_physical, physical_to_logical
        ):
            score = self._relocation_score(
                logical,
                chain[-1],
                len(chain),
                front,
                window,
                instructions,
                logical_to_physical,
                decay,
            )
            if score < best_score - 1e-12:
                best_relocation = (logical, chain)
                best_score = score

        if best_relocation is None:
            apply_swap(
                swap_a, swap_b, logical_to_physical, physical_to_logical, routed
            )
            return (swap_a, swap_b)

        logical, chain = best_relocation
        source = logical_to_physical[logical]
        stops = [source, *chain]
        for a, b in zip(stops, stops[1:]):
            self._emit_hop(a, b, routed)
        del physical_to_logical[source]
        logical_to_physical[logical] = chain[-1]
        physical_to_logical[chain[-1]] = logical
        return (source, chain[-1])


register_router(TeleportSwapRouter)
