"""SWAP-insertion routing for sparse device topologies (Appendix A).

The paper transpiles its small virtual QRAMs onto IBM hardware with Qiskit's
SABRE pass and reports the number of extra SWAP gates forced by the devices'
sparse connectivity (5 / 20 / 65 / 99 for the four Figure 12 configurations).
Qiskit is not available offline, so this module provides compact stand-ins
behind a name-based **router registry** mirroring the engine registry of
:mod:`repro.sim.engine`:

``"greedy-swap"``
    :class:`GreedySwapRouter` (this module, the default): walks the circuit
    in program order and, whenever a gate's operands do not form a connected
    patch of the coupling map, moves the farthest operand one coupling edge
    at a time towards the rest, inserting SWAP gates (tagged ``"routing"``)
    and updating the logical-to-physical layout as it goes.

``"lookahead"``
    :class:`~repro.hardware.lookahead.LookaheadSwapRouter`: SABRE-style
    front-layer routing with an extended lookahead window, a decay-weighted
    distance heuristic and a forward/backward/forward pass that also selects
    the initial layout.

Greedy routing is not as SWAP-frugal as SABRE, but it preserves exactly what
Figure 12 needs: a functionally correct physical circuit whose extra SWAPs
scale with the mismatch between the QRAM's connectivity demands and the
device, and which can be fed to the noisy Feynman-path simulator.  Routers
resolve by name through :func:`make_router`; the module-level default
(``"greedy-swap"``) can be swapped globally with :func:`set_default_router`,
which is how ``python -m repro.experiments --router`` reroutes every scenario
compile without threading a parameter through each runner.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import ClassVar

import networkx as nx
import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.hardware.devices import DeviceModel
from repro.sim.paths import PathState


@dataclass
class RoutedCircuit:
    """Result of routing a logical circuit onto a device."""

    circuit: QuantumCircuit
    device: DeviceModel
    initial_layout: dict[int, int]
    final_layout: dict[int, int]

    @property
    def swap_count(self) -> int:
        """Number of SWAP gates inserted by the router."""
        return self.circuit.count_tagged("routing")

    @property
    def link_operations(self) -> int:
        """Teleport-hop CX gates inserted by a teleport-aware router."""
        return sum(
            1
            for instr in self.circuit.gates
            if instr.gate == "CX" and "teleport" in instr.tags
        )

    def physical_qubits(self, logical_qubits: list[int], *, final: bool = True) -> list[int]:
        """Physical positions of ``logical_qubits`` (final layout by default)."""
        layout = self.final_layout if final else self.initial_layout
        return [layout[q] for q in logical_qubits]

    def map_state(self, state: PathState, *, final: bool = False) -> PathState:
        """Embed a logical :class:`PathState` into the physical qubit space.

        Input states use the initial layout (``final=False``); expected output
        states use the final layout, since routing leaves logical qubits at
        their post-routing physical positions.
        """
        layout = self.final_layout if final else self.initial_layout
        bits = np.zeros((state.num_paths, self.device.num_qubits), dtype=bool)
        for logical in range(state.num_qubits):
            bits[:, layout[logical]] = state.bits[:, logical]
        return PathState(bits=bits, amplitudes=state.amplitudes.copy())


def check_layout(
    circuit: QuantumCircuit, layout: dict[int, int], device: DeviceModel
) -> None:
    """Validate a logical-to-physical layout for ``circuit`` on ``device``."""
    if set(layout) != set(range(circuit.num_qubits)):
        raise ValueError("initial layout must cover every logical qubit exactly once")
    placements = list(layout.values())
    if len(set(placements)) != len(placements):
        raise ValueError("initial layout maps two logical qubits to one physical qubit")
    for physical in placements:
        if not 0 <= physical < device.num_qubits:
            raise ValueError(f"physical qubit {physical} outside the device")


def apply_swap(
    physical_a: int,
    physical_b: int,
    logical_to_physical: dict[int, int],
    physical_to_logical: dict[int, int],
    routed: QuantumCircuit | None,
) -> None:
    """Record one routing SWAP and update both layout directions.

    ``routed`` may be ``None`` for layout-selection passes that only need the
    final layout, not the routed instructions.
    """
    if routed is not None:
        routed.append(
            Instruction(
                gate="SWAP",
                qubits=(physical_a, physical_b),
                tags=frozenset({"routing"}),
            )
        )
    logical_a = physical_to_logical.get(physical_a)
    logical_b = physical_to_logical.get(physical_b)
    if logical_a is not None:
        logical_to_physical[logical_a] = physical_b
    if logical_b is not None:
        logical_to_physical[logical_b] = physical_a
    if logical_a is not None:
        physical_to_logical[physical_b] = logical_a
    elif physical_b in physical_to_logical:
        del physical_to_logical[physical_b]
    if logical_b is not None:
        physical_to_logical[physical_a] = logical_b
    elif physical_a in physical_to_logical:
        del physical_to_logical[physical_a]


@dataclass
class GreedySwapRouter:
    """Route circuits onto a :class:`DeviceModel` by greedy SWAP insertion."""

    name: ClassVar[str] = "greedy-swap"

    device: DeviceModel
    _graph: nx.Graph = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._graph = self.device.to_networkx()
        if not nx.is_connected(self._graph):
            raise ValueError("device coupling map must be connected")

    # --------------------------------------------------------------- routing
    def route(
        self,
        circuit: QuantumCircuit,
        initial_layout: dict[int, int] | None = None,
    ) -> RoutedCircuit:
        """Insert SWAPs so every gate acts on a connected patch of the device.

        ``initial_layout`` maps logical to physical qubits; the identity
        layout is used when omitted.  The routed circuit acts on the device's
        physical qubit indices.
        """
        if circuit.num_qubits > self.device.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but device "
                f"{self.device.name} has only {self.device.num_qubits}"
            )
        if initial_layout is None:
            initial_layout = {q: q for q in range(circuit.num_qubits)}
        self._check_layout(circuit, initial_layout)

        logical_to_physical = dict(initial_layout)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}
        routed = QuantumCircuit(
            num_qubits=self.device.num_qubits, metadata=dict(circuit.metadata)
        )

        for instr in circuit.instructions:
            if instr.is_barrier:
                physical = tuple(logical_to_physical[q] for q in instr.qubits)
                routed.append(Instruction(gate="BARRIER", qubits=physical))
                continue
            if len(instr.qubits) > 1:
                self._make_executable(
                    instr.qubits, logical_to_physical, physical_to_logical, routed
                )
            physical = tuple(logical_to_physical[q] for q in instr.qubits)
            routed.append(
                Instruction(gate=instr.gate, qubits=physical, tags=instr.tags)
            )

        return RoutedCircuit(
            circuit=routed,
            device=self.device,
            initial_layout=dict(initial_layout),
            final_layout=dict(logical_to_physical),
        )

    # ----------------------------------------------------------------- helpers
    def _check_layout(self, circuit: QuantumCircuit, layout: dict[int, int]) -> None:
        check_layout(circuit, layout, self.device)

    def _operands_connected(self, physical: list[int]) -> bool:
        if len(physical) <= 1:
            return True
        subgraph = self._graph.subgraph(physical)
        return nx.is_connected(subgraph)

    def _make_executable(
        self,
        logical_operands: tuple[int, ...],
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: QuantumCircuit,
    ) -> None:
        """Insert SWAPs until the gate's operands form a connected patch.

        The operands already connected to the first operand form the *core*;
        each round the closest outside operand walks along a shortest path
        until it touches the core, so the core grows by at least one operand
        per round and the procedure terminates after at most
        ``len(operands) - 1`` rounds.
        """
        anchor_logical = logical_operands[0]
        for _ in range(len(logical_operands)):
            physical = [logical_to_physical[q] for q in logical_operands]
            if self._operands_connected(physical):
                return
            core = self._core_component(
                logical_operands, anchor_logical, logical_to_physical
            )
            core_physical = {logical_to_physical[q] for q in core}
            outside = [q for q in logical_operands if q not in core]
            mover, path = self._closest_outside_path(
                outside, core_physical, logical_to_physical
            )
            # Walk the mover along the path until it is adjacent to the core
            # (the last path vertex is inside the core, so stop one short).
            for step_index in range(len(path) - 2):
                self._emit_swap(
                    path[step_index],
                    path[step_index + 1],
                    logical_to_physical,
                    physical_to_logical,
                    routed,
                )
        physical = [logical_to_physical[q] for q in logical_operands]
        if not self._operands_connected(physical):  # pragma: no cover - safety net
            raise RuntimeError("routing failed to converge")

    def _core_component(
        self,
        logical_operands: tuple[int, ...],
        anchor_logical: int,
        logical_to_physical: dict[int, int],
    ) -> set[int]:
        """Operands already connected (via the coupling map) to the anchor."""
        physical_to_operand = {
            logical_to_physical[q]: q for q in logical_operands
        }
        subgraph = self._graph.subgraph(physical_to_operand)
        component = nx.node_connected_component(
            subgraph, logical_to_physical[anchor_logical]
        )
        return {physical_to_operand[p] for p in component}

    def _closest_outside_path(
        self,
        outside: list[int],
        core_physical: set[int],
        logical_to_physical: dict[int, int],
    ) -> tuple[int, list[int]]:
        """The outside operand closest to the core and its shortest path there."""
        best_operand: int | None = None
        best_path: list[int] | None = None
        for operand in outside:
            source = logical_to_physical[operand]
            lengths, paths = nx.single_source_dijkstra(self._graph, source)
            reachable = [p for p in core_physical if p in lengths]
            target = min(reachable, key=lambda p: lengths[p])
            if best_path is None or lengths[target] < len(best_path) - 1:
                best_operand = operand
                best_path = paths[target]
        assert best_operand is not None and best_path is not None
        return best_operand, best_path

    @staticmethod
    def _emit_swap(
        physical_a: int,
        physical_b: int,
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        routed: QuantumCircuit,
    ) -> None:
        apply_swap(
            physical_a, physical_b, logical_to_physical, physical_to_logical, routed
        )


# ===================================================================== registry
_ROUTERS: dict[str, type] = {}
_DEFAULT_ROUTER = "greedy-swap"


def register_router(router_class: type, *, aliases: tuple[str, ...] = ()) -> type:
    """Register ``router_class`` under its ``name`` (plus ``aliases``)."""
    for key in (router_class.name, *aliases):
        _ROUTERS[key] = router_class
    return router_class


def available_routers() -> list[str]:
    """Sorted names of every registered router."""
    return sorted(_ROUTERS)


def get_router_class(spec: str | type | None = None) -> type:
    """Resolve a router name (``None`` means the current default) to its class."""
    if isinstance(spec, type):
        return spec
    key = _DEFAULT_ROUTER if spec is None else spec
    try:
        return _ROUTERS[key]
    except KeyError:
        raise KeyError(
            f"unknown router {key!r}; available: {available_routers()}"
        ) from None


def make_router(spec: str | type | None, device: DeviceModel, **options):
    """Instantiate the router named ``spec`` (or the default) for ``device``.

    Unlike engines, routers are stateful per device (they precompute the
    coupling graph and distance tables), so the registry stores classes and
    this factory builds a fresh instance; ``options`` forward to the router's
    constructor (e.g. the lookahead window size).
    """
    return get_router_class(spec)(device, **options)


def get_default_router() -> str:
    """Name of the router used when none is specified."""
    return _DEFAULT_ROUTER


def set_default_router(name: str) -> None:
    """Globally switch the default router (e.g. from the experiments CLI)."""
    global _DEFAULT_ROUTER
    if name not in _ROUTERS:
        raise KeyError(f"unknown router {name!r}; available: {available_routers()}")
    _DEFAULT_ROUTER = name


register_router(GreedySwapRouter)
