"""Device models and routing for the Appendix-A hardware study (Figure 12).

The paper evaluates small virtual QRAMs under realistic IBM Quantum noise
models (``ibm_perth`` for ``m = 1`` and ``ibmq_guadalupe`` for ``m = 2``).
Neither Qiskit nor the IBM calibration service is available offline, so this
package substitutes:

* :mod:`~repro.hardware.devices` -- the two devices' public coupling maps and
  synthetic calibration data at the error-rate scale the paper assumes
  (~1e-3), scalable by the error-reduction factor ``eps_r``;
* :mod:`~repro.hardware.noise_model` -- a gate-based noise model derived from
  a device's calibration, distinguishing one- and two-qubit gate errors;
* :mod:`~repro.hardware.router` -- the router registry plus a lightweight
  greedy swap-insertion router: it makes remote gates executable on the
  sparse coupling map and reports the extra SWAP count that Figure 12 lists
  under its legend;
* :mod:`~repro.hardware.lookahead` -- a SABRE-style lookahead router
  (front-layer + extended-window scoring, decay heuristic,
  forward/backward/forward initial-layout selection) that stands in for
  Qiskit's SABRE pass proper and routes with fewer SWAPs than the greedy
  baseline;
* :mod:`~repro.hardware.teleport_router` -- the lookahead pass extended with
  measurement-based teleport relocations through free vertices, scored in
  the same candidate loop as SWAPs (the Sec. 4.3 communication primitive as
  a routing move).

The substitution preserves what Figure 12 actually measures: how the extra
SWAPs forced by sparse connectivity and the overall error scale affect query
fidelity as hardware improves.
"""

from repro.hardware.devices import (
    DEVICES,
    DeviceModel,
    grid_device,
    ibm_perth_like,
    ibmq_guadalupe_like,
)
from repro.hardware.noise_model import (
    DeviceNoiseModel,
    device_noise_model,
    scheduled_device_noise_model,
)
from repro.hardware.router import (
    GreedySwapRouter,
    RoutedCircuit,
    available_routers,
    get_default_router,
    get_router_class,
    make_router,
    register_router,
    set_default_router,
)
from repro.hardware.lookahead import LookaheadSwapRouter
from repro.hardware.teleport_router import TeleportSwapRouter

__all__ = [
    "DEVICES",
    "DeviceModel",
    "DeviceNoiseModel",
    "GreedySwapRouter",
    "LookaheadSwapRouter",
    "RoutedCircuit",
    "TeleportSwapRouter",
    "available_routers",
    "device_noise_model",
    "get_default_router",
    "get_router_class",
    "grid_device",
    "ibm_perth_like",
    "ibmq_guadalupe_like",
    "make_router",
    "register_router",
    "scheduled_device_noise_model",
    "set_default_router",
]
