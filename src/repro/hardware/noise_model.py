"""Gate-based noise models derived from a device's calibration (Appendix A).

The paper's Figure 12 simulates small virtual QRAMs under a realistic noise
model obtained from IBM hardware and then divides every error rate by an
*error-reduction factor* ``eps_r`` to predict how future hardware would
perform.  :func:`device_noise_model` reproduces that methodology on the
synthetic :class:`~repro.hardware.devices.DeviceModel` calibrations: every
gate is followed by depolarizing noise on its operands, with two-qubit gates
drawing the (larger) two-qubit error rate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.circuit.instruction import Instruction
from repro.hardware.devices import DeviceModel
from repro.sim.noise import NoiseModel, PauliChannel, with_idle_noise

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import QuantumCircuit


@dataclass(frozen=True)
class DeviceNoiseModel(NoiseModel):
    """Depolarizing gate noise with separate one- and two-qubit error rates.

    Parameters
    ----------
    single_qubit_channel / two_qubit_channel:
        Per-operand channels applied after one-qubit and multi-qubit gates.
    device_name:
        Recorded for reporting.
    error_reduction_factor:
        The ``eps_r`` divisor already applied to the channels (kept for
        bookkeeping; :meth:`scaled` composes further factors).
    """

    single_qubit_channel: PauliChannel
    two_qubit_channel: PauliChannel
    device_name: str = "unknown"
    error_reduction_factor: float = 1.0

    def gate_error_channels(self, instr: Instruction) -> list[tuple[int, PauliChannel]]:
        """Depolarizing sites on every operand (measurements/frames are free)."""
        if instr.is_barrier or instr.is_noise or instr.is_measurement or instr.is_frame:
            # Measurement noise is modelled separately (the readout-survival
            # factor of ScenarioSpec.readout); CPAULI frame corrections are
            # software and never execute as physical gates.
            return []
        channel = (
            self.single_qubit_channel
            if len(instr.qubits) == 1
            else self.two_qubit_channel
        )
        if channel.is_trivial:
            return []
        return [(qubit, channel) for qubit in instr.qubits]

    def scaled(self, factor: float) -> "DeviceNoiseModel":
        """Copy with both channels scaled by ``factor``."""
        return DeviceNoiseModel(
            single_qubit_channel=self.single_qubit_channel.scaled(factor),
            two_qubit_channel=self.two_qubit_channel.scaled(factor),
            device_name=self.device_name,
            error_reduction_factor=self.error_reduction_factor / factor,
        )


def device_noise_model(
    device: DeviceModel, error_reduction_factor: float = 1.0
) -> DeviceNoiseModel:
    """Build the Appendix-A noise model for ``device`` at a given ``eps_r``.

    ``eps_r = 1`` reproduces "current hardware"; larger values model the
    improved machines the paper extrapolates to (``eps_r = 10`` roughly the
    near-term target, ``eps_r = 100`` the error-corrected regime).

    The device's :attr:`~repro.hardware.devices.DeviceModel.pauli_bias`
    splits each gate's total error rate across ``X``/``Y``/``Z``; the
    default ``(1, 1, 1)`` is exactly the paper's depolarizing channel while
    erasure-qubit calibrations shift weight onto the detectable ``X``/``Y``
    errors at the same total rate.
    """
    if error_reduction_factor <= 0:
        raise ValueError("error reduction factor must be positive")

    def channel(rate: float) -> PauliChannel:
        if device.pauli_bias == (1.0, 1.0, 1.0):
            # Keep the depolarizing constructor on the unbiased path: it
            # computes eps/3 directly, and rebuilding it as eps * (1/3) can
            # differ by an ulp -- committed artefacts are bit-exact replays.
            return PauliChannel.depolarizing(rate)
        weight_x, weight_y, weight_z = device.pauli_bias
        total = weight_x + weight_y + weight_z
        return PauliChannel(
            p_x=rate * weight_x / total,
            p_y=rate * weight_y / total,
            p_z=rate * weight_z / total,
        )

    single = channel(device.single_qubit_error / error_reduction_factor)
    double = channel(device.two_qubit_error / error_reduction_factor)
    return DeviceNoiseModel(
        single_qubit_channel=single,
        two_qubit_channel=double,
        device_name=device.name,
        error_reduction_factor=error_reduction_factor,
    )


def scheduled_device_noise_model(
    device: DeviceModel,
    circuit: "QuantumCircuit",
    *,
    error_reduction_factor: float = 1.0,
    idle_error: float | None = None,
) -> NoiseModel:
    """Device gate noise plus schedule-aware idle dephasing for ``circuit``.

    Extends :func:`device_noise_model` with the decoherence real hardware
    inflicts on *waiting* qubits: every ASAP layer a qubit spends idle (see
    :func:`repro.circuit.scheduling.idle_slack`) applies one phase-flip
    channel of probability ``idle_error / error_reduction_factor``.  Idle
    dephasing scales with the same ``eps_r`` as the gate errors -- the
    paper's error-reduction factor models uniformly better hardware, and a
    longer-T2 backend idles more quietly in exactly the proportion its gates
    improve.

    ``idle_error`` defaults to the device's :attr:`DeviceModel.idle_error`
    calibration; pass ``0.0`` to disable idle noise (reproducing the plain
    Figure-12 model) or any other rate for ablation studies.  The returned
    model is bound to ``circuit``'s schedule and must be rebuilt for a
    different circuit.
    """
    base = device_noise_model(device, error_reduction_factor=error_reduction_factor)
    rate = device.idle_error if idle_error is None else idle_error
    if rate < 0:
        raise ValueError(f"idle error must be non-negative, got {rate}")
    idle_channel = PauliChannel.phase_flip(rate / error_reduction_factor)
    return with_idle_noise(base, circuit, idle_channel)
