"""Synthetic models of the IBM Quantum devices used in Appendix A.

Only the devices' *topologies* and the order of magnitude of their error
rates matter for Figure 12 (the figure sweeps an error-reduction factor on
top of them), so each device is described by its public coupling map plus
representative calibration numbers at the ~1e-3 error scale the paper assumes
for "current hardware".
"""

from __future__ import annotations

from dataclasses import dataclass

import networkx as nx


@dataclass(frozen=True)
class DeviceModel:
    """A hardware backend: qubit count, coupling map and calibration summary.

    Attributes
    ----------
    name:
        Backend name (suffixed ``-like`` because the calibration is synthetic).
    num_qubits:
        Number of physical qubits.
    coupling_map:
        Undirected two-qubit connectivity as ``(a, b)`` pairs.
    single_qubit_error:
        Representative single-qubit gate error rate.
    two_qubit_error:
        Representative two-qubit gate (CX/ECR) error rate.
    readout_error:
        Representative measurement error rate (reported for completeness; the
        fidelity experiments measure state overlap and do not add readout
        noise).
    idle_error:
        Representative per-schedule-layer dephasing probability of an idle
        qubit (one two-qubit gate duration against the backend's T2).  Only
        consumed by the schedule-aware scenario noise models
        (:func:`repro.hardware.noise_model.scheduled_device_noise_model`);
        the plain Figure-12 gate noise ignores it.
    pauli_bias:
        Relative ``(X, Y, Z)`` weights of the gate-error channels.  The
        default ``(1, 1, 1)`` is the paper's unbiased depolarizing model
        (and reproduces it bit for bit); erasure-qubit calibrations weight
        ``X``/``Y`` -- the errors a dual-rail code detects -- far above the
        residual undetectable ``Z`` dephasing.
    """

    name: str
    num_qubits: int
    coupling_map: tuple[tuple[int, int], ...]
    single_qubit_error: float = 3e-4
    two_qubit_error: float = 1e-2
    readout_error: float = 2e-2
    idle_error: float = 1e-3
    pauli_bias: tuple[float, float, float] = (1.0, 1.0, 1.0)

    def __post_init__(self) -> None:
        for a, b in self.coupling_map:
            if not (0 <= a < self.num_qubits and 0 <= b < self.num_qubits):
                raise ValueError(f"coupling edge ({a}, {b}) outside device")
            if a == b:
                raise ValueError("self-coupling edge")
        if len(self.pauli_bias) != 3 or any(w < 0 for w in self.pauli_bias):
            raise ValueError("pauli_bias must be three non-negative weights")
        if sum(self.pauli_bias) == 0:
            raise ValueError("pauli_bias must have at least one positive weight")

    def to_networkx(self) -> nx.Graph:
        """The coupling map as an undirected :mod:`networkx` graph."""
        graph = nx.Graph()
        graph.add_nodes_from(range(self.num_qubits))
        graph.add_edges_from(self.coupling_map)
        return graph

    def are_connected(self, a: int, b: int) -> bool:
        """True when ``a`` and ``b`` share a coupling edge."""
        return (a, b) in self.coupling_map or (b, a) in self.coupling_map

    def distance(self, a: int, b: int) -> int:
        """Shortest-path distance on the coupling map."""
        return nx.shortest_path_length(self.to_networkx(), a, b)

    def shortest_path(self, a: int, b: int) -> list[int]:
        """A shortest coupling-map path from ``a`` to ``b``."""
        return nx.shortest_path(self.to_networkx(), a, b)

    def average_degree(self) -> float:
        """Mean number of coupling edges per qubit."""
        return 2 * len(self.coupling_map) / self.num_qubits


def ibm_perth_like() -> DeviceModel:
    """7-qubit Falcon r5.11H device (H-shaped heavy-hex fragment).

    Topology::

        0 - 1 - 2
            |
            3
            |
        4 - 5 - 6
    """
    return DeviceModel(
        name="ibm_perth-like",
        num_qubits=7,
        coupling_map=((0, 1), (1, 2), (1, 3), (3, 5), (4, 5), (5, 6)),
    )


def ibmq_guadalupe_like() -> DeviceModel:
    """16-qubit Falcon r4P device (heavy-hex lattice fragment)."""
    return DeviceModel(
        name="ibmq_guadalupe-like",
        num_qubits=16,
        coupling_map=(
            (0, 1),
            (1, 2),
            (1, 4),
            (2, 3),
            (3, 5),
            (4, 7),
            (5, 8),
            (6, 7),
            (7, 10),
            (8, 9),
            (8, 11),
            (10, 12),
            (11, 14),
            (12, 13),
            (12, 15),
            (13, 14),
        ),
    )


def grid_device(rows: int, cols: int, name: str | None = None) -> DeviceModel:
    """An ideal 2D square-grid device (the Sec. 6.3 connectivity assumption)."""
    num_qubits = rows * cols
    edges: list[tuple[int, int]] = []
    for row in range(rows):
        for col in range(cols):
            index = row * cols + col
            if col + 1 < cols:
                edges.append((index, index + 1))
            if row + 1 < rows:
                edges.append((index, index + cols))
    return DeviceModel(
        name=name or f"grid-{rows}x{cols}",
        num_qubits=num_qubits,
        coupling_map=tuple(edges),
    )


def dual_rail_cavity_like() -> DeviceModel:
    """Erasure-qubit calibration: detectable ``X``/``Y`` dominate ``Z``.

    Models the dual-rail cavity/transmon regime where the dominant physical
    processes (photon loss, transmon decay) take the qubit *out* of the
    codespace -- showing up as ``X``/``Y`` rail errors a parity check
    converts into heralded erasures -- while residual dephasing inside the
    codespace (the undetectable logical ``Z``) is reported an order of
    magnitude-plus smaller.  The ``(20, 20, 1)`` bias puts ``1/41`` of each
    gate's error budget in ``Z``; the overall rates keep the reference
    ~1e-3/1e-2 scale so bare-vs-dual ablations compare on equal total noise.
    The 2x2 grid only supplies connectivity metadata -- scenario noise
    models consume the calibration, not the coupling map.
    """
    return DeviceModel(
        name="dual-rail-cavity-like",
        num_qubits=4,
        coupling_map=((0, 1), (0, 2), (1, 3), (2, 3)),
        pauli_bias=(20.0, 20.0, 1.0),
    )


#: Registry of named devices used by the Figure 12 experiment.
DEVICES: dict[str, DeviceModel] = {
    "ibm_perth": ibm_perth_like(),
    "ibmq_guadalupe": ibmq_guadalupe_like(),
    "dual-rail-cavity": dual_rail_cavity_like(),
}
