"""SABRE-style lookahead SWAP routing (the ``"lookahead"`` registry entry).

:class:`GreedySwapRouter` resolves each blocked gate in isolation, walking
one operand along a shortest path the moment the gate is reached.  That is
correct but myopic twice over: a SWAP that helps the current gate can undo
work the next gate needed, and the identity initial layout it starts from
bears no relation to which qubits the circuit actually couples.  On the
sparse IBM topologies both effects inflate the extra-SWAP counts that the
Figure 12 and ``htree-swap-*`` overheads hinge on.

:class:`LookaheadSwapRouter` adapts the SABRE algorithm (Li, Ding & Xie,
ASPLOS 2019) to this codebase's gate set:

* **Front-layer routing.**  The circuit is viewed as a dependency DAG; all
  gates whose predecessors have executed form the *front layer*.  Ready
  single-qubit gates and barriers execute immediately; ready multi-qubit
  gates execute as soon as their physical operands form a connected patch of
  the coupling map.  When nothing in the front layer is executable, one SWAP
  is chosen by heuristic score rather than by walking a fixed shortest path.
* **Extended lookahead window.**  Candidate SWAPs are scored against the
  front layer *plus* a window of upcoming multi-qubit gates, so the router
  prefers moves that help near-future gates too.
* **Decay-weighted heuristic.**  Each chosen SWAP slightly inflates the
  score of further SWAPs on the same physical qubits, spreading movement
  across the device and breaking the back-and-forth cycles a pure distance
  heuristic falls into.
* **Forward/backward/forward layout selection.**  The circuit is routed
  forward from the seed layout (the identity when none is given, the
  caller's placement -- e.g. the H-tree cluster layout -- otherwise), then
  its reverse is routed from the resulting final layout, and the layout that
  falls out seeds the real forward pass -- so frequently-interacting logical
  qubits start out physically adjacent instead of wherever the seed left
  them.  A provided layout is a starting point to refine, not a contract:
  the selection passes move qubits along coupling edges only, so an H-tree
  cluster placement is improved within the tree's own geometry.

Multi-qubit gates (``CCX``/``CSWAP``/``MCX``) generalise SABRE's two-qubit
distance via the minimum-spanning-tree weight of the operands under the
all-pairs coupling distance: the excess over ``arity - 1`` is zero exactly
when the operands induce a connected patch, and shrinks as they cluster.

Routing is fully deterministic (sorted candidate enumeration, strict
first-minimum tie-breaking), so routed circuits -- and therefore seeded
noisy trajectories -- are reproducible bit for bit.  A stall counter guards
termination: if the heuristic fails to execute a gate within
``max_stalled_swaps`` SWAPs, the oldest front gate is resolved greedily
(shortest-path walking), which always makes progress.
"""

from __future__ import annotations

from bisect import insort
from dataclasses import dataclass, field
from heapq import heapify, heappop, heappush
from typing import ClassVar

import networkx as nx
import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.instruction import Instruction
from repro.hardware.devices import DeviceModel
from repro.hardware.router import (
    RoutedCircuit,
    apply_swap,
    check_layout,
    register_router,
)


@dataclass
class LookaheadSwapRouter:
    """Route circuits onto a :class:`DeviceModel` with SABRE-style lookahead.

    Parameters
    ----------
    device:
        Target backend; its coupling map must be connected.
    lookahead_window:
        Number of upcoming multi-qubit gates (beyond the front layer) that
        candidate SWAPs are scored against.
    lookahead_weight:
        Relative weight of the lookahead-window term in the score (the front
        layer always has weight 1).
    decay_increment:
        Score inflation added to a physical qubit each time a SWAP moves it;
        decays reset whenever a gate executes or after
        ``decay_reset_interval`` consecutive SWAP decisions.
    decay_reset_interval:
        SWAP decisions between periodic decay resets.
    max_stalled_swaps:
        Heuristic SWAPs tolerated without executing any gate before falling
        back to greedy shortest-path resolution of the oldest front gate
        (termination guarantee).  ``None`` derives ``4 * num_qubits + 8``.
    refine_layout:
        When True (default) the forward/backward layout-selection passes
        also run on a caller-provided ``initial_layout``, treating it as a
        seed to improve (the H-tree cluster placements benefit).  ``False``
        routes from the provided layout verbatim -- the pre-fix behaviour,
        kept for callers that pin a layout deliberately.
    """

    name: ClassVar[str] = "lookahead"

    device: DeviceModel
    lookahead_window: int = 20
    lookahead_weight: float = 0.5
    decay_increment: float = 0.001
    decay_reset_interval: int = 5
    max_stalled_swaps: int | None = None
    refine_layout: bool = True
    _graph: nx.Graph = field(init=False, repr=False)
    _dist: np.ndarray = field(init=False, repr=False)
    _adjacency: list[frozenset[int]] = field(init=False, repr=False)

    def __post_init__(self) -> None:
        self._graph = self.device.to_networkx()
        if not nx.is_connected(self._graph):
            raise ValueError("device coupling map must be connected")
        n = self.device.num_qubits
        self._dist = np.zeros((n, n), dtype=np.int32)
        for source, lengths in nx.all_pairs_shortest_path_length(self._graph):
            for target, distance in lengths.items():
                self._dist[source, target] = distance
        self._adjacency = [
            frozenset(self._graph.neighbors(vertex)) for vertex in range(n)
        ]

    # --------------------------------------------------------------- routing
    def route(
        self,
        circuit: QuantumCircuit,
        initial_layout: dict[int, int] | None = None,
    ) -> RoutedCircuit:
        """Insert SWAPs so every gate acts on a connected patch of the device.

        The forward/backward layout-selection passes always run first: with
        ``initial_layout`` equal to ``None`` they start from the identity
        layout, and with a layout given (e.g. the H-tree cluster placement)
        they start from *it* -- refining the placement inside and between
        clusters instead of taking the seed verbatim.  Virtual SWAPs during
        selection follow the device coupling map, so a cluster layout is
        refined along exactly the moves routing could make anyway, and the
        refined layout is what :attr:`RoutedCircuit.initial_layout` reports
        (input states embed through it, so correctness is unaffected).
        """
        if circuit.num_qubits > self.device.num_qubits:
            raise ValueError(
                f"circuit needs {circuit.num_qubits} qubits but device "
                f"{self.device.name} has only {self.device.num_qubits}"
            )
        if initial_layout is None:
            layout = {q: q for q in range(circuit.num_qubits)}
        else:
            check_layout(circuit, initial_layout, self.device)
            layout = dict(initial_layout)
        if initial_layout is None or self.refine_layout:
            forward = list(circuit.instructions)
            layout = self._route_pass(forward, layout, record=False)
            layout = self._route_pass(forward[::-1], layout, record=False)
        initial_layout = layout

        routed = QuantumCircuit(
            num_qubits=self.device.num_qubits, metadata=dict(circuit.metadata)
        )
        final_layout = self._route_pass(
            list(circuit.instructions),
            dict(initial_layout),
            record=True,
            routed=routed,
        )
        return RoutedCircuit(
            circuit=routed,
            device=self.device,
            initial_layout=dict(initial_layout),
            final_layout=final_layout,
        )

    # ------------------------------------------------------------ one pass
    def _route_pass(
        self,
        instructions: list[Instruction],
        layout: dict[int, int],
        *,
        record: bool,
        routed: QuantumCircuit | None = None,
    ) -> dict[int, int]:
        """Route ``instructions`` starting from ``layout``; return the final layout.

        ``record=False`` runs a layout-selection pass: SWAPs update the
        layout but no instructions are emitted.  The instruction list may be
        the reverse of the circuit's (gate *names* never matter for routing,
        only operand sets), which is what the backward pass exploits.
        """
        n_instr = len(instructions)
        pending = [0] * n_instr
        successors: list[list[int]] = [[] for _ in range(n_instr)]
        last_on_qubit: dict[int, int] = {}
        for index, instr in enumerate(instructions):
            dependencies = {
                last_on_qubit[q] for q in instr.qubits if q in last_on_qubit
            }
            pending[index] = len(dependencies)
            for dependency in dependencies:
                successors[dependency].append(index)
            for q in instr.qubits:
                last_on_qubit[q] = index

        logical_to_physical = dict(layout)
        physical_to_logical = {p: l for l, p in logical_to_physical.items()}
        ready = [index for index in range(n_instr) if pending[index] == 0]
        heapify(ready)
        front: list[int] = []  # blocked multi-qubit gates, kept sorted
        done = [False] * n_instr
        decay = np.ones(self.device.num_qubits)
        stall_limit = (
            self.max_stalled_swaps
            if self.max_stalled_swaps is not None
            else 4 * self.device.num_qubits + 8
        )
        stalled_swaps = 0
        decisions_since_reset = 0

        def complete(index: int) -> None:
            done[index] = True
            for successor in successors[index]:
                pending[successor] -= 1
                if pending[successor] == 0:
                    heappush(ready, successor)

        def emit(index: int) -> None:
            instr = instructions[index]
            if record:
                physical = tuple(logical_to_physical[q] for q in instr.qubits)
                gate = "BARRIER" if instr.is_barrier else instr.gate
                routed.append(Instruction(gate=gate, qubits=physical, tags=instr.tags))
            complete(index)

        def swap(physical_a: int, physical_b: int) -> None:
            apply_swap(
                physical_a,
                physical_b,
                logical_to_physical,
                physical_to_logical,
                routed if record else None,
            )

        while ready or front:
            progressed = True
            while progressed:
                progressed = False
                while ready:
                    index = heappop(ready)
                    instr = instructions[index]
                    if instr.is_barrier or len(instr.qubits) <= 1:
                        emit(index)
                        progressed = True
                    else:
                        insort(front, index)
                executable = [
                    index
                    for index in front
                    if self._connected(
                        [logical_to_physical[q] for q in instructions[index].qubits]
                    )
                ]
                if executable:
                    for index in executable:
                        emit(index)
                    blocked = set(executable)
                    front = [index for index in front if index not in blocked]
                    progressed = True
                    stalled_swaps = 0
                    decay[:] = 1.0
            if not front:
                continue
            if stalled_swaps >= stall_limit:
                self._force_executable(
                    instructions[front[0]].qubits, logical_to_physical, swap
                )
                stalled_swaps = 0
                decay[:] = 1.0
                continue
            touched = self._apply_best_move(
                front,
                instructions,
                done,
                logical_to_physical,
                physical_to_logical,
                decay,
                routed if record else None,
            )
            stalled_swaps += 1
            decisions_since_reset += 1
            if decisions_since_reset >= self.decay_reset_interval:
                decay[:] = 1.0
                decisions_since_reset = 0
            else:
                for vertex in touched:
                    decay[vertex] += self.decay_increment

        return logical_to_physical

    def _apply_best_move(
        self,
        front: list[int],
        instructions: list[Instruction],
        done: list[bool],
        logical_to_physical: dict[int, int],
        physical_to_logical: dict[int, int],
        decay: np.ndarray,
        routed: QuantumCircuit | None,
    ) -> tuple[int, int]:
        """Pick and apply one routing move; return the physical qubits it touched.

        The base router only knows SWAPs.  The teleport-aware subclass
        (:class:`repro.hardware.teleport_router.TeleportSwapRouter`)
        overrides this hook to score teleport relocations through free
        vertices in the same candidate loop and apply whichever move wins.
        ``routed`` is ``None`` during layout-selection passes (apply the
        layout update only, emit nothing).
        """
        (a, b), _score = self._best_swap(
            front, instructions, done, logical_to_physical, decay
        )
        apply_swap(a, b, logical_to_physical, physical_to_logical, routed)
        return (a, b)

    # ------------------------------------------------------------ heuristics
    def _connected(self, physical: list[int]) -> bool:
        """Do the physical operands induce a connected coupling subgraph?"""
        if len(physical) <= 1:
            return True
        remaining = set(physical)
        stack = [physical[0]]
        remaining.discard(physical[0])
        while stack:
            vertex = stack.pop()
            reached = self._adjacency[vertex] & remaining
            remaining -= reached
            stack.extend(reached)
        return not remaining

    def _gate_cost(self, physical: list[int]) -> int:
        """Excess minimum-spanning-tree weight of the operands (0 = executable).

        For two operands this is ``distance - 1``; for more it is the MST
        weight over the all-pairs coupling distances minus ``arity - 1``,
        which vanishes exactly when the operands induce a connected patch.
        """
        if len(physical) == 2:
            return int(self._dist[physical[0], physical[1]]) - 1
        in_tree = [physical[0]]
        rest = set(physical[1:])
        total = 0
        while rest:
            weight, vertex = min(
                (int(self._dist[a, b]), b) for a in in_tree for b in rest
            )
            total += weight
            in_tree.append(vertex)
            rest.discard(vertex)
        return total - (len(physical) - 1)

    def _extended_window(
        self,
        front: list[int],
        instructions: list[Instruction],
        done: list[bool],
    ) -> list[int]:
        """Upcoming multi-qubit gates (beyond the front) to score against."""
        blocked = set(front)
        window: list[int] = []
        for index in range(front[0], len(instructions)):
            if done[index] or index in blocked:
                continue
            instr = instructions[index]
            if instr.is_barrier or len(instr.qubits) < 2:
                continue
            window.append(index)
            if len(window) >= self.lookahead_window:
                break
        return window

    def _best_swap(
        self,
        front: list[int],
        instructions: list[Instruction],
        done: list[bool],
        logical_to_physical: dict[int, int],
        decay: np.ndarray,
    ) -> tuple[tuple[int, int], float]:
        """The decay-weighted best SWAP candidate and its score."""
        front_physical = {
            logical_to_physical[q]
            for index in front
            for q in instructions[index].qubits
        }
        candidates = sorted(
            {
                (min(vertex, neighbour), max(vertex, neighbour))
                for vertex in front_physical
                for neighbour in self._adjacency[vertex]
            }
        )
        window = self._extended_window(front, instructions, done)
        best: tuple[int, int] | None = None
        best_score = float("inf")
        for a, b in candidates:

            def moved(physical: int) -> int:
                if physical == a:
                    return b
                if physical == b:
                    return a
                return physical

            front_cost = sum(
                self._gate_cost(
                    [moved(logical_to_physical[q]) for q in instructions[index].qubits]
                )
                for index in front
            ) / len(front)
            window_cost = (
                sum(
                    self._gate_cost(
                        [
                            moved(logical_to_physical[q])
                            for q in instructions[index].qubits
                        ]
                    )
                    for index in window
                )
                / len(window)
                if window
                else 0.0
            )
            score = max(decay[a], decay[b]) * (
                front_cost + self.lookahead_weight * window_cost
            )
            if score < best_score - 1e-12:
                best = (a, b)
                best_score = score
        assert best is not None  # the device is connected, so candidates exist
        return best, best_score

    def _force_executable(
        self,
        logical_operands: tuple[int, ...],
        logical_to_physical: dict[int, int],
        swap,
    ) -> None:
        """Greedy fallback: walk operands together along shortest paths.

        Mirrors :class:`GreedySwapRouter`'s convergence argument -- each
        round the closest outside operand walks until adjacent to the core
        component, so the core grows every round and the gate becomes
        executable after at most ``arity - 1`` rounds.
        """
        for _ in range(len(logical_operands)):
            physical = [logical_to_physical[q] for q in logical_operands]
            if self._connected(physical):
                return
            core = self._component(physical, physical[0])
            outside = sorted(p for p in physical if p not in core)
            source = min(
                outside,
                key=lambda p: (min(int(self._dist[p, c]) for c in core), p),
            )
            target = min(core, key=lambda c: (int(self._dist[source, c]), c))
            path = nx.shortest_path(self._graph, source, target)
            for step_index in range(len(path) - 2):
                swap(path[step_index], path[step_index + 1])
        physical = [logical_to_physical[q] for q in logical_operands]
        if not self._connected(physical):  # pragma: no cover - safety net
            raise RuntimeError("routing failed to converge")

    def _component(self, physical: list[int], anchor: int) -> set[int]:
        """Operand positions connected (via the coupling map) to ``anchor``."""
        remaining = set(physical)
        component = {anchor}
        remaining.discard(anchor)
        stack = [anchor]
        while stack:
            vertex = stack.pop()
            reached = self._adjacency[vertex] & remaining
            remaining -= reached
            component |= reached
            stack.extend(reached)
        return component


register_router(LookaheadSwapRouter)
