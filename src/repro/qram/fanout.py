"""Fanout QRAM (Sec. 2.3.2): the earliest O(log N)-latency router architecture.

Address loading is done by *fanning out* each address qubit to every router of
its tree level with CX gates, preparing GHZ-like states across each level.
Data retrieval then proceeds exactly like the virtual QRAM's marker-based
retrieval.  The GHZ-like entanglement is the architecture's weakness: a single
phase error on any router of level ``u`` dephases every branch whose ``u``-th
address bit is 1, i.e. roughly half of the superposition, so the fidelity
collapses much faster than for the bucket-brigade or virtual designs.  The
class is included both for completeness of the background section and as an
additional comparison point in the noise benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import QubitAllocator
from repro.qram.base import QRAMArchitecture
from repro.qram.tree import RouterTree


@dataclass
class FanoutQRAM(QRAMArchitecture):
    """Fanout QRAM, optionally paged by an SQC over the high address bits."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qram_width < 1:
            raise ValueError("fanout QRAM needs a QRAM width of at least 1")
        self.name = "fanout"

    def _build(self) -> QuantumCircuit:
        alloc = QubitAllocator()
        sqc_address = alloc.register("sqc_address", self.k)
        qram_address = alloc.register("qram_address", self.m)
        bus = alloc.register("bus", 1)
        tree = RouterTree(depth=self.m, allocator=alloc, separate_accumulators=False)
        circuit = QuantumCircuit(
            num_qubits=alloc.num_qubits, registers=alloc.registers
        )

        self._fanout_address(circuit, tree, list(qram_address))
        tree.route_marker_to_leaves(circuit)

        for page_index in range(self.num_pages):
            page = self.memory.page(page_index, self.m, self.bit_plane)
            self._apply_classical_gates(circuit, tree, page)
            tree.accumulate_to_root(circuit)
            self._copy_root_to_bus(circuit, tree, sqc_address, bus[0], page_index)
            tree.unaccumulate_from_root(circuit)
            self._apply_classical_gates(circuit, tree, page)

        tree.unroute_marker_from_leaves(circuit)
        self._fanout_address(circuit, tree, list(qram_address))
        return circuit

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _fanout_address(
        circuit: QuantumCircuit, tree: RouterTree, address_qubits: list[int]
    ) -> None:
        """Copy address bit ``u`` onto every router of level ``u`` (GHZ-like)."""
        for level, qubit in enumerate(address_qubits):
            for node in range(1 << level):
                circuit.cx(qubit, tree.routers[level][node])

    @staticmethod
    def _apply_classical_gates(
        circuit: QuantumCircuit, tree: RouterTree, page: tuple[int, ...]
    ) -> None:
        for leaf_index, bit in enumerate(page):
            if bit:
                circuit.cx(
                    tree.leaves[leaf_index],
                    tree.leaf_parent_accumulator(leaf_index),
                    tags=("classical",),
                )

    @staticmethod
    def _copy_root_to_bus(
        circuit: QuantumCircuit,
        tree: RouterTree,
        sqc_address,
        bus: int,
        page_index: int,
    ) -> None:
        controls = list(sqc_address)
        width = len(controls)
        zero_controls = [
            q
            for bit_index, q in enumerate(controls)
            if not (page_index >> (width - 1 - bit_index)) & 1
        ]
        for q in zero_controls:
            circuit.x(q)
        circuit.mcx(controls + [tree.root_accumulator], bus)
        for q in zero_controls:
            circuit.x(q)
