"""Binary router tree shared by the router-based architectures.

The bucket-brigade, fanout and virtual QRAM architectures all arrange quantum
routers in a complete binary tree (Sec. 2.3.2 / 3.1 of the paper).  This
module centralises the register layout and the routing gadgets so that each
architecture builder only expresses its own address-loading and data-retrieval
strategy.

Layout for QRAM width ``m`` (capacity ``M = 2**m``):

* ``router[u][j]`` -- the router qubit of node ``j`` at level ``u``
  (``u = 0 .. m-1``, ``j = 0 .. 2**u - 1``): stores the routing direction for
  that node (|0> routes left, |1> routes right).
* ``wire[u][j]`` -- the node's input/output wire: the qubit a payload occupies
  while traversing node ``(u, j)``.
* ``leaf[i]`` -- the ``M`` data qubits affixed below the lowest router level;
  ``leaf[i]`` corresponds to classical memory cell ``i`` of the currently
  loaded page.

The routing gadget of Fig. 2(c) is implemented as::

    CSWAP(router, wire, right_child_wire)   # payload goes right when router=1
    SWAP(wire, left_child_wire)             # otherwise it goes left

which is exactly one quantum router: 1 CSWAP + 1 SWAP per node per traversal.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import QubitAllocator, QubitRegister


@dataclass
class RouterTree:
    """Register layout and routing gadgets for one binary router tree.

    Parameters
    ----------
    depth:
        Tree depth ``m`` (one router level per QRAM address bit); must be >= 1.
    allocator:
        The allocator shared with the architecture builder, so the tree's
        registers interleave naturally with address/bus registers.
    separate_accumulators:
        When True an extra per-internal-node "tree data" qubit is allocated
        for the data-retrieval XOR accumulation (the RAW layout of Table 1).
        When False the node *wire* qubits are reused as accumulators -- this is
        Key Optimization 1, address-qubit recycling (Sec. 3.2.1).
    dual_rail_leaves:
        When True each leaf data qubit is paired with an ancilla so classical
        data can be written in the dual-rail encoding of Fig. 5(d).
    """

    depth: int
    allocator: QubitAllocator
    separate_accumulators: bool = False
    dual_rail_leaves: bool = False
    routers: list[QubitRegister] = field(default_factory=list, init=False)
    wires: list[QubitRegister] = field(default_factory=list, init=False)
    accumulators: list[QubitRegister] = field(default_factory=list, init=False)
    leaves: QubitRegister | None = field(default=None, init=False)
    leaf_ancillas: QubitRegister | None = field(default=None, init=False)

    def __post_init__(self) -> None:
        if self.depth < 1:
            raise ValueError("router tree depth must be at least 1")
        for level in range(self.depth):
            size = 1 << level
            self.routers.append(self.allocator.register(f"router_L{level}", size))
            self.wires.append(self.allocator.register(f"wire_L{level}", size))
        if self.separate_accumulators:
            for level in range(self.depth):
                size = 1 << level
                self.accumulators.append(
                    self.allocator.register(f"tree_data_L{level}", size)
                )
        else:
            self.accumulators = list(self.wires)
        self.leaves = self.allocator.register("leaf_data", 1 << self.depth)
        if self.dual_rail_leaves:
            self.leaf_ancillas = self.allocator.register(
                "leaf_ancilla", 1 << self.depth
            )

    # ------------------------------------------------------------- inspection
    @property
    def capacity(self) -> int:
        """Number of leaf data qubits ``M = 2**depth``."""
        return 1 << self.depth

    @property
    def num_internal_nodes(self) -> int:
        """Number of internal (router) nodes, ``2**depth - 1``."""
        return (1 << self.depth) - 1

    @property
    def root_wire(self) -> int:
        """The entry wire at the root, ``q^(d)_{-1}`` in Algorithm 1."""
        return self.wires[0][0]

    @property
    def root_accumulator(self) -> int:
        """The qubit where the data-retrieval XOR compression terminates."""
        return self.accumulators[0][0]

    def all_tree_qubits(self) -> list[int]:
        """Every qubit owned by the tree (routers, wires, accumulators, leaves)."""
        qubits: list[int] = []
        for level in range(self.depth):
            qubits.extend(self.routers[level])
            qubits.extend(self.wires[level])
            if self.separate_accumulators:
                qubits.extend(self.accumulators[level])
        qubits.extend(self.leaves)
        if self.leaf_ancillas is not None:
            qubits.extend(self.leaf_ancillas)
        return qubits

    def child_wires(self, level: int, node: int) -> tuple[int, int]:
        """(left, right) wires one level below node ``(level, node)``.

        For the bottom router level the children are the leaf data qubits.
        """
        if level == self.depth - 1:
            return self.leaves[2 * node], self.leaves[2 * node + 1]
        return self.wires[level + 1][2 * node], self.wires[level + 1][2 * node + 1]

    # ---------------------------------------------------------------- gadgets
    def route_down_level(self, circuit: QuantumCircuit, level: int) -> None:
        """Push payloads one level down at every node of ``level`` (Fig. 2c).

        The ``move:<k>`` tags record a structural invariant of the traversal
        direction: operand ``k`` (the destination wire one level down) is in
        |0> when the gadget fires, because the subtree below the payload is
        clean.  The executed-teleportation expansion
        (:mod:`repro.mapping.teleport`) uses the tag to realise a remote
        tagged SWAP as a one-way teleportation ladder instead of a full
        (twice as expensive) state exchange.
        """
        for node in range(1 << level):
            left, right = self.child_wires(level, node)
            wire = self.wires[level][node]
            router = self.routers[level][node]
            circuit.cswap(router, wire, right, tags=("move:2",))
            circuit.swap(wire, left, tags=("move:1",))

    def route_up_level(self, circuit: QuantumCircuit, level: int) -> None:
        """Inverse of :meth:`route_down_level` (payloads move one level up).

        Upstream the parent wire is the empty side of the plain SWAP
        (``move:0``); the CSWAP carries no tag because which of its swap
        operands is empty depends on the router qubit's value per path.
        """
        for node in range(1 << level):
            left, right = self.child_wires(level, node)
            wire = self.wires[level][node]
            router = self.routers[level][node]
            circuit.swap(wire, left, tags=("move:0",))
            circuit.cswap(router, wire, right)

    def absorb_level(self, circuit: QuantumCircuit, level: int) -> None:
        """Swap the payload at every node of ``level`` into the node's router.

        Used at the end of each address-loading round: the address bit that
        reached level ``u`` becomes the routing direction of that level.
        """
        for node in range(1 << level):
            circuit.swap(self.wires[level][node], self.routers[level][node])

    # --------------------------------------------------------- composite moves
    def load_address_bit(
        self,
        circuit: QuantumCircuit,
        address_qubit: int,
        level: int,
        *,
        barrier: bool = False,
    ) -> None:
        """Route one address qubit into the tree and absorb it at ``level``.

        This is one round of the bucket-brigade address-loading stage
        (Sec. 3.1.1): the address qubit enters at the root wire, traverses the
        ``level`` already-programmed router levels, and is swapped into the
        routers of level ``level``.  With ``barrier=True`` a scheduling
        barrier is appended, which models the naive (non-pipelined) schedule
        whose depth is quadratic in ``m`` (Sec. 3.2.3).
        """
        circuit.swap(address_qubit, self.root_wire)
        for upper in range(level):
            self.route_down_level(circuit, upper)
        self.absorb_level(circuit, level)
        if barrier:
            circuit.barrier()

    def unload_address_bit(
        self,
        circuit: QuantumCircuit,
        address_qubit: int,
        level: int,
        *,
        barrier: bool = False,
    ) -> None:
        """Inverse of :meth:`load_address_bit`."""
        self.absorb_level(circuit, level)
        for upper in range(level - 1, -1, -1):
            self.route_up_level(circuit, upper)
        circuit.swap(address_qubit, self.root_wire)
        if barrier:
            circuit.barrier()

    def load_address(
        self,
        circuit: QuantumCircuit,
        address_qubits: list[int],
        *,
        pipelined: bool = True,
    ) -> None:
        """Load all ``m`` address qubits, most significant first."""
        if len(address_qubits) != self.depth:
            raise ValueError(
                f"expected {self.depth} address qubits, got {len(address_qubits)}"
            )
        for level, qubit in enumerate(address_qubits):
            self.load_address_bit(circuit, qubit, level, barrier=not pipelined)

    def unload_address(
        self,
        circuit: QuantumCircuit,
        address_qubits: list[int],
        *,
        pipelined: bool = True,
    ) -> None:
        """Inverse of :meth:`load_address` (uncompute the routers)."""
        for level in range(self.depth - 1, -1, -1):
            self.unload_address_bit(
                circuit, address_qubits[level], level, barrier=not pipelined
            )

    def route_marker_to_leaves(self, circuit: QuantumCircuit) -> None:
        """Inject a |1> marker at the root and route it to the addressed leaf.

        After address loading this is the query-state preparation of
        Sec. 3.1.1: the marker ends on ``leaf[i]`` where ``i`` is the QRAM
        part of the queried address, and every other leaf stays |0>.
        """
        circuit.x(self.root_wire)
        for level in range(self.depth):
            self.route_down_level(circuit, level)

    def unroute_marker_from_leaves(self, circuit: QuantumCircuit) -> None:
        """Inverse of :meth:`route_marker_to_leaves`."""
        for level in range(self.depth - 1, -1, -1):
            self.route_up_level(circuit, level)
        circuit.x(self.root_wire)

    def route_leaves_to_root(self, circuit: QuantumCircuit) -> None:
        """Route the payload sitting on the addressed leaf up to the root wire.

        Used by the classic bucket-brigade data retrieval: after classical
        data has been written onto the leaves, the addressed leaf's bit
        travels up the active path and can be copied to the bus at the root.
        """
        for level in range(self.depth - 1, -1, -1):
            self.route_up_level(circuit, level)

    def unroute_leaves_from_root(self, circuit: QuantumCircuit) -> None:
        """Inverse of :meth:`route_leaves_to_root`."""
        for level in range(self.depth):
            self.route_down_level(circuit, level)

    def accumulate_to_root(self, circuit: QuantumCircuit) -> None:
        """CX compression array propagating leaf contributions up to the root.

        This is the paper's novel data-retrieval stage (Sec. 3.1.2): internal
        accumulators XOR their children so the root accumulator ends holding
        the XOR of all leaf contributions -- which, because exactly one leaf
        carries the marker, equals the queried data bit.  Only Clifford CX
        gates are involved, which is the source of the T-count savings over
        the bucket-brigade baseline (Table 2).
        """
        for level in range(self.depth - 1, 0, -1):
            for node in range(1 << level):
                circuit.cx(self.accumulators[level][node], self.accumulators[level - 1][node // 2])

    def unaccumulate_from_root(self, circuit: QuantumCircuit) -> None:
        """Inverse of :meth:`accumulate_to_root`."""
        for level in range(1, self.depth):
            for node in range(1 << level):
                circuit.cx(self.accumulators[level][node], self.accumulators[level - 1][node // 2])

    def leaf_parent_accumulator(self, leaf_index: int) -> int:
        """Accumulator qubit that leaf ``leaf_index`` contributes to."""
        return self.accumulators[self.depth - 1][leaf_index // 2]
