"""Classical memory abstraction queried by the QRAM architectures.

A :class:`ClassicalMemory` holds the ``N = 2**n`` classical data values
``x_0, ..., x_{N-1}`` that a query entangles with the address register
(Eq. (2) of the paper).  The virtual QRAM additionally views the memory as
``K = 2**k`` *pages* (segments) of ``M = 2**m`` cells each (Sec. 3.1.3); the
paging helpers here implement that view, including the XOR-difference between
consecutive pages that the lazy-data-swapping optimisation exploits
(Sec. 3.2.2).

Data values default to single bits (the paper's main setting); a
``data_width`` larger than one is supported for the generalised-data-size
extension discussed in Sec. 8, in which case queries are performed one bit
plane at a time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Sequence

import numpy as np


@dataclass(frozen=True)
class ClassicalMemory:
    """Immutable classical memory of ``2**address_width`` cells.

    Attributes
    ----------
    values:
        Integer array of length ``2**address_width``; each entry is in
        ``[0, 2**data_width)``.
    address_width:
        Number of address bits ``n``.
    data_width:
        Number of bits per memory cell (1 for the paper's main experiments).
    """

    values: tuple[int, ...]
    address_width: int
    data_width: int = 1

    def __post_init__(self) -> None:
        expected = 1 << self.address_width
        if len(self.values) != expected:
            raise ValueError(
                f"memory with address width {self.address_width} needs "
                f"{expected} values, got {len(self.values)}"
            )
        if self.data_width < 1:
            raise ValueError("data_width must be at least 1")
        limit = 1 << self.data_width
        for index, value in enumerate(self.values):
            if not 0 <= value < limit:
                raise ValueError(
                    f"value {value} at address {index} does not fit in "
                    f"{self.data_width} bits"
                )

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_values(
        cls, values: Sequence[int] | Iterable[int], data_width: int = 1
    ) -> "ClassicalMemory":
        """Build a memory from an explicit list whose length is a power of two."""
        values = tuple(int(v) for v in values)
        size = len(values)
        if size == 0 or size & (size - 1):
            raise ValueError(f"memory size must be a power of two, got {size}")
        return cls(values=values, address_width=size.bit_length() - 1, data_width=data_width)

    @classmethod
    def from_function(
        cls, func: Callable[[int], int], address_width: int, data_width: int = 1
    ) -> "ClassicalMemory":
        """Memory whose cell ``i`` stores ``func(i)`` (a domain-specific dataset)."""
        values = tuple(int(func(i)) for i in range(1 << address_width))
        return cls(values=values, address_width=address_width, data_width=data_width)

    @classmethod
    def random(
        cls,
        address_width: int,
        rng: np.random.Generator | int | None = None,
        p_one: float = 0.5,
        data_width: int = 1,
    ) -> "ClassicalMemory":
        """Uniformly random memory (the workload of the paper's evaluation).

        ``p_one`` is the marginal probability of each data *bit* being 1; the
        paper's lazy-swapping analysis assumes 0.5.
        """
        if isinstance(rng, (int, np.integer)) or rng is None:
            rng = np.random.default_rng(rng)
        size = 1 << address_width
        if data_width == 1:
            values = (rng.random(size) < p_one).astype(int)
        else:
            bits = rng.random((size, data_width)) < p_one
            weights = 1 << np.arange(data_width)[::-1]
            values = (bits * weights).sum(axis=1)
        return cls(
            values=tuple(int(v) for v in values),
            address_width=address_width,
            data_width=data_width,
        )

    @classmethod
    def zeros(cls, address_width: int, data_width: int = 1) -> "ClassicalMemory":
        """All-zero memory (useful for tests and calibration runs)."""
        return cls(
            values=tuple(0 for _ in range(1 << address_width)),
            address_width=address_width,
            data_width=data_width,
        )

    # -------------------------------------------------------------- inspection
    @property
    def size(self) -> int:
        """Number of memory cells ``N = 2**n``."""
        return 1 << self.address_width

    def __len__(self) -> int:
        return self.size

    def __getitem__(self, address: int) -> int:
        return self.values[address]

    def bit(self, address: int, plane: int = 0) -> int:
        """Bit ``plane`` of the value at ``address`` (plane 0 = most significant)."""
        if not 0 <= plane < self.data_width:
            raise ValueError(f"bit plane {plane} outside data width {self.data_width}")
        return (self.values[address] >> (self.data_width - 1 - plane)) & 1

    def bit_plane(self, plane: int = 0) -> tuple[int, ...]:
        """The whole memory restricted to one bit plane (a width-1 dataset)."""
        return tuple(self.bit(address, plane) for address in range(self.size))

    def ones_count(self, plane: int = 0) -> int:
        """Number of cells whose bit ``plane`` is 1 (drives Table 1 gate counts)."""
        return sum(self.bit_plane(plane))

    # ------------------------------------------------------------------ paging
    def num_pages(self, qram_width: int) -> int:
        """Number of pages ``K = 2**k`` when the QRAM holds ``2**qram_width`` cells."""
        if qram_width > self.address_width:
            raise ValueError(
                f"QRAM width {qram_width} exceeds address width {self.address_width}"
            )
        return 1 << (self.address_width - qram_width)

    def page(self, page_index: int, qram_width: int, plane: int = 0) -> tuple[int, ...]:
        """Bits of page ``page_index`` (the segment swapped into the QRAM)."""
        num_pages = self.num_pages(qram_width)
        if not 0 <= page_index < num_pages:
            raise ValueError(f"page {page_index} outside range(0, {num_pages})")
        page_size = 1 << qram_width
        start = page_index * page_size
        return tuple(self.bit(start + offset, plane) for offset in range(page_size))

    def page_difference(
        self, page_index: int, qram_width: int, plane: int = 0
    ) -> tuple[int, ...]:
        """XOR of page ``page_index`` with page ``page_index + 1``.

        This is exactly the mask of classically-controlled gates the lazy
        data swapping optimisation applies between consecutive pages
        (Sec. 3.2.2): a cell whose value repeats on the next page needs no
        unload/reload.
        """
        current = self.page(page_index, qram_width, plane)
        following = self.page(page_index + 1, qram_width, plane)
        return tuple(a ^ b for a, b in zip(current, following))

    def split_address(self, address: int, qram_width: int) -> tuple[int, int]:
        """Split ``address`` into ``(page_index, offset)`` for a given QRAM width."""
        if not 0 <= address < self.size:
            raise ValueError(f"address {address} outside memory of size {self.size}")
        return address >> qram_width, address & ((1 << qram_width) - 1)
