"""Baseline S: hybrid SQC + Select-Swap QRAM (Sec. 2.3.3, Table 2 "SQC+SS").

Select-Swap [Low-Kliuchnikov-Schaeffer] is a two-stage architecture:

1. **Select** -- the data of the currently addressed block is written onto a
   register of ``M = 2**m`` block qubits (here this is the per-page
   classically-controlled write, with the page selected sequentially by the
   SQC bits exactly as in the paper's hybrid baseline);
2. **Swap** -- the ``m`` low address bits steer a CSWAP butterfly network that
   routes the addressed block qubit to a fixed position, from which it is
   copied to the bus.

Because the whole page is materialised on the block register for *every*
branch of the superposition, a single Pauli error on any block qubit damages a
constant fraction of the branches: the architecture has no intrinsic noise
resilience, which is exactly the behaviour Figure 9 reports for Baseline S.

Each CSWAP layer of the butterfly shares one address qubit as control, so the
layers serialise; the paper attributes the resulting quadratic depth factor to
the missing address-pipelining strategy (Sec. 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import QubitAllocator
from repro.qram.base import QRAMArchitecture


@dataclass
class SelectSwapQRAM(QRAMArchitecture):
    """Select-Swap QRAM, paged by an SQC over the high address bits."""

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qram_width < 1:
            raise ValueError("select-swap QRAM needs a QRAM width of at least 1")
        self.name = "sqc_ss"

    def _build(self) -> QuantumCircuit:
        alloc = QubitAllocator()
        sqc_address = alloc.register("sqc_address", self.k)
        qram_address = alloc.register("qram_address", self.m)
        bus = alloc.register("bus", 1)
        block = alloc.register("block", 1 << self.m)
        circuit = QuantumCircuit(
            num_qubits=alloc.num_qubits, registers=alloc.registers
        )

        for page_index in range(self.num_pages):
            page = self.memory.page(page_index, self.m, self.bit_plane)
            self._write_page(circuit, block, page)
            self._swap_network(circuit, block, list(qram_address))
            self._copy_block_to_bus(circuit, block, sqc_address, bus[0], page_index)
            self._swap_network(circuit, block, list(qram_address), inverse=True)
            self._write_page(circuit, block, page)
        return circuit

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _write_page(circuit: QuantumCircuit, block, page: tuple[int, ...]) -> None:
        """Select stage: write one page's bits onto the block register."""
        for index, bit in enumerate(page):
            if bit:
                circuit.x(block[index], tags=("classical",))

    def _swap_network(
        self,
        circuit: QuantumCircuit,
        block,
        address_qubits: list[int],
        *,
        inverse: bool = False,
    ) -> None:
        """CSWAP butterfly routing block[address] to block[0].

        Address bit 0 is the most significant of the ``m`` QRAM bits; the
        butterfly halves the candidate window one bit at a time.
        """
        layers = list(range(self.m))
        if inverse:
            layers.reverse()
        for bit_index in layers:
            stride = 1 << (self.m - 1 - bit_index)
            control = address_qubits[bit_index]
            for segment_start in range(0, 1 << self.m, 2 * stride):
                for offset in range(stride):
                    circuit.cswap(
                        control,
                        block[segment_start + offset],
                        block[segment_start + offset + stride],
                    )

    @staticmethod
    def _copy_block_to_bus(
        circuit: QuantumCircuit,
        block,
        sqc_address,
        bus: int,
        page_index: int,
    ) -> None:
        controls = list(sqc_address)
        width = len(controls)
        zero_controls = [
            q
            for bit_index, q in enumerate(controls)
            if not (page_index >> (width - 1 - bit_index)) & 1
        ]
        for q in zero_controls:
            circuit.x(q)
        circuit.mcx(controls + [block[0]], bus)
        for q in zero_controls:
            circuit.x(q)
