"""Common interface shared by every query architecture in the reproduction.

All architectures (SQC/QROM, Fanout, Bucket-Brigade, Select-Swap, and the
paper's virtual QRAM) answer the same question: given a classical memory of
``N = 2**n`` cells and an input superposition over addresses, produce the
entangled state of Eq. (2),

    sum_i alpha_i |i>_A |0>_B   ->   sum_i alpha_i |i>_A |x_i>_B.

Each concrete architecture builds a :class:`~repro.circuit.circuit.QuantumCircuit`
with (at least) the registers ``"sqc_address"`` (the ``k`` most-significant
address bits handled gate-sequentially), ``"qram_address"`` (the ``m``
least-significant bits handled by the router tree) and ``"bus"``.  The base
class supplies everything that only depends on that contract: input-state
construction, the analytically known ideal output, noisy query simulation and
resource reporting.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.decompose import CliffordTCost, circuit_cost
from repro.circuit.ir import GateTape, compile_circuit
from repro.qram.memory import ClassicalMemory
from repro.sim.feynman import FeynmanPathSimulator, QueryResult
from repro.sim.noise import NoiseModel, NoiselessModel
from repro.sim.paths import PathState
from repro.sim.seeding import ShotSeeds


@dataclass(frozen=True)
class ResourceReport:
    """Measured resource usage of a built query circuit (drives Tables 1-2)."""

    qubits: int
    gate_count: int
    circuit_depth: int
    circuit_depth_pipelined: int
    classical_controlled_gates: int
    clifford_t: CliffordTCost

    def as_dict(self) -> dict:
        """Plain-dict form of the resource report."""
        return {
            "qubits": self.qubits,
            "gate_count": self.gate_count,
            "circuit_depth": self.circuit_depth,
            "circuit_depth_pipelined": self.circuit_depth_pipelined,
            "classical_controlled_gates": self.classical_controlled_gates,
            "t_count": self.clifford_t.t_count,
            "t_depth": self.clifford_t.t_depth,
            "clifford_depth": self.clifford_t.clifford_depth,
        }


@dataclass(frozen=True)
class CompiledQuery:
    """Everything a noisy-query sweep reuses across points, built once.

    Holding the built circuit, its compiled gate tape, the uniform input
    superposition, the analytically known ideal output and the kept-qubit
    list means a parameter sweep (Figures 9-12 style) pays the construction
    cost once per architecture instance instead of once per sweep point.
    """

    circuit: QuantumCircuit
    tape: GateTape
    input_state: PathState
    ideal_output: PathState
    kept_qubits: tuple[int, ...]


@dataclass
class QRAMArchitecture:
    """Base class for query architectures.

    Parameters
    ----------
    memory:
        The classical dataset to query.
    qram_width:
        ``m``, the number of least-significant address bits served by the
        physical QRAM (router tree / swap network).  The remaining
        ``k = n - m`` bits are handled sequentially (SQC paging).  Subclasses
        that do not page (e.g. the plain SQC) fix this themselves.
    bit_plane:
        Which bit of multi-bit memory cells to query (0 = most significant).
        Multi-bit queries are performed one plane at a time, as discussed in
        Sec. 8 of the paper.
    """

    memory: ClassicalMemory
    qram_width: int
    bit_plane: int = 0
    name: str = field(default="abstract", init=False)
    _circuit: QuantumCircuit | None = field(default=None, init=False, repr=False)
    _compiled: CompiledQuery | None = field(default=None, init=False, repr=False)

    def __post_init__(self) -> None:
        if not 0 <= self.qram_width <= self.memory.address_width:
            raise ValueError(
                f"qram_width must be in [0, {self.memory.address_width}], "
                f"got {self.qram_width}"
            )
        if not 0 <= self.bit_plane < self.memory.data_width:
            raise ValueError(
                f"bit_plane {self.bit_plane} outside data width "
                f"{self.memory.data_width}"
            )

    # ------------------------------------------------------------- parameters
    @property
    def m(self) -> int:
        """QRAM address width (number of router-tree levels)."""
        return self.qram_width

    @property
    def k(self) -> int:
        """SQC address width (number of paging bits)."""
        return self.memory.address_width - self.qram_width

    @property
    def n(self) -> int:
        """Total address width."""
        return self.memory.address_width

    @property
    def num_pages(self) -> int:
        """Number of memory pages ``K = 2**k`` iterated by the query."""
        return 1 << self.k

    @property
    def capacity(self) -> int:
        """Physical QRAM capacity ``M = 2**m``."""
        return 1 << self.m

    # ------------------------------------------------------------ construction
    def _build(self) -> QuantumCircuit:  # pragma: no cover - abstract
        raise NotImplementedError

    def build_circuit(self) -> QuantumCircuit:
        """Build (and cache) the query circuit."""
        if self._circuit is None:
            circuit = self._build()
            circuit.metadata.setdefault("architecture", self.name)
            circuit.metadata.setdefault("m", self.m)
            circuit.metadata.setdefault("k", self.k)
            self._circuit = circuit
        return self._circuit

    def compiled_query(self) -> CompiledQuery:
        """Memoized bundle of circuit, gate tape, input and ideal output.

        Noise-parameter sweeps call :meth:`run_query` many times on the same
        instance; everything that does not depend on the noise model lives
        here so it is built exactly once.
        """
        if self._compiled is None:
            circuit = self.build_circuit()
            input_state = self.input_state()
            self._compiled = CompiledQuery(
                circuit=circuit,
                tape=compile_circuit(circuit),
                input_state=input_state,
                ideal_output=self.ideal_output(input_state),
                kept_qubits=tuple(self.kept_qubits()),
            )
        return self._compiled

    # ---------------------------------------------------------------- registers
    def address_qubits(self) -> list[int]:
        """Address register, most significant bit first (SQC bits then QRAM bits)."""
        circuit = self.build_circuit()
        sqc = list(circuit.registers["sqc_address"]) if "sqc_address" in circuit.registers else []
        qram = list(circuit.registers["qram_address"]) if "qram_address" in circuit.registers else []
        return sqc + qram

    def bus_qubit(self) -> int:
        """Index of the single bus qubit."""
        return self.build_circuit().registers["bus"][0]

    def kept_qubits(self) -> list[int]:
        """Qubits whose state the algorithm consumes (address + bus)."""
        return self.address_qubits() + [self.bus_qubit()]

    # -------------------------------------------------------------- I/O states
    def input_state(
        self, amplitudes: Mapping[int, complex] | None = None
    ) -> PathState:
        """Input superposition over the address register (uniform by default)."""
        circuit = self.build_circuit()
        return PathState.register_superposition(
            circuit.num_qubits, self.address_qubits(), amplitudes
        )

    def ideal_output(self, input_state: PathState | None = None) -> PathState:
        """The analytically known correct output for ``input_state``.

        Every path keeps its address, the bus is XORed with the addressed
        memory bit, and all ancillary registers return to their input values.
        """
        state = self.input_state() if input_state is None else input_state
        bits = state.bits.copy()
        addresses = state.register_values(self.address_qubits())
        bus = self.bus_qubit()
        data_bits = np.array(
            [self.memory.bit(int(address), self.bit_plane) for address in addresses],
            dtype=bool,
        )
        bits[:, bus] ^= data_bits
        return PathState(bits=bits, amplitudes=state.amplitudes.copy())

    # -------------------------------------------------------------- simulation
    def simulate(
        self, input_state: PathState | None = None, *, engine=None
    ) -> PathState:
        """Noiseless simulation of the query circuit.

        ``engine`` selects the execution engine (see
        :mod:`repro.sim.engine`); ``None`` uses the session default
        (the compiled ``"feynman-tape"`` engine).
        """
        if input_state is None:
            compiled = self.compiled_query()
            circuit, state = compiled.circuit, compiled.input_state
        else:
            # Explicit inputs skip the compiled bundle: building the uniform
            # superposition and ideal output it carries would be wasted work
            # (e.g. MultiBitQuery readouts run many single-path inputs).
            circuit, state = self.build_circuit(), input_state
        return FeynmanPathSimulator(engine=engine).run(circuit, state)

    def verify(self, input_state: PathState | None = None) -> bool:
        """True when the noiseless simulation matches the ideal output exactly."""
        state = self.input_state() if input_state is None else input_state
        produced = self.simulate(state).as_dict()
        expected = self.ideal_output(state).as_dict()
        if set(produced) != set(expected):
            return False
        return all(abs(produced[key] - expected[key]) < 1e-9 for key in expected)

    def run_query(
        self,
        noise: NoiseModel | None = None,
        shots: int = 128,
        *,
        input_state: PathState | None = None,
        reduced: bool = True,
        rng: np.random.Generator | ShotSeeds | int | None = None,
        engine=None,
    ) -> QueryResult:
        """Monte-Carlo noisy query returning per-shot fidelities.

        Parameters
        ----------
        noise:
            Noise model (``None`` for a noiseless check run).
        shots:
            Number of Monte-Carlo samples.
        input_state:
            Input superposition; uniform over all addresses by default.
        reduced:
            Compute the reduced fidelity over address + bus (True, the
            operational figure of merit) or the full-state overlap (False).
        rng:
            Seed or generator for reproducibility, or a
            :class:`~repro.sim.seeding.ShotSeeds` window for the per-shot
            seeded streams deterministic sharding relies on.
        engine:
            Execution engine name or instance (see :mod:`repro.sim.engine`);
            ``None`` uses the session default (``"feynman-tape"``).
        """
        if isinstance(rng, (int, np.integer)) or rng is None:
            rng = np.random.default_rng(rng)
        noise = NoiselessModel() if noise is None else noise
        if input_state is None:
            compiled = self.compiled_query()
            circuit = compiled.circuit
            state = compiled.input_state
            ideal = compiled.ideal_output
            keep = list(compiled.kept_qubits) if reduced else None
        else:
            circuit = self.build_circuit()
            state = input_state
            ideal = self.ideal_output(state)
            keep = self.kept_qubits() if reduced else None
        return FeynmanPathSimulator(engine=engine).query_fidelities(
            circuit,
            state,
            noise,
            shots,
            keep_qubits=keep,
            ideal_output=ideal,
            rng=rng,
        )

    # --------------------------------------------------------------- resources
    def resource_report(self) -> ResourceReport:
        """Measured resource usage of the built circuit."""
        circuit = self.build_circuit()
        return ResourceReport(
            qubits=circuit.num_qubits,
            gate_count=circuit.num_gates,
            circuit_depth=circuit.depth(respect_barriers=True),
            circuit_depth_pipelined=circuit.depth(respect_barriers=False),
            classical_controlled_gates=circuit.count_tagged("classical"),
            clifford_t=circuit_cost(circuit),
        )
