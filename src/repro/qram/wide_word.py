"""Wide-word virtual QRAM: querying multi-bit memory cells in a single pass.

Section 8 of the paper notes that the virtual QRAM is compatible with data
widths larger than one bit by retrieving the cell one bit at a time, and that
the parallel-retrieval idea of Chen et al. can be folded in.  This module
implements that extension as a first-class architecture:

* the bus becomes a ``data_width``-qubit register;
* the (expensive) address-loading stage and the marker preparation run
  **once** per query, exactly as in the single-bit design -- the load-once
  property extends to the data width;
* inside each page iteration the (cheap, Clifford) data-retrieval stage is
  repeated once per bit plane, copying bit plane ``b`` of the addressed cell
  onto bus qubit ``b``.

Compared with running :class:`~repro.qram.query.MultiBitQuery` (one full query
per plane), the wide-word query saves a factor ``data_width`` of address
loading and marker routing -- i.e. the whole T-gate budget -- which is what
the benchmarks' extension study quantifies.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import QubitAllocator
from repro.qram.base import QRAMArchitecture
from repro.qram.tree import RouterTree
from repro.qram.virtual_qram import VirtualQRAMOptions
from repro.sim.paths import PathState


@dataclass
class WideWordVirtualQRAM(QRAMArchitecture):
    """Virtual QRAM whose bus register returns the whole multi-bit word."""

    options: VirtualQRAMOptions = field(default_factory=VirtualQRAMOptions)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qram_width < 1:
            raise ValueError("wide-word virtual QRAM needs a QRAM width of at least 1")
        if self.options.dual_rail:
            raise ValueError(
                "the dual-rail leaf encoding is only implemented for the "
                "single-bit virtual QRAM"
            )
        self.name = "wide_virtual"

    # ------------------------------------------------------------- interfaces
    @property
    def data_width(self) -> int:
        """Number of bits per memory cell (= bus register width)."""
        return self.memory.data_width

    def bus_qubits(self) -> list[int]:
        """The full bus register (most significant bit plane first)."""
        return list(self.build_circuit().registers["bus"])

    def bus_qubit(self) -> int:
        """The most significant bus qubit (kept for base-class compatibility)."""
        return self.bus_qubits()[0]

    def kept_qubits(self) -> list[int]:
        """Address plus every bus qubit (the reduced-fidelity registers)."""
        return self.address_qubits() + self.bus_qubits()

    def ideal_output(self, input_state: PathState | None = None) -> PathState:
        """Each bus qubit carries one bit plane of the addressed cell."""
        state = self.input_state() if input_state is None else input_state
        bits = state.bits.copy()
        addresses = state.register_values(self.address_qubits())
        for plane, bus_qubit in enumerate(self.bus_qubits()):
            plane_bits = np.array(
                [self.memory.bit(int(address), plane) for address in addresses],
                dtype=bool,
            )
            bits[:, bus_qubit] ^= plane_bits
        return PathState(bits=bits, amplitudes=state.amplitudes.copy())

    def verify(self, input_state: PathState | None = None) -> bool:
        """Check the wide-word query against the expected memory words."""
        state = self.input_state() if input_state is None else input_state
        produced = self.simulate(state).as_dict()
        expected = self.ideal_output(state).as_dict()
        if set(produced) != set(expected):
            return False
        return all(abs(produced[key] - expected[key]) < 1e-9 for key in expected)

    def read_word(self, address: int) -> int:
        """Noiseless readout of the whole word stored at ``address``."""
        state = self.input_state({address: 1.0})
        output = self.simulate(state)
        value = 0
        for bus_qubit in self.bus_qubits():
            value = (value << 1) | int(output.bits[0, bus_qubit])
        return value

    # ----------------------------------------------------------------- builder
    def _build(self) -> QuantumCircuit:
        opts = self.options
        alloc = QubitAllocator()
        sqc_address = alloc.register("sqc_address", self.k)
        qram_address = alloc.register("qram_address", self.m)
        bus = alloc.register("bus", self.data_width)
        tree = RouterTree(
            depth=self.m,
            allocator=alloc,
            separate_accumulators=not opts.recycle_address_qubits,
        )
        circuit = QuantumCircuit(
            num_qubits=alloc.num_qubits,
            registers=alloc.registers,
            metadata={"options": opts, "data_width": self.data_width},
        )

        # Load-once address loading and marker preparation (shared by planes).
        tree.load_address(
            circuit, list(qram_address), pipelined=opts.pipelined_addressing
        )
        tree.route_marker_to_leaves(circuit)

        # Retrieval order: all bit planes of page 0, then page 1, ...  Lazy data
        # swapping merges the unload of one (page, plane) mask with the load of
        # the next, exactly as in the single-bit builder.
        retrieval_steps = [
            (page_index, plane, self.memory.page(page_index, self.m, plane))
            for page_index in range(self.num_pages)
            for plane in range(self.data_width)
        ]
        previous_mask: tuple[int, ...] | None = None
        for page_index, plane, page in retrieval_steps:
            if previous_mask is None or not opts.lazy_data_swapping:
                write_mask = page
            else:
                write_mask = tuple(a ^ b for a, b in zip(previous_mask, page))
            self._apply_classical_gates(circuit, tree, write_mask)
            tree.accumulate_to_root(circuit)
            self._copy_root_to_bus(circuit, tree, sqc_address, bus[plane], page_index)
            tree.unaccumulate_from_root(circuit)
            if not opts.lazy_data_swapping:
                self._apply_classical_gates(circuit, tree, page)
            previous_mask = page
        if opts.lazy_data_swapping and retrieval_steps:
            self._apply_classical_gates(circuit, tree, retrieval_steps[-1][2])

        tree.unroute_marker_from_leaves(circuit)
        tree.unload_address(
            circuit, list(qram_address), pipelined=opts.pipelined_addressing
        )
        return circuit

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _apply_classical_gates(
        circuit: QuantumCircuit, tree: RouterTree, page: tuple[int, ...]
    ) -> None:
        for leaf_index, bit in enumerate(page):
            if bit:
                circuit.cx(
                    tree.leaves[leaf_index],
                    tree.leaf_parent_accumulator(leaf_index),
                    tags=("classical",),
                )

    @staticmethod
    def _copy_root_to_bus(
        circuit: QuantumCircuit,
        tree: RouterTree,
        sqc_address,
        bus: int,
        page_index: int,
    ) -> None:
        controls = list(sqc_address)
        width = len(controls)
        zero_controls = [
            q
            for bit_index, q in enumerate(controls)
            if not (page_index >> (width - 1 - bit_index)) & 1
        ]
        for q in zero_controls:
            circuit.x(q)
        circuit.mcx(controls + [tree.root_accumulator], bus)
        for q in zero_controls:
            circuit.x(q)
