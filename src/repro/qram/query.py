"""High-level query helpers and the architecture registry.

The experiment runners and benchmarks refer to architectures by the short
names used in the paper's figures ("virtual", "sqc_bb", "sqc_ss", "fanout",
"sqc"); :func:`make_architecture` resolves a name plus parameters into a
concrete builder.  :func:`run_query_experiment` bundles the common pattern
"build circuit, prepare uniform input, Monte-Carlo noise, report mean
fidelity" shared by Figures 9-12, and :class:`MultiBitQuery` extends single-bit
queries to the multi-bit data widths discussed in Sec. 8 by querying one bit
plane at a time.

Both helpers run their Monte-Carlo shot loops through
:class:`~repro.sweep.SweepRunner`: shots are split into deterministic
seed-keyed shards that can execute across worker processes, with merged
fidelities bit-identical for any worker count or shard size.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Mapping, Type

import numpy as np

from repro.qram.base import QRAMArchitecture
from repro.qram.bucket_brigade import BucketBrigadeQRAM
from repro.qram.fanout import FanoutQRAM
from repro.qram.memory import ClassicalMemory
from repro.qram.select_swap import SelectSwapQRAM
from repro.qram.sqc import SequentialQueryCircuit
from repro.qram.virtual_qram import VirtualQRAM, VirtualQRAMOptions
from repro.sim.noise import NoiseModel
from repro.sweep import ShotShard, SweepRunner

#: Architectures by the short names used throughout the benchmarks.
ARCHITECTURES: dict[str, Type[QRAMArchitecture]] = {
    "virtual": VirtualQRAM,
    "sqc_bb": BucketBrigadeQRAM,
    "bb": BucketBrigadeQRAM,
    "sqc_ss": SelectSwapQRAM,
    "ss": SelectSwapQRAM,
    "fanout": FanoutQRAM,
    "sqc": SequentialQueryCircuit,
}


def make_architecture(
    name: str,
    memory: ClassicalMemory,
    qram_width: int | None = None,
    **kwargs,
) -> QRAMArchitecture:
    """Instantiate an architecture by its short name.

    ``qram_width`` defaults to the full address width (no paging) for the
    router-based architectures and is ignored for the SQC.
    """
    key = name.lower()
    if key not in ARCHITECTURES:
        raise KeyError(
            f"unknown architecture {name!r}; known: {sorted(set(ARCHITECTURES))}"
        )
    cls = ARCHITECTURES[key]
    if cls is SequentialQueryCircuit:
        return cls(memory=memory, qram_width=0, **kwargs)
    width = memory.address_width if qram_width is None else qram_width
    return cls(memory=memory, qram_width=width, **kwargs)


@dataclass(frozen=True)
class QueryExperimentResult:
    """Summary statistics of one Monte-Carlo query-fidelity experiment."""

    architecture: str
    m: int
    k: int
    shots: int
    mean_fidelity: float
    std_error: float

    def as_dict(self) -> dict:
        """Plain-dict form of the query record."""
        return {
            "architecture": self.architecture,
            "m": self.m,
            "k": self.k,
            "shots": self.shots,
            "mean_fidelity": self.mean_fidelity,
            "std_error": self.std_error,
        }


def _experiment_shard(spec: tuple, shard: ShotShard) -> np.ndarray:
    """Shard worker for :func:`run_query_experiment` (module-level: picklable)."""
    architecture, noise, amplitudes, reduced, engine = spec
    input_state = None if amplitudes is None else architecture.input_state(amplitudes)
    result = architecture.run_query(
        noise,
        shard.shots,
        input_state=input_state,
        reduced=reduced,
        rng=shard.seeds(),
        engine=engine,
    )
    return result.fidelities


def run_query_experiment(
    architecture: QRAMArchitecture,
    noise: NoiseModel | None,
    shots: int,
    *,
    amplitudes: Mapping[int, complex] | None = None,
    reduced: bool = True,
    rng: np.random.Generator | int | None = None,
    engine: str | None = None,
    runner: SweepRunner | None = None,
    seed: int = 0,
    point_index: int = 0,
) -> QueryExperimentResult:
    """Run one noisy-query experiment and summarise it (Figures 9-12 pattern).

    ``engine`` selects the execution engine (see :mod:`repro.sim.engine`);
    ``None`` uses the session default.  With the default uniform input the
    architecture's memoized :meth:`~repro.qram.base.QRAMArchitecture.compiled_query`
    bundle is reused, so repeated sweep points skip circuit construction.

    When ``runner`` is given, the shot loop is decomposed into deterministic
    seed-keyed shards executed by the :class:`~repro.sweep.SweepRunner`
    (``rng`` is then ignored): per-shot streams derive from ``(seed,
    point_index, shot_index)``, so the summary is bit-identical for any
    worker count or shard size.  Without a runner the legacy single-pass
    path with a shared ``rng`` stream is used.
    """
    if runner is not None:
        spec = (architecture, noise, amplitudes, reduced, engine)
        result = runner.map_shards(
            _experiment_shard,
            [spec],
            shots=shots,
            seed=seed,
            point_offset=point_index,
        )[0]
    else:
        input_state = (
            None if amplitudes is None else architecture.input_state(amplitudes)
        )
        result = architecture.run_query(
            noise,
            shots,
            input_state=input_state,
            reduced=reduced,
            rng=rng,
            engine=engine,
        )
    return QueryExperimentResult(
        architecture=architecture.name,
        m=architecture.m,
        k=architecture.k,
        shots=shots,
        mean_fidelity=result.mean_fidelity,
        std_error=result.std_error,
    )


@lru_cache(maxsize=64)
def _cached_plane(
    memory: ClassicalMemory,
    qram_width: int,
    architecture: str,
    options: VirtualQRAMOptions | None,
    plane: int,
) -> QRAMArchitecture:
    """Process-local plane build cache: shards of a plane share one circuit."""
    kwargs: dict = {"bit_plane": plane}
    if architecture == "virtual" and options is not None:
        kwargs["options"] = options
    return make_architecture(architecture, memory, qram_width, **kwargs)


def _plane_shard(spec: tuple, shard: ShotShard) -> np.ndarray:
    """Shard worker for :meth:`MultiBitQuery.run_noisy_planes` (picklable)."""
    query, noise, reduced = spec
    architecture = _cached_plane(
        query.memory,
        query.qram_width,
        query.architecture,
        query.options,
        shard.point_index,
    )
    result = architecture.run_query(
        noise, shard.shots, reduced=reduced, rng=shard.seeds(), engine=query.engine
    )
    return result.fidelities


@dataclass
class MultiBitQuery:
    """Query a multi-bit memory one bit plane at a time (Sec. 8 extension).

    The virtual QRAM natively transfers one bit per query; memories with
    ``data_width > 1`` are served by repeating the query for each bit plane,
    which is the strategy the paper describes as compatible with its design.
    ``engine`` selects the execution engine used for the per-plane
    simulations (``None`` = session default, see :mod:`repro.sim.engine`).

    :meth:`run_noisy_planes` treats each bit plane as one sweep point of a
    :class:`~repro.sweep.SweepRunner` sweep, so the planes' Monte-Carlo shot
    loops shard across worker processes with deterministic seed-splitting.
    """

    memory: ClassicalMemory
    qram_width: int
    architecture: str = "virtual"
    options: VirtualQRAMOptions | None = None
    engine: str | None = None

    def plane_architecture(self, plane: int) -> QRAMArchitecture:
        """The architecture instance serving one bit plane."""
        kwargs: dict = {"bit_plane": plane}
        if self.architecture == "virtual" and self.options is not None:
            kwargs["options"] = self.options
        return make_architecture(
            self.architecture, self.memory, self.qram_width, **kwargs
        )

    def planes(self) -> list[QRAMArchitecture]:
        """One architecture instance per bit plane."""
        return [
            self.plane_architecture(plane)
            for plane in range(self.memory.data_width)
        ]

    def run_noisy_planes(
        self,
        noise: NoiseModel | None,
        shots: int,
        *,
        reduced: bool = True,
        runner: SweepRunner | None = None,
        seed: int = 0,
    ) -> list[QueryExperimentResult]:
        """Noisy-query summary per bit plane, sharded across the runner.

        Each plane is one sweep point; its shot loop is split into
        deterministic seed-keyed shards (see :mod:`repro.sweep`), so the
        per-plane summaries are bit-identical for any worker count or shard
        size.  ``runner`` defaults to a serial :class:`~repro.sweep.SweepRunner`.
        """
        runner = SweepRunner(workers=1) if runner is None else runner
        spec = (self, noise, reduced)
        merged = runner.map_shards(
            _plane_shard,
            [spec] * self.memory.data_width,
            shots=shots,
            seed=seed,
        )
        summaries = []
        for plane, result in enumerate(merged):
            architecture = self.plane_architecture(plane)
            summaries.append(
                QueryExperimentResult(
                    architecture=architecture.name,
                    m=architecture.m,
                    k=architecture.k,
                    shots=shots,
                    mean_fidelity=result.mean_fidelity,
                    std_error=result.std_error,
                )
            )
        return summaries

    def classical_readout(self, address: int) -> int:
        """The value a noiseless multi-bit query returns for ``address``.

        Each plane's circuit is verified to produce the plane's bit; the bits
        are reassembled most-significant first.
        """
        value = 0
        for plane, architecture in enumerate(self.planes()):
            amplitudes = {address: 1.0 + 0.0j}
            output = architecture.simulate(
                architecture.input_state(amplitudes), engine=self.engine
            )
            bus_bit = int(output.bits[0, architecture.bus_qubit()])
            value = (value << 1) | bus_bit
        return value

    def total_resources(self) -> dict:
        """Aggregate resource counts across all bit planes."""
        reports = [arch.resource_report().as_dict() for arch in self.planes()]
        totals: dict = {key: 0 for key in reports[0]}
        for report in reports:
            for key, value in report.items():
                totals[key] += value
        return totals
