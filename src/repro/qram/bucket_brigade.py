"""Baseline B: hybrid SQC + bucket-brigade QRAM (Sec. 6.1, Table 2 "SQC+BB").

The bucket-brigade architecture [Giovannetti-Lloyd-Maccone; Hann et al.] loads
the address qubits into a binary router tree and retrieves data by routing it
along the *active path* of the tree, so that errors on a router only disturb
the branches of the superposition that traverse it -- the origin of its
celebrated resilience to generic (X as well as Z) noise.

When used to query a memory larger than the tree ("SQC+BB"), the architecture
is *load-multiple-times*: every page iteration repeats the full
address-loading stage, whose CSWAP routers dominate the T cost.  This is the
exponential ``O(2^k)`` T-depth overhead that Table 2 attributes to Baseline B
and that the paper's load-once virtual QRAM removes.

With ``qram_width == memory.address_width`` (``k = 0``) this class is the
plain bucket-brigade QRAM used in the Figure 9/10 comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import QubitAllocator
from repro.qram.base import QRAMArchitecture
from repro.qram.tree import RouterTree


@dataclass
class BucketBrigadeQRAM(QRAMArchitecture):
    """Bucket-brigade QRAM, optionally paged by an SQC over the high bits."""

    pipelined_addressing: bool = True

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qram_width < 1:
            raise ValueError("bucket-brigade QRAM needs a QRAM width of at least 1")
        self.name = "sqc_bb"

    def _build(self) -> QuantumCircuit:
        alloc = QubitAllocator()
        sqc_address = alloc.register("sqc_address", self.k)
        qram_address = alloc.register("qram_address", self.m)
        bus = alloc.register("bus", 1)
        tree = RouterTree(depth=self.m, allocator=alloc, separate_accumulators=False)
        circuit = QuantumCircuit(
            num_qubits=alloc.num_qubits, registers=alloc.registers
        )

        for page_index in range(self.num_pages):
            page = self.memory.page(page_index, self.m, self.bit_plane)
            # Load-multiple-times: the address enters the tree for every page.
            tree.load_address(
                circuit, list(qram_address), pipelined=self.pipelined_addressing
            )
            # Write the page's classical data onto the leaf data qubits.
            self._write_page(circuit, tree, page)
            # Route the addressed leaf's bit up the active path to the root.
            tree.route_leaves_to_root(circuit)
            self._copy_root_to_bus(circuit, tree, sqc_address, bus[0], page_index)
            tree.unroute_leaves_from_root(circuit)
            # Unload the classical data and the address.
            self._write_page(circuit, tree, page)
            tree.unload_address(
                circuit, list(qram_address), pipelined=self.pipelined_addressing
            )
        return circuit

    # ----------------------------------------------------------------- helpers
    @staticmethod
    def _write_page(
        circuit: QuantumCircuit, tree: RouterTree, page: tuple[int, ...]
    ) -> None:
        """Classically-controlled X writes of one page onto the leaf qubits."""
        for leaf_index, bit in enumerate(page):
            if bit:
                circuit.x(tree.leaves[leaf_index], tags=("classical",))

    @staticmethod
    def _copy_root_to_bus(
        circuit: QuantumCircuit,
        tree: RouterTree,
        sqc_address,
        bus: int,
        page_index: int,
    ) -> None:
        """Copy the routed data bit to the bus when the SQC bits select this page."""
        controls = list(sqc_address)
        width = len(controls)
        zero_controls = [
            q
            for bit_index, q in enumerate(controls)
            if not (page_index >> (width - 1 - bit_index)) & 1
        ]
        for q in zero_controls:
            circuit.x(q)
        circuit.mcx(controls + [tree.root_wire], bus)
        for q in zero_controls:
            circuit.x(q)
