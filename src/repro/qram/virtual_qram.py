"""The paper's proposed architecture: virtual QRAM (Sec. 3, Algorithm 1).

A virtual QRAM queries a memory of capacity ``N = 2**n`` using a physical
router tree of capacity only ``M = 2**m`` (``m <= n``).  The ``k = n - m``
most-significant address bits select one of ``K = 2**k`` memory *pages*; the
query loads the ``m`` least-significant address bits into the tree **once**,
then iterates the (cheap, Clifford-dominated) data-retrieval stage over all
pages, copying the queried bit to the bus only for the page selected by the
``k`` SQC address bits.

The builder exposes the three key optimizations of Sec. 3.2 as independent
switches so that Table 1's ablation can be measured on real circuits:

* **Address-qubit recycling** (Opt. 1): reuse the router-tree wire qubits as
  the data-retrieval accumulators instead of allocating a separate data qubit
  per internal node.
* **Lazy data swapping** (Opt. 2): between consecutive pages only toggle the
  classically-controlled gates of cells whose value actually changes
  (the XOR of the two pages), instead of fully unloading and reloading.
* **Address pipelining** (Opt. 3): allow the ``(l+1)``-th address qubit to
  enter the tree as soon as the ``l``-th has moved one level down; the
  non-pipelined schedule is modelled with barriers after each loading round.

An optional dual-rail leaf encoding (Fig. 5d) is also provided; it doubles
the leaf qubits and replaces the classically-controlled CX inclusion with the
classically-controlled SWAP of the paper's description, and is used by the
noise-analysis comparison of Sec. 5.1 (``F_dual-rail >= 1 - 8 eps m^2``).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import QubitAllocator
from repro.qram.base import QRAMArchitecture
from repro.qram.tree import RouterTree


@dataclass(frozen=True)
class VirtualQRAMOptions:
    """Feature switches for the virtual QRAM builder (Sec. 3.2 ablation)."""

    recycle_address_qubits: bool = True
    lazy_data_swapping: bool = True
    pipelined_addressing: bool = True
    dual_rail: bool = False

    @classmethod
    def raw(cls) -> "VirtualQRAMOptions":
        """The unoptimised construction (the RAW column of Table 1)."""
        return cls(
            recycle_address_qubits=False,
            lazy_data_swapping=False,
            pipelined_addressing=False,
            dual_rail=False,
        )

    @classmethod
    def all_enabled(cls) -> "VirtualQRAMOptions":
        """Every optimization enabled (the OPT: ALL column of Table 1)."""
        return cls()

    @classmethod
    def only(cls, optimization: str) -> "VirtualQRAMOptions":
        """RAW plus a single named optimization (``"recycling"``, ``"lazy"``,
        ``"pipelining"``), matching Table 1's per-optimization columns."""
        base = dict(
            recycle_address_qubits=False,
            lazy_data_swapping=False,
            pipelined_addressing=False,
            dual_rail=False,
        )
        key = {
            "recycling": "recycle_address_qubits",
            "lazy": "lazy_data_swapping",
            "pipelining": "pipelined_addressing",
        }.get(optimization)
        if key is None:
            raise ValueError(f"unknown optimization {optimization!r}")
        base[key] = True
        return cls(**base)


@dataclass
class VirtualQRAM(QRAMArchitecture):
    """Hybrid SQC + bucket-brigade virtual QRAM (the paper's contribution)."""

    options: VirtualQRAMOptions = field(default_factory=VirtualQRAMOptions)

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qram_width < 1:
            raise ValueError("virtual QRAM needs a QRAM width of at least 1")
        self.name = "virtual"

    # ----------------------------------------------------------------- builder
    def _build(self) -> QuantumCircuit:
        opts = self.options
        alloc = QubitAllocator()
        sqc_address = alloc.register("sqc_address", self.k)
        qram_address = alloc.register("qram_address", self.m)
        bus = alloc.register("bus", 1)
        tree = RouterTree(
            depth=self.m,
            allocator=alloc,
            separate_accumulators=not opts.recycle_address_qubits,
            dual_rail_leaves=opts.dual_rail,
        )
        circuit = QuantumCircuit(
            num_qubits=alloc.num_qubits,
            registers=alloc.registers,
            metadata={"options": opts},
        )

        # ---------------------------------------------- Stage 1: address loading
        tree.load_address(
            circuit, list(qram_address), pipelined=opts.pipelined_addressing
        )
        tree.route_marker_to_leaves(circuit)

        # ---------------------------------------------- Stage 2: data retrieval
        pages = [
            self.memory.page(p, self.m, self.bit_plane) for p in range(self.num_pages)
        ]
        for page_index in range(self.num_pages):
            write_mask = self._page_write_mask(pages, page_index)
            self._apply_classical_gates(circuit, tree, write_mask)
            self._retrieve_page(circuit, tree, sqc_address, bus[0], page_index)
            if not opts.lazy_data_swapping:
                # Fully unload the page's classically-controlled gates before
                # the next page is written.
                self._apply_classical_gates(circuit, tree, pages[page_index])
        if opts.lazy_data_swapping:
            # A single cleanup pass removes the residue of the final page.
            self._apply_classical_gates(circuit, tree, pages[-1])

        # ------------------------------------------- Uncompute address loading
        tree.unroute_marker_from_leaves(circuit)
        tree.unload_address(
            circuit, list(qram_address), pipelined=opts.pipelined_addressing
        )
        return circuit

    # ----------------------------------------------------------------- helpers
    def _page_write_mask(
        self, pages: list[tuple[int, ...]], page_index: int
    ) -> tuple[int, ...]:
        """Classical bits whose gates must be toggled before this page's MCX."""
        if page_index == 0 or not self.options.lazy_data_swapping:
            return pages[page_index]
        previous = pages[page_index - 1]
        current = pages[page_index]
        return tuple(a ^ b for a, b in zip(previous, current))

    def _apply_classical_gates(
        self, circuit: QuantumCircuit, tree: RouterTree, mask: tuple[int, ...]
    ) -> None:
        """Apply the classically-controlled gates selected by ``mask``.

        Bit encoding: include leaf ``i`` in the CX compression tree.
        Dual-rail encoding: swap the marker into the leaf's ancilla rail.
        """
        for leaf_index, bit in enumerate(mask):
            if not bit:
                continue
            if self.options.dual_rail:
                circuit.swap(
                    tree.leaves[leaf_index],
                    tree.leaf_ancillas[leaf_index],
                    tags=("classical",),
                )
            else:
                circuit.cx(
                    tree.leaves[leaf_index],
                    tree.leaf_parent_accumulator(leaf_index),
                    tags=("classical",),
                )

    def _retrieve_page(
        self,
        circuit: QuantumCircuit,
        tree: RouterTree,
        sqc_address,
        bus: int,
        page_index: int,
    ) -> None:
        """CX-compress to the root, copy to the bus for ``page_index``, uncompute."""
        if self.options.dual_rail:
            self._dual_rail_contributions(circuit, tree)
        tree.accumulate_to_root(circuit)
        self._copy_root_to_bus(circuit, tree, sqc_address, bus, page_index)
        tree.unaccumulate_from_root(circuit)
        if self.options.dual_rail:
            self._dual_rail_contributions(circuit, tree)

    def _dual_rail_contributions(self, circuit: QuantumCircuit, tree: RouterTree) -> None:
        """XOR every leaf's ancilla rail into its parent accumulator."""
        for leaf_index in range(tree.capacity):
            circuit.cx(
                tree.leaf_ancillas[leaf_index],
                tree.leaf_parent_accumulator(leaf_index),
            )

    def _copy_root_to_bus(
        self,
        circuit: QuantumCircuit,
        tree: RouterTree,
        sqc_address,
        bus: int,
        page_index: int,
    ) -> None:
        """MCX copying the root accumulator to the bus for the selected page."""
        controls = list(sqc_address)
        width = len(controls)
        zero_controls = [
            q
            for bit_index, q in enumerate(controls)
            if not (page_index >> (width - 1 - bit_index)) & 1
        ]
        for q in zero_controls:
            circuit.x(q)
        circuit.mcx(controls + [tree.root_accumulator], bus)
        for q in zero_controls:
            circuit.x(q)
