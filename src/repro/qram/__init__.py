"""Quantum query architectures: the paper's virtual QRAM and its baselines.

Public classes
--------------
* :class:`~repro.qram.memory.ClassicalMemory` -- the classical dataset.
* :class:`~repro.qram.virtual_qram.VirtualQRAM` -- the paper's contribution
  (Sec. 3, Algorithm 1), with :class:`~repro.qram.virtual_qram.VirtualQRAMOptions`
  exposing the Sec. 3.2 optimizations.
* :class:`~repro.qram.bucket_brigade.BucketBrigadeQRAM` -- Baseline B (SQC+BB).
* :class:`~repro.qram.select_swap.SelectSwapQRAM` -- Baseline S (SQC+SS).
* :class:`~repro.qram.fanout.FanoutQRAM` -- the Fanout background architecture.
* :class:`~repro.qram.sqc.SequentialQueryCircuit` -- the gate-based QROM baseline.
* :mod:`~repro.qram.query` -- name-based factory and experiment helpers.
"""

from repro.qram.base import CompiledQuery, QRAMArchitecture, ResourceReport
from repro.qram.bucket_brigade import BucketBrigadeQRAM
from repro.qram.fanout import FanoutQRAM
from repro.qram.memory import ClassicalMemory
from repro.qram.query import (
    ARCHITECTURES,
    MultiBitQuery,
    QueryExperimentResult,
    make_architecture,
    run_query_experiment,
)
from repro.qram.select_swap import SelectSwapQRAM
from repro.qram.sqc import SequentialQueryCircuit
from repro.qram.tree import RouterTree
from repro.qram.virtual_qram import VirtualQRAM, VirtualQRAMOptions
from repro.qram.wide_word import WideWordVirtualQRAM

__all__ = [
    "ARCHITECTURES",
    "BucketBrigadeQRAM",
    "ClassicalMemory",
    "CompiledQuery",
    "FanoutQRAM",
    "MultiBitQuery",
    "QRAMArchitecture",
    "QueryExperimentResult",
    "ResourceReport",
    "RouterTree",
    "SelectSwapQRAM",
    "SequentialQueryCircuit",
    "VirtualQRAM",
    "VirtualQRAMOptions",
    "WideWordVirtualQRAM",
    "make_architecture",
    "run_query_experiment",
]
