"""Sequential Query Circuit (SQC / QROM), the purely gate-based baseline (Sec. 2.3.1).

One MCX gate per memory cell: the gate's controls encode the cell's address
(zero-bits conjugated by X), its target is the bus, and it is included only
when the stored bit is 1 -- making every included gate a classically
controlled one.  The SQC uses only ``n + 1`` qubits but its latency grows
linearly with the memory size, which is the trade-off the router-based
architectures (and the paper's hybrid) are designed to escape.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.registers import QubitAllocator
from repro.qram.base import QRAMArchitecture
from repro.qram.memory import ClassicalMemory


@dataclass
class SequentialQueryCircuit(QRAMArchitecture):
    """QROM-style sequential query over the full address register.

    The SQC has no router tree, so its ``qram_width`` is always 0 (every
    address bit is handled gate-sequentially); construct it as
    ``SequentialQueryCircuit(memory)``.
    """

    qram_width: int = 0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.qram_width != 0:
            raise ValueError("the sequential query circuit has no QRAM part (m = 0)")
        self.name = "sqc"

    @classmethod
    def for_memory(cls, memory: ClassicalMemory, bit_plane: int = 0) -> "SequentialQueryCircuit":
        """Convenience constructor mirroring the other architectures' signatures."""
        return cls(memory=memory, qram_width=0, bit_plane=bit_plane)

    def _build(self) -> QuantumCircuit:
        alloc = QubitAllocator()
        address = alloc.register("sqc_address", self.n)
        alloc.register("qram_address", 0)
        bus = alloc.register("bus", 1)
        circuit = QuantumCircuit(
            num_qubits=alloc.num_qubits, registers=alloc.registers
        )
        for cell in range(self.memory.size):
            if self.memory.bit(cell, self.bit_plane):
                self._address_controlled_flip(circuit, list(address), cell, bus[0])
        return circuit

    @staticmethod
    def _address_controlled_flip(
        circuit: QuantumCircuit, controls: list[int], pattern: int, target: int
    ) -> None:
        """MCX firing when the address register equals ``pattern``."""
        width = len(controls)
        zero_controls = [
            q
            for bit_index, q in enumerate(controls)
            if not (pattern >> (width - 1 - bit_index)) & 1
        ]
        for q in zero_controls:
            circuit.x(q)
        circuit.mcx(controls, target, tags=("classical",))
        for q in zero_controls:
            circuit.x(q)
