"""Simulation substrate: Feynman-path and statevector simulators plus noise.

The paper's evaluation (Sec. 6) rests on a *Feynman-path simulator*: because
QRAM circuits are built from classical reversible gates (and the injected
errors are Paulis), every computational basis state of the input superposition
evolves into a single basis state with a +/-1 (or unit-modulus) phase.  Each
such trajectory is a *path*; simulating a query costs ``O(n_gates * n_paths)``
with memory constant in circuit depth.

Contents
--------
* :class:`~repro.sim.paths.PathState` -- a superposition stored as a boolean
  matrix of paths plus complex amplitudes.
* :class:`~repro.sim.feynman.FeynmanPathSimulator` -- noiseless and
  Monte-Carlo-noisy path simulation, vectorised across both paths and shots.
* :mod:`~repro.sim.engine` -- pluggable execution engines behind the
  simulator facade: the compiled gate-tape engine (``"feynman-tape"``, the
  default), the pattern-grouped batch engine (``"feynman-batch"``), the
  interpreted reference (``"feynman-interp"``) and the dense
  ``"statevector"`` adapter, plus the name registry and session default.
* :class:`~repro.sim.statevector.StatevectorSimulator` -- dense reference
  simulator (supports ``H``/``S``/``T``) used for cross-validation in tests.
* :mod:`~repro.sim.noise` -- Pauli channels, gate-based and qubit-based
  Monte-Carlo error injection (Secs. 5.1 and 6.3).
* :mod:`~repro.sim.fidelity` -- full-state and reduced (address+bus) query
  fidelity estimators.
"""

from repro.sim.engine import (
    Engine,
    available_engines,
    get_default_engine,
    get_engine,
    register_engine,
    set_default_engine,
)
from repro.sim.fidelity import reduced_fidelity, state_fidelity
from repro.sim.feynman import FeynmanPathSimulator, UnsupportedGateError
from repro.sim.noise import (
    DepolarizingNoise,
    GateNoiseModel,
    NoiseModel,
    NoiselessModel,
    PauliChannel,
    QubitOncePauliNoise,
    ScheduledNoiseModel,
    sample_noisy_circuit,
    with_idle_noise,
)
from repro.sim.paths import PathState
from repro.sim.seeding import ShotSeeds
from repro.sim.statevector import StatevectorSimulator

__all__ = [
    "DepolarizingNoise",
    "Engine",
    "FeynmanPathSimulator",
    "GateNoiseModel",
    "NoiseModel",
    "NoiselessModel",
    "PauliChannel",
    "PathState",
    "QubitOncePauliNoise",
    "ScheduledNoiseModel",
    "ShotSeeds",
    "StatevectorSimulator",
    "UnsupportedGateError",
    "available_engines",
    "get_default_engine",
    "get_engine",
    "reduced_fidelity",
    "register_engine",
    "sample_noisy_circuit",
    "set_default_engine",
    "state_fidelity",
    "with_idle_noise",
]
