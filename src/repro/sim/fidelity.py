"""Query-fidelity metrics (Sec. 5 of the paper).

Two fidelities are used throughout the reproduction:

* the **full-state fidelity** ``F = |<psi_ideal | psi_noisy>|^2`` over every
  qubit in the circuit, and
* the **reduced fidelity** over the *kept* registers (address + bus), i.e.
  ``F = <phi | Tr_rest(rho_noisy) | phi>`` where ``phi`` is the ideal state of
  the kept registers.  This is the operationally meaningful figure of merit: a
  quantum algorithm only consumes the address and bus registers, and it is the
  quantity under which the bucket-brigade architecture exhibits its celebrated
  resilience to generic noise (the per-branch locality argument of Sec. 5.1).

Both metrics operate on path-sum representations, so they are exact for a
given Pauli error pattern; the Monte-Carlo average over patterns is taken by
:class:`~repro.sim.feynman.FeynmanPathSimulator.query_fidelities`.
"""

from __future__ import annotations

import numpy as np

from repro.sim.paths import PathState


def state_fidelity(ideal: PathState, noisy: PathState) -> float:
    """Full-state fidelity ``|<ideal|noisy>|^2`` between two pure path states."""
    return float(abs(ideal.overlap(noisy)) ** 2)


def _pack_rows(bits: np.ndarray, columns: list[int]) -> list[bytes]:
    """Hashable key per row restricted to ``columns`` (empty list -> b'')."""
    if not columns:
        return [b""] * bits.shape[0]
    packed = np.packbits(bits[:, columns], axis=1)
    return [row.tobytes() for row in packed]


def _packed_key_matrix(bits: np.ndarray, columns: list[int]) -> np.ndarray:
    """Per-row key bytes over ``columns`` as a ``(rows, width)`` uint8 matrix.

    Row ``r`` of the result is byte-for-byte the :func:`_pack_rows` key of
    row ``r`` (so lookups against dicts keyed by ``_pack_rows`` agree), but
    kept as a matrix so whole-block comparisons vectorise.
    """
    return np.packbits(bits[:, columns], axis=1)


def _as_void_keys(matrix: np.ndarray) -> np.ndarray:
    """View each row of a uint8 key matrix as one fixed-width void scalar."""
    contiguous = np.ascontiguousarray(matrix)
    return contiguous.view(np.dtype((np.void, matrix.shape[1])))[:, 0]


def _ideal_keep_amplitudes(
    ideal: PathState, keep_columns: list[int]
) -> dict[bytes, complex]:
    """Amplitude of each kept-register basis state in the ideal output.

    The ideal output is required to be a *product* state across the
    (keep, rest) cut -- for QRAM queries the rest registers (routers, wires,
    data ancillae) must return to |0...0>, so this always holds for a correct
    builder.  A non-product ideal output indicates a builder bug and raises.
    """
    rest_columns = [q for q in range(ideal.num_qubits) if q not in set(keep_columns)]
    rest_keys = _pack_rows(ideal.bits, rest_columns)
    if len(set(rest_keys)) > 1:
        raise ValueError(
            "ideal output is entangled across the keep/rest cut; "
            "reduced fidelity is only defined for product ideal outputs"
        )
    keep_keys = _pack_rows(ideal.bits, keep_columns)
    amplitudes: dict[bytes, complex] = {}
    for key, amp in zip(keep_keys, ideal.amplitudes):
        amplitudes[key] = amplitudes.get(key, 0.0 + 0.0j) + complex(amp)
    return amplitudes


def reduced_fidelity(
    ideal: PathState, noisy: PathState, keep_qubits: list[int]
) -> float:
    """Fidelity of the kept registers with the rest traced out.

    ``F = sum_g |<phi_keep | phi_g>|^2`` where ``phi_g`` collects the noisy
    amplitude on kept-register states for each basis state ``g`` of the traced
    registers.
    """
    keep_columns = list(keep_qubits)
    ideal_keep = _ideal_keep_amplitudes(ideal, keep_columns)
    rest_columns = [q for q in range(noisy.num_qubits) if q not in set(keep_columns)]

    noisy_keep_keys = _pack_rows(noisy.bits, keep_columns)
    noisy_rest_keys = _pack_rows(noisy.bits, rest_columns)

    overlaps: dict[bytes, complex] = {}
    for keep_key, rest_key, amp in zip(noisy_keep_keys, noisy_rest_keys, noisy.amplitudes):
        ideal_amp = ideal_keep.get(keep_key)
        if ideal_amp is None:
            continue
        overlaps[rest_key] = overlaps.get(rest_key, 0.0 + 0.0j) + np.conj(ideal_amp) * amp
    return float(sum(abs(value) ** 2 for value in overlaps.values()))


def shot_fidelities(
    ideal: PathState,
    bits_block: np.ndarray,
    amps_block: np.ndarray,
    *,
    shots: int,
    n_paths: int,
    keep_qubits: list[int] | None = None,
    kept: np.ndarray | None = None,
) -> np.ndarray:
    """Per-shot fidelities for a vectorised Monte-Carlo block.

    ``bits_block``/``amps_block`` are the outputs of
    :meth:`FeynmanPathSimulator.run_noisy_shots`: ``shots`` stacked copies of
    the path set, each evolved under an independently sampled error pattern.

    When ``keep_qubits`` is ``None`` the full-state fidelity is computed;
    otherwise the reduced fidelity over ``keep_qubits``.

    ``kept`` partitions the shots by their recorded check outcomes
    (postselection): a boolean mask of shape ``(shots,)`` whose rejected
    entries come back as ``NaN`` in the result -- the sentinel every
    aggregation step (:class:`~repro.sim.feynman.QueryResult`, sweep-shard
    concatenation) understands, so the rejected shots stay countable instead
    of silently vanishing.  ``None`` keeps every shot (no postselection).

    The reduction is fully vectorised but reproduces the historical per-shot
    dict loop **bit for bit**: overlap terms accumulate in row order within
    each ``(shot, rest-state)`` bucket (``np.bincount`` adds sequentially in
    input order), the squared magnitude uses the same ``hypot`` that
    ``abs(complex)`` uses, and per-shot bucket contributions sum in
    first-appearance order -- exactly the old dict's insertion order.
    """
    num_qubits = ideal.num_qubits
    if keep_qubits is None:
        keep_columns = list(range(num_qubits))
        rest_columns: list[int] = []
    else:
        keep_columns = list(keep_qubits)
        rest_columns = [q for q in range(num_qubits) if q not in set(keep_columns)]

    ideal_keep = _ideal_keep_amplitudes(ideal, keep_columns)

    rows = shots * n_paths
    # Per-row ideal amplitude and hit mask, resolved once per *distinct*
    # kept-register basis state instead of once per row.
    if keep_columns:
        keep_void = _as_void_keys(_packed_key_matrix(bits_block, keep_columns))
        unique_keys, keep_inverse = np.unique(keep_void, return_inverse=True)
        unique_amps = np.array(
            [ideal_keep.get(key.tobytes(), 0.0 + 0.0j) for key in unique_keys],
            dtype=complex,
        )
        unique_hit = np.array(
            [key.tobytes() in ideal_keep for key in unique_keys], dtype=bool
        )
        row_amp = unique_amps[keep_inverse]
        matched = np.nonzero(unique_hit[keep_inverse])[0]
    else:
        row_amp = np.full(rows, complex(ideal_keep[b""]))
        matched = np.arange(rows)

    weights = np.conj(row_amp[matched]) * amps_block[matched]
    shot_of_match = matched // n_paths

    if not rest_columns:
        # One overlap bucket per shot: the traced register set is empty.
        real = np.bincount(shot_of_match, weights=weights.real, minlength=shots)
        imag = np.bincount(shot_of_match, weights=weights.imag, minlength=shots)
        return _mask_rejected(np.hypot(real, imag) ** 2, kept)

    # Bucket matched rows by (shot, rest-state): prefix the rest key bytes
    # with the shot index so one void-key unique covers both.
    rest_matrix = _packed_key_matrix(bits_block, rest_columns)[matched]
    shot_bytes = shot_of_match.astype(np.uint64)[:, None].view(np.uint8)
    combo = _as_void_keys(np.concatenate([shot_bytes, rest_matrix], axis=1))
    _, first_position, bucket_of_match = np.unique(
        combo, return_index=True, return_inverse=True
    )
    real = np.bincount(bucket_of_match, weights=weights.real)
    imag = np.bincount(bucket_of_match, weights=weights.imag)
    squared = np.hypot(real, imag) ** 2
    # Buckets contribute to their shot in first-appearance order.
    appearance = np.argsort(first_position, kind="stable")
    bucket_shot = shot_of_match[first_position[appearance]]
    summed = np.bincount(bucket_shot, weights=squared[appearance], minlength=shots)
    # bincount ignores the weights dtype when the input is empty (returning
    # int64 zeros); coerce so the NaN postselection sentinel always fits.
    return _mask_rejected(summed.astype(np.float64, copy=False), kept)


def _mask_rejected(fidelities: np.ndarray, kept: np.ndarray | None) -> np.ndarray:
    """NaN out the shots a postselection mask rejects (``None`` keeps all)."""
    if kept is None:
        return fidelities
    fidelities[~np.asarray(kept, dtype=bool)] = np.nan
    return fidelities
