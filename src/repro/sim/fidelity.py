"""Query-fidelity metrics (Sec. 5 of the paper).

Two fidelities are used throughout the reproduction:

* the **full-state fidelity** ``F = |<psi_ideal | psi_noisy>|^2`` over every
  qubit in the circuit, and
* the **reduced fidelity** over the *kept* registers (address + bus), i.e.
  ``F = <phi | Tr_rest(rho_noisy) | phi>`` where ``phi`` is the ideal state of
  the kept registers.  This is the operationally meaningful figure of merit: a
  quantum algorithm only consumes the address and bus registers, and it is the
  quantity under which the bucket-brigade architecture exhibits its celebrated
  resilience to generic noise (the per-branch locality argument of Sec. 5.1).

Both metrics operate on path-sum representations, so they are exact for a
given Pauli error pattern; the Monte-Carlo average over patterns is taken by
:class:`~repro.sim.feynman.FeynmanPathSimulator.query_fidelities`.
"""

from __future__ import annotations

import numpy as np

from repro.sim.paths import PathState


def state_fidelity(ideal: PathState, noisy: PathState) -> float:
    """Full-state fidelity ``|<ideal|noisy>|^2`` between two pure path states."""
    return float(abs(ideal.overlap(noisy)) ** 2)


def _pack_rows(bits: np.ndarray, columns: list[int]) -> list[bytes]:
    """Hashable key per row restricted to ``columns`` (empty list -> b'')."""
    if not columns:
        return [b""] * bits.shape[0]
    packed = np.packbits(bits[:, columns], axis=1)
    return [row.tobytes() for row in packed]


def _ideal_keep_amplitudes(
    ideal: PathState, keep_columns: list[int]
) -> dict[bytes, complex]:
    """Amplitude of each kept-register basis state in the ideal output.

    The ideal output is required to be a *product* state across the
    (keep, rest) cut -- for QRAM queries the rest registers (routers, wires,
    data ancillae) must return to |0...0>, so this always holds for a correct
    builder.  A non-product ideal output indicates a builder bug and raises.
    """
    rest_columns = [q for q in range(ideal.num_qubits) if q not in set(keep_columns)]
    rest_keys = _pack_rows(ideal.bits, rest_columns)
    if len(set(rest_keys)) > 1:
        raise ValueError(
            "ideal output is entangled across the keep/rest cut; "
            "reduced fidelity is only defined for product ideal outputs"
        )
    keep_keys = _pack_rows(ideal.bits, keep_columns)
    amplitudes: dict[bytes, complex] = {}
    for key, amp in zip(keep_keys, ideal.amplitudes):
        amplitudes[key] = amplitudes.get(key, 0.0 + 0.0j) + complex(amp)
    return amplitudes


def reduced_fidelity(
    ideal: PathState, noisy: PathState, keep_qubits: list[int]
) -> float:
    """Fidelity of the kept registers with the rest traced out.

    ``F = sum_g |<phi_keep | phi_g>|^2`` where ``phi_g`` collects the noisy
    amplitude on kept-register states for each basis state ``g`` of the traced
    registers.
    """
    keep_columns = list(keep_qubits)
    ideal_keep = _ideal_keep_amplitudes(ideal, keep_columns)
    rest_columns = [q for q in range(noisy.num_qubits) if q not in set(keep_columns)]

    noisy_keep_keys = _pack_rows(noisy.bits, keep_columns)
    noisy_rest_keys = _pack_rows(noisy.bits, rest_columns)

    overlaps: dict[bytes, complex] = {}
    for keep_key, rest_key, amp in zip(noisy_keep_keys, noisy_rest_keys, noisy.amplitudes):
        ideal_amp = ideal_keep.get(keep_key)
        if ideal_amp is None:
            continue
        overlaps[rest_key] = overlaps.get(rest_key, 0.0 + 0.0j) + np.conj(ideal_amp) * amp
    return float(sum(abs(value) ** 2 for value in overlaps.values()))


def shot_fidelities(
    ideal: PathState,
    bits_block: np.ndarray,
    amps_block: np.ndarray,
    *,
    shots: int,
    n_paths: int,
    keep_qubits: list[int] | None = None,
) -> np.ndarray:
    """Per-shot fidelities for a vectorised Monte-Carlo block.

    ``bits_block``/``amps_block`` are the outputs of
    :meth:`FeynmanPathSimulator.run_noisy_shots`: ``shots`` stacked copies of
    the path set, each evolved under an independently sampled error pattern.

    When ``keep_qubits`` is ``None`` the full-state fidelity is computed;
    otherwise the reduced fidelity over ``keep_qubits``.
    """
    num_qubits = ideal.num_qubits
    if keep_qubits is None:
        keep_columns = list(range(num_qubits))
        rest_columns: list[int] = []
    else:
        keep_columns = list(keep_qubits)
        rest_columns = [q for q in range(num_qubits) if q not in set(keep_columns)]

    ideal_keep = _ideal_keep_amplitudes(ideal, keep_columns)

    keep_keys = _pack_rows(bits_block, keep_columns)
    rest_keys = _pack_rows(bits_block, rest_columns)

    fidelities = np.empty(shots, dtype=float)
    for shot in range(shots):
        start = shot * n_paths
        overlaps: dict[bytes, complex] = {}
        for row in range(start, start + n_paths):
            ideal_amp = ideal_keep.get(keep_keys[row])
            if ideal_amp is None:
                continue
            key = rest_keys[row]
            overlaps[key] = overlaps.get(key, 0.0 + 0.0j) + np.conj(ideal_amp) * amps_block[row]
        fidelities[shot] = sum(abs(value) ** 2 for value in overlaps.values())
    return fidelities
