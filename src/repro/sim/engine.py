"""Pluggable execution engines for query-circuit simulation.

Every simulator in the reproduction answers the same two questions -- "what
state does this circuit produce?" and "what are the per-shot trajectories
under Monte-Carlo Pauli noise?" -- so both are captured behind one
:class:`Engine` interface with a name-based registry:

``"feynman-interp"``
    The original instruction-at-a-time Feynman-path runner: string dispatch
    per gate, one ``rng`` draw per (gate, qubit) error site.  Kept as the
    readable reference implementation and the baseline for
    ``benchmarks/bench_compiled_engine.py``.

``"feynman-tape"``
    The compiled engine (the default).  Executes the fused
    :class:`~repro.circuit.ir.GateTape` group by group with integer-opcode
    dispatch, draws **all** Pauli codes for a shot batch up front from the
    tape's noise-site table, and applies the (sparse) error events as
    per-shot row-slice updates.  Under a fixed seed it consumes the random
    stream identically to ``"feynman-interp"`` and reproduces its shot
    fidelities bit for bit on the QRAM gate set (permutation gates plus
    exact ``+-1`` / ``+-i`` phases); fused ``T``/``TDG`` runs use a phase
    table whose rounding can differ from sequential multiplication by ~1 ulp.

``"feynman-batch"``
    The pattern-grouped batch engine.  All shots' randomness is drawn up
    front, then shots are grouped by their **distinct** sampled Pauli error
    pattern and the tape runs once per distinct pattern instead of once per
    shot.  Pure-``Z`` patterns do not even get their own run: a ``Z`` error
    is an exact per-path sign flip that commutes with every phase the
    kernels apply, so those patterns fold into parity masks read off a
    single noiseless carrier run.  Patterns containing ``X``/``Y`` errors
    execute in a *growing* shot-axis block: one slot per such pattern joins
    the block only at its first error site (copying the carrier's state --
    exactly the shot's noiseless prefix), so shared prefixes are computed
    once.  Results are scattered back to shot order.  Under
    :class:`~repro.sim.seeding.ShotSeeds` the engine consumes each shot's
    stream in the shared contract order and is **bit-identical** to
    ``"feynman-tape"`` for any seed, worker count or shard size; under a
    bulk ``numpy.random.Generator`` it instead samples only the
    non-identity events in aggregate
    (:meth:`~repro.circuit.ir.NoiseSiteTable.draw_sparse` -- exact Binomial
    event counts, ``O(events)`` randomness), which is distributionally
    identical to the dense draw but not stream-identical to the other
    engines.  Measurement-bearing circuits consume fresh uniforms per shot,
    so grouping cannot collapse them; the engine then falls back to the
    plain NumPy shot-axis path (the same stacked execution the tape engine
    uses on the same pre-drawn randomness, and therefore bit-identical).

``"statevector"``
    The dense reference simulator, adapted to the same interface (noiseless
    only; its output paths are merged per basis state).

Engines are stateless; :func:`get_engine` returns shared instances.  The
module-level default (``"feynman-tape"``) can be swapped globally with
:func:`set_default_engine`, which is how ``python -m repro.experiments
--engine`` reroutes every figure sweep without threading a parameter through
each runner.

Mid-circuit measurement and Pauli frames
----------------------------------------
Every engine executes ``MEASURE`` and ``CPAULI`` instructions (the
executed-teleportation primitives):

* A **Z-basis** measurement samples the outcome from the shot's true marginal
  (``p0`` computed from the shot's path amplitudes), zeroes the amplitudes of
  non-matching paths and renormalises by ``1 / sqrt(p_m)`` -- the path count
  never changes, collapsed paths simply carry zero amplitude.
* An **X-basis** measurement consumes one uniform exactly like a Z
  measurement but against ``p0 = 1/2``: projecting any computational basis
  path onto ``|+>`` or ``|->`` has magnitude ``1/sqrt(2)``, so when the
  measured qubit's value is determined by the other qubits along each path
  (true for every teleportation ladder, where it carries a copy of another
  qubit) the outcome really is uniform and the per-path update
  ``amp *= (-1)**(bit * m); bit := m`` is the exact renormalised projection.
  When paths *collide* (two paths differing only in the measured bit), the
  uniform draw still yields an **unbiased** fidelity estimator -- the
  cancelled interference shows up as zero-amplitude shots -- but individual
  shot fidelities are then estimates rather than exact projections.
  By convention the measured qubit is left in the computational state
  ``|m>`` (hardware re-initialises from the classical record), so a
  ``CPAULI X`` conditioned on ``m`` resets it to ``|0>`` for reuse.
* ``CPAULI`` applies its Pauli to the shots whose recorded classical bits
  XOR to 1 -- Pauli-frame feedforward, executed per shot.

**Random-stream contract.**  Per shot, measurement uniforms are drawn
*first* (one per ``MEASURE`` in program order -- see
:attr:`~repro.circuit.ir.GateTape.measurements`), then the noise-site codes
in site order.  All Feynman engines consume streams identically, so seeded
trajectories of measured circuits stay bit-identical across engines and
across any ``(workers, shard_size)`` sweep split; circuits without
measurements consume exactly the pre-measurement streams, preserving every
committed artefact bit for bit.

Bounded path branching (``H``)
------------------------------
Mid-circuit Hadamards execute by **doubling the path set**: every path
splits into an amplitude-weighted pair (``1/sqrt(2)`` each, sign flipped on
the upper branch when the pre-branch bit was 1), with the newest branch
always the innermost stride-1 pairing.  The per-shot path count is therefore
dynamic: ``n_paths`` rises by a factor of two per ``H`` (bounded by the
typed budget of :func:`repro.circuit.ir.get_max_branches`, enforced before
any shot executes) and falls again at ``Z``-basis measurements whose
compile-time collapse plan (:attr:`~repro.circuit.ir.GateTape.collapse_strides`)
proves the true-marginal projection annihilates exactly one branch of a live
axis -- the engines then contract that axis by gathering the surviving
partner of every pair.  Branching consumes **no randomness** of its own, so
the random-stream contract above is untouched: branch-free circuits execute
exactly as before, bit for bit.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.ir import (
    GateTape,
    NoiseSiteTable,
    OP_CCX,
    OP_CPAULI,
    OP_CSWAP,
    OP_CX,
    OP_CZ,
    OP_H,
    OP_MCX,
    OP_MEASURE,
    OP_NOP,
    OP_S,
    OP_SDG,
    OP_SWAP,
    OP_T,
    OP_TDG,
    OP_X,
    OP_Y,
    OP_Z,
    PHASE_I_POW,
    PHASE_I_POW_CONJ,
    PHASE_T_POW,
    PHASE_T_POW_CONJ,
    compile_circuit,
)
from repro.sim.feynman_kernels import (
    INV_SQRT2,
    UnsupportedGateError,
    apply_hadamard,
    apply_instruction,
    apply_masked_pauli,
)
from repro.sim.noise import (
    NoiseModel,
    NoiselessModel,
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
)
from repro.sim.paths import PathState
from repro.sim.seeding import ShotSeeds, draw_shot_randomness


def _check_state(circuit: QuantumCircuit, state: PathState) -> None:
    if state.num_qubits != circuit.num_qubits:
        raise ValueError(
            f"state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
        )


# ========================================================= measurement helpers
def _apply_measure(
    column: np.ndarray,
    amps: np.ndarray,
    basis: str,
    uniforms: np.ndarray,
    n_paths: int,
) -> tuple[np.ndarray, np.ndarray | None]:
    """Measure one qubit across a stacked shot block, in place.

    ``column`` is the measured qubit's boolean values as a writable 1-D view
    of length ``shots * n_paths`` (a ``bits_q`` row for the tape engine, a
    ``bits`` column for the interpreted one); ``uniforms`` holds one
    pre-drawn variate per shot.  Returns ``(outcomes, keep)``: the sampled
    outcomes (shape ``(shots,)`` int8) and, for ``Z``-basis measurements,
    the ``(shots, n_paths)`` mask of paths that survived the projection
    (``None`` in the X basis) -- the input to a scheduled branch collapse.
    See the module docstring for the projection rules.
    """
    shots = uniforms.shape[0]
    bitmat = column.reshape(shots, n_paths)
    if basis == "X":
        outcomes = (uniforms >= 0.5).astype(np.int8)
        chosen = np.repeat(outcomes.astype(bool), n_paths)
        # Projection onto |m>_x: phase (-1)**(bit * m), renormalised by
        # sqrt(2) -- the product leaves |amp| unchanged.
        flip = column & chosen
        if np.any(flip):
            amps[flip] *= -1.0
        column[:] = chosen
        return outcomes, None
    weights = (np.abs(amps) ** 2).reshape(shots, n_paths)
    total = weights.sum(axis=1)
    w1 = np.where(bitmat, weights, 0.0).sum(axis=1)
    safe_total = np.where(total > 0.0, total, 1.0)
    p0 = (total - w1) / safe_total
    outcomes = (uniforms >= p0).astype(np.int8)
    p_m = np.where(outcomes == 1, w1, total - w1) / safe_total
    # p_m is guaranteed positive for the sampled outcome (u < p0 selects 0
    # only when p0 > 0, and u >= p0 selects 1 only when p1 > 0); the guard
    # covers zero-norm shots produced by cancelled X measurements upstream.
    scale = 1.0 / np.sqrt(np.where(p_m > 0.0, p_m, 1.0))
    keep = bitmat == (outcomes[:, None] != 0)
    amps *= (keep * scale[:, None]).reshape(-1)
    column[:] = np.repeat(outcomes.astype(bool), n_paths)
    return outcomes, keep


def _branch_hadamard_group(
    bits_q: np.ndarray, amps: np.ndarray, qs: np.ndarray, n_paths: int
) -> tuple[np.ndarray, np.ndarray, int]:
    """Apply a fused ``H`` group to a qubit-major block, doubling per gate.

    Column ``j`` splits into ``2 j`` (bit cleared) and ``2 j + 1`` (bit set,
    sign flipped when the pre-branch bit was 1), each weighted by
    ``1/sqrt(2)`` -- the same operation order as the row-major
    :func:`~repro.sim.feynman_kernels.apply_hadamard`, so all engines stay
    bit-identical.  Returns the new ``(bits_q, amps, n_paths)``.
    """
    for row in range(qs.shape[0]):
        q = int(qs[row, 0])
        old = bits_q[q].copy()
        bits_q = np.repeat(bits_q, 2, axis=1)
        amps = np.repeat(amps, 2)
        amps *= INV_SQRT2
        upper = amps[1::2]
        upper[old] *= -1.0
        bits_q[q, 0::2] = False
        bits_q[q, 1::2] = True
        n_paths *= 2
    return bits_q, amps, n_paths


def _branch_grouped_block(
    bits_q: np.ndarray,
    amps: np.ndarray,
    zparity: np.ndarray | None,
    qs: np.ndarray,
    n_paths: int,
    n_slots: int,
    active: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None, int]:
    """Branch the pattern-grouped slot block through one fused ``H`` group.

    The block is reallocated at twice the per-slot width: each active slot's
    ``n_paths`` columns repeat into ``2 n_paths`` columns in place (old column
    ``j`` of slot ``s`` becomes columns ``2 j`` / ``2 j + 1`` of the same
    slot), using the exact operation order of :func:`_branch_hadamard_group`
    so grouped execution stays IEEE bit-identical to the stacked path.
    Folded pure-``Z`` parity rows repeat alongside: sign flips recorded
    before the branch are inherited by both children, exactly as if the
    flip had been applied at its own site.
    """
    for row in range(qs.shape[0]):
        q = int(qs[row, 0])
        width = active * n_paths
        old = bits_q[q, :width].copy()
        new_bits = np.empty((bits_q.shape[0], n_slots * n_paths * 2), dtype=bool)
        new_bits[:, : 2 * width] = np.repeat(bits_q[:, :width], 2, axis=1)
        new_amps = np.empty(n_slots * n_paths * 2, dtype=complex)
        new_amps[: 2 * width] = np.repeat(amps[:width], 2)
        new_amps[: 2 * width] *= INV_SQRT2
        upper = new_amps[1 : 2 * width : 2]
        upper[old] *= -1.0
        new_bits[q, 0 : 2 * width : 2] = False
        new_bits[q, 1 : 2 * width : 2] = True
        bits_q = new_bits
        amps = new_amps
        n_paths *= 2
        if zparity is not None:
            zparity = np.repeat(zparity, 2, axis=1)
    return bits_q, amps, zparity, n_paths


def _collapse_flat_indices(
    keep: np.ndarray, shots: int, n_paths: int, stride: int
) -> np.ndarray:
    """Flat survivor indices contracting one scheduled branch axis.

    ``keep`` is the ``(shots, n_paths)`` survival mask of a ``Z``-basis
    measurement whose compile-time plan proved that along the stride-
    ``stride`` pairing exactly one partner of every pair survives.  The
    returned index array (length ``shots * n_paths // 2``) gathers each
    pair's survivor in natural order, halving the per-shot path count.
    """
    outer = n_paths // (2 * stride)
    upper = keep.reshape(shots, outer, 2, stride)[:, :, 1, :]
    lower = (
        np.arange(outer, dtype=np.int64)[:, None] * (2 * stride)
        + np.arange(stride, dtype=np.int64)[None, :]
    )
    survivors = lower[None] + upper.astype(np.int64) * stride
    offsets = np.arange(shots, dtype=np.int64)[:, None, None] * n_paths
    return (offsets + survivors).reshape(-1)


def _apply_frame(
    column: np.ndarray,
    amps: np.ndarray,
    pauli: str,
    active: np.ndarray,
    n_paths: int,
) -> None:
    """Apply a Pauli-frame correction to the shots where ``active`` is True."""
    if not np.any(active):
        return
    rows = np.repeat(active, n_paths)
    if pauli == "X":
        column[rows] ^= True
    elif pauli == "Z":
        mask = rows & column
        if np.any(mask):
            amps[mask] *= -1.0
    else:  # Y
        amps[rows] *= np.where(column[rows], -1j, 1j)
        column[rows] ^= True


def _frame_active(
    outcomes: np.ndarray | None, condition_bits: tuple[int, ...], shots: int
) -> np.ndarray:
    """Per-shot XOR of the recorded classical bits a ``CPAULI`` conditions on."""
    if outcomes is None or not condition_bits:
        return np.zeros(shots, dtype=bool)
    return (outcomes[list(condition_bits)].sum(axis=0) & 1).astype(bool)


def _measure_strides(tape: GateTape) -> list[int]:
    """Collapse strides in measurement order (0 where no collapse is planned)."""
    return [
        tape.collapse_strides[index]
        for index, group in enumerate(tape.groups)
        if group.opcode == OP_MEASURE
    ]


class Engine:
    """Interface every execution engine implements (see module docstring)."""

    name: str = "abstract"

    def run(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        *,
        rng: np.random.Generator | None = None,
    ) -> PathState:
        """Noiseless evolution of ``state`` through ``circuit``.

        ``rng`` supplies measurement outcomes for circuits containing
        ``MEASURE`` instructions; ``None`` uses a fixed stream
        (``default_rng(0)``) so noiseless runs stay deterministic.  Circuits
        without measurements never consume randomness.
        """
        raise NotImplementedError

    def run_noisy_shots(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Monte-Carlo trajectories: ``shots`` stacked path blocks.

        Returns ``(bits, amps)`` with ``bits`` of shape
        ``(shots * n_paths, n_qubits)``; rows ``[s * n_paths, (s+1) * n_paths)``
        belong to shot ``s``.

        ``rng`` is either a shared batch generator (one stream for the whole
        block, the historical behaviour) or a pre-spawned
        :class:`~repro.sim.seeding.ShotSeeds` window, in which case every
        shot draws its errors from its own ``SeedSequence``-derived stream
        and the result is invariant under any sharding of the shot range.
        """
        raise NotImplementedError

    def run_noisy_shots_recorded(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Like :meth:`run_noisy_shots`, plus the recorded classical register.

        Returns ``(bits, amps, outcomes)`` where ``outcomes`` is the batch's
        classical register -- shape ``(num_clbits, shots)`` ``int8``, one row
        per slot -- or ``None`` when the circuit records nothing.  The random
        stream consumed is *identical* to :meth:`run_noisy_shots` (recording
        observes the register the engines already maintain), so recorded and
        unrecorded runs of the same seed agree bit for bit.  Postselection
        (:meth:`~repro.sim.feynman.FeynmanPathSimulator.query_fidelities`)
        partitions shots by these outcomes.
        """
        raise NotImplementedError


# ==================================================================== engines
class InterpretedFeynmanEngine(Engine):
    """Instruction-at-a-time Feynman-path execution (the original hot path)."""

    name = "feynman-interp"

    def _validate(self, circuit: QuantumCircuit) -> None:
        tape = compile_circuit(circuit)
        if tape.unsupported_path_gates:
            raise UnsupportedGateError(
                f"gate {tape.unsupported_path_gates[0]} is not simulable by "
                "the Feynman-path simulator"
            )
        tape.require_branch_budget()

    def run(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        *,
        rng: np.random.Generator | None = None,
    ) -> PathState:
        """Instruction-at-a-time noiseless evolution (measurements sampled from ``rng``)."""
        _check_state(circuit, state)
        self._validate(circuit)
        tape = compile_circuit(circuit)
        bits = state.bits.copy()
        amps = state.amplitudes.copy()
        outcomes: np.ndarray | None = None
        if tape.num_clbits:
            outcomes = np.zeros((tape.num_clbits, 1), dtype=np.int8)
            if rng is None:
                rng = np.random.default_rng(0)
        n_paths = state.num_paths
        measure_strides = _measure_strides(tape)
        measure_cursor = 0
        for instr in circuit.instructions:
            if instr.is_barrier:
                continue
            if instr.is_measurement:
                outcomes[instr.cbit], keep = _apply_measure(
                    bits[:, instr.qubits[0]], amps, instr.basis, rng.random(1), n_paths
                )
                stride = measure_strides[measure_cursor]
                measure_cursor += 1
                if stride:
                    flat = _collapse_flat_indices(keep, 1, n_paths, stride)
                    bits = bits[flat]
                    amps = amps[flat]
                    n_paths //= 2
            elif instr.is_frame:
                _apply_frame(
                    bits[:, instr.qubits[0]],
                    amps,
                    instr.frame_pauli,
                    _frame_active(outcomes, instr.condition_bits, 1),
                    n_paths,
                )
            elif instr.gate == "H":
                bits, amps = apply_hadamard(bits, amps, instr.qubits[0])
                n_paths *= 2
            else:
                apply_instruction(bits, amps, instr)
        return PathState(bits=bits, amplitudes=amps)

    def run_noisy_shots(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised Monte-Carlo shots, instruction at a time (see :class:`Engine`)."""
        bits, amps, _ = self.run_noisy_shots_recorded(
            circuit, state, noise, shots, rng=rng
        )
        return bits, amps

    def run_noisy_shots_recorded(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Monte-Carlo shots plus the recorded register (see :class:`Engine`)."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        _check_state(circuit, state)
        self._validate(circuit)
        tape = compile_circuit(circuit)

        noiseless = isinstance(noise, NoiselessModel)
        n_measurements = tape.num_measurements
        # Per-shot seeded mode: pre-draw every shot's randomness column by
        # column from its own stream, in the contract order -- measurement
        # uniforms first, then the site codes in the exact order the loop
        # below consumes them (gates in instruction order, trivial channels
        # skipped, end-of-circuit channels last -- the same filter as the
        # loop, so a running cursor stays aligned).  The sites are enumerated
        # here rather than through GateTape.noise_sites so interp keeps
        # supporting off-operand error placements the fused tape must reject;
        # for the QRAM noise models both enumerations are identical, which is
        # what keeps the engines' seeded trajectories bit-for-bit equal.
        site_codes: np.ndarray | None = None
        measure_uniforms: np.ndarray | None = None
        site_cursor = 0
        measure_cursor = 0
        if isinstance(rng, ShotSeeds):
            sites: NoiseSiteTable | None = None
            if not noiseless:
                channels = [
                    channel
                    for gate_index, instr in enumerate(
                        instr
                        for instr in circuit.instructions
                        if not instr.is_barrier
                    )
                    for _, channel in noise.gate_error_channels_indexed(
                        gate_index, instr
                    )
                    if not channel.is_trivial
                ]
                channels.extend(
                    channel
                    for _, channel in noise.final_error_channels()
                    if not channel.is_trivial
                )
                # Drawing consumes only the channel sequence; the positional
                # columns of the table are irrelevant here.
                placeholder = np.zeros(len(channels), dtype=np.int32)
                sites = NoiseSiteTable(
                    gate_index=placeholder,
                    qubit=placeholder,
                    group_index=placeholder,
                    channels=tuple(channels),
                )
            if sites is not None or n_measurements:
                site_codes, measure_uniforms = draw_shot_randomness(
                    sites, rng, shots, n_measurements
                )
        else:
            rng = np.random.default_rng() if rng is None else rng
            if n_measurements:
                # Batch mode draws the measurement block up front too, so the
                # stream consumption matches the compiled engine exactly.
                measure_uniforms = rng.random((n_measurements, shots))

        outcomes: np.ndarray | None = None
        if tape.num_clbits:
            outcomes = np.zeros((tape.num_clbits, shots), dtype=np.int8)

        n_paths = state.num_paths
        bits = np.tile(state.bits, (shots, 1))
        amps = np.tile(state.amplitudes, shots).astype(complex)

        def apply_site(qubit: int, channel) -> None:
            nonlocal site_cursor
            if site_codes is not None:
                shot_codes = site_codes[site_cursor]
                site_cursor += 1
            else:
                shot_codes = channel.sample(rng, shots)
            if not np.any(shot_codes != PAULI_I):
                return
            row_codes = np.repeat(shot_codes, n_paths)
            apply_masked_pauli(bits, amps, qubit, row_codes)

        measure_strides = _measure_strides(tape)
        gate_index = 0
        for instr in circuit.instructions:
            if instr.is_barrier:
                continue
            if instr.is_measurement:
                outcomes[instr.cbit], keep = _apply_measure(
                    bits[:, instr.qubits[0]],
                    amps,
                    instr.basis,
                    measure_uniforms[measure_cursor],
                    n_paths,
                )
                stride = measure_strides[measure_cursor]
                measure_cursor += 1
                if stride:
                    flat = _collapse_flat_indices(keep, shots, n_paths, stride)
                    bits = bits[flat]
                    amps = amps[flat]
                    n_paths //= 2
            elif instr.is_frame:
                _apply_frame(
                    bits[:, instr.qubits[0]],
                    amps,
                    instr.frame_pauli,
                    _frame_active(outcomes, instr.condition_bits, shots),
                    n_paths,
                )
            elif instr.gate == "H":
                bits, amps = apply_hadamard(bits, amps, instr.qubits[0])
                n_paths *= 2
            else:
                apply_instruction(bits, amps, instr)
            if not noiseless:
                for qubit, channel in noise.gate_error_channels_indexed(
                    gate_index, instr
                ):
                    if channel.is_trivial:
                        continue
                    apply_site(qubit, channel)
            gate_index += 1
        if not noiseless:
            for qubit, channel in noise.final_error_channels():
                if channel.is_trivial:
                    continue
                apply_site(qubit, channel)
        return bits, amps, outcomes


class TapeFeynmanEngine(Engine):
    """Compiled Feynman-path execution over the fused gate tape."""

    name = "feynman-tape"

    def _tape(self, circuit: QuantumCircuit) -> GateTape:
        tape = compile_circuit(circuit)
        if tape.unsupported_path_gates:
            raise UnsupportedGateError(
                f"gate {tape.unsupported_path_gates[0]} is not simulable by "
                "the Feynman-path simulator"
            )
        tape.require_branch_budget()
        return tape

    def run(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        *,
        rng: np.random.Generator | None = None,
    ) -> PathState:
        """Fused group-by-group noiseless evolution (measurements sampled from ``rng``)."""
        _check_state(circuit, state)
        tape = self._tape(circuit)
        # Qubit-major layout: bits_q[q] is one contiguous row per qubit, so
        # every gate update streams over contiguous memory instead of a
        # num_qubits-strided column of the row-major path matrix.  The copy is
        # explicit: ascontiguousarray would alias the input for single-path
        # states, and the group kernels mutate bits_q in place.
        bits_q = state.bits.T.copy()
        amps = state.amplitudes.copy()
        outcomes: np.ndarray | None = None
        if tape.num_clbits:
            outcomes = np.zeros((tape.num_clbits, 1), dtype=np.int8)
            if rng is None:
                rng = np.random.default_rng(0)
        n_paths = state.num_paths
        for index, group in enumerate(tape.groups):
            if group.opcode == OP_MEASURE:
                cbit, basis = group.params
                outcomes[cbit], keep = _apply_measure(
                    bits_q[int(group.qubits[0, 0])], amps, basis, rng.random(1), n_paths
                )
                stride = tape.collapse_strides[index]
                if stride:
                    flat = _collapse_flat_indices(keep, 1, n_paths, stride)
                    bits_q = bits_q[:, flat]
                    amps = amps[flat]
                    n_paths //= 2
            elif group.opcode == OP_CPAULI:
                pauli = group.params[0]
                _apply_frame(
                    bits_q[int(group.qubits[0, 0])],
                    amps,
                    pauli,
                    _frame_active(outcomes, group.params[1:], 1),
                    n_paths,
                )
            elif group.opcode == OP_H:
                bits_q, amps, n_paths = _branch_hadamard_group(
                    bits_q, amps, group.qubits, n_paths
                )
            else:
                _apply_group(bits_q, amps, group.opcode, group.qubits)
        return PathState(bits=np.ascontiguousarray(bits_q.T), amplitudes=amps)

    def run_noisy_shots(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised Monte-Carlo shots over the fused tape (see :class:`Engine`)."""
        bits, amps, _ = self.run_noisy_shots_recorded(
            circuit, state, noise, shots, rng=rng
        )
        return bits, amps

    def run_noisy_shots_recorded(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Monte-Carlo shots plus the recorded register (see :class:`Engine`)."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        _check_state(circuit, state)
        tape = self._tape(circuit)
        # One up-front draw for every (gate, qubit) error site of the batch,
        # plus one uniform per (measurement, shot) -- measurement uniforms
        # first, matching the interpreted engine's consumption order.
        sites: NoiseSiteTable | None = (
            None if isinstance(noise, NoiselessModel) else tape.noise_sites(noise)
        )
        codes, measure_uniforms = _draw_batch_randomness(
            sites, tape.num_measurements, shots, rng
        )
        return _execute_stacked_shots(
            tape, state, shots, sites, codes, measure_uniforms
        )


def _draw_batch_randomness(
    sites: NoiseSiteTable | None,
    n_measurements: int,
    shots: int,
    rng: np.random.Generator | ShotSeeds | None,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Draw one shot batch's randomness: ``(site codes, measurement uniforms)``.

    Shared by the compiled and batch engines.  A shared batch generator
    draws the measurement block first and then all shots' site codes at
    once; a :class:`~repro.sim.seeding.ShotSeeds` window delegates to
    :func:`~repro.sim.seeding.draw_shot_randomness`, which consumes each
    shot's own stream in the same contract order -- that is what makes
    sharded sweeps bit-identical to serial ones.  Either part may be absent
    (``None``).
    """
    if isinstance(rng, ShotSeeds):
        if sites is not None or n_measurements:
            return draw_shot_randomness(sites, rng, shots, n_measurements)
        return None, None
    rng = np.random.default_rng() if rng is None else rng
    measure_uniforms = (
        rng.random((n_measurements, shots)) if n_measurements else None
    )
    codes = sites.draw(shots, rng) if sites is not None else None
    return codes, measure_uniforms


def _execute_stacked_shots(
    tape: GateTape,
    state: PathState,
    shots: int,
    sites: NoiseSiteTable | None,
    codes: np.ndarray | None,
    measure_uniforms: np.ndarray | None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
    """Execute the fused tape over a full shot-stacked, qubit-major block.

    Column ``s * n_paths + p`` of the block is path ``p`` of shot ``s`` (the
    transpose of the layout the interpreted engine uses).  This is the
    compiled engine's shot-axis hot path; the batch engine reuses it for
    measurement-bearing circuits, where per-shot uniforms defeat pattern
    grouping.  ``codes`` holds the pre-drawn Pauli codes (``(n_sites,
    shots)``), ``measure_uniforms`` the pre-drawn measurement uniforms.
    Returns ``(bits, amps, outcomes)`` -- the recorded classical register
    (``None`` when the tape has no classical bits) rides along for the
    ``*_recorded`` engine entry points.
    """
    n_paths = state.num_paths
    bits_q = np.tile(np.ascontiguousarray(state.bits.T), (1, shots))
    amps = np.tile(state.amplitudes, shots).astype(complex)

    if sites is not None:
        site_rows, event_shot = np.nonzero(codes)
        event_code = codes[site_rows, event_shot]
        event_qubit = sites.qubit[site_rows]
        # Group indices are non-decreasing in site order, so the event
        # list is already sorted by group; bucket boundaries via
        # searchsorted.  The extra trailing bucket (group index ==
        # num_groups) holds the model's end-of-circuit sites, applied
        # after every group has executed.
        event_group = sites.group_index[site_rows]
        bucket_starts = np.searchsorted(
            event_group, np.arange(len(tape.groups) + 2)
        )

    outcomes: np.ndarray | None = None
    if tape.num_clbits:
        outcomes = np.zeros((tape.num_clbits, shots), dtype=np.int8)
    measure_cursor = 0

    for index, group in enumerate(tape.groups):
        if group.opcode == OP_MEASURE:
            cbit, basis = group.params
            outcomes[cbit], keep = _apply_measure(
                bits_q[int(group.qubits[0, 0])],
                amps,
                basis,
                measure_uniforms[measure_cursor],
                n_paths,
            )
            measure_cursor += 1
            stride = tape.collapse_strides[index]
            if stride:
                flat = _collapse_flat_indices(keep, shots, n_paths, stride)
                bits_q = bits_q[:, flat]
                amps = amps[flat]
                n_paths //= 2
        elif group.opcode == OP_CPAULI:
            _apply_frame(
                bits_q[int(group.qubits[0, 0])],
                amps,
                group.params[0],
                _frame_active(outcomes, group.params[1:], shots),
                n_paths,
            )
        elif group.opcode == OP_H:
            bits_q, amps, n_paths = _branch_hadamard_group(
                bits_q, amps, group.qubits, n_paths
            )
        else:
            _apply_group(bits_q, amps, group.opcode, group.qubits)
        if sites is not None:
            for event in range(bucket_starts[index], bucket_starts[index + 1]):
                _apply_error_event(
                    bits_q,
                    amps,
                    int(event_qubit[event]),
                    int(event_shot[event]),
                    int(event_code[event]),
                    n_paths,
                )
    if sites is not None:
        final_bucket = len(tape.groups)
        for event in range(
            bucket_starts[final_bucket], bucket_starts[final_bucket + 1]
        ):
            _apply_error_event(
                bits_q,
                amps,
                int(event_qubit[event]),
                int(event_shot[event]),
                int(event_code[event]),
                n_paths,
            )
    return np.ascontiguousarray(bits_q.T), amps, outcomes


class BatchFeynmanEngine(TapeFeynmanEngine):
    """Pattern-grouped batch execution over the fused tape.

    Runs the tape once per **distinct** sampled Pauli pattern instead of
    once per shot (see the module docstring for the carrier / phase-fold /
    slot decomposition), then scatters the per-pattern results back to shot
    order.  Bit-identical to :class:`TapeFeynmanEngine` under
    :class:`~repro.sim.seeding.ShotSeeds` because every group kernel and
    error event is column-local and every folded ``Z`` error is an exact
    IEEE sign flip that commutes with the kernels' multiplicative per-path
    phases.
    """

    name = "feynman-batch"

    def run_noisy_shots_recorded(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Pattern-grouped Monte-Carlo shots plus the register (see :class:`Engine`)."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        _check_state(circuit, state)
        tape = self._tape(circuit)
        sites: NoiseSiteTable | None = (
            None if isinstance(noise, NoiselessModel) else tape.noise_sites(noise)
        )
        if tape.num_clbits or tape.num_measurements:
            # Fresh uniforms per (measurement, shot) make every shot's
            # trajectory distinct, so grouping cannot collapse anything:
            # fall back to the plain shot-axis path on the exact same
            # pre-drawn randomness as the tape engine (hence bit-identical).
            codes, measure_uniforms = _draw_batch_randomness(
                sites, tape.num_measurements, shots, rng
            )
            return _execute_stacked_shots(
                tape, state, shots, sites, codes, measure_uniforms
            )
        if sites is None:
            empty = np.empty(0, dtype=np.int64)
            event_site = event_shot = event_code = empty
        elif isinstance(rng, ShotSeeds):
            # Seeded mode consumes each shot's own stream in contract order
            # (the draw every engine shares), then sparsifies the result.
            codes, _ = draw_shot_randomness(sites, rng, shots)
            event_site, event_shot = np.nonzero(codes)
            event_code = codes[event_site, event_shot]
        else:
            event_site, event_shot, event_code = sites.draw_sparse(
                shots, np.random.default_rng() if rng is None else rng
            )
        bits, amps = _execute_grouped_shots(
            tape, state, shots, sites, event_site, event_shot, event_code
        )
        # Measurement-free tapes record nothing (the clbit case took the
        # stacked path above), so the register is always absent here.
        return bits, amps, None


def _execute_grouped_shots(
    tape: GateTape,
    state: PathState,
    shots: int,
    sites: NoiseSiteTable | None,
    event_site: np.ndarray,
    event_shot: np.ndarray,
    event_code: np.ndarray,
) -> tuple[np.ndarray, np.ndarray]:
    """Execute the tape once per distinct Pauli pattern and scatter to shots.

    ``event_*`` is the sparse list of non-identity draws.  Shots sharing a
    pattern share one trajectory, computed in a block of ``1 + n_xy`` slots
    of ``n_paths`` columns: slot ``0`` is the always-active noiseless
    carrier; every distinct pattern containing an ``X`` or ``Y`` error owns
    one slot that joins the block at its first error site's group bucket (by
    copying the carrier -- exactly the shot's noiseless prefix state), slots
    ordered by that bucket so the active region is one contiguous growing
    prefix.  Pure-``Z`` patterns never get a slot: a ``Z`` error only flips
    the sign of the paths whose bit is set at that moment, and sign flips
    commute exactly with the kernels' multiplicative phase updates, so each
    pure-``Z`` pattern is folded into a per-path parity mask read off the
    carrier and applied to the carrier's final amplitudes.  Zero-error shots
    scatter straight from the carrier.
    """
    n_paths = state.num_paths
    n_qubits = state.num_qubits

    # ---- distinct patterns: shot-major scan over the sparse event list.
    order = np.lexsort((event_site, event_shot))
    by_shot_site = np.ascontiguousarray(event_site[order])
    by_shot_code = np.ascontiguousarray(event_code[order])
    shots_with_events, first_event = np.unique(event_shot[order], return_index=True)
    bounds = np.append(first_event, len(order))
    pattern_of_shot = np.zeros(shots, dtype=np.int64)  # id 0: the no-error pattern
    key_to_id: dict[bytes, int] = {}
    pattern_sites: list[np.ndarray | None] = [None]
    pattern_codes: list[np.ndarray | None] = [None]
    for position, shot in enumerate(shots_with_events.tolist()):
        low, high = bounds[position], bounds[position + 1]
        key = by_shot_site[low:high].tobytes() + by_shot_code[low:high].tobytes()
        pattern = key_to_id.get(key)
        if pattern is None:
            pattern = len(pattern_sites)
            key_to_id[key] = pattern
            pattern_sites.append(by_shot_site[low:high])
            pattern_codes.append(by_shot_code[low:high])
        pattern_of_shot[shot] = pattern
    n_patterns = len(pattern_sites)

    # ---- classify: pure-Z patterns fold into parity rows, others get slots.
    slot_of_pattern = np.zeros(n_patterns, dtype=np.int64)
    zrow_of_pattern = np.full(n_patterns, -1, dtype=np.int64)
    xy_ids: list[int] = []
    xy_first_bucket: list[int] = []
    z_ids: list[int] = []
    for pattern in range(1, n_patterns):
        if (pattern_codes[pattern] == PAULI_Z).all():
            zrow_of_pattern[pattern] = len(z_ids)
            z_ids.append(pattern)
        else:
            xy_ids.append(pattern)
            # Events are site-sorted, so the first entry is the earliest.
            xy_first_bucket.append(int(sites.group_index[pattern_sites[pattern][0]]))
    xy_order = sorted(range(len(xy_ids)), key=xy_first_bucket.__getitem__)
    first_bucket_sorted = [xy_first_bucket[i] for i in xy_order]
    for rank, i in enumerate(xy_order):
        slot_of_pattern[xy_ids[i]] = rank + 1
    n_xy = len(xy_ids)
    n_z = len(z_ids)

    # ---- merged execution stream, bucketed by group exactly like the
    # stacked path.  Phase folds are encoded as negative targets; a stable
    # site sort keeps each pattern's events in execution order (a pattern
    # has at most one event per site) and the bucket sequence non-decreasing.
    if n_patterns > 1:
        ev_site = np.concatenate([pattern_sites[p] for p in range(1, n_patterns)])
        ev_target = np.concatenate(
            [
                np.full(
                    len(pattern_sites[p]),
                    slot_of_pattern[p]
                    if zrow_of_pattern[p] < 0
                    else -1 - zrow_of_pattern[p],
                    dtype=np.int64,
                )
                for p in range(1, n_patterns)
            ]
        )
        ev_code = np.concatenate([pattern_codes[p] for p in range(1, n_patterns)])
        ev_order = np.argsort(ev_site, kind="stable")
        ev_site = ev_site[ev_order]
        ev_qubit = sites.qubit[ev_site].tolist()
        ev_target = ev_target[ev_order].tolist()
        ev_code = ev_code[ev_order].tolist()
        bucket_starts = np.searchsorted(
            sites.group_index[ev_site], np.arange(len(tape.groups) + 2)
        ).tolist()
    else:
        ev_qubit = ev_target = ev_code = []
        bucket_starts = [0] * (len(tape.groups) + 2)

    n_slots = 1 + n_xy
    bits_q = np.empty((n_qubits, n_slots * n_paths), dtype=bool)
    bits_q[:, :n_paths] = np.ascontiguousarray(state.bits.T)
    amps = np.empty(n_slots * n_paths, dtype=complex)
    amps[:n_paths] = state.amplitudes
    zparity = np.zeros((n_z, n_paths), dtype=bool) if n_z else None

    active = 1
    next_activation = 0

    def _activate_through(bucket: int) -> None:
        nonlocal active, next_activation
        while (
            next_activation < n_xy
            and first_bucket_sorted[next_activation] <= bucket
        ):
            low = active * n_paths
            bits_q[:, low : low + n_paths] = bits_q[:, :n_paths]
            amps[low : low + n_paths] = amps[:n_paths]
            active += 1
            next_activation += 1

    def _apply_bucket(bucket: int) -> None:
        for event in range(bucket_starts[bucket], bucket_starts[bucket + 1]):
            target = ev_target[event]
            if target < 0:
                zparity[-1 - target] ^= bits_q[ev_qubit[event], :n_paths]
            else:
                _apply_error_event(
                    bits_q, amps, ev_qubit[event], target, ev_code[event], n_paths
                )

    for index, group in enumerate(tape.groups):
        if group.opcode == OP_H:
            bits_q, amps, zparity, n_paths = _branch_grouped_block(
                bits_q, amps, zparity, group.qubits, n_paths, n_slots, active
            )
        else:
            width = active * n_paths
            _apply_group(
                bits_q[:, :width], amps[:width], group.opcode, group.qubits
            )
        _activate_through(index)
        _apply_bucket(index)
    final_bucket = len(tape.groups)
    _activate_through(final_bucket)
    _apply_bucket(final_bucket)

    # ---- per-pattern amplitudes, then scatter back to shot order.
    carrier_amps = amps[:n_paths]
    pattern_amps = np.empty((n_patterns, n_paths), dtype=complex)
    pattern_amps[0] = carrier_amps
    if n_z:
        # Negation is exact and commutes with every multiplicative per-path
        # update, so the end-of-tape sign mask reproduces applying each Z
        # event at its own site bit for bit.
        pattern_amps[z_ids] = np.where(zparity, -carrier_amps, carrier_amps)
    if n_xy:
        amps_mat = amps.reshape(n_slots, n_paths)
        pattern_amps[xy_ids] = amps_mat[slot_of_pattern[xy_ids]]
    bits_rows = np.ascontiguousarray(bits_q.T).reshape(n_slots, n_paths, n_qubits)
    out_bits = bits_rows[slot_of_pattern[pattern_of_shot]].reshape(
        shots * n_paths, n_qubits
    )
    out_amps = pattern_amps[pattern_of_shot].reshape(shots * n_paths)
    return out_bits, out_amps


class StatevectorEngine(Engine):
    """Dense statevector execution adapted to the engine interface.

    Output paths are merged per basis state (unlike the Feynman engines,
    which keep one row per input path), so comparisons should go through
    :meth:`PathState.as_dict`.  Monte-Carlo noise is not supported.
    """

    name = "statevector"

    def run(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        *,
        rng: np.random.Generator | None = None,
    ) -> PathState:
        """Dense noiseless evolution via :class:`StatevectorSimulator`."""
        from repro.sim.statevector import StatevectorSimulator

        _check_state(circuit, state)
        return StatevectorSimulator().run_to_path_state(circuit, state, rng=rng)

    def run_noisy_shots(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Noiseless-only shot blocks (the dense engine cannot sample Pauli noise)."""
        if shots <= 0:
            raise ValueError("shots must be positive")
        if not isinstance(noise, NoiselessModel):
            raise NotImplementedError(
                "the statevector engine does not support Monte-Carlo noise; "
                "use 'feynman-tape' or 'feynman-interp'"
            )
        output = self.run(circuit, state)
        # The caller slices the result into blocks of the *input* path count,
        # so the merged dense output must be reshaped to that contract: pad
        # with zero-amplitude rows when merging shrank the path set, refuse
        # when branching (H) grew it beyond the block size.
        n_paths = state.num_paths
        if output.num_paths > n_paths:
            raise NotImplementedError(
                f"statevector output has {output.num_paths} paths but the "
                f"input has {n_paths}; the per-shot block contract cannot "
                "represent branching circuits -- use the dense simulator "
                "directly"
            )
        out_bits = output.bits
        out_amps = output.amplitudes
        if output.num_paths < n_paths:
            pad = n_paths - output.num_paths
            out_bits = np.vstack(
                [out_bits, np.zeros((pad, output.num_qubits), dtype=bool)]
            )
            out_amps = np.concatenate([out_amps, np.zeros(pad, dtype=complex)])
        bits = np.tile(out_bits, (shots, 1))
        amps = np.tile(out_amps, shots).astype(complex)
        return bits, amps

    def run_noisy_shots_recorded(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Unsupported: the dense engine replays one trajectory, not per-shot records."""
        raise NotImplementedError(
            "the statevector engine does not record per-shot measurement "
            "outcomes; use 'feynman-tape', 'feynman-batch' or 'feynman-interp'"
        )


# ============================================================= group execution
def _apply_group(
    bits_q: np.ndarray, amps: np.ndarray, opcode: int, qs: np.ndarray
) -> None:
    """Apply one fused group in place.

    ``bits_q`` is the **qubit-major** path block: shape
    ``(n_qubits, n_rows)``, so ``bits_q[q]`` is one contiguous row per qubit
    and every update below streams over contiguous memory.  Gates inside a
    group act on pairwise-disjoint qubits, which is what makes the fancy-
    indexed batched forms exactly equivalent to sequential application.
    """
    single = qs.shape[0] == 1
    if opcode == OP_SWAP:
        if single:
            a, b = int(qs[0, 0]), int(qs[0, 1])
            row = bits_q[a].copy()
            bits_q[a] = bits_q[b]
            bits_q[b] = row
        else:
            a, b = qs[:, 0], qs[:, 1]
            rows = bits_q[a]  # fancy indexing copies
            bits_q[a] = bits_q[b]
            bits_q[b] = rows
    elif opcode == OP_CSWAP:
        control, a, b = qs[:, 0], qs[:, 1], qs[:, 2]
        if single:
            control, a, b = int(control[0]), int(a[0]), int(b[0])
        diff = (bits_q[a] ^ bits_q[b]) & bits_q[control]
        bits_q[a] ^= diff
        bits_q[b] ^= diff
    elif opcode == OP_CX:
        if single:
            bits_q[int(qs[0, 1])] ^= bits_q[int(qs[0, 0])]
        else:
            bits_q[qs[:, 1]] ^= bits_q[qs[:, 0]]
    elif opcode == OP_CCX:
        if single:
            c1, c2, target = (int(q) for q in qs[0])
            bits_q[target] ^= bits_q[c1] & bits_q[c2]
        else:
            bits_q[qs[:, 2]] ^= bits_q[qs[:, 0]] & bits_q[qs[:, 1]]
    elif opcode == OP_X:
        bits_q[qs[:, 0]] ^= True
    elif opcode == OP_NOP:
        return
    elif opcode == OP_MCX:
        if single:
            controls, target = qs[0, :-1], int(qs[0, -1])
            bits_q[target] ^= np.logical_and.reduce(bits_q[controls], axis=0)
        else:
            active = np.logical_and.reduce(bits_q[qs[:, :-1]], axis=1)
            bits_q[qs[:, -1]] ^= active
    elif opcode == OP_Z:
        if single:
            amps[bits_q[int(qs[0, 0])]] *= -1.0
        else:
            parity = bits_q[qs[:, 0]].sum(axis=0) & 1
            amps[parity == 1] *= -1.0
    elif opcode == OP_CZ:
        if single:
            control, target = int(qs[0, 0]), int(qs[0, 1])
            amps[bits_q[control] & bits_q[target]] *= -1.0
        else:
            parity = (bits_q[qs[:, 0]] & bits_q[qs[:, 1]]).sum(axis=0) & 1
            amps[parity == 1] *= -1.0
    elif opcode == OP_Y:
        if single:
            qubit = int(qs[0, 0])
            row = bits_q[qubit]
            amps *= np.where(row, -1j, 1j)
            bits_q[qubit] = ~row
        else:
            rows = qs[:, 0]
            # Y|0> = i|1>, Y|1> = -i|0>: exponent of i is 1 + 2 * bit per gate.
            exponent = qs.shape[0] + 2 * bits_q[rows].sum(axis=0)
            amps *= PHASE_I_POW[exponent & 3]
            bits_q[rows] ^= True
    elif opcode == OP_S:
        if single:
            amps[bits_q[int(qs[0, 0])]] *= 1j
        else:
            amps *= PHASE_I_POW[bits_q[qs[:, 0]].sum(axis=0) & 3]
    elif opcode == OP_SDG:
        if single:
            amps[bits_q[int(qs[0, 0])]] *= -1j
        else:
            amps *= PHASE_I_POW_CONJ[bits_q[qs[:, 0]].sum(axis=0) & 3]
    elif opcode == OP_T:
        if single:
            amps[bits_q[int(qs[0, 0])]] *= PHASE_T_POW[1]
        else:
            amps *= PHASE_T_POW[bits_q[qs[:, 0]].sum(axis=0) & 7]
    elif opcode == OP_TDG:
        if single:
            amps[bits_q[int(qs[0, 0])]] *= PHASE_T_POW_CONJ[1]
        else:
            amps *= PHASE_T_POW_CONJ[bits_q[qs[:, 0]].sum(axis=0) & 7]
    else:  # pragma: no cover - every registered opcode is handled above
        raise UnsupportedGateError(f"opcode {opcode} cannot be path-simulated")


def _apply_error_event(
    bits_q: np.ndarray,
    amps: np.ndarray,
    qubit: int,
    shot: int,
    code: int,
    n_paths: int,
) -> None:
    """Apply one sampled Pauli error to a single shot's path block."""
    span = slice(shot * n_paths, (shot + 1) * n_paths)
    if code == PAULI_Z:
        segment = amps[span]
        segment[bits_q[qubit, span]] *= -1.0
    elif code == PAULI_X:
        bits_q[qubit, span] ^= True
    elif code == PAULI_Y:
        block = bits_q[qubit, span]
        amps[span] *= np.where(block, -1j, 1j)
        bits_q[qubit, span] = ~block


# ===================================================================== registry
_ENGINES: dict[str, Engine] = {}
_DEFAULT_ENGINE = "feynman-tape"


def register_engine(engine: Engine, *, aliases: tuple[str, ...] = ()) -> Engine:
    """Register ``engine`` under its name (plus ``aliases``) and return it."""
    for key in (engine.name, *aliases):
        _ENGINES[key] = engine
    return engine


def available_engines() -> list[str]:
    """Sorted names of every registered engine."""
    return sorted(_ENGINES)


def get_engine(spec: str | Engine | None = None) -> Engine:
    """Resolve an engine name (``None`` means the current default)."""
    if isinstance(spec, Engine):
        return spec
    key = _DEFAULT_ENGINE if spec is None else spec
    try:
        return _ENGINES[key]
    except KeyError:
        raise KeyError(
            f"unknown engine {key!r}; available: {available_engines()}"
        ) from None


def get_default_engine() -> str:
    """Name of the engine used when none is specified."""
    return _DEFAULT_ENGINE


def set_default_engine(name: str) -> None:
    """Globally switch the default engine (e.g. from the experiments CLI)."""
    global _DEFAULT_ENGINE
    if name not in _ENGINES:
        raise KeyError(f"unknown engine {name!r}; available: {available_engines()}")
    _DEFAULT_ENGINE = name


register_engine(InterpretedFeynmanEngine())
register_engine(TapeFeynmanEngine())
register_engine(BatchFeynmanEngine())
register_engine(StatevectorEngine())
