"""Deterministic per-shot random streams for sharded Monte-Carlo runs.

The sweep runner (:mod:`repro.sweep`) splits a Monte-Carlo experiment into
``(sweep_point, shot_shard)`` work units that may execute in any order across
any number of worker processes.  For the merged results to be bit-identical
to a serial run, the random stream a shot consumes must depend only on *which
shot it is* -- never on which shard it landed in, which worker ran it, or how
many shots share its batch.

:class:`ShotSeeds` encodes that contract.  It derives one independent
:class:`numpy.random.SeedSequence` per shot via the spawn-key mechanism,
keyed on ``(seed, point_index, shot_index)``:

    ``SeedSequence(seed, spawn_key=(point_index, shot_index))``

``spawn_key`` is exactly what ``SeedSequence.spawn`` uses internally, so the
streams are as statistically independent as NumPy's parallel-RNG machinery
guarantees, and two distinct ``(point, shot)`` coordinates can never collide.

The execution engines (:mod:`repro.sim.engine`) accept a ``ShotSeeds`` in
place of a ``numpy.random.Generator`` in ``run_noisy_shots``; in that mode
every shot's Pauli error codes are drawn from the shot's own generator, in
noise-site order, using the threshold sampler
(:meth:`repro.sim.noise.PauliChannel.sample_thresholded`).  All Feynman
engines share this contract, so their trajectories remain bit-identical to
each other in seeded mode, and any sharding of the shot range reproduces the
unsharded run exactly.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

__all__ = ["ShotSeeds", "draw_shot_randomness"]


@dataclass(frozen=True)
class ShotSeeds:
    """Per-shot seed stream for one sweep point (see module docstring).

    Parameters
    ----------
    seed:
        Base entropy of the whole sweep (a non-negative integer).
    point_index:
        Index of the sweep point this stream belongs to.
    start:
        Absolute index of the first shot covered by this window.  A shard
        covering shots ``[start, start + shots)`` of a point simply carries a
        shifted window onto the same per-shot streams.
    """

    seed: int
    point_index: int = 0
    start: int = 0

    def __post_init__(self) -> None:
        if self.seed < 0:
            raise ValueError(f"seed must be non-negative, got {self.seed}")
        if self.point_index < 0:
            raise ValueError(
                f"point_index must be non-negative, got {self.point_index}"
            )
        if self.start < 0:
            raise ValueError(f"start must be non-negative, got {self.start}")

    def sequence(self, local_shot: int) -> np.random.SeedSequence:
        """The :class:`~numpy.random.SeedSequence` of shot ``start + local_shot``."""
        return np.random.SeedSequence(
            self.seed, spawn_key=(self.point_index, self.start + local_shot)
        )

    def generator(self, local_shot: int) -> np.random.Generator:
        """A fresh generator for shot ``start + local_shot`` of this window."""
        return np.random.default_rng(self.sequence(local_shot))

    def generators(self, shots: int) -> list[np.random.Generator]:
        """One independent generator per shot of a ``shots``-wide batch."""
        return [self.generator(index) for index in range(shots)]

    def shifted(self, offset: int) -> "ShotSeeds":
        """The same stream with the window moved ``offset`` shots forward."""
        return replace(self, start=self.start + offset)


def draw_shot_randomness(
    sites,
    seeds: ShotSeeds,
    shots: int,
    n_measurements: int = 0,
) -> tuple[np.ndarray | None, np.ndarray | None]:
    """Draw every shot's seeded randomness up front: ``(codes, uniforms)``.

    This is the single implementation of the per-shot random-stream contract
    (all engines and :meth:`repro.circuit.ir.NoiseSiteTable.draw_per_shot`
    delegate here): each shot's generator is consumed in the fixed order --
    **measurement uniforms first** (``n_measurements`` values), **then the
    noise-site codes** (one threshold draw per site of ``sites``, a
    :class:`~repro.circuit.ir.NoiseSiteTable` or ``None``).  Because a shot's
    draws depend only on its own stream, any sharding of the shot range
    reproduces the unsharded draw exactly.

    Returns ``codes`` of shape ``(n_sites, shots)`` (``None`` without a site
    table) and ``uniforms`` of shape ``(n_measurements, shots)`` (``None``
    without measurements); both are laid out shot-per-column so downstream
    consumers can vectorise across the shot axis.
    """
    codes = (
        np.empty((sites.n_sites, shots), dtype=np.int64)
        if sites is not None
        else None
    )
    uniforms = (
        np.empty((n_measurements, shots), dtype=float) if n_measurements else None
    )
    for shot in range(shots):
        generator = seeds.generator(shot)
        if uniforms is not None:
            uniforms[:, shot] = generator.random(n_measurements)
        if codes is not None:
            codes[:, shot] = sites.draw_shot(generator)
    return codes, uniforms
