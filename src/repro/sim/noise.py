"""Pauli noise channels and Monte-Carlo error injection.

Two error models from the paper are implemented:

* **Gate-based noise** (Sec. 6.3, used for all fidelity figures): after every
  logical gate, each operand qubit independently suffers an ``X``/``Y``/``Z``
  error with the channel's probabilities.  The Monte-Carlo sampling is either
  materialised as explicit ``Instruction`` insertions
  (:func:`sample_noisy_circuit`, convenient for small circuits and tests) or
  applied on the fly by the vectorised Feynman-path runner.

* **Qubit-based noise** (Sec. 5.1, used for the analytic bounds): each qubit
  suffers at most one Pauli error during the query, at a position drawn
  uniformly among that qubit's gate touch-points.  This mirrors the
  "phase-flip channel applied to each qubit" model under which Eq. (3) is
  derived.

Channels are parameterised by independent X/Y/Z probabilities so that the
Z-biased (phase-flip), X-biased (bit-flip) and depolarizing models of
Figures 9-11 are all instances of the same class.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable

import numpy as np

from repro.circuit.instruction import Instruction
from repro.circuit.scheduling import idle_slack

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.circuit.circuit import QuantumCircuit


#: Integer codes used when sampling Paulis in bulk.
PAULI_I, PAULI_X, PAULI_Y, PAULI_Z = 0, 1, 2, 3

_PAULI_NAMES = {PAULI_X: "X", PAULI_Y: "Y", PAULI_Z: "Z"}


@dataclass(frozen=True)
class PauliChannel:
    """Single-qubit Pauli channel with independent X/Y/Z probabilities."""

    p_x: float = 0.0
    p_y: float = 0.0
    p_z: float = 0.0

    def __post_init__(self) -> None:
        for name, p in (("p_x", self.p_x), ("p_y", self.p_y), ("p_z", self.p_z)):
            if p < 0 or p > 1:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.p_x + self.p_y + self.p_z > 1 + 1e-12:
            raise ValueError("total error probability exceeds 1")

    @property
    def p_total(self) -> float:
        """Probability that *some* error occurs."""
        return self.p_x + self.p_y + self.p_z

    @property
    def is_trivial(self) -> bool:
        """True when every error probability is zero."""
        return self.p_total == 0.0

    def scaled(self, factor: float) -> "PauliChannel":
        """Channel with all probabilities multiplied by ``factor``.

        Used to apply the paper's *error reduction factor* ``eps_r``
        (Appendix A): ``channel.scaled(1 / eps_r)``.
        """
        return PauliChannel(
            p_x=self.p_x * factor, p_y=self.p_y * factor, p_z=self.p_z * factor
        )

    def sample(self, rng: np.random.Generator, size: int) -> np.ndarray:
        """Sample ``size`` Pauli codes (0=I, 1=X, 2=Y, 3=Z)."""
        return self.sample_block(rng, 1, size)[0]

    def sample_block(
        self, rng: np.random.Generator, n_sites: int, shots: int
    ) -> np.ndarray:
        """Sample codes for ``n_sites`` error sites at once: ``(n_sites, shots)``.

        Drawn in one ``rng.choice`` call, which consumes the generator exactly
        like ``n_sites`` successive :meth:`sample` calls of ``shots`` codes
        each -- the property the compiled engine relies on to reproduce the
        interpreted engine's trajectories under a fixed seed.
        """
        return rng.choice(
            np.array([PAULI_I, PAULI_X, PAULI_Y, PAULI_Z]),
            size=(n_sites, shots),
            p=[1.0 - self.p_total, self.p_x, self.p_y, self.p_z],
        )

    def sample_thresholded(
        self, rng: np.random.Generator, size: int
    ) -> np.ndarray:
        """Sample ``size`` codes via one uniform draw per site.

        Each uniform variate is mapped through the cumulative
        ``(I, X, Y, Z)`` thresholds with a single ``searchsorted``, so the
        call consumes exactly ``size`` values of ``rng.random`` regardless of
        the channel.  This is the sampler behind the per-shot seeded mode
        (:class:`repro.sim.seeding.ShotSeeds`): it is an order of magnitude
        cheaper than ``rng.choice`` for the one-shot columns that mode draws,
        which is what keeps deterministic sharding competitive with the bulk
        batch draw.  The stream consumption differs from :meth:`sample`, so
        the two modes produce different (but individually reproducible)
        trajectories.
        """
        cumulative = np.array(
            [
                1.0 - self.p_total,
                1.0 - self.p_total + self.p_x,
                1.0 - self.p_total + self.p_x + self.p_y,
            ]
        )
        return np.searchsorted(cumulative, rng.random(size), side="right").astype(
            np.int64
        )

    # Convenience constructors ------------------------------------------------
    @classmethod
    def phase_flip(cls, epsilon: float) -> "PauliChannel":
        """Z-biased channel: ``rho -> (1-eps) rho + eps Z rho Z`` (Sec. 5.1)."""
        return cls(p_z=epsilon)

    @classmethod
    def bit_flip(cls, epsilon: float) -> "PauliChannel":
        """X-biased channel used for the right panel of Figure 10."""
        return cls(p_x=epsilon)

    @classmethod
    def depolarizing(cls, epsilon: float) -> "PauliChannel":
        """Depolarizing channel with total error probability ``epsilon``."""
        return cls(p_x=epsilon / 3, p_y=epsilon / 3, p_z=epsilon / 3)


class NoiseModel:
    """Base class: maps instructions to the error channels they trigger."""

    def gate_error_channels(
        self, instr: Instruction
    ) -> list[tuple[int, PauliChannel]]:
        """Channels applied (qubit, channel) immediately after ``instr``."""
        raise NotImplementedError

    def gate_error_channels_indexed(
        self, gate_index: int, instr: Instruction
    ) -> list[tuple[int, PauliChannel]]:
        """Channels applied after the ``gate_index``-th **barrier-free** gate.

        ``gate_index`` counts the circuit's non-barrier instructions in
        order -- the same enumeration :func:`repro.circuit.ir.compile_circuit`
        packs into the gate tape -- so position-dependent models (idle noise
        keyed on schedule slack, routing-link noise) can look their sites up
        by position.  Position-independent models simply ignore the index;
        the default delegates to :meth:`gate_error_channels`.
        """
        return self.gate_error_channels(instr)

    def final_error_channels(self) -> list[tuple[int, PauliChannel]]:
        """Channels applied once after the circuit's last instruction.

        Used for error processes that no gate triggers -- e.g. the idling of
        a qubit between its final gate and the end of the schedule.  The
        default (no trailing channels) matches purely gate-triggered models.
        """
        return []

    def scaled(self, factor: float) -> "NoiseModel":
        """Return a copy with all error probabilities multiplied by ``factor``."""
        raise NotImplementedError


class NoiselessModel(NoiseModel):
    """The identity noise model."""

    def gate_error_channels(self, instr: Instruction) -> list[tuple[int, PauliChannel]]:
        """No error sites: the identity model."""
        return []

    def scaled(self, factor: float) -> "NoiselessModel":
        """The identity model is scale-invariant."""
        return NoiselessModel()


@dataclass(frozen=True)
class GateNoiseModel(NoiseModel):
    """Gate-based Monte-Carlo noise: every operand qubit of every gate errs.

    Parameters
    ----------
    channel:
        The per-qubit channel applied after each gate.
    two_qubit_factor:
        Multiplier applied to the channel for gates acting on two or more
        qubits (entangling gates are noisier on real hardware); 1.0 keeps the
        paper's uniform model.
    include_classical:
        Whether classically-controlled gates also trigger errors (they do on
        hardware; the paper's simple model does not distinguish them).
    """

    channel: PauliChannel
    two_qubit_factor: float = 1.0
    include_classical: bool = True

    def gate_error_channels(self, instr: Instruction) -> list[tuple[int, PauliChannel]]:
        """Per-operand channel sites (skipping barriers/noise/measure/frames)."""
        if instr.is_barrier or instr.is_noise or instr.is_measurement or instr.is_frame:
            # Measurements carry no gate noise here (readout error has its
            # own closed-form treatment, see ScenarioSpec.readout) and
            # CPAULI corrections are software Pauli-frame updates.
            return []
        if not self.include_classical and instr.is_classically_controlled:
            return []
        channel = self.channel
        if len(instr.qubits) >= 2 and self.two_qubit_factor != 1.0:
            channel = channel.scaled(self.two_qubit_factor)
        if channel.is_trivial:
            return []
        return [(q, channel) for q in instr.qubits]

    def scaled(self, factor: float) -> "GateNoiseModel":
        """Copy with the per-gate channel scaled by ``factor``."""
        return GateNoiseModel(
            channel=self.channel.scaled(factor),
            two_qubit_factor=self.two_qubit_factor,
            include_classical=self.include_classical,
        )


def DepolarizingNoise(epsilon: float, **kwargs) -> GateNoiseModel:
    """Gate-based depolarizing noise with total per-qubit error ``epsilon``."""
    return GateNoiseModel(channel=PauliChannel.depolarizing(epsilon), **kwargs)


@dataclass(frozen=True)
class QubitOncePauliNoise(NoiseModel):
    """Qubit-based noise: each qubit errs at most once during the circuit.

    The error position is drawn uniformly among the qubit's gate touch-points
    (immediately before the touched gate), matching the per-qubit channel of
    Sec. 5.1.  This model is only supported through
    :func:`sample_noisy_circuit`; the vectorised runner uses gate-based noise.
    """

    channel: PauliChannel

    def gate_error_channels(self, instr: Instruction) -> list[tuple[int, PauliChannel]]:
        """Unsupported: this model samples whole-circuit insertions instead."""
        raise NotImplementedError(
            "QubitOncePauliNoise must be applied via sample_noisy_circuit()"
        )

    def scaled(self, factor: float) -> "QubitOncePauliNoise":
        """Copy with the per-qubit channel scaled by ``factor``."""
        return QubitOncePauliNoise(channel=self.channel.scaled(factor))

    def sample_insertions(
        self, circuit: "QuantumCircuit", rng: np.random.Generator
    ) -> list[tuple[int, Instruction]]:
        """Sample ``(instruction_index, pauli_instruction)`` insertions."""
        touches: dict[int, list[int]] = {}
        for index, instr in enumerate(circuit.instructions):
            if instr.is_barrier or instr.is_noise or instr.is_measurement or instr.is_frame:
                continue
            for q in instr.qubits:
                touches.setdefault(q, []).append(index)
        insertions: list[tuple[int, Instruction]] = []
        for qubit, positions in touches.items():
            code = int(self.channel.sample(rng, 1)[0])
            if code == PAULI_I:
                continue
            position = int(rng.choice(positions))
            error = Instruction(
                gate=_PAULI_NAMES[code], qubits=(qubit,), tags=frozenset({"noise"})
            )
            insertions.append((position, error))
        return insertions


@dataclass(frozen=True)
class ScheduledNoiseModel(NoiseModel):
    """Position-dependent noise layered on top of a base model.

    The model is bound to one specific circuit: ``gate_sites[i]`` lists the
    extra ``(qubit, channel)`` error sites fired after the circuit's ``i``-th
    barrier-free gate (after the base model's sites for that gate), and
    ``final_sites`` lists sites fired once after the last instruction.  The
    builders that know how to derive the site tables live next to the data
    they consume: :func:`with_idle_noise` (schedule slack) here, and the
    routing-link model in :mod:`repro.scenarios`.

    Because the site tables are plain nested tuples the model stays hashable,
    so the gate tape's per-model :class:`~repro.circuit.ir.NoiseSiteTable`
    memoization keeps working.
    """

    base: NoiseModel
    gate_sites: tuple[tuple[tuple[int, PauliChannel], ...], ...]
    final_sites: tuple[tuple[int, PauliChannel], ...] = ()

    def gate_error_channels(self, instr: Instruction) -> list[tuple[int, PauliChannel]]:
        """Raises: position-dependent models need the indexed protocol."""
        raise TypeError(
            "ScheduledNoiseModel is position-dependent; error sites must be "
            "enumerated via gate_error_channels_indexed()"
        )

    def gate_error_channels_indexed(
        self, gate_index: int, instr: Instruction
    ) -> list[tuple[int, PauliChannel]]:
        """Base sites for the indexed gate plus this circuit's extra sites."""
        if gate_index >= len(self.gate_sites):
            raise ValueError(
                f"gate index {gate_index} outside the {len(self.gate_sites)}-gate "
                "circuit this ScheduledNoiseModel was built for -- rebuild the "
                "model whenever the circuit changes"
            )
        channels = list(self.base.gate_error_channels_indexed(gate_index, instr))
        channels.extend(self.gate_sites[gate_index])
        return channels

    def final_error_channels(self) -> list[tuple[int, PauliChannel]]:
        """Base end-of-circuit sites plus this circuit's extra final sites."""
        channels = list(self.base.final_error_channels())
        channels.extend(self.final_sites)
        return channels

    def scaled(self, factor: float) -> "ScheduledNoiseModel":
        """Copy with every layered site channel scaled by ``factor``."""
        return ScheduledNoiseModel(
            base=self.base.scaled(factor),
            gate_sites=tuple(
                tuple((qubit, channel.scaled(factor)) for qubit, channel in entry)
                for entry in self.gate_sites
            ),
            final_sites=tuple(
                (qubit, channel.scaled(factor)) for qubit, channel in self.final_sites
            ),
        )


def with_idle_noise(
    base: NoiseModel,
    circuit: "QuantumCircuit",
    idle_channel: PauliChannel,
    *,
    respect_barriers: bool = True,
) -> NoiseModel:
    """Extend ``base`` with schedule-aware idle noise for ``circuit``.

    Every ASAP layer a qubit spends idle contributes one application of
    ``idle_channel`` to that qubit: the idle layers a gate's operands
    accumulated since their previous gate fire together with that gate's
    error sites, and the idling between a qubit's last gate and the end of
    the schedule fires once after the final instruction
    (:meth:`NoiseModel.final_error_channels`).  With a phase-flip idle
    channel of probability ``p`` a qubit idling ``d`` layers therefore keeps
    its phase with the closed-form probability ``(1 + (1 - 2 p)**d) / 2`` --
    the analytic check the test suite pins.

    Returns ``base`` unchanged when the idle channel is trivial.
    """
    if idle_channel.is_trivial:
        return base
    slack = idle_slack(circuit, respect_barriers=respect_barriers)
    return ScheduledNoiseModel(
        base=base,
        gate_sites=tuple(
            tuple(
                (qubit, idle_channel)
                for qubit, layers in entry
                for _ in range(layers)
            )
            for entry in slack.gate_idle
        ),
        final_sites=tuple(
            (qubit, idle_channel)
            for qubit, layers in slack.final_idle
            for _ in range(layers)
        ),
    )


def _pauli_instruction(code: int, qubit: int) -> Instruction:
    return Instruction(gate=_PAULI_NAMES[code], qubits=(qubit,), tags=frozenset({"noise"}))


def sample_noisy_circuit(
    circuit: "QuantumCircuit",
    noise: NoiseModel,
    rng: np.random.Generator | None = None,
) -> "QuantumCircuit":
    """Return one Monte-Carlo sample of ``circuit`` with Pauli errors inserted.

    The returned circuit contains the original instructions plus error
    instructions tagged ``"noise"``.  Logical accounting helpers on
    :class:`~repro.circuit.circuit.QuantumCircuit` know to skip them.
    """
    from repro.circuit.circuit import QuantumCircuit

    rng = np.random.default_rng() if rng is None else rng
    noisy = QuantumCircuit(
        num_qubits=circuit.num_qubits,
        registers=dict(circuit.registers),
        metadata=dict(circuit.metadata),
    )

    if isinstance(noise, QubitOncePauliNoise):
        insertions = noise.sample_insertions(circuit, rng)
        errors_before: dict[int, list[Instruction]] = {}
        for position, error in insertions:
            errors_before.setdefault(position, []).append(error)
        for index, instr in enumerate(circuit.instructions):
            for error in errors_before.get(index, []):
                noisy.append(error)
            noisy.append(instr)
        return noisy

    gate_index = 0
    for instr in circuit.instructions:
        noisy.append(instr)
        if instr.is_barrier:
            continue
        for qubit, channel in noise.gate_error_channels_indexed(gate_index, instr):
            code = int(channel.sample(rng, 1)[0])
            if code != PAULI_I:
                noisy.append(_pauli_instruction(code, qubit))
        gate_index += 1
    for qubit, channel in noise.final_error_channels():
        code = int(channel.sample(rng, 1)[0])
        if code != PAULI_I:
            noisy.append(_pauli_instruction(code, qubit))
    return noisy


def expected_error_insertions(
    circuit: "QuantumCircuit", noise: NoiseModel
) -> float:
    """Expected number of Pauli errors a Monte-Carlo sample will insert.

    Useful for sanity checks in tests and for scaling analyses: with the
    gate-based model this equals ``sum over gates of (#operands * p_total)``.
    """
    if isinstance(noise, QubitOncePauliNoise):
        touched = set()
        for instr in circuit.gates:
            if instr.is_measurement or instr.is_frame:
                continue
            touched.update(instr.qubits)
        return len(touched) * noise.channel.p_total
    total = 0.0
    for _, _, channel in iter_error_sites(circuit, noise):
        total += channel.p_total
    return total


def iter_error_sites(
    circuit: "QuantumCircuit", noise: NoiseModel
) -> Iterable[tuple[int, int, PauliChannel]]:
    """Yield ``(instruction_index, qubit, channel)`` error opportunities.

    Sites triggered by the end of the circuit (idle-noise flushes) are
    yielded with ``instruction_index == len(circuit.instructions)``.
    """
    gate_index = 0
    for index, instr in enumerate(circuit.instructions):
        if instr.is_barrier:
            continue
        for qubit, channel in noise.gate_error_channels_indexed(gate_index, instr):
            yield index, qubit, channel
        gate_index += 1
    for qubit, channel in noise.final_error_channels():
        yield len(circuit.instructions), qubit, channel
