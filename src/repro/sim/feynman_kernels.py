"""Low-level per-instruction Feynman-path kernels.

These are the building blocks of the *interpreted* execution engine
(``"feynman-interp"`` in :mod:`repro.sim.engine`): one string-dispatched
NumPy column update per gate, and a masked per-row Pauli application for
Monte-Carlo noise.  The compiled engine (``"feynman-tape"``) replaces them
with fused, opcode-dispatched group operations but must stay trajectory-
equivalent to them; the engine-equivalence tests pin that down.

Kept in their own module so both the interpreted engine and the
:class:`~repro.sim.feynman.FeynmanPathSimulator` facade can share them
without an import cycle.
"""

from __future__ import annotations

import numpy as np

from repro.circuit.instruction import Instruction
from repro.sim.noise import PAULI_X, PAULI_Y, PAULI_Z

_T_PHASE = np.exp(1j * np.pi / 4)

#: The amplitude weight of each Hadamard branch; shared by every engine so
#: branched trajectories stay bit-identical across them.
INV_SQRT2 = 1.0 / np.sqrt(2.0)


class UnsupportedGateError(ValueError):
    """Raised when a circuit contains a gate outside the path-simulable set."""


def apply_instruction(bits: np.ndarray, amps: np.ndarray, instr: Instruction) -> None:
    """Apply one gate to every row of ``bits``/``amps`` in place."""
    gate = instr.gate
    q = instr.qubits
    if gate == "I" or gate == "BARRIER":
        return
    if gate == "X":
        bits[:, q[0]] ^= True
    elif gate == "Y":
        col = bits[:, q[0]]
        amps *= np.where(col, -1j, 1j)
        bits[:, q[0]] = ~col
    elif gate == "Z":
        amps[bits[:, q[0]]] *= -1.0
    elif gate == "S":
        amps[bits[:, q[0]]] *= 1j
    elif gate == "SDG":
        amps[bits[:, q[0]]] *= -1j
    elif gate == "T":
        amps[bits[:, q[0]]] *= _T_PHASE
    elif gate == "TDG":
        amps[bits[:, q[0]]] *= np.conj(_T_PHASE)
    elif gate == "CX":
        bits[:, q[1]] ^= bits[:, q[0]]
    elif gate == "CZ":
        amps[bits[:, q[0]] & bits[:, q[1]]] *= -1.0
    elif gate == "SWAP":
        a = bits[:, q[0]].copy()
        bits[:, q[0]] = bits[:, q[1]]
        bits[:, q[1]] = a
    elif gate == "CCX":
        bits[:, q[2]] ^= bits[:, q[0]] & bits[:, q[1]]
    elif gate == "CSWAP":
        control, a, b = q
        diff = (bits[:, a] ^ bits[:, b]) & bits[:, control]
        bits[:, a] ^= diff
        bits[:, b] ^= diff
    elif gate == "MCX":
        controls, target = q[:-1], q[-1]
        active = np.all(bits[:, list(controls)], axis=1)
        bits[:, target] ^= active
    else:
        raise UnsupportedGateError(
            f"gate {gate} is not simulable by the Feynman-path simulator"
        )


def apply_hadamard(
    bits: np.ndarray, amps: np.ndarray, qubit: int
) -> tuple[np.ndarray, np.ndarray]:
    """Branch every row of the row-major path block through one ``H``.

    ``H|b> = (|0> + (-1)**b |1>) / sqrt(2)``: row ``j`` splits into rows
    ``2 j`` (qubit cleared) and ``2 j + 1`` (qubit set, sign flipped when the
    pre-branch bit was 1), so the newest branch axis is always the innermost
    stride-1 pairing -- the layout the compile-time collapse plan of
    :mod:`repro.circuit.ir` assumes.  Returns the new ``(bits, amps)``
    arrays; the inputs are left untouched.
    """
    old = bits[:, qubit].copy()
    bits = np.repeat(bits, 2, axis=0)
    amps = np.repeat(amps, 2)
    amps *= INV_SQRT2
    upper = amps[1::2]
    upper[old] *= -1.0
    bits[0::2, qubit] = False
    bits[1::2, qubit] = True
    return bits, amps


def apply_masked_pauli(
    bits: np.ndarray, amps: np.ndarray, qubit: int, codes: np.ndarray
) -> None:
    """Apply per-row Pauli errors on ``qubit`` given integer ``codes`` per row."""
    flip = (codes == PAULI_X) | (codes == PAULI_Y)
    if np.any(flip):
        # Phase of Y depends on the *pre-flip* bit value: Y|0> = i|1>, Y|1> = -i|0>.
        y_rows = codes == PAULI_Y
        if np.any(y_rows):
            amps[y_rows] *= np.where(bits[y_rows, qubit], -1j, 1j)
        bits[flip, qubit] ^= True
    z_rows = (codes == PAULI_Z) & bits[:, qubit]
    if np.any(z_rows):
        amps[z_rows] *= -1.0
