"""Vectorised Feynman-path simulator (Sec. 6.2 of the paper).

Every gate the QRAM architectures use is either a permutation of computational
basis states (``X``, ``CX``, ``CCX``, ``MCX``, ``SWAP``, ``CSWAP``) or diagonal
up to a bit flip (the Pauli errors ``X``/``Y``/``Z`` and the phase gates
``Z``/``S``/``T``/``CZ``).  A basis state therefore never branches: it is a
*path* ``(bitstring, amplitude)`` that each gate updates in place.

The simulator stores all paths of the input superposition as a boolean matrix
``(n_paths, n_qubits)`` and applies each gate with NumPy column operations, so
the cost of a query is ``O(n_gates * n_paths)`` and the memory footprint is
constant in circuit depth -- the property that lets the paper simulate noisy
QRAMs far beyond the reach of dense statevector simulation.

For Monte-Carlo noise the simulator goes one step further and vectorises over
shots as well: the path matrix is replicated ``shots`` times and, after each
gate, per-shot Pauli errors are drawn and applied as masked column updates.
This turns the ``shots x gates`` Python loop into a single pass over the gate
list, which is what makes the Figure 9-12 sweeps tractable in pure Python.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import is_path_simulable
from repro.circuit.instruction import Instruction
from repro.sim.fidelity import shot_fidelities
from repro.sim.noise import (
    NoiseModel,
    NoiselessModel,
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
)
from repro.sim.paths import PathState

_T_PHASE = np.exp(1j * np.pi / 4)


class UnsupportedGateError(ValueError):
    """Raised when a circuit contains a gate that branches basis states (e.g. H)."""


def _apply_instruction(bits: np.ndarray, amps: np.ndarray, instr: Instruction) -> None:
    """Apply one gate to every row of ``bits``/``amps`` in place."""
    gate = instr.gate
    q = instr.qubits
    if gate == "I" or gate == "BARRIER":
        return
    if gate == "X":
        bits[:, q[0]] ^= True
    elif gate == "Y":
        col = bits[:, q[0]]
        amps *= np.where(col, -1j, 1j)
        bits[:, q[0]] = ~col
    elif gate == "Z":
        amps[bits[:, q[0]]] *= -1.0
    elif gate == "S":
        amps[bits[:, q[0]]] *= 1j
    elif gate == "SDG":
        amps[bits[:, q[0]]] *= -1j
    elif gate == "T":
        amps[bits[:, q[0]]] *= _T_PHASE
    elif gate == "TDG":
        amps[bits[:, q[0]]] *= np.conj(_T_PHASE)
    elif gate == "CX":
        bits[:, q[1]] ^= bits[:, q[0]]
    elif gate == "CZ":
        amps[bits[:, q[0]] & bits[:, q[1]]] *= -1.0
    elif gate == "SWAP":
        a = bits[:, q[0]].copy()
        bits[:, q[0]] = bits[:, q[1]]
        bits[:, q[1]] = a
    elif gate == "CCX":
        bits[:, q[2]] ^= bits[:, q[0]] & bits[:, q[1]]
    elif gate == "CSWAP":
        control, a, b = q
        diff = (bits[:, a] ^ bits[:, b]) & bits[:, control]
        bits[:, a] ^= diff
        bits[:, b] ^= diff
    elif gate == "MCX":
        controls, target = q[:-1], q[-1]
        active = np.all(bits[:, list(controls)], axis=1)
        bits[:, target] ^= active
    else:
        raise UnsupportedGateError(
            f"gate {gate} is not simulable by the Feynman-path simulator"
        )


def _apply_masked_pauli(
    bits: np.ndarray, amps: np.ndarray, qubit: int, codes: np.ndarray
) -> None:
    """Apply per-row Pauli errors on ``qubit`` given integer ``codes`` per row."""
    flip = (codes == PAULI_X) | (codes == PAULI_Y)
    if np.any(flip):
        # Phase of Y depends on the *pre-flip* bit value: Y|0> = i|1>, Y|1> = -i|0>.
        y_rows = codes == PAULI_Y
        if np.any(y_rows):
            amps[y_rows] *= np.where(bits[y_rows, qubit], -1j, 1j)
        bits[flip, qubit] ^= True
    z_rows = (codes == PAULI_Z) & bits[:, qubit]
    if np.any(z_rows):
        amps[z_rows] *= -1.0


@dataclass
class QueryResult:
    """Outcome of a Monte-Carlo noisy query simulation."""

    fidelities: np.ndarray
    shots: int

    @property
    def mean_fidelity(self) -> float:
        return float(np.mean(self.fidelities))

    @property
    def std_error(self) -> float:
        """Standard error of the mean fidelity."""
        if self.shots <= 1:
            return 0.0
        return float(np.std(self.fidelities, ddof=1) / np.sqrt(self.shots))


class FeynmanPathSimulator:
    """Simulates basis-permutation circuits path by path (see module docstring)."""

    def validate(self, circuit: QuantumCircuit) -> None:
        """Raise :class:`UnsupportedGateError` if any gate cannot be simulated."""
        for instr in circuit.gates:
            if not is_path_simulable(instr.gate):
                raise UnsupportedGateError(
                    f"gate {instr.gate} is not simulable by the Feynman-path simulator"
                )

    # ----------------------------------------------------------- noiseless run
    def run(self, circuit: QuantumCircuit, state: PathState) -> PathState:
        """Run ``circuit`` on ``state`` and return the output :class:`PathState`."""
        if state.num_qubits != circuit.num_qubits:
            raise ValueError(
                f"state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )
        self.validate(circuit)
        bits = state.bits.copy()
        amps = state.amplitudes.copy()
        for instr in circuit.instructions:
            if instr.is_barrier:
                continue
            _apply_instruction(bits, amps, instr)
        return PathState(bits=bits, amplitudes=amps)

    # -------------------------------------------------------- noisy Monte Carlo
    def run_noisy_shots(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate ``shots`` Monte-Carlo noise samples in one vectorised pass.

        Returns the final ``bits`` block of shape ``(shots * n_paths, n_qubits)``
        and the matching amplitude vector.  Rows ``[s * n_paths, (s+1) * n_paths)``
        belong to shot ``s``.
        """
        if shots <= 0:
            raise ValueError("shots must be positive")
        if state.num_qubits != circuit.num_qubits:
            raise ValueError(
                f"state has {state.num_qubits} qubits, circuit has {circuit.num_qubits}"
            )
        self.validate(circuit)
        rng = np.random.default_rng() if rng is None else rng

        n_paths = state.num_paths
        bits = np.tile(state.bits, (shots, 1))
        amps = np.tile(state.amplitudes, shots).astype(complex)

        noiseless = isinstance(noise, NoiselessModel)
        for instr in circuit.instructions:
            if instr.is_barrier:
                continue
            _apply_instruction(bits, amps, instr)
            if noiseless:
                continue
            for qubit, channel in noise.gate_error_channels(instr):
                if channel.is_trivial:
                    continue
                shot_codes = channel.sample(rng, shots)
                if not np.any(shot_codes != PAULI_I):
                    continue
                row_codes = np.repeat(shot_codes, n_paths)
                _apply_masked_pauli(bits, amps, qubit, row_codes)
        return bits, amps

    def query_fidelities(
        self,
        circuit: QuantumCircuit,
        input_state: PathState,
        noise: NoiseModel,
        shots: int,
        *,
        keep_qubits: list[int] | None = None,
        ideal_output: PathState | None = None,
        rng: np.random.Generator | None = None,
    ) -> QueryResult:
        """Monte-Carlo estimate of the query fidelity under ``noise``.

        Parameters
        ----------
        circuit:
            The (noise-free) query circuit.
        input_state:
            Input superposition, typically
            ``PathState.register_superposition`` over the address register.
        noise:
            Noise model; gate-based models are applied on the fly.
        shots:
            Number of Monte-Carlo noise samples.
        keep_qubits:
            Qubits defining the *reduced* fidelity (normally address + bus,
            i.e. the registers whose state the algorithm actually consumes).
            ``None`` computes the full-state overlap fidelity.
        ideal_output:
            Pre-computed noiseless output (saves a simulation when sweeping
            noise parameters over the same circuit).
        rng:
            NumPy random generator for reproducibility.
        """
        rng = np.random.default_rng() if rng is None else rng
        if ideal_output is None:
            ideal_output = self.run(circuit, input_state)
        bits, amps = self.run_noisy_shots(circuit, input_state, noise, shots, rng=rng)
        fidelities = shot_fidelities(
            ideal_output,
            bits,
            amps,
            shots=shots,
            n_paths=input_state.num_paths,
            keep_qubits=keep_qubits,
        )
        return QueryResult(fidelities=fidelities, shots=shots)
