"""Vectorised Feynman-path simulator (Sec. 6.2 of the paper).

Every gate the QRAM architectures use is either a permutation of computational
basis states (``X``, ``CX``, ``CCX``, ``MCX``, ``SWAP``, ``CSWAP``) or diagonal
up to a bit flip (the Pauli errors ``X``/``Y``/``Z`` and the phase gates
``Z``/``S``/``T``/``CZ``).  A basis state therefore never branches: it is a
*path* ``(bitstring, amplitude)`` that each gate updates in place.

The simulator stores all paths of the input superposition as a boolean matrix
``(n_paths, n_qubits)`` and applies each gate with NumPy column operations, so
the cost of a query is ``O(n_gates * n_paths)`` and the memory footprint is
constant in circuit depth -- the property that lets the paper simulate noisy
QRAMs far beyond the reach of dense statevector simulation.

For Monte-Carlo noise the simulator goes one step further and vectorises over
shots as well: the path matrix is replicated ``shots`` times and per-shot
Pauli errors are applied as masked column updates.

:class:`FeynmanPathSimulator` is a thin facade over the pluggable execution
engines of :mod:`repro.sim.engine`.  By default it uses the compiled
``"feynman-tape"`` engine, which executes the circuit's fused
:class:`~repro.circuit.ir.GateTape` with integer-opcode dispatch and draws
all Monte-Carlo Pauli codes up front; pass ``engine="feynman-batch"`` to
additionally group shots by distinct sampled error pattern and execute the
tape once per pattern (bit-identical to the tape engine under
:class:`~repro.sim.seeding.ShotSeeds`), ``engine="feynman-interp"`` for
the original instruction-at-a-time runner (bit-identical trajectories under
a fixed seed on the QRAM gate set -- fused ``T`` runs can differ by ~1 ulp)
or ``engine="statevector"`` for the dense reference simulator (noiseless
only).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.gates import is_path_simulable
from repro.sim.feynman_kernels import UnsupportedGateError
from repro.sim.fidelity import shot_fidelities
from repro.sim.noise import NoiseModel
from repro.sim.paths import PathState
from repro.sim.seeding import ShotSeeds

__all__ = ["FeynmanPathSimulator", "QueryResult", "UnsupportedGateError"]


@dataclass
class QueryResult:
    """Outcome of a Monte-Carlo noisy query simulation.

    Postselected runs mark rejected shots with ``NaN`` in ``fidelities``
    (see :func:`~repro.sim.fidelity.shot_fidelities`); every aggregate below
    is taken over the *kept* shots only, with :attr:`kept_fraction` keeping
    the discard visible.  Runs without postselection (no ``NaN``) reproduce
    the historical all-shot aggregates bit for bit.
    """

    fidelities: np.ndarray
    shots: int

    @property
    def kept_shots(self) -> int:
        """Shots that survived postselection (all of them when none applied)."""
        return self.shots - int(np.count_nonzero(np.isnan(self.fidelities)))

    @property
    def kept_fraction(self) -> float:
        """Fraction of shots kept by postselection: ``1.0`` without any."""
        return self.kept_shots / self.shots

    @property
    def mean_fidelity(self) -> float:
        """Mean fidelity over the kept shots (``NaN`` when all were rejected)."""
        kept = self.kept_shots
        if kept == self.shots:
            return float(np.mean(self.fidelities))
        if kept == 0:
            return float("nan")
        return float(np.mean(self.fidelities[~np.isnan(self.fidelities)]))

    @property
    def std_error(self) -> float:
        """Standard error of the mean over the kept shots.

        The ``shots <= 1`` guard extends naturally to postselection: with at
        most one kept shot there is no sample variance, so the standard
        error is ``0.0`` -- well-defined even when :attr:`mean_fidelity` is
        ``NaN`` because nothing was kept.
        """
        kept = self.kept_shots
        if kept == self.shots:
            if self.shots <= 1:
                return 0.0
            return float(np.std(self.fidelities, ddof=1) / np.sqrt(self.shots))
        if kept <= 1:
            return 0.0
        values = self.fidelities[~np.isnan(self.fidelities)]
        return float(np.std(values, ddof=1) / np.sqrt(kept))


class FeynmanPathSimulator:
    """Simulates basis-permutation circuits path by path (see module docstring).

    Parameters
    ----------
    engine:
        Execution engine: a registered name (``"feynman-tape"``,
        ``"feynman-batch"``, ``"feynman-interp"``, ``"statevector"``), an
        :class:`~repro.sim.engine.Engine` instance, or ``None`` for the
        session default (see :func:`repro.sim.engine.set_default_engine`).
    """

    def __init__(self, engine=None):
        self.engine = engine

    def _resolve_engine(self):
        from repro.sim.engine import get_engine

        return get_engine(self.engine)

    def validate(self, circuit: QuantumCircuit) -> None:
        """Raise :class:`UnsupportedGateError` if any gate cannot be simulated."""
        for instr in circuit.gates:
            if not is_path_simulable(instr.gate):
                raise UnsupportedGateError(
                    f"gate {instr.gate} is not simulable by the Feynman-path simulator"
                )

    # ----------------------------------------------------------- noiseless run
    def run(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        *,
        rng: np.random.Generator | None = None,
    ) -> PathState:
        """Run ``circuit`` on ``state`` and return the output :class:`PathState`.

        ``rng`` supplies mid-circuit measurement outcomes when the circuit
        contains ``MEASURE`` instructions (``None`` uses a fixed stream);
        measurement-free circuits never consume randomness.
        """
        return self._resolve_engine().run(circuit, state, rng=rng)

    # -------------------------------------------------------- noisy Monte Carlo
    def run_noisy_shots(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Simulate ``shots`` Monte-Carlo noise samples in one vectorised pass.

        Returns the final ``bits`` block of shape ``(shots * n_paths, n_qubits)``
        and the matching amplitude vector.  Rows ``[s * n_paths, (s+1) * n_paths)``
        belong to shot ``s``.  Passing a :class:`~repro.sim.seeding.ShotSeeds`
        window as ``rng`` selects per-shot seeded error streams (the
        deterministic-sharding mode of :mod:`repro.sweep`).
        """
        return self._resolve_engine().run_noisy_shots(
            circuit, state, noise, shots, rng=rng
        )

    def run_noisy_shots_recorded(
        self,
        circuit: QuantumCircuit,
        state: PathState,
        noise: NoiseModel,
        shots: int,
        rng: np.random.Generator | ShotSeeds | None = None,
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray | None]:
        """Like :meth:`run_noisy_shots`, plus the recorded measurement outcomes.

        The third element is the classical register of the whole batch --
        shape ``(num_clbits, shots)`` ``int8``, one row per slot -- or
        ``None`` when the circuit records nothing.  This is what
        postselection partitions shots by (see :meth:`query_fidelities`).
        """
        return self._resolve_engine().run_noisy_shots_recorded(
            circuit, state, noise, shots, rng=rng
        )

    def query_fidelities(
        self,
        circuit: QuantumCircuit,
        input_state: PathState,
        noise: NoiseModel,
        shots: int,
        *,
        keep_qubits: list[int] | None = None,
        ideal_output: PathState | None = None,
        rng: np.random.Generator | ShotSeeds | None = None,
        postselect: tuple[tuple[int, int], ...] | None = None,
    ) -> QueryResult:
        """Monte-Carlo estimate of the query fidelity under ``noise``.

        Parameters
        ----------
        circuit:
            The (noise-free) query circuit.
        input_state:
            Input superposition, typically
            ``PathState.register_superposition`` over the address register.
        noise:
            Noise model; gate-based models are applied on the fly.
        shots:
            Number of Monte-Carlo noise samples.
        keep_qubits:
            Qubits defining the *reduced* fidelity (normally address + bus,
            i.e. the registers whose state the algorithm actually consumes).
            ``None`` computes the full-state overlap fidelity.
        ideal_output:
            Pre-computed noiseless output (saves a simulation when sweeping
            noise parameters over the same circuit).
        rng:
            NumPy random generator for reproducibility.
        postselect:
            ``(cbit, expected_outcome)`` pairs to postselect on: a shot is
            *kept* only when every listed classical slot recorded its
            expected outcome.  Rejected shots come back as ``NaN`` in
            :attr:`QueryResult.fidelities` and are excluded from every
            aggregate, with :attr:`QueryResult.kept_fraction` accounting for
            them.  ``None`` (or empty) keeps every shot.
        """
        rng = np.random.default_rng() if rng is None else rng
        if ideal_output is None:
            ideal_output = self.run(circuit, input_state)
        kept: np.ndarray | None = None
        if postselect:
            bits, amps, outcomes = self.run_noisy_shots_recorded(
                circuit, input_state, noise, shots, rng=rng
            )
            if outcomes is None:
                raise ValueError(
                    "postselect names classical bits but the circuit records "
                    "no measurement outcomes"
                )
            kept = np.ones(shots, dtype=bool)
            for cbit, expected in postselect:
                kept &= outcomes[cbit] == expected
        else:
            bits, amps = self.run_noisy_shots(
                circuit, input_state, noise, shots, rng=rng
            )
        # Branching circuits may leave more paths per shot than the input had
        # (uncollapsed H branches), so derive the per-shot width from the
        # returned block instead of the input state.
        fidelities = shot_fidelities(
            ideal_output,
            bits,
            amps,
            shots=shots,
            n_paths=bits.shape[0] // shots,
            keep_qubits=keep_qubits,
            kept=kept,
        )
        return QueryResult(fidelities=fidelities, shots=shots)
