"""Dense statevector reference simulator.

This simulator exists for two reasons:

1. **Cross-validation.**  The Feynman-path simulator is the workhorse of the
   reproduction; every architectural claim rests on it being correct.  The
   test suite therefore runs every small QRAM circuit on both simulators and
   requires the outputs to match.

2. **Scaling baseline.**  Section 6.2 of the paper argues that path simulation
   scales to QRAM sizes that dense simulation cannot reach; the
   ``bench_simulator_scaling`` benchmark measures the two engines against each
   other to reproduce that claim.

The implementation executes the circuit's compiled
:class:`~repro.circuit.ir.GateTape` -- the same IR the Feynman engines run --
dispatching on integer opcodes: basis-permutation gates by index arithmetic
and the remaining single-qubit gates (``H``, ``S``, ``T``, ``Y``, ``Z``) by a
reshaped matrix product, so it supports every gate in the registry.  Qubit
``q`` corresponds to bit ``q`` of the basis-state index (little-endian).
"""

from __future__ import annotations

import numpy as np

from repro.circuit.circuit import QuantumCircuit
from repro.circuit.ir import (
    OP_CCX,
    OP_CPAULI,
    OP_CSWAP,
    OP_CX,
    OP_CZ,
    OP_H,
    OP_MCX,
    OP_MEASURE,
    OP_NOP,
    OP_S,
    OP_SDG,
    OP_SWAP,
    OP_T,
    OP_TDG,
    OP_X,
    OP_Y,
    OP_Z,
    OPCODE_NAMES,
    compile_circuit,
)
from repro.sim.paths import PathState

_MAX_DENSE_QUBITS = 22

#: Single-qubit unitaries applied via the reshaped matrix product, by opcode.
_OPCODE_MATRICES = {
    OP_X: np.array([[0, 1], [1, 0]], dtype=complex),
    OP_Y: np.array([[0, -1j], [1j, 0]], dtype=complex),
    OP_Z: np.array([[1, 0], [0, -1]], dtype=complex),
    OP_H: np.array([[1, 1], [1, -1]], dtype=complex) / np.sqrt(2),
    OP_S: np.array([[1, 0], [0, 1j]], dtype=complex),
    OP_SDG: np.array([[1, 0], [0, -1j]], dtype=complex),
    OP_T: np.array([[1, 0], [0, np.exp(1j * np.pi / 4)]], dtype=complex),
    OP_TDG: np.array([[1, 0], [0, np.exp(-1j * np.pi / 4)]], dtype=complex),
}

#: Pauli label -> opcode, for CPAULI frame corrections.
_PAULI_OPCODES = {"X": OP_X, "Y": OP_Y, "Z": OP_Z}


class StatevectorSimulator:
    """Dense simulator for circuits on at most ``22`` qubits."""

    def __init__(self, max_qubits: int = _MAX_DENSE_QUBITS):
        self.max_qubits = max_qubits

    # -------------------------------------------------------------- public API
    def run(
        self,
        circuit: QuantumCircuit,
        initial_state: PathState | np.ndarray | None = None,
        *,
        rng: np.random.Generator | None = None,
    ) -> np.ndarray:
        """Return the final statevector of ``circuit``.

        ``initial_state`` may be a :class:`PathState`, a dense vector of length
        ``2**num_qubits`` or ``None`` (all qubits in |0>).  ``rng`` supplies
        mid-circuit measurement outcomes (sampled from the exact Born
        probabilities); ``None`` uses a fixed ``default_rng(0)`` stream so
        runs stay deterministic.  Circuits without measurements never consume
        randomness.
        """
        n = circuit.num_qubits
        if n > self.max_qubits:
            raise ValueError(
                f"{n} qubits exceeds the dense simulation limit of {self.max_qubits}"
            )
        psi = self._initial_vector(circuit, initial_state)
        tape = compile_circuit(circuit)
        outcomes: np.ndarray | None = None
        if tape.num_clbits:
            outcomes = np.zeros(tape.num_clbits, dtype=np.int8)
            if rng is None:
                rng = np.random.default_rng(0)
        for group in tape.groups:
            opcode = group.opcode
            if opcode == OP_NOP:
                continue
            if opcode == OP_MEASURE:
                cbit, basis = group.params
                psi, outcomes[cbit] = self._measure(
                    psi, int(group.qubits[0, 0]), basis, rng
                )
                continue
            if opcode == OP_CPAULI:
                pauli = group.params[0]
                parity = int(outcomes[list(group.params[1:])].sum()) & 1
                if parity:
                    psi = self._apply_single_matrix(
                        psi,
                        _OPCODE_MATRICES[_PAULI_OPCODES[pauli]],
                        int(group.qubits[0, 0]),
                    )
                continue
            for row in group.qubits:
                psi = self._apply_op(psi, opcode, row)
        return psi

    def run_to_path_state(
        self,
        circuit: QuantumCircuit,
        initial_state: PathState | np.ndarray | None = None,
        tolerance: float = 1e-12,
        *,
        rng: np.random.Generator | None = None,
    ) -> PathState:
        """Run and convert the (sparse) output back into a :class:`PathState`."""
        psi = self.run(circuit, initial_state, rng=rng)
        n = circuit.num_qubits
        indices = np.nonzero(np.abs(psi) > tolerance)[0]
        bits = ((indices[:, None] >> np.arange(n)) & 1).astype(bool)
        return PathState(bits=bits, amplitudes=psi[indices])

    def _measure(
        self, psi: np.ndarray, qubit: int, basis: str, rng: np.random.Generator
    ) -> tuple[np.ndarray, int]:
        """Project ``qubit`` onto a sampled outcome; return ``(psi, outcome)``.

        X-basis measurements rotate into the computational basis first and,
        matching the Feynman engines' convention, leave the qubit in the
        computational state ``|m>`` (hardware re-initialises measured qubits
        from the classical record).
        """
        if basis == "X":
            psi = self._apply_single_matrix(psi, _OPCODE_MATRICES[OP_H], qubit)
        indices = np.arange(len(psi), dtype=np.int64)
        mask1 = ((indices >> qubit) & 1).astype(bool)
        weight1 = float(np.sum(np.abs(psi[mask1]) ** 2))
        total = float(np.sum(np.abs(psi) ** 2))
        p0 = (total - weight1) / total if total > 0.0 else 1.0
        outcome = 0 if rng.random() < p0 else 1
        keep = mask1 if outcome else ~mask1
        p_m = weight1 / total if outcome else p0
        out = np.where(keep, psi, 0.0) / np.sqrt(p_m if p_m > 0.0 else 1.0)
        return out, outcome

    # ----------------------------------------------------------------- helpers
    def _initial_vector(
        self,
        circuit: QuantumCircuit,
        initial_state: PathState | np.ndarray | None,
    ) -> np.ndarray:
        n = circuit.num_qubits
        if initial_state is None:
            psi = np.zeros(2**n, dtype=complex)
            psi[0] = 1.0
            return psi
        if isinstance(initial_state, PathState):
            if initial_state.num_qubits != n:
                raise ValueError("initial state qubit count mismatch")
            return initial_state.to_statevector()
        psi = np.asarray(initial_state, dtype=complex)
        if psi.shape != (2**n,):
            raise ValueError(f"statevector must have length {2**n}")
        return psi.copy()

    def _apply_op(
        self, psi: np.ndarray, opcode: int, qubits: np.ndarray
    ) -> np.ndarray:
        matrix = _OPCODE_MATRICES.get(opcode)
        if matrix is not None:
            # Diagonal/permutation single-qubit gates could use index logic,
            # but the matrix route is equally exact and keeps one code path.
            return self._apply_single_matrix(psi, matrix, int(qubits[0]))
        indices = np.arange(len(psi), dtype=np.int64)
        if opcode == OP_CX:
            control, target = (int(q) for q in qubits)
            flip = ((indices >> control) & 1).astype(bool)
            return self._permute(psi, np.where(flip, indices ^ (1 << target), indices))
        if opcode == OP_CZ:
            control, target = (int(q) for q in qubits)
            mask = (((indices >> control) & 1) & ((indices >> target) & 1)).astype(bool)
            out = psi.copy()
            out[mask] *= -1
            return out
        if opcode == OP_SWAP:
            a, b = (int(q) for q in qubits)
            bit_a = (indices >> a) & 1
            bit_b = (indices >> b) & 1
            differ = (bit_a ^ bit_b).astype(bool)
            swapped = indices ^ (((1 << a) | (1 << b)) * differ)
            return self._permute(psi, swapped)
        if opcode == OP_CCX:
            c1, c2, target = (int(q) for q in qubits)
            active = (((indices >> c1) & 1) & ((indices >> c2) & 1)).astype(bool)
            return self._permute(psi, np.where(active, indices ^ (1 << target), indices))
        if opcode == OP_CSWAP:
            control, a, b = (int(q) for q in qubits)
            bit_a = (indices >> a) & 1
            bit_b = (indices >> b) & 1
            active = (((indices >> control) & 1) & (bit_a ^ bit_b)).astype(bool)
            swapped = indices ^ (((1 << a) | (1 << b)) * active)
            return self._permute(psi, swapped)
        if opcode == OP_MCX:
            controls, target = qubits[:-1], int(qubits[-1])
            active = np.ones(len(psi), dtype=bool)
            for c in controls:
                active &= ((indices >> int(c)) & 1).astype(bool)
            return self._permute(psi, np.where(active, indices ^ (1 << target), indices))
        raise ValueError(f"unsupported gate {OPCODE_NAMES.get(opcode, opcode)}")

    @staticmethod
    def _permute(psi: np.ndarray, new_indices: np.ndarray) -> np.ndarray:
        out = np.empty_like(psi)
        out[new_indices] = psi
        return out

    @staticmethod
    def _apply_single_matrix(psi: np.ndarray, matrix: np.ndarray, qubit: int) -> np.ndarray:
        n = psi.shape[0]
        stride = 1 << qubit
        reshaped = psi.reshape(n // (2 * stride), 2, stride)
        # axis 1 enumerates the value of `qubit`
        out = np.einsum("ab,ibj->iaj", matrix, reshaped)
        return out.reshape(n)
