"""Path-sum representation of quantum states restricted to basis-permutation circuits.

A :class:`PathState` stores a superposition ``sum_i alpha_i |b_i>`` as

* ``bits``: a boolean matrix of shape ``(n_paths, n_qubits)``; row ``i`` is the
  computational basis state of path ``i`` (``bits[i, q]`` is the value of qubit
  ``q``), and
* ``amplitudes``: a complex vector of length ``n_paths``.

Because QRAM circuits never branch a basis state into a superposition
(Sec. 6.2 of the paper), the number of paths is fixed by the *input* state and
never grows, which is exactly why the Feynman-path simulator scales to QRAM
sizes that are far out of reach for dense statevector simulation.

The bit-ordering convention throughout the library is *little-endian in the
qubit index*: when a group of qubits ``(q_0, q_1, ..., q_{w-1})`` encodes an
integer, ``q_0`` holds the most significant bit (this matches how the QRAM
builders lay out address registers).  Helpers on this class perform the
conversions so callers never manipulate raw bit positions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

import numpy as np


def int_to_bits(value: int, width: int) -> tuple[int, ...]:
    """Big-endian bit tuple of ``value`` over ``width`` bits.

    >>> int_to_bits(5, 4)
    (0, 1, 0, 1)
    """
    if width < 0:
        raise ValueError("width must be non-negative")
    if value < 0 or (width < value.bit_length()):
        raise ValueError(f"value {value} does not fit in {width} bits")
    return tuple((value >> (width - 1 - i)) & 1 for i in range(width))


def bits_to_int(bits: Sequence[int]) -> int:
    """Inverse of :func:`int_to_bits` (first element is the most significant bit)."""
    value = 0
    for bit in bits:
        value = (value << 1) | (1 if bit else 0)
    return value


@dataclass
class PathState:
    """Superposition over computational basis states, one row per path."""

    bits: np.ndarray
    amplitudes: np.ndarray

    def __post_init__(self) -> None:
        self.bits = np.asarray(self.bits, dtype=bool)
        self.amplitudes = np.asarray(self.amplitudes, dtype=complex)
        if self.bits.ndim != 2:
            raise ValueError("bits must be a 2-D (n_paths, n_qubits) array")
        if self.amplitudes.shape != (self.bits.shape[0],):
            raise ValueError("amplitudes must have one entry per path")

    # ------------------------------------------------------------ constructors
    @classmethod
    def from_basis_assignments(
        cls,
        assignments: Iterable[tuple[Mapping[int, int], complex]],
        num_qubits: int,
    ) -> "PathState":
        """Build a state from ``(qubit -> bit, amplitude)`` pairs.

        Qubits absent from an assignment default to 0.
        """
        rows = []
        amps = []
        for mapping, amp in assignments:
            row = np.zeros(num_qubits, dtype=bool)
            for qubit, bit in mapping.items():
                if qubit < 0 or qubit >= num_qubits:
                    raise ValueError(f"qubit {qubit} out of range")
                row[qubit] = bool(bit)
            rows.append(row)
            amps.append(amp)
        if not rows:
            raise ValueError("at least one basis assignment is required")
        return cls(bits=np.array(rows, dtype=bool), amplitudes=np.array(amps))

    @classmethod
    def register_superposition(
        cls,
        num_qubits: int,
        register: Sequence[int],
        amplitudes: Mapping[int, complex] | None = None,
    ) -> "PathState":
        """State with a superposition of integer values on ``register``.

        Parameters
        ----------
        num_qubits:
            Total qubit count of the circuit; all qubits outside ``register``
            start in |0>.
        register:
            Qubit indices encoding the integer, most significant bit first.
        amplitudes:
            Mapping from integer value to amplitude.  ``None`` means the
            uniform superposition over all ``2**len(register)`` values, which
            is the input state used throughout the paper's evaluation.
        """
        width = len(register)
        if amplitudes is None:
            norm = 1.0 / np.sqrt(2**width) if width else 1.0
            amplitudes = {value: norm for value in range(2**width)}
        assignments = []
        for value, amp in sorted(amplitudes.items()):
            mapping = {register[i]: bit for i, bit in enumerate(int_to_bits(value, width))}
            assignments.append((mapping, amp))
        return cls.from_basis_assignments(assignments, num_qubits)

    # ------------------------------------------------------------- inspection
    @property
    def num_paths(self) -> int:
        """Number of paths (rows) in the superposition."""
        return self.bits.shape[0]

    @property
    def num_qubits(self) -> int:
        """Number of qubits (columns)."""
        return self.bits.shape[1]

    def norm(self) -> float:
        """2-norm of the amplitude vector (1.0 for normalised inputs)."""
        return float(np.sqrt(np.sum(np.abs(self.amplitudes) ** 2)))

    def copy(self) -> "PathState":
        """Deep copy of bits and amplitudes."""
        return PathState(bits=self.bits.copy(), amplitudes=self.amplitudes.copy())

    def register_values(self, register: Sequence[int]) -> np.ndarray:
        """Integer value encoded on ``register`` for every path (MSB first)."""
        values = np.zeros(self.num_paths, dtype=np.int64)
        for qubit in register:
            values = (values << 1) | self.bits[:, qubit].astype(np.int64)
        return values

    def as_dict(self) -> dict[tuple[int, ...], complex]:
        """Collapse to a mapping ``basis bit-tuple -> total amplitude``.

        Paths landing on the same basis state are summed; zero-amplitude
        entries are dropped.  This is the canonical form used for equality
        checks and overlap computations.
        """
        out: dict[tuple[int, ...], complex] = {}
        for row, amp in zip(self.bits, self.amplitudes):
            key = tuple(int(b) for b in row)
            out[key] = out.get(key, 0.0 + 0.0j) + complex(amp)
        return {key: amp for key, amp in out.items() if abs(amp) > 1e-12}

    def to_statevector(self) -> np.ndarray:
        """Dense statevector (little-endian in qubit index).

        Only sensible for small ``num_qubits``; used by the test suite to
        compare against :class:`~repro.sim.statevector.StatevectorSimulator`.
        """
        if self.num_qubits > 24:
            raise ValueError("refusing to build a dense vector for > 24 qubits")
        vec = np.zeros(2**self.num_qubits, dtype=complex)
        weights = (1 << np.arange(self.num_qubits, dtype=np.int64))
        indices = (self.bits.astype(np.int64) * weights).sum(axis=1)
        np.add.at(vec, indices, self.amplitudes)
        return vec

    def overlap(self, other: "PathState") -> complex:
        """Inner product ``<self|other>``."""
        mine = self.as_dict()
        total = 0.0 + 0.0j
        for key, amp in other.as_dict().items():
            total += np.conj(mine.get(key, 0.0)) * amp
        return complex(total)
