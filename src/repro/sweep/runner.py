"""Sharded sweep execution with deterministic seed-splitting.

Every experiment in the reproduction is a *sweep*: a list of parameter
points, each evaluated by a Monte-Carlo shot loop (Figures 9-12) or by a
deterministic computation (Figure 8, Tables 1-2).  This module decomposes a
sweep into ``(sweep_point, shot_shard)`` work units and executes them either
serially or across a :class:`~concurrent.futures.ProcessPoolExecutor`,
merging shard results back into the existing result dataclasses
(:class:`~repro.sim.feynman.QueryResult`).

Determinism is the design constraint.  Work units carry a
:class:`~repro.sim.seeding.ShotSeeds` window, so every shot's random stream
is keyed on ``(seed, point_index, shot_index)`` via
``numpy.random.SeedSequence`` spawn keys -- never on the shard it landed in
or the worker that ran it.  Merged fidelities are therefore bit-identical
for **any** ``workers`` and **any** ``shard_size``, which is what lets CI run
the same sweep at ``--workers 1`` and ``--workers 4`` and diff the artefacts
byte for byte.

Worker functions must be module-level (picklable by reference) and their
point specs must be picklable values; workers rebuild heavyweight objects
(architectures, routed circuits) from the spec, typically behind a
process-local ``functools.lru_cache``.
"""

from __future__ import annotations

import multiprocessing
import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Callable, Sequence

import numpy as np

from repro.sim.feynman import QueryResult
from repro.sim.seeding import ShotSeeds

#: Shots per shard when the caller does not choose.  Small enough that quick
#: sweeps still split into several units per point, large enough that the
#: per-unit pickling/IPC overhead stays well below the simulation cost.
DEFAULT_SHARD_SIZE = 32

#: Environment variable consulted when ``workers`` is not given.  CI sets it
#: to run the whole tier-1 suite under a fixed worker count.
WORKERS_ENV_VAR = "REPRO_SWEEP_WORKERS"


def resolve_workers(workers: int | None) -> int:
    """Resolve a worker-count request to a concrete positive integer.

    ``None`` consults ``REPRO_SWEEP_WORKERS`` (default 1, i.e. serial);
    ``0`` means one worker per CPU core.
    """
    if workers is None:
        env = os.environ.get(WORKERS_ENV_VAR, "").strip()
        workers = int(env) if env else 1
    if workers == 0:
        workers = os.cpu_count() or 1
    if workers < 0:
        raise ValueError(f"workers must be non-negative, got {workers}")
    return workers


def split_shots(shots: int, shard_size: int) -> list[tuple[int, int]]:
    """Split a shot count into ``(start, count)`` shards of ``shard_size``.

    The trailing shard absorbs the remainder.  The decomposition only
    affects scheduling granularity -- per-shot seeding makes the merged
    results independent of it.
    """
    if shots <= 0:
        raise ValueError(f"shots must be positive, got {shots}")
    if shard_size <= 0:
        raise ValueError(f"shard_size must be positive, got {shard_size}")
    return [
        (start, min(shard_size, shots - start))
        for start in range(0, shots, shard_size)
    ]


@dataclass(frozen=True)
class ShotShard:
    """One ``(sweep_point, shot range)`` work unit of a Monte-Carlo sweep."""

    point_index: int
    shard_index: int
    start: int
    shots: int
    seed: int

    def seeds(self) -> ShotSeeds:
        """The per-shot seed window covering this shard's shot range."""
        return ShotSeeds(seed=self.seed, point_index=self.point_index, start=self.start)


class SweepRunner:
    """Executes sweep work units serially or across a process pool.

    Parameters
    ----------
    workers:
        Worker processes.  ``1`` runs everything in-process (no pool),
        ``0`` uses every CPU core, ``None`` consults the
        ``REPRO_SWEEP_WORKERS`` environment variable (default 1).  The
        worker count never changes results, only wall-clock time.
    shard_size:
        Shots per :class:`ShotShard` (default :data:`DEFAULT_SHARD_SIZE`).
        Also purely a scheduling knob: per-shot seeding makes merged results
        bit-identical across shard sizes.
    """

    def __init__(
        self, workers: int | None = None, shard_size: int | None = None
    ) -> None:
        self.workers = resolve_workers(workers)
        if shard_size is not None and shard_size <= 0:
            raise ValueError(f"shard_size must be positive, got {shard_size}")
        self.shard_size = DEFAULT_SHARD_SIZE if shard_size is None else shard_size

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"SweepRunner(workers={self.workers}, shard_size={self.shard_size})"

    # ------------------------------------------------------------- execution
    def map_units(self, fn: Callable[..., Any], units: Sequence[tuple]) -> list[Any]:
        """Run ``fn(*unit)`` for every unit, returning results in unit order.

        Serial when ``workers == 1`` or there is at most one unit; otherwise
        the units are distributed over a process pool.  Submission order is
        preserved in the result list, so downstream merging is independent
        of completion order.  A worker exception propagates to the caller.
        """
        if self.workers == 1 or len(units) <= 1:
            return [fn(*unit) for unit in units]
        context = self._pool_context()
        max_workers = min(self.workers, len(units))
        with ProcessPoolExecutor(max_workers=max_workers, mp_context=context) as pool:
            futures = [pool.submit(fn, *unit) for unit in units]
            return [future.result() for future in futures]

    @staticmethod
    def _pool_context():
        """Prefer ``fork`` so workers inherit ``sys.path`` and module state.

        Forked workers see interpreter state a spawned worker would lose:
        ``sys.path`` tweaks (``PYTHONPATH=src`` runs, pytest's rootdir
        insertion -- spawn cannot even unpickle a worker function defined in
        a test module), plus process-global configuration such as the
        default-engine registry.  ``fork`` is also the stdlib default on
        Linux (the platform CI runs), so this adds no risk beyond that
        default; the known caveat is the usual one -- forking a heavily
        multi-threaded parent is unsafe -- which the sweep workloads avoid.
        Platforms without ``fork`` use their default start method, which is
        why specs also carry the engine explicitly instead of relying on
        inherited globals.
        """
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return None

    # ------------------------------------------------------------ sweep APIs
    def map_points(self, fn: Callable[[Any], Any], specs: Sequence[Any]) -> list[Any]:
        """Evaluate ``fn(spec)`` per sweep point, in order.

        For deterministic (shot-free) sweeps such as Figure 8 and the
        resource tables: each point is one work unit.
        """
        return self.map_units(fn, [(spec,) for spec in specs])

    def shards(self, shots: int, *, seed: int, point_index: int = 0) -> list[ShotShard]:
        """The :class:`ShotShard` decomposition of one point's shot loop."""
        return [
            ShotShard(
                point_index=point_index,
                shard_index=shard_index,
                start=start,
                shots=count,
                seed=seed,
            )
            for shard_index, (start, count) in enumerate(
                split_shots(shots, self.shard_size)
            )
        ]

    def map_shards(
        self,
        fn: Callable[[Any, ShotShard], np.ndarray],
        specs: Sequence[Any],
        *,
        shots: int,
        seed: int,
        point_offset: int = 0,
    ) -> list[QueryResult]:
        """Run a Monte-Carlo sweep and merge shards per point.

        ``fn(spec, shard)`` must return the shard's per-shot fidelity array
        (length ``shard.shots``), drawn under ``shard.seeds()``.  Every point
        gets ``shots`` total shots split by ``self.shard_size``; the merged
        per-point arrays are returned as
        :class:`~repro.sim.feynman.QueryResult` instances, concatenated in
        shot order so the result is invariant under workers and shard size.

        ``point_offset`` shifts the seed-keying point index of ``specs[0]``,
        letting a caller embed a sub-sweep into a larger sweep's coordinate
        space without re-seeding collisions.
        """
        units: list[tuple[Any, ShotShard]] = []
        for index, spec in enumerate(specs):
            point_index = point_offset + index
            for shard in self.shards(shots, seed=seed, point_index=point_index):
                units.append((spec, shard))
        outputs = self.map_units(fn, units)

        shards_per_point = len(split_shots(shots, self.shard_size))
        results: list[QueryResult] = []
        for point_index in range(len(specs)):
            block = outputs[
                point_index * shards_per_point : (point_index + 1) * shards_per_point
            ]
            fidelities = np.concatenate([np.asarray(part) for part in block])
            if fidelities.shape[0] != shots:
                raise ValueError(
                    f"point {point_index} merged {fidelities.shape[0]} shot "
                    f"fidelities, expected {shots}; shard workers must return "
                    "one value per shot"
                )
            results.append(QueryResult(fidelities=fidelities, shots=shots))
        return results

    # --------------------------------------------------------- record merging
    @staticmethod
    def merge_record_shards(
        shard_paths: Sequence[str | Path],
        output: str | Path,
        *,
        tag: str = "",
    ) -> Path:
        """Merge per-worker ``.rrec`` record shards into one artefact.

        The memory-mapped k-way merge of :mod:`repro.records` replaces JSON
        list concatenation: every shard is validated (CRC, schema) on open,
        no record is ever decoded, and the output bytes equal a serial
        re-encode of the concatenated records -- so the merged artefact is
        bit-identical for any worker count and shard decomposition, the same
        contract :meth:`map_shards` honours for fidelities.  Corrupt shards
        raise :class:`~repro.records.format.RecordFormatError` and nothing
        is written.
        """
        from repro.records import merge_record_files

        return merge_record_files(shard_paths, output, tag=tag)
