"""Sharded Monte-Carlo sweep execution with deterministic seed-splitting.

Public surface
--------------
* :class:`~repro.sweep.runner.SweepRunner` -- decomposes a sweep into
  ``(sweep_point, shot_shard)`` work units and executes them serially or
  across a process pool; merged results are bit-identical for any worker
  count and shard size.
* :class:`~repro.sweep.runner.ShotShard` -- one work unit, carrying its
  deterministic :class:`~repro.sim.seeding.ShotSeeds` window.
* :func:`~repro.sweep.runner.split_shots` / :func:`~repro.sweep.runner.resolve_workers`
  -- the decomposition and worker-count policies.
* :class:`~repro.sim.seeding.ShotSeeds` -- re-exported per-shot seed streams
  (the contract the execution engines implement).
"""

from repro.sim.seeding import ShotSeeds
from repro.sweep.runner import (
    DEFAULT_SHARD_SIZE,
    WORKERS_ENV_VAR,
    ShotShard,
    SweepRunner,
    resolve_workers,
    split_shots,
)

__all__ = [
    "DEFAULT_SHARD_SIZE",
    "WORKERS_ENV_VAR",
    "ShotSeeds",
    "ShotShard",
    "SweepRunner",
    "resolve_workers",
    "split_shots",
]
