"""Tests for the per-table / per-figure experiment runners (small parameters)."""


from repro.experiments import (
    advantage_summary,
    fig8_report,
    fig9_report,
    fig10_report,
    fig11_report,
    fig12_report,
    k_versus_m_decay,
    optimization_savings,
    run_fig8,
    run_fig9,
    run_fig10,
    run_fig11,
    run_fig12,
    run_table1,
    run_table2,
    table1_report,
    table2_report,
)
from repro.experiments.common import format_table, random_memory, records_to_rows
from repro.experiments.fig12 import HardwareConfiguration


class TestCommonHelpers:
    def test_random_memory_is_reproducible(self):
        assert random_memory(4, seed=1).values == random_memory(4, seed=1).values

    def test_format_table_alignment(self):
        text = format_table(["a", "bbb"], [[1, 2.34567], [10, 3]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].startswith("a")

    def test_records_to_rows(self):
        records = [{"x": 1, "y": 2}, {"x": 3}]
        assert records_to_rows(records, ["x", "y"]) == [[1, 2], [3, ""]]


class TestTableRunners:
    def test_table1_records_cover_all_columns(self):
        records = run_table1(m=3, k=1)
        columns = {record["column"] for record in records}
        assert columns == {"RAW", "OPT1", "OPT2", "OPT3", "ALL"}
        assert all(record["measured"] >= 0 for record in records)

    def test_table1_report_contains_metrics(self):
        text = table1_report(m=2, k=1)
        assert "qubits" in text and "classical_controlled_gates" in text

    def test_optimization_savings_trends(self):
        savings = optimization_savings(m=4, k=2)
        assert savings["qubit_ratio"] < 1.0
        assert savings["depth_ratio"] < 1.0
        assert savings["classical_gate_ratio"] < 1.0

    def test_table2_records_and_report(self):
        records = run_table2([(2, 1)])
        architectures = {record["architecture"] for record in records}
        assert architectures == {"SQC+BB", "SQC+SS", "Ours"}
        assert "Table 2" in table2_report([(2, 1)])

    def test_advantage_summary_favors_ours(self):
        summary = advantage_summary(m=3, k=2)
        assert summary["t_count_vs_bb"] > 1.0
        assert summary["clifford_depth_vs_ss"] > 1.0


class TestFigureRunners:
    def test_fig8_records(self):
        records = run_fig8(widths=(1, 2, 3, 4))
        assert [record["m"] for record in records] == [1, 2, 3, 4]
        assert all(record["topological_minor"] for record in records)
        assert "Figure 8" in fig8_report(widths=(1, 2))

    def test_fig8_swap_worse_than_teleport_at_scale(self):
        records = run_fig8(widths=(6,))
        assert records[0]["swap_extra_depth"] > records[0]["teleport_extra_depth"]

    def test_fig9_records_and_report(self):
        records = run_fig9(widths=(1, 2), shots=16, architectures=("ours", "ss"))
        assert len(records) == 2 * 2 * 2
        assert all(0.0 <= record["fidelity"] <= 1.0 for record in records)
        assert "Figure 9" in fig9_report(widths=(1,), shots=8)

    def test_fig10_records_include_bound(self):
        records = run_fig10(widths=(2,), reduction_factors=(1.0, 100.0), shots=16)
        assert all("analytic_bound" in record for record in records)
        by_factor = {r["error_reduction_factor"]: r for r in records if r["error"] == "Z"}
        assert by_factor[100.0]["analytic_bound"] >= by_factor[1.0]["analytic_bound"]
        assert "Figure 10" in fig10_report(widths=(1,), reduction_factors=(1.0,), shots=8)

    def test_fig11_records_and_decay_summary(self):
        records = run_fig11(
            qram_widths=(1, 2),
            sqc_widths=(0, 1),
            reduction_factors=(1.0,),
            shots=32,
        )
        assert len(records) == 2 * 2 * 2
        decay = k_versus_m_decay(records, error="Z", factor=1.0)
        assert set(decay) == {"average_drop_per_k", "average_drop_per_m"}
        assert "Figure 11" in fig11_report(
            qram_widths=(1,), sqc_widths=(0,), reduction_factors=(1.0,), shots=8
        )

    def test_fig12_records_and_report(self):
        configurations = (HardwareConfiguration(m=1, k=0, device_name="ibm_perth"),)
        records = run_fig12(configurations, reduction_factors=(1.0, 100.0), shots=20)
        assert len(records) == 2
        assert records[0]["extra_swaps"] == records[1]["extra_swaps"]
        assert records[1]["fidelity"] >= records[0]["fidelity"] - 0.05
        report = fig12_report(configurations, reduction_factors=(1.0,), shots=10)
        assert "Figure 12" in report and "SWAP=" in report
