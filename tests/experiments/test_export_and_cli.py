"""Tests for record export (CSV/Markdown) and the command-line entry point."""

import csv

import pytest

from repro.experiments.export import (
    collect_columns,
    export_experiment,
    records_to_csv,
    records_to_markdown,
)
from repro.experiments.__main__ import build_parser, main


RECORDS = [
    {"m": 1, "fidelity": 0.991, "error": "Z"},
    {"m": 2, "fidelity": 0.942, "error": "Z", "note": "extra column"},
]

#: Schema-consistent rows for the strict (derived-column) CSV path.
UNIFORM_RECORDS = [
    {"m": 1, "fidelity": 0.991, "error": "Z"},
    {"m": 2, "fidelity": 0.942, "error": "X"},
]


class TestExport:
    def test_collect_columns_order(self):
        assert collect_columns(RECORDS) == ["m", "fidelity", "error", "note"]

    def test_csv_round_trip(self, tmp_path):
        path = records_to_csv(UNIFORM_RECORDS, tmp_path / "out.csv")
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 2
        assert rows[0]["m"] == "1"
        assert rows[1]["error"] == "X"

    def test_csv_derived_columns_reject_missing_fields(self, tmp_path):
        """Regression pin: heterogeneous records used to blank-fill (and a
        caller-unknown field could silently vanish via extrasaction). A
        derived header now demands every record carry every column."""
        with pytest.raises(ValueError, match="missing fields.*note"):
            records_to_csv(RECORDS, tmp_path / "out.csv")

    def test_csv_custom_columns(self, tmp_path):
        path = records_to_csv(RECORDS, tmp_path / "out.csv", columns=["m", "fidelity"])
        header = path.read_text().splitlines()[0]
        assert header == "m,fidelity"

    def test_csv_custom_columns_keep_projection_semantics(self, tmp_path):
        """Explicit columns= stays permissive: missing keys render empty."""
        path = records_to_csv(RECORDS, tmp_path / "out.csv", columns=["m", "note"])
        with path.open() as handle:
            rows = list(csv.DictReader(handle))
        assert rows[0]["note"] == ""
        assert rows[1]["note"] == "extra column"

    def test_empty_records_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            records_to_csv([], tmp_path / "out.csv")
        with pytest.raises(ValueError):
            records_to_markdown([])

    def test_markdown_table_shape(self):
        table = records_to_markdown(RECORDS, columns=["m", "fidelity"])
        lines = table.splitlines()
        assert lines[0] == "| m | fidelity |"
        assert lines[1] == "| --- | --- |"
        assert len(lines) == 4

    def test_export_experiment_writes_both(self, tmp_path):
        paths = export_experiment(UNIFORM_RECORDS, tmp_path / "results", "fig9")
        assert paths["csv"].exists()
        assert paths["markdown"].exists()
        assert "| m |" in paths["markdown"].read_text()


class TestCommandLine:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table1" in out and "fig12" in out

    def test_parser_defaults(self):
        args = build_parser().parse_args(["fig9", "--quick"])
        assert args.quick and args.shots is None

    def test_table1_runs_and_exports(self, tmp_path, capsys):
        assert main(["table1", "--m", "2", "--k", "1", "--out", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Table 1 reproduction" in out
        assert (tmp_path / "table1.csv").exists()
        assert (tmp_path / "table1.md").exists()

    def test_fig8_quick_runs(self, capsys):
        assert main(["fig8", "--quick"]) == 0
        assert "Figure 8 reproduction" in capsys.readouterr().out

    def test_fig9_quick_with_small_shots(self, capsys):
        assert main(["fig9", "--quick", "--shots", "8"]) == 0
        assert "Figure 9 reproduction" in capsys.readouterr().out

    def test_invalid_experiment_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["not-an-experiment"])

    def test_seed_flag_is_forwarded_and_reproducible(self, capsys):
        assert main(["fig9", "--quick", "--shots", "8", "--seed", "7"]) == 0
        first = capsys.readouterr().out
        assert main(["fig9", "--quick", "--shots", "8", "--seed", "7"]) == 0
        second = capsys.readouterr().out
        assert first == second
        assert main(["fig9", "--quick", "--shots", "8", "--seed", "8"]) == 0
        other_seed = capsys.readouterr().out
        assert other_seed != first

    def test_engine_flag_selects_engine_and_restores_default(self, capsys):
        from repro.sim import get_default_engine

        previous = get_default_engine()
        assert main(["fig9", "--quick", "--shots", "8", "--engine", "feynman-interp"]) == 0
        assert "Figure 9 reproduction" in capsys.readouterr().out
        assert get_default_engine() == previous

    def test_engine_flag_matches_default_engine_output(self, capsys):
        base = ["fig9", "--quick", "--shots", "8", "--seed", "3"]
        assert main(base) == 0
        compiled = capsys.readouterr().out
        assert main(base + ["--engine", "feynman-interp"]) == 0
        interpreted = capsys.readouterr().out
        assert compiled == interpreted

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "--engine", "warp-drive"])

    def test_router_flag_selects_router_and_restores_default(self, capsys):
        from repro.hardware import get_default_router

        previous = get_default_router()
        assert (
            main(
                [
                    "scenario",
                    "perth-m1",
                    "--shots",
                    "8",
                    "--seed",
                    "3",
                    "--router",
                    "lookahead",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "router=lookahead" in out
        assert get_default_router() == previous

    def test_router_flag_reduces_extra_swaps(self, capsys):
        base = ["scenario", "perth-m1", "--shots", "8", "--seed", "3"]
        assert main(base) == 0
        greedy_out = capsys.readouterr().out
        assert main(base + ["--router", "lookahead"]) == 0
        lookahead_out = capsys.readouterr().out

        def swaps(out: str) -> int:
            marker = "extra_swaps="
            return int(out.split(marker)[1].split()[0])

        assert swaps(lookahead_out) <= swaps(greedy_out)

    def test_unknown_router_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["scenario", "perth-m1", "--router", "oracle"])

    def test_statevector_engine_on_noisy_figure_fails_cleanly(self, capsys):
        # The dense engine cannot run Monte-Carlo noise: the CLI must report
        # that as an error message, not an unhandled traceback.
        assert main(["fig9", "--quick", "--shots", "4", "--engine", "statevector"]) == 2
        err = capsys.readouterr().err
        assert "Monte-Carlo" in err and "error:" in err


class TestFormatFlag:
    """The repeatable ``--format`` flag and the scenario `.rrec` export."""

    def test_scenario_defaults_include_rrec(self, tmp_path, capsys):
        import json

        from repro.records import read_records

        assert (
            main(
                ["scenario", "ideal-m3", "--shots", "8", "--seed", "3",
                 "--out", str(tmp_path)]
            )
            == 0
        )
        capsys.readouterr()
        for suffix in ("csv", "json", "md", "rrec"):
            assert (tmp_path / f"scenario_ideal-m3.{suffix}").exists()
        decoded = read_records(tmp_path / "scenario_ideal-m3.rrec")
        exported = json.loads(
            (tmp_path / "scenario_ideal-m3.json").read_text(encoding="utf-8")
        )
        assert [record.json_dict() for record in decoded] == exported

    def test_scenario_sweep_merges_shards(self, tmp_path, capsys):
        from repro.records import read_records, write_records

        assert (
            main(
                ["scenario", "ideal-m3", "bare-bb-m2", "--shots", "8",
                 "--seed", "3", "--out", str(tmp_path)]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "merged 2 artefacts" in out
        merged = tmp_path / "scenario_sweep.rrec"
        concatenated = read_records(tmp_path / "scenario_ideal-m3.rrec") + (
            read_records(tmp_path / "scenario_bare-bb-m2.rrec")
        )
        assert read_records(merged) == concatenated
        # The mmap merge is byte-identical to a serial re-encode.
        serial = write_records(tmp_path / "serial.rrec", concatenated)
        assert merged.read_bytes() == serial.read_bytes()

    def test_format_flag_selects_a_subset(self, tmp_path, capsys):
        assert (
            main(
                ["scenario", "ideal-m3", "--shots", "8", "--seed", "3",
                 "--format", "rrec", "--out", str(tmp_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert (tmp_path / "scenario_ideal-m3.rrec").exists()
        assert not (tmp_path / "scenario_ideal-m3.csv").exists()
        assert not (tmp_path / "scenario_ideal-m3.json").exists()

    def test_rrec_on_a_figure_run_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["fig9", "--quick", "--format", "rrec"])
        assert excinfo.value.code == 2
        assert "scenario" in capsys.readouterr().err

    def test_unknown_format_rejected_by_the_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["fig9", "--format", "parquet"])

    def test_all_expands_per_context_and_repeats_deduplicate(self):
        from repro.experiments.__main__ import resolve_formats

        parser = build_parser()
        everything = parser.parse_args(["fig9", "--format", "all"])
        assert resolve_formats(everything, scenario=True) == (
            "csv", "json", "markdown", "rrec",
        )
        assert resolve_formats(everything, scenario=False) == (
            "csv", "json", "markdown",
        )
        repeated = parser.parse_args(
            ["fig9", "--format", "csv", "--format", "csv", "--format", "json"]
        )
        assert resolve_formats(repeated, scenario=False) == ("csv", "json")

    def test_figure_exports_honour_the_format_flag(self, tmp_path, capsys):
        assert (
            main(
                ["table1", "--m", "2", "--k", "1", "--format", "json",
                 "--out", str(tmp_path)]
            )
            == 0
        )
        capsys.readouterr()
        assert (tmp_path / "table1.json").exists()
        assert not (tmp_path / "table1.csv").exists()


class TestShardedCommandLine:
    def test_workers_flag_is_bit_identical_to_serial(self, capsys):
        base = ["fig9", "--quick", "--shots", "16", "--seed", "7"]
        assert main(base + ["--workers", "1"]) == 0
        serial = capsys.readouterr().out
        assert main(base + ["--workers", "2"]) == 0
        parallel = capsys.readouterr().out
        assert serial == parallel

    def test_shard_size_flag_is_bit_identical(self, capsys):
        base = ["fig9", "--quick", "--shots", "16", "--seed", "7"]
        assert main(base) == 0
        reference = capsys.readouterr().out
        assert main(base + ["--shard-size", "3"]) == 0
        resharded = capsys.readouterr().out
        assert reference == resharded

    def test_workers_exports_identical_artefacts(self, tmp_path, capsys):
        base = ["table2", "--quick", "--seed", "5"]
        assert main(base + ["--workers", "1", "--out", str(tmp_path / "serial")]) == 0
        assert main(base + ["--workers", "2", "--out", str(tmp_path / "pool")]) == 0
        capsys.readouterr()
        for name in ("table2.csv", "table2.md"):
            serial = (tmp_path / "serial" / name).read_bytes()
            pool = (tmp_path / "pool" / name).read_bytes()
            assert serial == pool


class TestAllPropagatesFailures:
    def test_all_continues_past_a_failure_and_exits_nonzero(
        self, capsys, monkeypatch
    ):
        from repro.experiments import __main__ as cli

        ran = []

        def broken(args):
            raise RuntimeError("injected failure")

        def working(args):
            ran.append("ok")
            return "report", [{"value": 1}]

        monkeypatch.setitem(cli.EXPERIMENTS, "fig9", broken)
        for name in cli.EXPERIMENTS:
            if name != "fig9":
                monkeypatch.setitem(cli.EXPERIMENTS, name, working)
        assert main(["all", "--quick"]) == 1
        err = capsys.readouterr().err
        assert "fig9" in err and "failed" in err
        # Every other experiment still ran after the failure.
        assert len(ran) == len(cli.EXPERIMENTS) - 1

    def test_single_experiment_failure_still_raises(self, monkeypatch):
        from repro.experiments import __main__ as cli

        def broken(args):
            raise RuntimeError("injected failure")

        monkeypatch.setitem(cli.EXPERIMENTS, "fig9", broken)
        with pytest.raises(RuntimeError, match="injected failure"):
            main(["fig9", "--quick"])
