"""Documentation gates: examples cannot rot, the catalog cannot drift.

* every fenced ``python`` block in ``README.md`` and
  ``docs/ARCHITECTURE.md`` must execute (blocks run sequentially in one
  namespace per file, pre-seeded with the small ``circuit`` / ``noise``
  objects the prose refers to);
* the README scenario-catalog table must equal the live registry;
* ``docs/ARCHITECTURE.md`` must exist and be linked from the README;
* the runnable examples (including ``examples/teleportation_routing.py``,
  the executed-vs-analytic ablation) must run to completion.
"""

import re
import runpy
from pathlib import Path

import pytest

from repro.circuit import QuantumCircuit
from repro.hardware.router import get_default_router, set_default_router
from repro.sim import GateNoiseModel, PauliChannel
from repro.sim.engine import get_default_engine, set_default_engine

REPO_ROOT = Path(__file__).resolve().parents[2]
README = REPO_ROOT / "README.md"
ARCHITECTURE = REPO_ROOT / "docs" / "ARCHITECTURE.md"

_BLOCK_PATTERN = re.compile(r"```python\n(.*?)```", re.DOTALL)
# A catalog row has exactly one description cell (the Routing section's
# swap-count table has several numeric cells and must not match).
_CATALOG_ROW = re.compile(r"^\| `([a-z0-9-]+)` \| ([^|]+?) \|$", re.MULTILINE)


def python_blocks(path: Path) -> list[str]:
    """Every fenced ``python`` code block of a markdown file, in order."""
    return _BLOCK_PATTERN.findall(path.read_text(encoding="utf-8"))


def _seeded_namespace() -> dict:
    """Objects the documentation prose assumes are already in scope."""
    circuit = QuantumCircuit(num_qubits=3)
    circuit.ccx(0, 1, 2)
    circuit.cx(0, 1)
    return {
        "circuit": circuit,
        "noise": GateNoiseModel(PauliChannel.phase_flip(1e-3)),
    }


def _execute_blocks(path: Path) -> int:
    namespace = _seeded_namespace()
    previous_router = get_default_router()
    previous_engine = get_default_engine()
    try:
        for block in python_blocks(path):
            exec(compile(block, str(path), "exec"), namespace)  # noqa: S102
    finally:
        set_default_router(previous_router)
        set_default_engine(previous_engine)
    return len(python_blocks(path))


@pytest.mark.slow
def test_readme_python_blocks_execute():
    assert _execute_blocks(README) >= 4


def test_architecture_doc_exists_and_blocks_execute():
    assert ARCHITECTURE.exists()
    _execute_blocks(ARCHITECTURE)


def test_architecture_doc_linked_from_readme():
    assert "docs/ARCHITECTURE.md" in README.read_text(encoding="utf-8")


def test_architecture_doc_covers_the_contracts():
    text = ARCHITECTURE.read_text(encoding="utf-8")
    for required in (
        "ShotSeeds",
        "feynman-batch",
        "register_engine",
        "register_router",
        "register_scenario",
        "NoiseModel",
        "MEASURE",
        "CPAULI",
        "fusion-barrier",
        "branch level",
        "BranchBudgetError",
        "collapse plan",
        "teleport-fused",
        "branch_budget_exceeded",
        "encode_dual_rail",
        "kept_fraction",
        "postselect",
        "dual-rail-check",
        "pauli_bias",
        "run_noisy_shots_recorded",
        ".rrec",
        "RECORD_FORMAT_VERSION",
        "RecordFormatError",
        "CRC-32",
        "merge_record_files",
        "put_shards",
        "byte-identical",
    ):
        assert required in text, f"ARCHITECTURE.md no longer mentions {required}"


def test_readme_scenario_catalog_matches_registry():
    """The catalog table is regenerated from `scenario --list` -- verify.

    Compared against the built-in specs rather than the live registry, so
    scenarios registered by other tests (or by the README example itself,
    which registers ``bb-on-guadalupe``) cannot pollute the check.
    """
    from repro.scenarios.builtin import BUILTIN_SCENARIOS

    rows = dict(_CATALOG_ROW.findall(README.read_text(encoding="utf-8")))
    builtins = {spec.name: spec.description for spec in BUILTIN_SCENARIOS}
    assert rows == builtins, (
        "README scenario catalog is stale; regenerate it from "
        "`python -m repro.experiments scenario --list`"
    )


@pytest.mark.slow
@pytest.mark.parametrize(
    "example",
    sorted(path.name for path in (REPO_ROOT / "examples").glob("*.py")),
)
def test_examples_run(example, capsys):
    runpy.run_path(str(REPO_ROOT / "examples" / example), run_name="__main__")
    assert capsys.readouterr().out  # every example narrates its steps
