"""Docstring-coverage floor over the public API of ``src/repro``.

CI additionally runs `interrogate` (configured in ``pyproject.toml``); this
AST-based check mirrors its counting rules -- public modules, classes,
functions and methods count; names with a leading underscore (including
dunders), nested functions and ``__init__`` methods are ignored -- so the
gate also holds in environments without the tool installed, and failures
name the exact offenders.
"""

import ast
from pathlib import Path

SOURCE_ROOT = Path(__file__).resolve().parents[2] / "src" / "repro"

#: Keep in sync with ``[tool.interrogate] fail-under`` in pyproject.toml.
COVERAGE_FLOOR = 95.0


def iter_documentables():
    """Yield ``(label, has_docstring)`` for every public definition."""
    for path in sorted(SOURCE_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(encoding="utf-8"))
        relative = path.relative_to(SOURCE_ROOT.parent)
        yield f"{relative}:module", bool(ast.get_docstring(tree))

        def visit(node, inside_function):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    if inside_function or child.name.startswith("_"):
                        continue
                    yield (
                        f"{relative}:{child.name}",
                        bool(ast.get_docstring(child)),
                    )
                    yield from visit(child, True)
                elif isinstance(child, ast.ClassDef):
                    if not child.name.startswith("_"):
                        yield (
                            f"{relative}:{child.name}",
                            bool(ast.get_docstring(child)),
                        )
                    yield from visit(child, inside_function)

        yield from visit(tree, False)


def test_public_api_docstring_coverage_floor():
    entries = list(iter_documentables())
    documented = sum(1 for _, has_doc in entries if has_doc)
    coverage = 100.0 * documented / len(entries)
    offenders = [label for label, has_doc in entries if not has_doc]
    assert coverage >= COVERAGE_FLOOR, (
        f"docstring coverage {coverage:.1f}% fell below the "
        f"{COVERAGE_FLOOR}% floor; undocumented: {offenders[:20]}"
    )


def test_key_public_api_is_fully_documented():
    """The registries and entry points named in the docs must stay at 100%."""
    required_modules = (
        "repro/sim/engine.py",
        "repro/sim/seeding.py",
        "repro/hardware/router.py",
        "repro/hardware/teleport_router.py",
        "repro/scenarios/spec.py",
        "repro/scenarios/run.py",
        "repro/sweep/runner.py",
        "repro/mapping/device.py",
        "repro/mapping/teleport.py",
    )
    offenders = [
        label
        for label, has_doc in iter_documentables()
        if not has_doc and label.startswith(required_modules)
    ]
    assert not offenders, f"core public API lost docstrings: {offenders}"
