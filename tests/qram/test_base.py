"""Tests for the QRAMArchitecture base-class behaviour shared by every design."""

import numpy as np
import pytest

from repro.qram import VirtualQRAM
from repro.sim import GateNoiseModel, PauliChannel


class TestParameters:
    def test_m_k_n_relationship(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        assert architecture.n == 3
        assert architecture.m == 2
        assert architecture.k == 1
        assert architecture.num_pages == 2
        assert architecture.capacity == 4

    def test_qram_width_bounds_checked(self, small_memory):
        with pytest.raises(ValueError):
            VirtualQRAM(memory=small_memory, qram_width=4)

    def test_bit_plane_bounds_checked(self, small_memory):
        with pytest.raises(ValueError):
            VirtualQRAM(memory=small_memory, qram_width=2, bit_plane=1)


class TestRegistersAndStates:
    def test_address_register_order(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        circuit = architecture.build_circuit()
        expected = list(circuit.registers["sqc_address"]) + list(
            circuit.registers["qram_address"]
        )
        assert architecture.address_qubits() == expected
        assert architecture.kept_qubits() == expected + [architecture.bus_qubit()]

    def test_input_state_uniform_by_default(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        state = architecture.input_state()
        assert state.num_paths == small_memory.size
        assert np.isclose(state.norm(), 1.0)

    def test_input_state_custom_amplitudes(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        state = architecture.input_state({3: 0.6, 5: 0.8})
        assert state.num_paths == 2
        values = sorted(state.register_values(architecture.address_qubits()).tolist())
        assert values == [3, 5]

    def test_ideal_output_entangles_bus_with_memory(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        ideal = architecture.ideal_output()
        addresses = ideal.register_values(architecture.address_qubits())
        bus = ideal.bits[:, architecture.bus_qubit()]
        for address, bus_bit in zip(addresses, bus):
            assert int(bus_bit) == small_memory[int(address)]

    def test_build_circuit_is_cached(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        assert architecture.build_circuit() is architecture.build_circuit()


class TestQueryRunner:
    def test_noiseless_run_query_gives_unit_fidelity(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        result = architecture.run_query(noise=None, shots=4, rng=0)
        assert result.mean_fidelity == pytest.approx(1.0)

    def test_reduced_fidelity_at_least_full_fidelity(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=3)
        noise = GateNoiseModel(PauliChannel.bit_flip(5e-3))
        reduced = architecture.run_query(noise, shots=128, rng=1, reduced=True)
        full = architecture.run_query(noise, shots=128, rng=1, reduced=False)
        assert reduced.mean_fidelity >= full.mean_fidelity - 1e-9

    def test_run_query_accepts_integer_seed(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        noise = GateNoiseModel(PauliChannel.phase_flip(1e-2))
        first = architecture.run_query(noise, shots=32, rng=7)
        second = architecture.run_query(noise, shots=32, rng=7)
        assert first.mean_fidelity == pytest.approx(second.mean_fidelity)


class TestResourceReport:
    def test_report_fields(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        report = architecture.resource_report()
        data = report.as_dict()
        assert data["qubits"] == architecture.build_circuit().num_qubits
        assert data["gate_count"] == architecture.build_circuit().num_gates
        assert data["circuit_depth"] >= data["circuit_depth_pipelined"]
        assert data["t_count"] > 0
        assert data["classical_controlled_gates"] > 0
