"""Tests for the virtual QRAM builder (Algorithm 1 + Sec. 3.2 optimizations)."""


import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qram import ClassicalMemory, VirtualQRAM, VirtualQRAMOptions
from repro.sim import FeynmanPathSimulator, StatevectorSimulator
from tests.conftest import memory_strategy


class TestOptions:
    def test_defaults_enable_everything(self):
        options = VirtualQRAMOptions()
        assert options.recycle_address_qubits
        assert options.lazy_data_swapping
        assert options.pipelined_addressing
        assert not options.dual_rail

    def test_raw_disables_everything(self):
        options = VirtualQRAMOptions.raw()
        assert not options.recycle_address_qubits
        assert not options.lazy_data_swapping
        assert not options.pipelined_addressing

    def test_only_selects_a_single_optimization(self):
        assert VirtualQRAMOptions.only("recycling").recycle_address_qubits
        assert VirtualQRAMOptions.only("lazy").lazy_data_swapping
        assert VirtualQRAMOptions.only("pipelining").pipelined_addressing
        with pytest.raises(ValueError):
            VirtualQRAMOptions.only("unknown")


class TestFunctionalCorrectness:
    @pytest.mark.parametrize("n, m", [(2, 1), (2, 2), (3, 1), (3, 2), (3, 3), (4, 2)])
    def test_query_matches_ideal_output(self, n, m):
        memory = ClassicalMemory.random(n, rng=n * 10 + m)
        architecture = VirtualQRAM(memory=memory, qram_width=m)
        assert architecture.verify()

    def test_every_single_address_query(self, small_memory):
        """Querying each address individually returns exactly that cell's bit."""
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        simulator = FeynmanPathSimulator()
        for address in range(small_memory.size):
            state = architecture.input_state({address: 1.0})
            output = simulator.run(architecture.build_circuit(), state)
            bus_value = int(output.bits[0, architecture.bus_qubit()])
            assert bus_value == small_memory[address]

    def test_matches_statevector_simulation(self, tiny_memory):
        architecture = VirtualQRAM(memory=tiny_memory, qram_width=1)
        circuit = architecture.build_circuit()
        state = architecture.input_state()
        path_output = FeynmanPathSimulator().run(circuit, state)
        dense_output = StatevectorSimulator().run(circuit, state)
        assert np.allclose(path_output.to_statevector(), dense_output)

    @pytest.mark.parametrize(
        "options",
        [
            VirtualQRAMOptions.raw(),
            VirtualQRAMOptions.only("recycling"),
            VirtualQRAMOptions.only("lazy"),
            VirtualQRAMOptions.only("pipelining"),
            VirtualQRAMOptions(dual_rail=True),
            VirtualQRAMOptions(dual_rail=True, lazy_data_swapping=False),
        ],
        ids=["raw", "recycling", "lazy", "pipelining", "dual_rail", "dual_rail_eager"],
    )
    def test_all_option_combinations_are_correct(self, small_memory, options):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2, options=options)
        assert architecture.verify()

    @settings(max_examples=25, deadline=None)
    @given(memory_strategy(max_width=4), st.integers(1, 4), st.booleans(), st.booleans())
    def test_property_random_memories(self, memory, m, lazy, recycle):
        """Property: the query is correct for random memories and option subsets."""
        m = min(m, memory.address_width)
        if m < 1:
            return
        options = VirtualQRAMOptions(
            recycle_address_qubits=recycle, lazy_data_swapping=lazy
        )
        architecture = VirtualQRAM(memory=memory, qram_width=m, options=options)
        assert architecture.verify()

    def test_ancillas_return_to_zero(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        output = architecture.simulate()
        kept = set(architecture.kept_qubits())
        ancillas = [q for q in range(output.num_qubits) if q not in kept]
        assert not output.bits[:, ancillas].any()

    def test_rejects_zero_qram_width(self, small_memory):
        with pytest.raises(ValueError):
            VirtualQRAM(memory=small_memory, qram_width=0)

    def test_bit_plane_queries(self):
        memory = ClassicalMemory.from_values([0b10, 0b01, 0b11, 0b00], data_width=2)
        for plane in range(2):
            architecture = VirtualQRAM(memory=memory, qram_width=1, bit_plane=plane)
            assert architecture.verify()


class TestLoadOnceProperty:
    def test_address_loading_gates_do_not_scale_with_pages(self):
        """The 'load-once' property: CSWAP count is independent of the page count."""
        counts = {}
        for k in (0, 1, 2, 3):
            memory = ClassicalMemory.random(2 + k, rng=5)
            architecture = VirtualQRAM(memory=memory, qram_width=2)
            counts[k] = architecture.build_circuit().count_ops()["CSWAP"]
        assert len(set(counts.values())) == 1

    def test_bucket_brigade_baseline_reloads_per_page(self):
        """Contrast: the SQC+BB baseline's CSWAP count grows with the page count."""
        from repro.qram import BucketBrigadeQRAM

        memory_small = ClassicalMemory.random(3, rng=6)
        memory_large = ClassicalMemory.random(5, rng=6)
        small = BucketBrigadeQRAM(memory=memory_small, qram_width=2)
        large = BucketBrigadeQRAM(memory=memory_large, qram_width=2)
        assert (
            large.build_circuit().count_ops()["CSWAP"]
            > small.build_circuit().count_ops()["CSWAP"]
        )


class TestOptimizationEffects:
    def test_recycling_reduces_qubits(self, small_memory):
        raw = VirtualQRAM(
            memory=small_memory, qram_width=3, options=VirtualQRAMOptions.raw()
        )
        recycled = VirtualQRAM(
            memory=small_memory,
            qram_width=3,
            options=VirtualQRAMOptions.only("recycling"),
        )
        assert recycled.build_circuit().num_qubits < raw.build_circuit().num_qubits

    def test_lazy_swapping_reduces_classical_gates(self):
        memory = ClassicalMemory.random(6, rng=3)
        eager = VirtualQRAM(
            memory=memory, qram_width=3, options=VirtualQRAMOptions.raw()
        )
        lazy = VirtualQRAM(
            memory=memory, qram_width=3, options=VirtualQRAMOptions.only("lazy")
        )
        eager_count = eager.build_circuit().count_tagged("classical")
        lazy_count = lazy.build_circuit().count_tagged("classical")
        assert lazy_count < eager_count
        # For uniformly random data the saving approaches a factor of two.
        assert lazy_count < 0.75 * eager_count

    def test_pipelining_reduces_depth(self):
        memory = ClassicalMemory.random(6, rng=4)
        sequential = VirtualQRAM(
            memory=memory, qram_width=6, options=VirtualQRAMOptions.raw()
        )
        pipelined = VirtualQRAM(
            memory=memory, qram_width=6, options=VirtualQRAMOptions.only("pipelining")
        )
        assert (
            pipelined.build_circuit().depth() < sequential.build_circuit().depth()
        )

    def test_dual_rail_doubles_leaf_register(self, small_memory):
        plain = VirtualQRAM(memory=small_memory, qram_width=3)
        dual = VirtualQRAM(
            memory=small_memory, qram_width=3, options=VirtualQRAMOptions(dual_rail=True)
        )
        assert (
            dual.build_circuit().num_qubits
            == plain.build_circuit().num_qubits + small_memory.size
        )

    def test_lazy_and_eager_build_equivalent_unitaries(self):
        """Lazy data swapping must not change the query semantics, only the count."""
        memory = ClassicalMemory.random(4, rng=9)
        simulator = FeynmanPathSimulator()
        eager = VirtualQRAM(
            memory=memory, qram_width=2,
            options=VirtualQRAMOptions(lazy_data_swapping=False),
        )
        lazy = VirtualQRAM(
            memory=memory, qram_width=2,
            options=VirtualQRAMOptions(lazy_data_swapping=True),
        )
        state = eager.input_state()
        eager_out = simulator.run(eager.build_circuit(), state).as_dict()
        lazy_out = simulator.run(lazy.build_circuit(), state).as_dict()
        assert set(eager_out) == set(lazy_out)
        for key in eager_out:
            assert eager_out[key] == pytest.approx(lazy_out[key])


class TestResourceScaling:
    def test_qubit_count_scales_linearly_with_capacity(self):
        sizes = {}
        for m in (2, 3, 4, 5):
            memory = ClassicalMemory.random(m, rng=m)
            sizes[m] = VirtualQRAM(memory=memory, qram_width=m).build_circuit().num_qubits
        for m in (2, 3, 4):
            ratio = sizes[m + 1] / sizes[m]
            assert 1.7 < ratio < 2.3  # O(2^m) qubits

    def test_depth_scales_linearly_with_m_at_fixed_k(self):
        depths = {}
        for m in (2, 3, 4, 5, 6):
            memory = ClassicalMemory.random(m, rng=m)
            depths[m] = VirtualQRAM(memory=memory, qram_width=m).build_circuit().depth()
        increments = [depths[m + 1] - depths[m] for m in (2, 3, 4, 5)]
        # Linear growth: roughly constant increments, far from doubling.
        assert max(increments) <= 2.5 * min(increments)

    def test_metadata_records_parameters(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        circuit = architecture.build_circuit()
        assert circuit.metadata["architecture"] == "virtual"
        assert circuit.metadata["m"] == 2
        assert circuit.metadata["k"] == 1
