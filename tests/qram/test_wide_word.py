"""Tests for the wide-word virtual QRAM (multi-bit cells, Sec. 8 extension)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import circuit_cost
from repro.qram import (
    ClassicalMemory,
    MultiBitQuery,
    VirtualQRAMOptions,
    WideWordVirtualQRAM,
)


@pytest.fixture
def word_memory() -> ClassicalMemory:
    """8 cells of 3-bit words."""
    return ClassicalMemory.from_values([5, 0, 7, 2, 3, 6, 1, 4], data_width=3)


class TestCorrectness:
    def test_query_matches_ideal_output(self, word_memory):
        qram = WideWordVirtualQRAM(memory=word_memory, qram_width=2)
        assert qram.verify()

    def test_read_word_returns_stored_values(self, word_memory):
        qram = WideWordVirtualQRAM(memory=word_memory, qram_width=2)
        for address in range(word_memory.size):
            assert qram.read_word(address) == word_memory[address]

    def test_full_width_tree(self, word_memory):
        qram = WideWordVirtualQRAM(memory=word_memory, qram_width=3)
        assert qram.k == 0
        assert qram.verify()

    def test_single_bit_memory_reduces_to_plain_virtual(self):
        memory = ClassicalMemory.random(3, rng=4)
        qram = WideWordVirtualQRAM(memory=memory, qram_width=2)
        assert qram.data_width == 1
        assert len(qram.bus_qubits()) == 1
        assert qram.verify()

    def test_lazy_and_eager_agree(self, word_memory):
        eager = WideWordVirtualQRAM(
            memory=word_memory, qram_width=2,
            options=VirtualQRAMOptions(lazy_data_swapping=False),
        )
        lazy = WideWordVirtualQRAM(memory=word_memory, qram_width=2)
        assert eager.verify()
        assert lazy.verify()
        assert (
            lazy.build_circuit().count_tagged("classical")
            < eager.build_circuit().count_tagged("classical")
        )

    @settings(max_examples=15, deadline=None)
    @given(st.integers(1, 3), st.integers(1, 3), st.integers(0, 10**6))
    def test_property_random_word_memories(self, address_width, data_width, seed):
        memory = ClassicalMemory.random(address_width, rng=seed, data_width=data_width)
        qram_width = max(1, address_width - 1)
        qram = WideWordVirtualQRAM(memory=memory, qram_width=qram_width)
        assert qram.verify()

    def test_dual_rail_rejected(self, word_memory):
        with pytest.raises(ValueError):
            WideWordVirtualQRAM(
                memory=word_memory,
                qram_width=2,
                options=VirtualQRAMOptions(dual_rail=True),
            )

    def test_rejects_zero_qram_width(self, word_memory):
        with pytest.raises(ValueError):
            WideWordVirtualQRAM(memory=word_memory, qram_width=0)


class TestStructure:
    def test_bus_register_width(self, word_memory):
        qram = WideWordVirtualQRAM(memory=word_memory, qram_width=2)
        circuit = qram.build_circuit()
        assert len(circuit.registers["bus"]) == 3
        assert qram.kept_qubits()[-3:] == qram.bus_qubits()

    def test_load_once_across_planes(self, word_memory):
        """Address loading is shared by all bit planes: the CSWAP count of the
        wide query equals that of a single-bit query on the same tree."""
        wide = WideWordVirtualQRAM(memory=word_memory, qram_width=2)
        single = WideWordVirtualQRAM(
            memory=ClassicalMemory.random(3, rng=0), qram_width=2
        )
        assert (
            wide.build_circuit().count_ops()["CSWAP"]
            == single.build_circuit().count_ops()["CSWAP"]
        )

    def test_t_cost_beats_per_plane_queries(self, word_memory):
        """The wide-word query saves the repeated address loading that
        MultiBitQuery (one full query per plane) pays."""
        wide_cost = circuit_cost(
            WideWordVirtualQRAM(memory=word_memory, qram_width=2).build_circuit()
        )
        per_plane = MultiBitQuery(memory=word_memory, qram_width=2).total_resources()
        assert wide_cost.t_count < per_plane["t_count"]

    def test_metadata_records_data_width(self, word_memory):
        circuit = WideWordVirtualQRAM(memory=word_memory, qram_width=2).build_circuit()
        assert circuit.metadata["data_width"] == 3
