"""Tests for the architecture factory and high-level query helpers."""

import pytest

from repro.qram import (
    ARCHITECTURES,
    BucketBrigadeQRAM,
    ClassicalMemory,
    MultiBitQuery,
    SequentialQueryCircuit,
    VirtualQRAM,
    VirtualQRAMOptions,
    make_architecture,
    run_query_experiment,
)
from repro.sim import GateNoiseModel, PauliChannel


class TestFactory:
    def test_known_names_resolve(self, small_memory):
        assert isinstance(make_architecture("virtual", small_memory, 2), VirtualQRAM)
        assert isinstance(make_architecture("sqc_bb", small_memory, 2), BucketBrigadeQRAM)
        assert isinstance(make_architecture("bb", small_memory, 2), BucketBrigadeQRAM)
        assert isinstance(make_architecture("sqc", small_memory), SequentialQueryCircuit)

    def test_unknown_name_raises(self, small_memory):
        with pytest.raises(KeyError):
            make_architecture("qrom2000", small_memory)

    def test_default_width_is_full_memory(self, small_memory):
        architecture = make_architecture("virtual", small_memory)
        assert architecture.m == small_memory.address_width
        assert architecture.k == 0

    def test_case_insensitive(self, small_memory):
        assert isinstance(make_architecture("Virtual", small_memory, 2), VirtualQRAM)

    def test_registry_contains_all_names(self):
        assert {"virtual", "sqc_bb", "sqc_ss", "fanout", "sqc"} <= set(ARCHITECTURES)

    def test_kwargs_forwarded(self, small_memory):
        architecture = make_architecture(
            "virtual", small_memory, 2, options=VirtualQRAMOptions.raw()
        )
        assert not architecture.options.recycle_address_qubits


class TestRunQueryExperiment:
    def test_summary_fields(self, small_memory):
        architecture = make_architecture("virtual", small_memory, 2)
        noise = GateNoiseModel(PauliChannel.phase_flip(1e-3))
        summary = run_query_experiment(architecture, noise, shots=32, rng=3)
        data = summary.as_dict()
        assert data["architecture"] == "virtual"
        assert data["m"] == 2 and data["k"] == 1
        assert 0.0 <= data["mean_fidelity"] <= 1.0
        assert data["shots"] == 32

    def test_noiseless_experiment(self, small_memory):
        architecture = make_architecture("fanout", small_memory, 2)
        summary = run_query_experiment(architecture, None, shots=4, rng=0)
        assert summary.mean_fidelity == pytest.approx(1.0)


class TestMultiBitQuery:
    def test_classical_readout_recovers_values(self):
        memory = ClassicalMemory.from_values([3, 0, 2, 1], data_width=2)
        query = MultiBitQuery(memory=memory, qram_width=1)
        for address in range(memory.size):
            assert query.classical_readout(address) == memory[address]

    def test_planes_builds_one_architecture_per_bit(self):
        memory = ClassicalMemory.from_values([3, 0, 2, 1], data_width=2)
        query = MultiBitQuery(memory=memory, qram_width=2)
        planes = query.planes()
        assert len(planes) == 2
        assert {p.bit_plane for p in planes} == {0, 1}

    def test_total_resources_aggregate(self):
        memory = ClassicalMemory.from_values([3, 0, 2, 1], data_width=2)
        query = MultiBitQuery(memory=memory, qram_width=2)
        single_plane = query.planes()[0].resource_report().as_dict()
        total = query.total_resources()
        assert total["gate_count"] >= 2 * single_plane["gate_count"] - 2

    def test_other_architectures_supported(self):
        memory = ClassicalMemory.from_values([1, 2, 3, 0], data_width=2)
        query = MultiBitQuery(memory=memory, qram_width=2, architecture="sqc_bb")
        for address in range(memory.size):
            assert query.classical_readout(address) == memory[address]
