"""Unit and property tests for ClassicalMemory."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qram import ClassicalMemory
from tests.conftest import memory_strategy


class TestConstruction:
    def test_from_values(self):
        memory = ClassicalMemory.from_values([1, 0, 1, 1])
        assert memory.address_width == 2
        assert memory.size == 4
        assert memory[0] == 1
        assert memory[1] == 0

    def test_from_values_requires_power_of_two(self):
        with pytest.raises(ValueError):
            ClassicalMemory.from_values([1, 0, 1])

    def test_from_function(self):
        memory = ClassicalMemory.from_function(lambda i: i % 2, address_width=3)
        assert memory.values == (0, 1, 0, 1, 0, 1, 0, 1)

    def test_values_must_fit_data_width(self):
        with pytest.raises(ValueError):
            ClassicalMemory.from_values([0, 2])
        ClassicalMemory.from_values([0, 2], data_width=2)

    def test_random_memory_is_reproducible(self):
        a = ClassicalMemory.random(4, rng=42)
        b = ClassicalMemory.random(4, rng=42)
        assert a.values == b.values

    def test_random_memory_respects_density(self):
        dense = ClassicalMemory.random(10, rng=0, p_one=0.9)
        sparse = ClassicalMemory.random(10, rng=0, p_one=0.1)
        assert dense.ones_count() > sparse.ones_count()

    def test_zeros(self):
        assert ClassicalMemory.zeros(3).ones_count() == 0

    def test_multibit_random(self):
        memory = ClassicalMemory.random(3, rng=1, data_width=4)
        assert all(0 <= value < 16 for value in memory.values)


class TestBitPlanes:
    def test_bit_extraction_msb_first(self):
        memory = ClassicalMemory.from_values([0b10, 0b01], data_width=2)
        assert memory.bit(0, plane=0) == 1
        assert memory.bit(0, plane=1) == 0
        assert memory.bit(1, plane=0) == 0
        assert memory.bit(1, plane=1) == 1

    def test_bit_plane_slice(self):
        memory = ClassicalMemory.from_values([0b10, 0b01, 0b11, 0b00], data_width=2)
        assert memory.bit_plane(0) == (1, 0, 1, 0)
        assert memory.bit_plane(1) == (0, 1, 1, 0)

    def test_invalid_plane_rejected(self):
        memory = ClassicalMemory.from_values([1, 0])
        with pytest.raises(ValueError):
            memory.bit(0, plane=1)


class TestPaging:
    def test_page_extraction(self):
        memory = ClassicalMemory.from_values([1, 0, 1, 1, 0, 0, 1, 0])
        assert memory.num_pages(qram_width=2) == 2
        assert memory.page(0, qram_width=2) == (1, 0, 1, 1)
        assert memory.page(1, qram_width=2) == (0, 0, 1, 0)

    def test_page_bounds_checked(self):
        memory = ClassicalMemory.from_values([1, 0, 1, 1])
        with pytest.raises(ValueError):
            memory.page(2, qram_width=1)
        with pytest.raises(ValueError):
            memory.num_pages(qram_width=3)

    def test_page_difference(self):
        memory = ClassicalMemory.from_values([1, 0, 1, 1, 0, 0, 1, 0])
        assert memory.page_difference(0, qram_width=2) == (1, 0, 0, 1)

    def test_split_address(self):
        memory = ClassicalMemory.from_values([0] * 16)
        assert memory.split_address(13, qram_width=2) == (3, 1)
        with pytest.raises(ValueError):
            memory.split_address(16, qram_width=2)

    @settings(max_examples=50, deadline=None)
    @given(memory_strategy(max_width=4), st.integers(0, 3))
    def test_pages_reassemble_to_memory(self, memory, qram_width):
        """Property: concatenating all pages recovers the full bit plane."""
        qram_width = min(qram_width, memory.address_width)
        reassembled: list[int] = []
        for page_index in range(memory.num_pages(qram_width)):
            reassembled.extend(memory.page(page_index, qram_width))
        assert tuple(reassembled) == memory.bit_plane(0)

    @settings(max_examples=50, deadline=None)
    @given(memory_strategy(max_width=4))
    def test_page_difference_is_xor(self, memory):
        qram_width = max(memory.address_width - 1, 0)
        if memory.num_pages(qram_width) < 2:
            return
        first = memory.page(0, qram_width)
        second = memory.page(1, qram_width)
        difference = memory.page_difference(0, qram_width)
        assert difference == tuple(a ^ b for a, b in zip(first, second))

    @settings(max_examples=30, deadline=None)
    @given(memory_strategy(max_width=4))
    def test_split_address_round_trip(self, memory):
        qram_width = max(memory.address_width - 1, 0)
        for address in range(memory.size):
            page, offset = memory.split_address(address, qram_width)
            assert page * (1 << qram_width) + offset == address
            assert memory.page(page, qram_width)[offset] == memory.bit(address)
