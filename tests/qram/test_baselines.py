"""Tests for the baseline architectures: SQC, Fanout, Bucket-Brigade, Select-Swap."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.qram import (
    BucketBrigadeQRAM,
    ClassicalMemory,
    FanoutQRAM,
    SelectSwapQRAM,
    SequentialQueryCircuit,
    VirtualQRAM,
)
from repro.sim import FeynmanPathSimulator
from tests.conftest import memory_strategy

ROUTER_ARCHITECTURES = [BucketBrigadeQRAM, FanoutQRAM, SelectSwapQRAM]


class TestSequentialQueryCircuit:
    def test_correctness(self, small_memory):
        architecture = SequentialQueryCircuit(memory=small_memory)
        assert architecture.verify()
        assert architecture.m == 0
        assert architecture.k == small_memory.address_width

    def test_uses_minimal_qubits(self, small_memory):
        architecture = SequentialQueryCircuit(memory=small_memory)
        assert architecture.build_circuit().num_qubits == small_memory.address_width + 1

    def test_one_classical_gate_per_stored_one(self, small_memory):
        architecture = SequentialQueryCircuit(memory=small_memory)
        circuit = architecture.build_circuit()
        assert circuit.count_tagged("classical") == small_memory.ones_count()

    def test_rejects_nonzero_qram_width(self, small_memory):
        with pytest.raises(ValueError):
            SequentialQueryCircuit(memory=small_memory, qram_width=1)

    def test_gate_count_scales_with_memory_size(self):
        small = SequentialQueryCircuit(memory=ClassicalMemory.random(3, rng=1, p_one=1.0))
        large = SequentialQueryCircuit(memory=ClassicalMemory.random(6, rng=1, p_one=1.0))
        assert large.build_circuit().num_gates > 4 * small.build_circuit().num_gates

    def test_for_memory_constructor(self, small_memory):
        architecture = SequentialQueryCircuit.for_memory(small_memory)
        assert architecture.verify()


@pytest.mark.parametrize("architecture_cls", ROUTER_ARCHITECTURES)
class TestRouterBaselinesCorrectness:
    @pytest.mark.parametrize("n, m", [(2, 1), (2, 2), (3, 2), (3, 3), (4, 2)])
    def test_query_matches_ideal(self, architecture_cls, n, m):
        memory = ClassicalMemory.random(n, rng=n * 7 + m)
        architecture = architecture_cls(memory=memory, qram_width=m)
        assert architecture.verify()

    def test_single_address_queries(self, architecture_cls, small_memory):
        architecture = architecture_cls(memory=small_memory, qram_width=2)
        simulator = FeynmanPathSimulator()
        for address in range(small_memory.size):
            state = architecture.input_state({address: 1.0})
            output = simulator.run(architecture.build_circuit(), state)
            assert int(output.bits[0, architecture.bus_qubit()]) == small_memory[address]

    def test_ancillas_restored(self, architecture_cls, small_memory):
        architecture = architecture_cls(memory=small_memory, qram_width=2)
        output = architecture.simulate()
        kept = set(architecture.kept_qubits())
        ancillas = [q for q in range(output.num_qubits) if q not in kept]
        assert not output.bits[:, ancillas].any()

    def test_rejects_zero_qram_width(self, architecture_cls, small_memory):
        with pytest.raises(ValueError):
            architecture_cls(memory=small_memory, qram_width=0)


class TestBaselineProperties:
    @settings(max_examples=15, deadline=None)
    @given(memory_strategy(max_width=3), st.integers(1, 3))
    def test_all_architectures_agree_on_random_memories(self, memory, m):
        """Property: every architecture implements the same query map."""
        m = max(1, min(m, memory.address_width))
        builders = [
            VirtualQRAM(memory=memory, qram_width=m),
            BucketBrigadeQRAM(memory=memory, qram_width=m),
            SelectSwapQRAM(memory=memory, qram_width=m),
            FanoutQRAM(memory=memory, qram_width=m),
            SequentialQueryCircuit(memory=memory),
        ]
        for architecture in builders:
            assert architecture.verify(), architecture.name


class TestArchitectureStructure:
    def test_select_swap_has_no_router_tree(self, small_memory):
        architecture = SelectSwapQRAM(memory=small_memory, qram_width=2)
        registers = architecture.build_circuit().registers
        assert "block" in registers
        assert not any(name.startswith("router_") for name in registers)

    def test_fanout_loads_address_by_cx_fanout(self, small_memory):
        """Fanout copies each address bit onto every router of its level with CX
        gates (GHZ-like loading), so the CX count covers loading + unloading of
        all 2^m - 1 routers; its CSWAPs are only used for marker routing."""
        architecture = FanoutQRAM(memory=small_memory, qram_width=3)
        counts = architecture.build_circuit().count_ops()
        num_routers = (1 << 3) - 1
        assert counts["CX"] >= 2 * num_routers
        bucket_brigade = BucketBrigadeQRAM(memory=small_memory, qram_width=3)
        assert counts["CSWAP"] < bucket_brigade.build_circuit().count_ops()["CSWAP"]

    def test_bucket_brigade_t_cost_grows_with_pages(self):
        from repro.circuit import circuit_cost

        costs = {}
        for k in (0, 1, 2):
            memory = ClassicalMemory.random(2 + k, rng=11)
            architecture = BucketBrigadeQRAM(memory=memory, qram_width=2)
            costs[k] = circuit_cost(architecture.build_circuit()).t_count
        assert costs[1] > 1.5 * costs[0]
        assert costs[2] > 1.5 * costs[1]

    def test_virtual_qram_t_count_beats_bucket_brigade(self):
        """Table 2's headline: the load-once design saves T gates once k > 0."""
        from repro.circuit import circuit_cost

        memory = ClassicalMemory.random(5, rng=12)
        ours = VirtualQRAM(memory=memory, qram_width=3)
        baseline = BucketBrigadeQRAM(memory=memory, qram_width=3)
        assert (
            circuit_cost(ours.build_circuit()).t_count
            < circuit_cost(baseline.build_circuit()).t_count
        )

    def test_select_swap_block_register_size(self, small_memory):
        architecture = SelectSwapQRAM(memory=small_memory, qram_width=3)
        assert len(architecture.build_circuit().registers["block"]) == 8
