"""Unit tests for the RouterTree register layout and routing gadgets."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, QubitAllocator
from repro.qram.tree import RouterTree
from repro.sim import FeynmanPathSimulator, PathState


def _make_tree(depth: int, **kwargs) -> tuple[RouterTree, QubitAllocator]:
    allocator = QubitAllocator()
    tree = RouterTree(depth=depth, allocator=allocator, **kwargs)
    return tree, allocator


class TestLayout:
    def test_register_sizes(self):
        tree, allocator = _make_tree(3)
        assert tree.capacity == 8
        assert tree.num_internal_nodes == 7
        assert len(tree.routers) == 3
        assert len(tree.routers[2]) == 4
        assert len(tree.leaves) == 8
        # recycled layout: routers + wires + leaves
        assert allocator.num_qubits == 2 * 7 + 8

    def test_separate_accumulators_add_qubits(self):
        recycled, alloc_recycled = _make_tree(3)
        raw, alloc_raw = _make_tree(3, separate_accumulators=True)
        assert alloc_raw.num_qubits == alloc_recycled.num_qubits + 7
        assert raw.accumulators is not raw.wires

    def test_recycled_accumulators_are_the_wires(self):
        tree, _ = _make_tree(2)
        assert tree.accumulators[0][0] == tree.wires[0][0]

    def test_dual_rail_leaves(self):
        tree, allocator = _make_tree(2, dual_rail_leaves=True)
        assert tree.leaf_ancillas is not None
        assert len(tree.leaf_ancillas) == 4

    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            _make_tree(0)

    def test_child_wires_bottom_level_are_leaves(self):
        tree, _ = _make_tree(2)
        left, right = tree.child_wires(1, 1)
        assert left == tree.leaves[2]
        assert right == tree.leaves[3]

    def test_all_tree_qubits_cover_allocation(self):
        tree, allocator = _make_tree(3, separate_accumulators=True, dual_rail_leaves=True)
        assert sorted(tree.all_tree_qubits()) == list(range(allocator.num_qubits))


class TestRoutingBehaviour:
    """Functional checks of the routing gadgets via path simulation."""

    def _circuit_for(self, tree, allocator, extra: int = 0) -> QuantumCircuit:
        return QuantumCircuit(allocator.num_qubits + extra)

    def test_marker_lands_on_addressed_leaf(self):
        """After loading address bits, the |1> marker must reach leaf[address]."""
        simulator = FeynmanPathSimulator()
        depth = 3
        for address in range(1 << depth):
            allocator = QubitAllocator()
            address_register = allocator.register("address", depth)
            tree = RouterTree(depth=depth, allocator=allocator)
            circuit = QuantumCircuit(allocator.num_qubits)
            tree.load_address(circuit, list(address_register))
            tree.route_marker_to_leaves(circuit)

            state = PathState.register_superposition(
                circuit.num_qubits, list(address_register), {address: 1.0}
            )
            output = simulator.run(circuit, state)
            leaf_bits = output.bits[0, list(tree.leaves)]
            assert leaf_bits.sum() == 1
            assert bool(leaf_bits[address])

    def test_marker_round_trip_restores_all_zero(self):
        simulator = FeynmanPathSimulator()
        depth = 3
        allocator = QubitAllocator()
        address_register = allocator.register("address", depth)
        tree = RouterTree(depth=depth, allocator=allocator)
        circuit = QuantumCircuit(allocator.num_qubits)
        tree.load_address(circuit, list(address_register))
        tree.route_marker_to_leaves(circuit)
        tree.unroute_marker_from_leaves(circuit)
        tree.unload_address(circuit, list(address_register))

        state = PathState.register_superposition(circuit.num_qubits, list(address_register))
        output = simulator.run(circuit, state)
        # Everything except the address register must be back to |0>.
        non_address = [
            q for q in range(circuit.num_qubits) if q not in set(address_register)
        ]
        assert not output.bits[:, non_address].any()

    def test_route_leaves_to_root_brings_addressed_leaf_value_up(self):
        simulator = FeynmanPathSimulator()
        depth = 2
        data = (1, 0, 1, 1)
        for address in range(4):
            allocator = QubitAllocator()
            address_register = allocator.register("address", depth)
            tree = RouterTree(depth=depth, allocator=allocator)
            circuit = QuantumCircuit(allocator.num_qubits)
            tree.load_address(circuit, list(address_register))
            for leaf, bit in enumerate(data):
                if bit:
                    circuit.x(tree.leaves[leaf])
            tree.route_leaves_to_root(circuit)

            state = PathState.register_superposition(
                circuit.num_qubits, list(address_register), {address: 1.0}
            )
            output = simulator.run(circuit, state)
            assert bool(output.bits[0, tree.root_wire]) == bool(data[address])

    def test_accumulate_to_root_xors_leaf_contributions(self):
        simulator = FeynmanPathSimulator()
        depth = 3
        allocator = QubitAllocator()
        tree = RouterTree(depth=depth, allocator=allocator)
        circuit = QuantumCircuit(allocator.num_qubits)
        # Manually put a 1 on leaf 5 and include leaves 5 and 2 in the tree.
        circuit.x(tree.leaves[5])
        circuit.cx(tree.leaves[5], tree.leaf_parent_accumulator(5))
        circuit.cx(tree.leaves[2], tree.leaf_parent_accumulator(2))
        tree.accumulate_to_root(circuit)

        state = PathState.from_basis_assignments([({}, 1.0)], circuit.num_qubits)
        output = simulator.run(circuit, state)
        assert bool(output.bits[0, tree.root_accumulator])

    def test_accumulate_then_unaccumulate_is_identity(self):
        simulator = FeynmanPathSimulator()
        depth = 3
        allocator = QubitAllocator()
        tree = RouterTree(depth=depth, allocator=allocator)
        circuit = QuantumCircuit(allocator.num_qubits)
        tree.accumulate_to_root(circuit)
        tree.unaccumulate_from_root(circuit)

        rng = np.random.default_rng(0)
        bits = rng.integers(0, 2, size=(4, circuit.num_qubits)).astype(bool)
        state = PathState(bits=bits.copy(), amplitudes=np.ones(4, dtype=complex))
        output = simulator.run(circuit, state)
        assert np.array_equal(output.bits, bits)

    def test_load_address_validates_width(self):
        allocator = QubitAllocator()
        register = allocator.register("address", 2)
        tree = RouterTree(depth=3, allocator=allocator)
        circuit = QuantumCircuit(allocator.num_qubits)
        with pytest.raises(ValueError):
            tree.load_address(circuit, list(register))

    def test_non_pipelined_loading_inserts_barriers(self):
        allocator = QubitAllocator()
        register = allocator.register("address", 3)
        tree = RouterTree(depth=3, allocator=allocator)
        pipelined = QuantumCircuit(allocator.num_qubits)
        sequential = QuantumCircuit(allocator.num_qubits)
        tree.load_address(pipelined, list(register), pipelined=True)
        tree.load_address(sequential, list(register), pipelined=False)
        assert sequential.depth(respect_barriers=True) >= pipelined.depth()
        assert any(instr.is_barrier for instr in sequential.instructions)
        assert not any(instr.is_barrier for instr in pipelined.instructions)
