"""HTTP API tests: envelope, listing, cached fetch, submit -> poll -> result.

One module-scoped :class:`~repro.server.ScenarioServer` on an ephemeral port
(and a throwaway cache dir) backs the socket-level tests; the error-model
and service-logic tests drive :class:`~repro.server.ScenarioService`
directly, without a socket.
"""

import json
import time
import urllib.error
import urllib.request

import pytest

from repro.cache import ResultCache
from repro.scenarios import available_scenarios, run_scenario
from repro.server import API_PREFIX, API_VERSION, ScenarioServer, ScenarioService
from repro.server.jobs import JobTable
from repro.server.responses import encode, error_envelope, ok_envelope

SHOTS = 16
SEED = 9
POLL_TIMEOUT_SECONDS = 60.0


@pytest.fixture(scope="module")
def server(tmp_path_factory):
    """A live server on an ephemeral port with an empty cache."""
    cache_dir = tmp_path_factory.mktemp("server-cache")
    with ScenarioServer(port=0, cache=str(cache_dir), workers=1) as live:
        yield live


def _request(server, path, payload=None):
    """GET (or POST when ``payload``) returning ``(status, envelope)``."""
    url = server.url + path
    if payload is None:
        request = urllib.request.Request(url)
    else:
        request = urllib.request.Request(
            url,
            data=json.dumps(payload).encode("utf-8"),
            headers={"Content-Type": "application/json"},
            method="POST",
        )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read())


def _poll_job(server, job_id):
    deadline = time.monotonic() + POLL_TIMEOUT_SECONDS
    while time.monotonic() < deadline:
        status, body = _request(server, f"{API_PREFIX}/jobs/{job_id}")
        assert status == 200
        if body["data"]["status"] in ("done", "error"):
            return body["data"]
        time.sleep(0.05)
    raise AssertionError(f"job {job_id} did not finish in time")


class TestEnvelope:
    def test_health_reports_cache_and_jobs(self, server):
        status, body = _request(server, f"{API_PREFIX}/health")
        assert status == 200
        assert body["api_version"] == API_VERSION
        assert body["status"] == "ok"
        assert body["data"]["cached_results"] >= 0

    def test_every_error_uses_the_envelope(self, server):
        for path in (f"{API_PREFIX}/nope", "/outside", f"{API_PREFIX}/jobs/job-9999"):
            status, body = _request(server, path)
            assert status == 404
            assert body["status"] == "error"
            assert set(body["error"]) == {"code", "message"}
            assert body["api_version"] == API_VERSION

    def test_envelope_helpers_are_canonical(self):
        assert json.loads(encode(ok_envelope({"x": 1}))) == {
            "api_version": API_VERSION,
            "status": "ok",
            "data": {"x": 1},
        }
        envelope = error_envelope("not_found", "gone")
        assert envelope["error"]["code"] == "not_found"


class TestScenarioListing:
    def test_listing_matches_registry(self, server):
        status, body = _request(server, f"{API_PREFIX}/scenarios")
        assert status == 200
        names = [entry["name"] for entry in body["data"]["scenarios"]]
        assert names == available_scenarios()
        entry = body["data"]["scenarios"][0]
        assert set(entry) == {"name", "description", "spec"}

    def test_single_scenario_detail(self, server):
        status, body = _request(server, f"{API_PREFIX}/scenarios/ideal-m3")
        assert status == 200
        assert body["data"]["spec"]["qram_width"] == 3

    def test_unknown_scenario_404s(self, server):
        status, body = _request(server, f"{API_PREFIX}/scenarios/not-a-scenario")
        assert status == 404
        assert body["error"]["code"] == "unknown_scenario"


class TestRunLifecycle:
    def test_submit_poll_fetch_and_warm_resubmit(self, server):
        submission = {"scenario": "ideal-m3", "shots": SHOTS, "seed": SEED}
        status, body = _request(server, f"{API_PREFIX}/runs", submission)
        assert status == 202
        assert body["data"]["cached"] is False
        job = body["data"]["job"]
        assert job["status"] == "queued"
        assert job["engine"] and job["router"]

        finished = _poll_job(server, job["id"])
        assert finished["status"] == "done"
        assert finished["result_url"] == f"{API_PREFIX}/results/{job['fingerprint']}"

        status, result = _request(server, finished["result_url"])
        assert status == 200
        payload = result["data"]
        assert payload["fingerprint"] == job["fingerprint"]
        records = payload["records"]
        assert [r["error_reduction_factor"] for r in records] == [1.0, 10.0, 100.0]

        # Served records are bit-identical to an in-process fresh run.
        fresh = run_scenario("ideal-m3", shots=SHOTS, seed=SEED, workers=1)
        assert records == [record.as_dict() for record in fresh]

        # Resubmitting the same inputs is a warm hit: done on arrival.
        status, body = _request(server, f"{API_PREFIX}/runs", submission)
        assert status == 200
        assert body["data"]["cached"] is True
        assert body["data"]["job"]["status"] == "done"
        assert body["data"]["job"]["fingerprint"] == job["fingerprint"]

    def test_failed_job_reports_error_state(self, server, monkeypatch):
        """A worker exception lands in the job table, not in the logs only."""
        import repro.server.jobs as jobs_module

        def explode(*args, **kwargs):
            raise RuntimeError("synthetic failure")

        monkeypatch.setattr(jobs_module, "run_scenario", explode)
        status, body = _request(
            server,
            f"{API_PREFIX}/runs",
            {"scenario": "ideal-m3", "shots": SHOTS + 1, "seed": SEED},
        )
        assert status == 202
        finished = _poll_job(server, body["data"]["job"]["id"])
        assert finished["status"] == "error"
        assert "synthetic failure" in finished["error"]


class TestErrorModel:
    """Validation paths, driven through the service without a socket."""

    @pytest.fixture()
    def service(self, tmp_path):
        return ScenarioService(cache=str(tmp_path))

    def test_malformed_fingerprint_is_invalid_request(self, service):
        status, body = service.handle_get(f"{API_PREFIX}/results/nothex")
        assert (status, body["error"]["code"]) == (400, "invalid_request")

    def test_uncached_fingerprint_404s(self, service):
        status, body = service.handle_get(f"{API_PREFIX}/results/{'0' * 64}")
        assert (status, body["error"]["code"]) == (404, "not_found")

    def test_post_rejects_bad_json_and_bad_shapes(self, service):
        for body_bytes in (b"{not json", b'"a string"', b"[1]"):
            status, body = service.handle_post(f"{API_PREFIX}/runs", body_bytes)
            assert (status, body["error"]["code"]) == (400, "invalid_request")

    def test_post_requires_scenario_name(self, service):
        status, body = service.handle_post(f"{API_PREFIX}/runs", b"{}")
        assert (status, body["error"]["code"]) == (400, "invalid_request")

    def test_post_rejects_unknown_fields_and_types(self, service):
        for payload in (
            {"scenario": "ideal-m3", "workers": 4},
            {"scenario": "ideal-m3", "shots": "many"},
            {"scenario": "ideal-m3", "seed": 1.5},
            {"scenario": "ideal-m3", "engine": "warp-drive"},
        ):
            status, body = service.handle_post(
                f"{API_PREFIX}/runs", json.dumps(payload).encode()
            )
            assert (status, body["error"]["code"]) == (400, "invalid_request")

    def test_post_unknown_scenario_404s(self, service):
        status, body = service.handle_post(
            f"{API_PREFIX}/runs", json.dumps({"scenario": "nope"}).encode()
        )
        assert (status, body["error"]["code"]) == (404, "unknown_scenario")

    def test_post_anywhere_else_is_405(self, service):
        status, body = service.handle_post(f"{API_PREFIX}/scenarios", b"{}")
        assert (status, body["error"]["code"]) == (405, "method_not_allowed")

    def test_get_on_runs_is_405(self, service):
        status, body = service.handle_get(f"{API_PREFIX}/runs")
        assert (status, body["error"]["code"]) == (405, "method_not_allowed")

    def test_submission_without_worker_queues_for_later(self, service):
        """A service with no attached worker still records the job."""
        status, body = service.handle_post(
            f"{API_PREFIX}/runs",
            json.dumps({"scenario": "ideal-m3", "shots": 4}).encode(),
        )
        assert status == 202
        job_id = body["data"]["job"]["id"]
        status, body = service.handle_get(f"{API_PREFIX}/jobs/{job_id}")
        assert body["data"]["status"] == "queued"

    def test_pre_seeded_cache_is_served_without_any_job_run(self, tmp_path):
        """Results written by another process (CLI, CI) serve immediately."""
        cache = ResultCache(tmp_path)
        run_scenario("ideal-m3", shots=8, seed=2, workers=1, cache=cache)
        service = ScenarioService(cache=cache)
        fingerprint = cache.fingerprints()[0]
        status, body = service.handle_get(f"{API_PREFIX}/results/{fingerprint}")
        assert status == 200
        assert body["data"]["records"]


class TestBinaryArtefactRoute:
    """``GET /results/<fp>.rrec``: raw mmap-served bytes, JSON errors."""

    @pytest.fixture()
    def seeded(self, tmp_path):
        cache = ResultCache(tmp_path)
        run_scenario("ideal-m3", shots=8, seed=2, workers=1, cache=cache)
        return ScenarioService(cache=cache), cache.fingerprints()[0]

    def test_serves_the_committed_artefact_bytes(self, seeded):
        from repro.server.responses import RawResponse

        service, fingerprint = seeded
        status, raw = service.handle_get(f"{API_PREFIX}/results/{fingerprint}.rrec")
        assert status == 200
        assert isinstance(raw, RawResponse)
        assert raw.content_type == "application/octet-stream"
        assert raw.body == service.cache.binary_path_for(fingerprint).read_bytes()

    def test_served_bytes_decode_to_the_cached_records(self, seeded):
        from repro.records import RecordFile

        service, fingerprint = seeded
        _, raw = service.handle_get(f"{API_PREFIX}/results/{fingerprint}.rrec")
        path = service.cache.binary_path_for(fingerprint)
        with RecordFile(path) as record_file:
            assert record_file.records() == service.cache.get(fingerprint)
            assert record_file.tag == fingerprint

    def test_errors_stay_json_envelopes(self, seeded):
        service, _ = seeded
        status, body = service.handle_get(f"{API_PREFIX}/results/nothex.rrec")
        assert (status, body["error"]["code"]) == (400, "invalid_request")
        status, body = service.handle_get(
            f"{API_PREFIX}/results/{'0' * 64}.rrec"
        )
        assert (status, body["error"]["code"]) == (404, "not_found")

    def test_corrupt_binary_heals_from_json_and_serves(self, seeded):
        service, fingerprint = seeded
        path = service.cache.binary_path_for(fingerprint)
        expected = path.read_bytes()
        path.write_bytes(b"\x00" * 32)
        status, raw = service.handle_get(f"{API_PREFIX}/results/{fingerprint}.rrec")
        assert status == 200
        assert raw.body == expected

    def test_binary_route_over_a_real_socket(self, server):
        """End to end over HTTP: run a job, then fetch the raw artefact."""
        scenario = available_scenarios()[0]
        status, body = _request(
            server,
            f"{API_PREFIX}/runs",
            {"scenario": scenario, "shots": SHOTS, "seed": SEED},
        )
        assert status in (200, 202)
        job = body["data"]["job"]
        fingerprint = job["fingerprint"]
        _poll_job(server, job["id"])
        url = server.url + f"{API_PREFIX}/results/{fingerprint}.rrec"
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"] == "application/octet-stream"
            blob = response.read()
        assert blob == service_bytes(server, fingerprint)


def service_bytes(server, fingerprint):
    """The artefact bytes straight off the live server's cache."""
    return server.service.cache.binary_path_for(fingerprint).read_bytes()


class TestJobTable:
    def test_ids_are_dense_and_ordered(self):
        from repro.scenarios import get_scenario

        table = JobTable()
        spec = get_scenario("ideal-m3")
        first = table.create(spec, "f" * 64, shots=1, seed=1, engine="feynman-tape")
        second = table.create(spec, "f" * 64, shots=1, seed=1, engine="feynman-tape")
        assert (first.id, second.id) == ("job-0001", "job-0002")
        assert len(table) == 2
        assert table.get("job-0003") is None

    def test_set_status_rejects_unknown_states(self):
        from repro.scenarios import get_scenario

        table = JobTable()
        job = table.create(
            get_scenario("ideal-m3"), "f" * 64, shots=1, seed=1, engine="feynman-tape"
        )
        with pytest.raises(ValueError, match="unknown job status"):
            table.set_status(job.id, "exploded")


def test_server_main_module_importable():
    """``python -m repro.server`` resolves (the CLI itself binds a socket)."""
    import repro.server.__main__  # noqa: F401
    from repro.server.app import main

    assert callable(main)
