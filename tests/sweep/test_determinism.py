"""The seed-splitting guarantee: merged shard results are bit-identical.

This is the property the whole sweep subsystem rests on: for every
registered engine, running a Monte-Carlo query sweep sharded across any
number of workers with any shard size produces fidelities bit-identical to
the serial, unsharded run -- because every shot's random stream is keyed on
``(seed, point_index, shot_index)`` and nothing else.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.common import random_memory
from repro.qram import MultiBitQuery, VirtualQRAM, run_query_experiment
from repro.qram.memory import ClassicalMemory
from repro.sim import (
    GateNoiseModel,
    NoiselessModel,
    PauliChannel,
    ShotSeeds,
    available_engines,
    get_engine,
)
from repro.sweep import ShotShard, SweepRunner

SHOTS = 12
SEED = 21

#: Engines and the noise each supports (the dense engine is noiseless-only).
ENGINE_NOISE = {
    "feynman-interp": GateNoiseModel(PauliChannel.depolarizing(0.02)),
    "feynman-tape": GateNoiseModel(PauliChannel.depolarizing(0.02)),
    "feynman-batch": GateNoiseModel(PauliChannel.depolarizing(0.02)),
    "statevector": NoiselessModel(),
}


def _architecture() -> VirtualQRAM:
    return VirtualQRAM(memory=random_memory(2, SEED), qram_width=2)


def _query_shard(spec: tuple, shard: ShotShard) -> np.ndarray:
    (engine_name,) = spec
    architecture = _architecture()
    result = architecture.run_query(
        ENGINE_NOISE[engine_name],
        shard.shots,
        rng=shard.seeds(),
        engine=engine_name,
    )
    return result.fidelities


def _merged(engine_name: str, workers: int, shard_size: int) -> np.ndarray:
    runner = SweepRunner(workers=workers, shard_size=shard_size)
    results = runner.map_shards(_query_shard, [(engine_name,)], shots=SHOTS, seed=SEED)
    return results[0].fidelities


class TestEveryEngineIsShardInvariant:
    def test_registry_is_covered(self):
        # If a new engine is registered, it must be added to this property
        # test (and honour the ShotSeeds contract).
        assert set(ENGINE_NOISE) == set(available_engines())

    @pytest.mark.parametrize("engine_name", sorted(ENGINE_NOISE))
    @pytest.mark.parametrize("shard_size", [1, 5, SHOTS, 64])
    def test_shard_size_invariance_serial(self, engine_name, shard_size):
        reference = _merged(engine_name, workers=1, shard_size=SHOTS)
        assert np.array_equal(
            _merged(engine_name, workers=1, shard_size=shard_size), reference
        )

    @pytest.mark.parametrize("engine_name", sorted(ENGINE_NOISE))
    def test_worker_invariance(self, engine_name):
        reference = _merged(engine_name, workers=1, shard_size=4)
        assert np.array_equal(_merged(engine_name, workers=2, shard_size=4), reference)

    @given(shard_size=st.integers(1, 2 * SHOTS))
    @settings(max_examples=12, deadline=None)
    def test_shard_size_property_tape_engine(self, shard_size):
        reference = _merged("feynman-tape", workers=1, shard_size=SHOTS)
        assert np.array_equal(
            _merged("feynman-tape", workers=1, shard_size=shard_size), reference
        )


class TestEngineCrossAgreementUnderShotSeeds:
    def test_tape_and_interp_draw_identical_trajectories(self):
        architecture = _architecture()
        compiled = architecture.compiled_query()
        noise = GateNoiseModel(PauliChannel.depolarizing(0.05))
        seeds = ShotSeeds(seed=3, point_index=1)
        tape_bits, tape_amps = get_engine("feynman-tape").run_noisy_shots(
            compiled.circuit, compiled.input_state, noise, 8, rng=seeds
        )
        interp_bits, interp_amps = get_engine("feynman-interp").run_noisy_shots(
            compiled.circuit, compiled.input_state, noise, 8, rng=seeds
        )
        assert np.array_equal(tape_bits, interp_bits)
        assert np.array_equal(tape_amps, interp_amps)

    def test_batch_matches_tape_bit_for_bit(self):
        architecture = _architecture()
        compiled = architecture.compiled_query()
        noise = GateNoiseModel(PauliChannel.depolarizing(0.05))
        seeds = ShotSeeds(seed=3, point_index=1)
        tape_bits, tape_amps = get_engine("feynman-tape").run_noisy_shots(
            compiled.circuit, compiled.input_state, noise, 8, rng=seeds
        )
        batch_bits, batch_amps = get_engine("feynman-batch").run_noisy_shots(
            compiled.circuit, compiled.input_state, noise, 8, rng=seeds
        )
        assert np.array_equal(tape_bits, batch_bits)
        assert np.array_equal(tape_amps, batch_amps)


class TestHighLevelHelpersAreWorkerInvariant:
    def test_run_query_experiment_matches_across_runners(self):
        architecture = _architecture()
        noise = GateNoiseModel(PauliChannel.phase_flip(0.01))
        serial = run_query_experiment(
            architecture,
            noise,
            SHOTS,
            runner=SweepRunner(workers=1, shard_size=3),
            seed=SEED,
        )
        parallel = run_query_experiment(
            architecture,
            noise,
            SHOTS,
            runner=SweepRunner(workers=2, shard_size=5),
            seed=SEED,
        )
        assert serial == parallel

    def test_multibit_planes_match_across_runners(self):
        memory = ClassicalMemory.from_values([1, 0, 3, 2], data_width=2)
        query = MultiBitQuery(memory=memory, qram_width=2)
        noise = GateNoiseModel(PauliChannel.phase_flip(0.01))
        serial = query.run_noisy_planes(
            noise, SHOTS, runner=SweepRunner(workers=1, shard_size=2), seed=SEED
        )
        parallel = query.run_noisy_planes(
            noise, SHOTS, runner=SweepRunner(workers=2, shard_size=7), seed=SEED
        )
        assert len(serial) == memory.data_width
        assert serial == parallel
