"""Tests for the SweepRunner scheduling and merging machinery."""

import numpy as np
import pytest

from repro.sweep import (
    DEFAULT_SHARD_SIZE,
    WORKERS_ENV_VAR,
    ShotShard,
    SweepRunner,
    resolve_workers,
)


# Module-level workers: the process pool pickles callables by reference.
def _square(value):
    return value * value


def _shard_signature(spec, shard):
    """Fidelity-array-shaped payload encoding which unit produced it."""
    return np.full(shard.shots, float(spec) + shard.start / 1000.0)


def _boom(spec, shard):
    raise RuntimeError(f"unit {shard.point_index}/{shard.shard_index} exploded")


class TestResolveWorkers:
    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV_VAR, raising=False)
        assert resolve_workers(None) == 1

    def test_env_var_consulted(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers(None) == 3

    def test_explicit_overrides_env(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        assert resolve_workers(2) == 2

    def test_zero_means_all_cores(self):
        assert resolve_workers(0) >= 1

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            resolve_workers(-2)


class TestSweepRunner:
    def test_invalid_shard_size_rejected(self):
        with pytest.raises(ValueError):
            SweepRunner(workers=1, shard_size=0)

    def test_map_units_serial_order(self):
        runner = SweepRunner(workers=1)
        assert runner.map_units(_square, [(3,), (1,), (2,)]) == [9, 1, 4]

    def test_map_units_parallel_preserves_order(self):
        runner = SweepRunner(workers=2)
        units = [(value,) for value in range(10)]
        assert runner.map_units(_square, units) == [v * v for v in range(10)]

    def test_map_points(self):
        runner = SweepRunner(workers=1)
        assert runner.map_points(_square, [2, 4]) == [4, 16]

    def test_worker_exception_propagates(self):
        runner = SweepRunner(workers=2, shard_size=1)
        with pytest.raises(RuntimeError, match="exploded"):
            runner.map_shards(_boom, [0, 1], shots=2, seed=0)

    def test_shards_cover_the_shot_range(self):
        runner = SweepRunner(workers=1, shard_size=4)
        shards = runner.shards(10, seed=9, point_index=5)
        assert [(s.start, s.shots) for s in shards] == [(0, 4), (4, 4), (8, 2)]
        assert all(s.point_index == 5 and s.seed == 9 for s in shards)
        assert [s.shard_index for s in shards] == [0, 1, 2]

    def test_default_shard_size(self):
        assert SweepRunner(workers=1).shard_size == DEFAULT_SHARD_SIZE

    def test_shard_seeds_window(self):
        shard = ShotShard(point_index=2, shard_index=1, start=32, shots=8, seed=4)
        seeds = shard.seeds()
        assert (seeds.seed, seeds.point_index, seeds.start) == (4, 2, 32)

    def test_map_shards_merges_in_shot_order(self):
        runner = SweepRunner(workers=1, shard_size=2)
        results = runner.map_shards(_shard_signature, [1, 2], shots=5, seed=0)
        assert [r.shots for r in results] == [5, 5]
        assert np.array_equal(
            results[0].fidelities,
            np.array([1.0, 1.0, 1.002, 1.002, 1.004]),
        )
        assert np.array_equal(
            results[1].fidelities,
            np.array([2.0, 2.0, 2.002, 2.002, 2.004]),
        )

    def test_map_shards_point_offset_shifts_seeding(self):
        runner = SweepRunner(workers=1, shard_size=8)
        base = runner.map_shards(_point_echo, [None, None], shots=4, seed=0)
        off = runner.map_shards(
            _point_echo, [None, None], shots=4, seed=0, point_offset=7
        )
        assert [r.fidelities[0] for r in base] == [0, 1]
        assert [r.fidelities[0] for r in off] == [7, 8]

    def test_map_shards_wrong_length_rejected(self):
        runner = SweepRunner(workers=1, shard_size=4)

        with pytest.raises(ValueError, match="one value per shot"):
            runner.map_shards(_bad_length, [0], shots=8, seed=0)


def _bad_length(spec, shard):
    return np.zeros(shard.shots + 1)


def _point_echo(spec, shard):
    return np.full(shard.shots, float(shard.point_index))
