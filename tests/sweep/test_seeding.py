"""Tests for the per-shot seed streams behind deterministic sharding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.seeding import ShotSeeds
from repro.sweep import split_shots


class TestShotSeeds:
    def test_same_coordinates_same_stream(self):
        a = ShotSeeds(seed=7, point_index=3, start=0).generator(5)
        b = ShotSeeds(seed=7, point_index=3, start=0).generator(5)
        assert np.array_equal(a.random(16), b.random(16))

    def test_shifted_window_aliases_absolute_shots(self):
        # Shot 12 reached as start=0/local=12 or start=10/local=2 is the
        # same stream: seeding is keyed on the absolute shot index.
        base = ShotSeeds(seed=11, point_index=0)
        assert np.array_equal(
            base.generator(12).random(8), base.shifted(10).generator(2).random(8)
        )

    def test_distinct_shots_points_and_seeds_differ(self):
        reference = ShotSeeds(seed=1, point_index=0).generator(0).random(8)
        for other in (
            ShotSeeds(seed=1, point_index=0).generator(1),
            ShotSeeds(seed=1, point_index=1).generator(0),
            ShotSeeds(seed=2, point_index=0).generator(0),
        ):
            assert not np.array_equal(reference, other.random(8))

    def test_generators_matches_generator(self):
        seeds = ShotSeeds(seed=5, point_index=2, start=4)
        streams = seeds.generators(3)
        assert len(streams) == 3
        assert np.array_equal(streams[2].random(4), seeds.generator(2).random(4))

    def test_negative_coordinates_rejected(self):
        with pytest.raises(ValueError):
            ShotSeeds(seed=-1)
        with pytest.raises(ValueError):
            ShotSeeds(seed=0, point_index=-1)
        with pytest.raises(ValueError):
            ShotSeeds(seed=0, start=-2)


class TestSplitShots:
    def test_exact_division(self):
        assert split_shots(8, 4) == [(0, 4), (4, 4)]

    def test_remainder_goes_to_last_shard(self):
        assert split_shots(10, 4) == [(0, 4), (4, 4), (8, 2)]

    def test_oversized_shard_is_single_unit(self):
        assert split_shots(3, 100) == [(0, 3)]

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ValueError):
            split_shots(0, 4)
        with pytest.raises(ValueError):
            split_shots(4, 0)

    @given(shots=st.integers(1, 300), shard_size=st.integers(1, 64))
    @settings(max_examples=60, deadline=None)
    def test_partition_property(self, shots, shard_size):
        shards = split_shots(shots, shard_size)
        assert sum(count for _, count in shards) == shots
        position = 0
        for start, count in shards:
            assert start == position and count >= 1
            position += count
