"""Tests for the analytic fidelity bounds (Eqs. 3, 5, 6) and their consistency
with Monte-Carlo simulation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    dual_rail_z_fidelity_bound,
    expected_good_branch_fraction,
    qram_x_fidelity_bound,
    qram_z_fidelity_bound,
    sqc_fidelity_bound,
    virtual_x_fidelity_bound,
    virtual_z_fidelity_bound,
)
from repro.analysis.fidelity import (
    error_reduction_factor_needed,
    expected_z_fidelity,
)
from repro.qram import ClassicalMemory, VirtualQRAM
from repro.sim import FeynmanPathSimulator, PauliChannel, QubitOncePauliNoise, sample_noisy_circuit
from repro.sim.fidelity import reduced_fidelity

import numpy as np


class TestClosedForms:
    def test_eq3_values(self):
        assert qram_z_fidelity_bound(1e-3, 4) == pytest.approx(1 - 4e-3 * 16)
        assert dual_rail_z_fidelity_bound(1e-3, 4) == pytest.approx(1 - 8e-3 * 16)

    def test_eq5_eq6_values(self):
        eps, m, k = 1e-4, 3, 2
        assert virtual_z_fidelity_bound(eps, m, k) == pytest.approx(
            1 - 8 * eps * (m + 1) * 4 * (k + m)
        )
        assert virtual_x_fidelity_bound(eps, m, k) == pytest.approx(
            1 - 8 * eps * (m + 1) * 4 * (k + 2**m)
        )

    def test_noiseless_limit_is_one(self):
        for bound in (
            qram_z_fidelity_bound,
            qram_x_fidelity_bound,
            dual_rail_z_fidelity_bound,
        ):
            assert bound(0.0, 5) == pytest.approx(1.0)
        assert virtual_z_fidelity_bound(0.0, 3, 2) == pytest.approx(1.0)
        assert sqc_fidelity_bound(0.0, 4) == pytest.approx(1.0)

    def test_clamping(self):
        assert qram_x_fidelity_bound(0.5, 10) == 0.0
        assert qram_x_fidelity_bound(0.5, 10, clamp=False) < 0.0

    def test_x_bound_decays_exponentially_faster_than_z(self):
        eps = 1e-4
        z_infidelity = 1 - qram_z_fidelity_bound(eps, 8, clamp=False)
        x_infidelity = 1 - qram_x_fidelity_bound(eps, 8, clamp=False)
        assert x_infidelity / z_infidelity > 2**4

    def test_expected_good_branch_fraction(self):
        assert expected_good_branch_fraction(0.0, 5) == pytest.approx(1.0)
        assert expected_good_branch_fraction(0.01, 3) == pytest.approx(0.99**9)
        with pytest.raises(ValueError):
            expected_good_branch_fraction(1.5, 2)

    def test_expected_z_fidelity_above_bound(self):
        for m in (1, 2, 3, 4, 5):
            for eps in (1e-4, 1e-3, 5e-3):
                assert expected_z_fidelity(eps, m) >= qram_z_fidelity_bound(eps, m) - 1e-12

    def test_error_reduction_factor_needed(self):
        factor = error_reduction_factor_needed(0.99, m=3, k=2)
        better = error_reduction_factor_needed(0.999, m=3, k=2)
        assert better > factor > 0
        with pytest.raises(ValueError):
            error_reduction_factor_needed(1.5, m=3, k=2)


class TestMonotonicity:
    @settings(max_examples=60, deadline=None)
    @given(
        st.floats(1e-6, 1e-2),
        st.integers(1, 8),
        st.integers(0, 4),
    )
    def test_bounds_decrease_with_size_and_noise(self, eps, m, k):
        assert virtual_z_fidelity_bound(eps, m, k) >= virtual_z_fidelity_bound(
            eps, m + 1, k
        )
        assert virtual_z_fidelity_bound(eps, m, k) >= virtual_z_fidelity_bound(
            eps, m, k + 1
        )
        assert virtual_z_fidelity_bound(eps, m, k) >= virtual_z_fidelity_bound(
            2 * eps, m, k
        )
        assert virtual_z_fidelity_bound(eps, m, k) >= virtual_x_fidelity_bound(
            eps, m, k
        )

    @settings(max_examples=40, deadline=None)
    @given(st.floats(0, 1), st.integers(0, 10))
    def test_bounds_stay_in_unit_interval(self, eps, m):
        for value in (
            qram_z_fidelity_bound(eps, m),
            qram_x_fidelity_bound(eps, m),
            sqc_fidelity_bound(eps, m),
        ):
            assert 0.0 <= value <= 1.0


class TestBoundAgainstSimulation:
    @pytest.mark.slow
    @pytest.mark.parametrize("m", [1, 2, 3, 4])
    def test_qubit_based_z_noise_respects_eq3(self, m):
        """Monte-Carlo fidelity under the per-qubit phase-flip channel must sit
        above the Eq. 3 lower bound (the bound is for the QRAM part, k = 0)."""
        epsilon = 2e-3
        memory = ClassicalMemory.random(m, rng=m)
        architecture = VirtualQRAM(memory=memory, qram_width=m)
        circuit = architecture.build_circuit()
        state = architecture.input_state()
        ideal = architecture.ideal_output(state)
        simulator = FeynmanPathSimulator()
        noise = QubitOncePauliNoise(PauliChannel.phase_flip(epsilon))
        rng = np.random.default_rng(42)
        values = []
        for _ in range(300):
            noisy_circuit = sample_noisy_circuit(circuit, noise, rng)
            noisy = simulator.run(noisy_circuit, state)
            values.append(reduced_fidelity(ideal, noisy, architecture.kept_qubits()))
        mean_fidelity = float(np.mean(values))
        assert mean_fidelity >= qram_z_fidelity_bound(epsilon, m) - 0.02
