"""Tests for Pauli error-cone propagation (the Fig. 7 locality argument)."""

import pytest

from repro.analysis import error_cone, pauli_weight_at_output, z_error_locality_fraction
from repro.circuit import QuantumCircuit
from repro.qram import VirtualQRAM


class TestCliffordPropagationRules:
    def test_z_on_cx_control_stays_local(self):
        """Fig. 7(a): a Z error on the control commutes with the CX."""
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="Z")
        assert cone.support == {0}
        assert cone.clifford_only

    def test_x_on_cx_control_spreads_to_target(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="X")
        assert cone.support == {0, 1}

    def test_z_on_cx_target_back_propagates_to_control(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        cone = error_cone(circuit, start_index=-1, qubit=1, pauli="Z")
        assert cone.support == {0, 1}

    def test_error_after_the_gate_does_not_propagate(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        cone = error_cone(circuit, start_index=0, qubit=0, pauli="X")
        assert cone.support == {0}

    def test_swap_moves_the_error(self):
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="X")
        assert cone.support == {1}

    def test_x_spreads_through_cx_chain(self):
        """An X error rides a CX chain all the way to the last target."""
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        circuit.cx(2, 3)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="X")
        assert cone.support == {0, 1, 2, 3}

    def test_z_on_ccx_control_stays_local(self):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="Z")
        assert cone.support == {0}

    def test_x_on_cswap_control_marked_non_clifford(self):
        circuit = QuantumCircuit(3)
        circuit.cswap(0, 1, 2)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="X")
        assert not cone.clifford_only
        assert {1, 2} <= cone.support

    def test_z_on_cswap_control_stays_local(self):
        circuit = QuantumCircuit(3)
        circuit.cswap(0, 1, 2)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="Z")
        assert cone.support == {0}

    def test_hadamard_exchanges_x_and_z(self):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        cone = error_cone(circuit, start_index=-1, qubit=0, pauli="Z")
        # Z becomes X after H and then spreads through the CX.
        assert cone.support == {0, 1}

    def test_invalid_pauli_rejected(self):
        circuit = QuantumCircuit(1)
        with pytest.raises(ValueError):
            error_cone(circuit, start_index=-1, qubit=0, pauli="W")

    def test_pauli_weight_helper(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        assert pauli_weight_at_output(circuit, -1, 0, "X") == 3
        assert pauli_weight_at_output(circuit, -1, 0, "Z") == 1


class TestQRAMLocality:
    def test_z_errors_mostly_avoid_the_bus(self, small_memory):
        """The structural Z-bias resilience: most Z error locations never touch
        the address/bus registers, whereas X locations overwhelmingly do."""
        architecture = VirtualQRAM(memory=small_memory, qram_width=3)
        circuit = architecture.build_circuit()
        protected = [architecture.bus_qubit()]
        z_fraction = z_error_locality_fraction(circuit, protected, pauli="Z")
        x_fraction = z_error_locality_fraction(circuit, protected, pauli="X")
        assert z_fraction > 0.8
        assert x_fraction < z_fraction - 0.2

    def test_empty_circuit_fraction_is_one(self):
        assert z_error_locality_fraction(QuantumCircuit(2), [0]) == 1.0
