"""Tests for the Table 1 / Table 2 resource models and measured counterparts."""

import pytest

from repro.analysis import (
    OPTIMIZATION_COLUMNS,
    measured_table1_row,
    measured_table2_row,
    table1_formulas,
    table2_formulas,
)
from repro.qram import ClassicalMemory


class TestTable1Formulas:
    def test_columns_present(self):
        table = table1_formulas(4, 2)
        assert set(table) == set(OPTIMIZATION_COLUMNS)

    def test_recycling_saves_qubits(self):
        table = table1_formulas(5, 2)
        assert table["OPT1"]["qubits"] < table["RAW"]["qubits"]
        assert table["ALL"]["qubits"] == table["OPT1"]["qubits"]

    def test_pipelining_removes_quadratic_term(self):
        table = table1_formulas(6, 1)
        assert table["OPT3"]["circuit_depth"] == table["RAW"]["circuit_depth"] - (36 - 6)

    def test_lazy_swapping_halves_classical_gates(self):
        table = table1_formulas(4, 3)
        assert table["OPT2"]["classical_controlled_gates"] == pytest.approx(
            table["RAW"]["classical_controlled_gates"] / 2
        )


class TestTable1Measured:
    def test_measured_trends_match_formula_trends(self):
        memory = ClassicalMemory.random(7, rng=0)
        measured = measured_table1_row(memory, qram_width=4)
        assert measured["OPT1"]["qubits"] < measured["RAW"]["qubits"]
        assert measured["OPT3"]["circuit_depth"] < measured["RAW"]["circuit_depth"]
        assert (
            measured["OPT2"]["classical_controlled_gates"]
            < measured["RAW"]["classical_controlled_gates"]
        )
        assert (
            measured["ALL"]["qubits"] == measured["OPT1"]["qubits"]
        )

    def test_non_targeted_metrics_unchanged(self):
        """Each optimization only improves its own metric: e.g. lazy swapping
        does not change the qubit count."""
        memory = ClassicalMemory.random(6, rng=1)
        measured = measured_table1_row(memory, qram_width=3)
        assert measured["OPT2"]["qubits"] == measured["RAW"]["qubits"]
        assert (
            measured["OPT1"]["classical_controlled_gates"]
            == measured["RAW"]["classical_controlled_gates"]
        )


class TestTable2Formulas:
    def test_architectures_and_metrics(self):
        table = table2_formulas(3, 2)
        assert set(table) == {"SQC+BB", "SQC+SS", "Ours"}
        for row in table.values():
            assert set(row) == {
                "qubits",
                "circuit_depth",
                "t_count",
                "t_depth",
                "clifford_depth",
            }

    def test_ours_never_worse(self):
        for m, k in [(2, 1), (3, 2), (4, 3), (6, 4)]:
            table = table2_formulas(m, k)
            for metric in table["Ours"]:
                assert table["Ours"][metric] <= table["SQC+BB"][metric]
                assert table["Ours"][metric] <= table["SQC+SS"][metric]

    def test_bb_t_count_scales_with_pages(self):
        small = table2_formulas(6, 1)
        large = table2_formulas(6, 4)
        ratio_bb = large["SQC+BB"]["t_count"] / small["SQC+BB"]["t_count"]
        ratio_ours = large["Ours"]["t_count"] / small["Ours"]["t_count"]
        assert ratio_bb > 2 * ratio_ours


class TestTable2Measured:
    def test_measured_ordering_matches_paper(self):
        memory = ClassicalMemory.random(6, rng=2)
        measured = measured_table2_row(memory, qram_width=3)
        ours = measured["Ours"]
        assert ours["t_count"] < measured["SQC+BB"]["t_count"]
        assert ours["t_depth"] < measured["SQC+BB"]["t_depth"]
        assert ours["clifford_depth"] < measured["SQC+SS"]["clifford_depth"]
        assert ours["circuit_depth"] <= measured["SQC+BB"]["circuit_depth"]

    def test_measured_t_advantage_grows_with_pages(self):
        """The load-once property: ours vs SQC+BB T-count ratio improves with k."""
        ratios = []
        for n in (4, 5, 6):
            memory = ClassicalMemory.random(n, rng=3)
            measured = measured_table2_row(memory, qram_width=3)
            ratios.append(
                measured["SQC+BB"]["t_count"] / measured["Ours"]["t_count"]
            )
        assert ratios == sorted(ratios)
        assert ratios[-1] > ratios[0]
