"""Tests for the deployment planner built on the paper's analytic models."""

import pytest

from repro.analysis import (
    candidate_splits,
    logical_qubit_count,
    plan_deployment,
    required_error_reduction,
)
from repro.qram import ClassicalMemory, VirtualQRAM
from repro.sim import GateNoiseModel, PauliChannel


class TestBuildingBlocks:
    def test_candidate_splits_cover_all_m(self):
        splits = candidate_splits(64)
        assert splits[0] == (6, 0)
        assert splits[-1] == (1, 5)
        assert all(m + k == 6 for m, k in splits)

    def test_candidate_splits_validation(self):
        with pytest.raises(ValueError):
            candidate_splits(48)
        with pytest.raises(ValueError):
            candidate_splits(1)

    def test_logical_qubit_count_matches_builder(self):
        for n, m in ((3, 2), (4, 3), (6, 4)):
            memory = ClassicalMemory.random(n, rng=n)
            built = VirtualQRAM(memory=memory, qram_width=m).build_circuit()
            assert logical_qubit_count(m, n - m) == built.num_qubits

    def test_required_error_reduction_monotone_in_target(self):
        relaxed = required_error_reduction(64, 0.9)
        strict = required_error_reduction(64, 0.999)
        for split in relaxed:
            assert strict[split] > relaxed[split]


class TestPlanDeployment:
    def test_easy_target_prefers_largest_tree(self):
        plan = plan_deployment(16, target_fidelity=0.5, epsilon=1e-4)
        assert plan is not None
        assert (plan.m, plan.k) == (4, 0)
        assert not plan.needs_error_correction

    def test_qubit_budget_forces_paging(self):
        unconstrained = plan_deployment(64, target_fidelity=0.5, epsilon=1e-5)
        constrained = plan_deployment(
            64, target_fidelity=0.5, epsilon=1e-5, max_logical_qubits=60
        )
        assert unconstrained is not None and constrained is not None
        assert constrained.m < unconstrained.m
        assert constrained.logical_qubits <= 60

    def test_hard_target_triggers_error_correction(self):
        plan = plan_deployment(256, target_fidelity=0.999, epsilon=1e-3)
        assert plan is not None
        assert plan.needs_error_correction
        assert plan.code_design is not None
        assert plan.physical_qubits() > plan.logical_qubits
        assert plan.predicted_fidelity >= 0.999

    def test_infeasible_when_correction_disallowed(self):
        plan = plan_deployment(
            256, target_fidelity=0.999, epsilon=1e-3, allow_error_correction=False
        )
        assert plan is None

    def test_plan_summary_fields(self):
        plan = plan_deployment(16, target_fidelity=0.9, epsilon=1e-5)
        assert plan is not None
        summary = plan.summary()
        assert summary["memory_size"] == 16
        assert "x" in summary["grid"]
        assert summary["physical_qubits"] >= summary["logical_qubits"] - 1

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            plan_deployment(16, target_fidelity=1.5)
        with pytest.raises(ValueError):
            plan_deployment(16, epsilon=0.0)

    def test_plan_is_conservative_against_simulation(self):
        """A plan accepted on bare hardware must also pass a Monte-Carlo check
        (the bounds used by the planner are lower bounds)."""
        plan = plan_deployment(16, target_fidelity=0.8, epsilon=1e-5)
        assert plan is not None and not plan.needs_error_correction
        memory = ClassicalMemory.random(4, rng=5)
        architecture = VirtualQRAM(memory=memory, qram_width=plan.m)
        noise = GateNoiseModel(PauliChannel.phase_flip(plan.epsilon))
        result = architecture.run_query(noise, shots=256, rng=9)
        assert result.mean_fidelity >= 0.8
