"""Tests for the rectangular surface-code model and the Eq. 7 design rule."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    RectangularSurfaceCode,
    balanced_distance_gap,
    design_asymmetric_code,
)


class TestRectangularSurfaceCode:
    def test_validation(self):
        with pytest.raises(ValueError):
            RectangularSurfaceCode(d_x=0, d_z=3)
        with pytest.raises(ValueError):
            RectangularSurfaceCode(d_x=3, d_z=3, physical_error_rate=0.1, threshold=0.01)

    def test_logical_rates_decrease_with_distance(self):
        small = RectangularSurfaceCode(d_x=3, d_z=3)
        large = RectangularSurfaceCode(d_x=7, d_z=7)
        assert large.logical_x_rate() < small.logical_x_rate()
        assert large.logical_z_rate() < small.logical_z_rate()

    def test_logical_bias_matches_distance_gap(self):
        """The premise of Eq. 7: p_x^L / p_z^L = (p / p_th)^(d_x - d_z)."""
        code = RectangularSurfaceCode(d_x=9, d_z=5, physical_error_rate=1e-3, threshold=1e-2)
        assert code.logical_bias() == pytest.approx(
            code.logical_x_rate() / code.logical_z_rate()
        )
        assert code.logical_bias() == pytest.approx((1e-3 / 1e-2) ** 4)

    def test_square_code_is_unbiased(self):
        code = RectangularSurfaceCode(d_x=5, d_z=5)
        assert code.logical_bias() == pytest.approx(1.0)

    def test_physical_qubits(self):
        assert RectangularSurfaceCode(d_x=3, d_z=3).physical_qubits() == 17
        assert RectangularSurfaceCode(d_x=5, d_z=3).physical_qubits() == 29


class TestBalancedDistanceGap:
    def test_gap_is_positive(self):
        """The QRAM is more sensitive to X errors, so d_x must exceed d_z."""
        gap = balanced_distance_gap(m=4, k=2, physical_error_rate=1e-3, threshold=1e-2)
        assert gap > 0

    def test_gap_grows_with_qram_width(self):
        gaps = [
            balanced_distance_gap(m, 2, physical_error_rate=1e-3, threshold=1e-2)
            for m in (2, 4, 6, 8)
        ]
        assert gaps == sorted(gaps)

    def test_eq7_formula(self):
        m, k, p, p_th = 3, 1, 1e-3, 1e-2
        expected = math.log((k + m) / (k + 2**m)) / math.log(p / p_th)
        assert balanced_distance_gap(m, k, p, p_th) == pytest.approx(expected)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            balanced_distance_gap(0, 1, 1e-3, 1e-2)
        with pytest.raises(ValueError):
            balanced_distance_gap(2, -1, 1e-3, 1e-2)
        with pytest.raises(ValueError):
            balanced_distance_gap(2, 1, 1e-1, 1e-2)

    @settings(max_examples=40, deadline=None)
    @given(st.integers(1, 8), st.integers(0, 4))
    def test_gap_balances_logical_rates(self, m, k):
        """The (unrounded) Eq. 7 gap makes the logical bias equal the QRAM's
        Z/X sensitivity ratio exactly: (p/p_th)^gap == (k+m)/(k+2^m)."""
        p, p_th = 1e-3, 1e-2
        gap = balanced_distance_gap(m, k, p, p_th)
        target_ratio = (k + m) / (k + 2**m)
        assert (p / p_th) ** gap == pytest.approx(target_ratio)
        # The integer-distance code built from the rounded-up gap is at least
        # as protective against X as the balance point requires.
        code = RectangularSurfaceCode(
            d_x=10 + math.ceil(gap), d_z=10, physical_error_rate=p, threshold=p_th
        )
        assert code.logical_bias() <= target_ratio + 1e-12


class TestDesignAsymmetricCode:
    def test_design_meets_target_rate(self):
        design = design_asymmetric_code(m=4, k=2, target_logical_rate=1e-9)
        assert design.qram_code.logical_z_rate() <= 1e-9
        assert design.qram_code.d_x >= design.qram_code.d_z

    def test_sqc_code_is_square_and_at_least_as_strong(self):
        design = design_asymmetric_code(m=4, k=2)
        assert design.sqc_code.d_x == design.sqc_code.d_z
        assert design.sqc_code.d_x >= design.qram_code.d_z

    def test_summary_and_budget(self):
        design = design_asymmetric_code(m=3, k=1)
        summary = design.summary()
        assert summary["m"] == 3 and summary["k"] == 1
        budget = design.total_physical_qubits(logical_qram_qubits=10, logical_sqc_qubits=2)
        assert budget > 10 * design.qram_code.physical_qubits()

    def test_stricter_target_needs_larger_distance(self):
        relaxed = design_asymmetric_code(m=3, k=1, target_logical_rate=1e-6)
        strict = design_asymmetric_code(m=3, k=1, target_logical_rate=1e-12)
        assert strict.qram_code.d_z > relaxed.qram_code.d_z

    def test_invalid_physical_rate_rejected(self):
        with pytest.raises(ValueError):
            design_asymmetric_code(m=3, k=1, physical_error_rate=0.1, threshold=0.01)
