"""Dual-rail encoding: gadget exactness, check bookkeeping, postselection.

The encoded circuits stay small enough for the dense ``statevector`` engine,
so exactness is pinned directly: per-gadget and on random workloads, the
encoded circuit must reproduce the logical output under
:meth:`DualRailExpansion.map_state` with every parity check passing.  The
zero-noise acceptance (kept_fraction == 1.0, postselected mean fidelity
exactly 1.0) runs on all three Feynman engines.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.mapping.dual_rail import (
    CHECK_TAG,
    DualRailExpansion,
    encode_dual_rail,
    rail_pair,
)
from repro.sim import (
    FeynmanPathSimulator,
    GateNoiseModel,
    NoiselessModel,
    PathState,
    PauliChannel,
)
from repro.sim.engine import get_engine
from repro.sim.fidelity import shot_fidelities

FEYNMAN_ENGINES = ("feynman-interp", "feynman-tape", "feynman-batch")

#: (gate name, arity) of every encodable gate, for strategy/parametrization.
GATE_ARITIES = (
    ("I", 1),
    ("X", 1),
    ("Y", 1),
    ("Z", 1),
    ("S", 1),
    ("SDG", 1),
    ("T", 1),
    ("TDG", 1),
    ("CX", 2),
    ("CZ", 2),
    ("SWAP", 2),
    ("CSWAP", 3),
    ("CCX", 3),
    ("MCX", 4),
)


def assert_encoding_exact(
    circuit: QuantumCircuit, state: PathState, *, flag_rounds: int = 0
) -> None:
    """Encoded circuit == logical circuit on dense amplitudes, checks pass.

    The expected physical state has the logical output on the rails and
    every ancilla back in ``|0>`` (checks measure-and-reset), so full-state
    fidelity 1.0 certifies both the computation and the check outcomes.
    """
    expansion = encode_dual_rail(circuit, flag_rounds=flag_rounds)
    logical_output = get_engine("feynman-tape").run(circuit, state)
    expected = expansion.map_state(logical_output)
    physical_input = expansion.map_state(state)
    for seed in range(3):
        dense = get_engine("statevector").run(
            expansion.circuit, physical_input, rng=np.random.default_rng(seed)
        )
        fidelities = shot_fidelities(
            expected,
            dense.bits,
            dense.amplitudes,
            shots=1,
            n_paths=dense.num_paths,
            keep_qubits=list(range(expansion.circuit.num_qubits)),
        )
        assert fidelities[0] == pytest.approx(1.0)


class TestGadgetsStatevectorExact:
    @pytest.mark.parametrize("gate,arity", GATE_ARITIES)
    def test_each_gadget_alone(self, gate, arity):
        circuit = QuantumCircuit(arity)
        circuit.add(gate, *range(arity))
        state = PathState.register_superposition(arity, list(range(arity)))
        assert_encoding_exact(circuit, state)

    def test_phase_gadgets_compose(self):
        """S/T phases land on the occupied rail with the exact Y phases."""
        circuit = QuantumCircuit(2)
        circuit.y(0)
        circuit.s(0)
        circuit.t(1)
        circuit.cz(0, 1)
        circuit.sdg(1)
        circuit.tdg(0)
        circuit.y(0)
        state = PathState.register_superposition(2, [0, 1])
        assert_encoding_exact(circuit, state)

    def test_router_workload(self):
        """A bucket-brigade-style CSWAP/CCX routing pattern."""
        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cswap(0, 1, 2)
        circuit.ccx(1, 2, 3)
        circuit.mcx([0, 1, 2], 3)
        circuit.swap(2, 3)
        state = PathState.register_superposition(4, [0, 1])
        assert_encoding_exact(circuit, state)

    def test_barrier_remaps_to_rails(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.barrier(0, 1)
        circuit.cx(0, 1)
        expansion = encode_dual_rail(circuit)
        barriers = [i for i in expansion.circuit.instructions if i.is_barrier]
        assert len(barriers) == 1
        assert barriers[0].qubits == (0, 1, 2, 3)
        state = PathState.register_superposition(2, [0])
        assert_encoding_exact(circuit, state)


@st.composite
def logical_circuits(draw):
    """A random encodable circuit, its input register, and flag rounds."""
    num_qubits = draw(st.integers(min_value=2, max_value=4))
    eligible = [
        (gate, arity) for gate, arity in GATE_ARITIES if arity <= num_qubits
    ]
    circuit = QuantumCircuit(num_qubits)
    for _ in range(draw(st.integers(min_value=0, max_value=10))):
        gate, arity = draw(st.sampled_from(eligible))
        qubits = draw(
            st.permutations(range(num_qubits)).map(lambda p: p[:arity])
        )
        if gate == "MCX":
            circuit.mcx(list(qubits[:-1]), qubits[-1])
        else:
            circuit.add(gate, *qubits)
    register = draw(
        st.lists(
            st.integers(min_value=0, max_value=num_qubits - 1),
            max_size=2,
            unique=True,
        )
    )
    flag_rounds = draw(st.integers(min_value=0, max_value=2))
    return circuit, register, flag_rounds


@settings(max_examples=40, deadline=None)
@given(logical_circuits())
def test_random_circuits_statevector_exact(case):
    circuit, register, flag_rounds = case
    state = PathState.register_superposition(circuit.num_qubits, register)
    assert_encoding_exact(circuit, state, flag_rounds=flag_rounds)


class TestZeroNoiseAcceptance:
    @pytest.mark.parametrize("engine", FEYNMAN_ENGINES)
    def test_kept_fraction_one_and_exact_fidelity(self, engine):
        """Zero noise: every check passes and every kept shot is exact."""
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.cswap(0, 1, 2)
        expansion = encode_dual_rail(circuit, flag_rounds=1)
        state = PathState.register_superposition(3, [0, 1])
        ideal = get_engine("feynman-tape").run(circuit, state)
        result = FeynmanPathSimulator(engine=engine).query_fidelities(
            expansion.circuit,
            expansion.map_state(state),
            NoiselessModel(),
            shots=16,
            keep_qubits=[r for q in range(3) for r in rail_pair(q)],
            ideal_output=expansion.map_state(ideal),
            rng=np.random.default_rng(11),
            postselect=expansion.postselect,
        )
        assert result.kept_fraction == 1.0
        assert result.kept_shots == 16
        assert result.mean_fidelity == 1.0
        assert np.all(result.fidelities == 1.0)


class TestErasureDetection:
    def _run(self, noise, postselect):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        expansion = encode_dual_rail(circuit)
        state = PathState.register_superposition(2, [0])
        ideal = get_engine("feynman-tape").run(circuit, state)
        return FeynmanPathSimulator(engine="feynman-tape").query_fidelities(
            expansion.circuit,
            expansion.map_state(state),
            noise,
            shots=512,
            keep_qubits=[0, 1, 2, 3],
            ideal_output=expansion.map_state(ideal),
            rng=np.random.default_rng(5),
            postselect=expansion.postselect if postselect else None,
        )

    def test_bit_flips_are_rejected_not_kept(self):
        """X noise leaves the codespace: postselection rejects those shots."""
        noise = GateNoiseModel(PauliChannel.bit_flip(0.05))
        kept = self._run(noise, postselect=True)
        unfiltered = self._run(noise, postselect=False)
        assert kept.kept_fraction < 1.0
        assert unfiltered.kept_fraction == 1.0
        assert kept.mean_fidelity > unfiltered.mean_fidelity

    def test_pure_dephasing_is_undetectable(self):
        """Z noise stays inside the codespace: every shot passes the checks."""
        noise = GateNoiseModel(PauliChannel.phase_flip(0.05))
        kept = self._run(noise, postselect=True)
        assert kept.kept_fraction == 1.0
        assert kept.mean_fidelity < 1.0


class TestRefusals:
    @pytest.mark.parametrize("builder", ["h", "measure"])
    def test_unencodable_gates_refused(self, builder):
        circuit = QuantumCircuit(1)
        getattr(circuit, builder)(0)
        with pytest.raises(ValueError, match="no dual-rail gadget"):
            encode_dual_rail(circuit)

    def test_cpauli_refused(self):
        circuit = QuantumCircuit(1)
        circuit.cpauli("X", 0, [0])
        with pytest.raises(ValueError, match="no dual-rail gadget"):
            encode_dual_rail(circuit)

    def test_negative_flag_rounds_refused(self):
        with pytest.raises(ValueError, match="flag_rounds"):
            encode_dual_rail(QuantumCircuit(1), flag_rounds=-1)

    def test_map_state_size_mismatch_refused(self):
        expansion = encode_dual_rail(QuantumCircuit(2))
        with pytest.raises(ValueError, match="logical qubits"):
            expansion.map_state(PathState.register_superposition(3, [0]))


class TestBookkeeping:
    def test_layout_and_check_slots(self):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        expansion = encode_dual_rail(circuit)
        # Rails 0..5, parity ancillas 6..8, no flag ancilla.
        assert expansion.circuit.num_qubits == 9
        assert expansion.num_logical == 3
        assert expansion.checks == ((0, 1), (1, 1), (2, 1))
        assert expansion.flag_checks == ()
        assert expansion.postselect == expansion.checks
        assert expansion.circuit.num_clbits == 3

    def test_flag_rounds_add_shared_ancilla_and_probes(self):
        circuit = QuantumCircuit(2)
        for _ in range(6):
            circuit.cx(0, 1)
        expansion = encode_dual_rail(circuit, flag_rounds=2)
        assert expansion.circuit.num_qubits == 2 * 2 + 2 + 1
        assert len(expansion.flag_checks) == 2
        # Global parity of 2 logical qubits is 0 mod 2.
        assert all(expected == 0 for _, expected in expansion.flag_checks)
        assert expansion.postselect == expansion.checks + expansion.flag_checks

    def test_flag_count_exact_on_short_and_empty_bodies(self):
        """Coincident probe positions must not collapse (regression pin)."""
        empty = encode_dual_rail(QuantumCircuit(1), flag_rounds=3)
        assert len(empty.flag_checks) == 3
        short = QuantumCircuit(1)
        short.x(0)
        assert len(encode_dual_rail(short, flag_rounds=4).flag_checks) == 4

    def test_odd_logical_count_expects_odd_global_parity(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        expansion = encode_dual_rail(circuit, flag_rounds=1)
        assert expansion.flag_checks[0][1] == 1

    def test_check_instructions_are_tagged(self):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1, tags=("payload",))
        expansion = encode_dual_rail(circuit, flag_rounds=1)
        checks = [
            instr
            for instr in expansion.circuit.instructions
            if CHECK_TAG in instr.tags
        ]
        gadgets = [
            instr
            for instr in expansion.circuit.instructions
            if CHECK_TAG not in instr.tags
        ]
        # 1 flag probe (4 CX + measure + reset) + 2 parity checks (2 CX +
        # measure + reset each).
        assert len(checks) == 6 + 8
        assert all("payload" in instr.tags for instr in gadgets)

    def test_map_state_codewords(self):
        expansion = encode_dual_rail(QuantumCircuit(2))
        state = PathState.register_superposition(2, [0, 1])
        mapped = expansion.map_state(state)
        # |0>_L = |10>, |1>_L = |01> on each rail pair; ancillas |0>.
        assert np.array_equal(mapped.bits[:, 0], ~state.bits[:, 0])
        assert np.array_equal(mapped.bits[:, 1], state.bits[:, 0])
        assert np.array_equal(mapped.bits[:, 2], ~state.bits[:, 1])
        assert np.array_equal(mapped.bits[:, 3], state.bits[:, 1])
        assert not mapped.bits[:, 4:].any()
        assert np.array_equal(mapped.amplitudes, state.amplitudes)

    def test_rail_pair(self):
        assert rail_pair(0) == (0, 1)
        assert rail_pair(5) == (10, 11)

    def test_expansion_is_frozen(self):
        expansion = encode_dual_rail(QuantumCircuit(1))
        assert isinstance(expansion, DualRailExpansion)
        with pytest.raises(AttributeError):
            expansion.num_logical = 2
