"""Tests for the ASCII layout renderer."""


from repro.mapping import HTreeEmbedding
from repro.mapping.htree import QubitRole
from repro.mapping.render import (
    ROLE_GLYPHS,
    layout_legend,
    render_layout,
    render_levels,
    render_overhead_summary,
)


class TestRenderLayout:
    def test_grid_shape(self):
        embedding = HTreeEmbedding(tree_depth=3)
        picture = render_layout(embedding, legend=False)
        lines = picture.splitlines()
        assert len(lines) == embedding.grid.rows
        assert all(len(line.split(" ")) == embedding.grid.cols for line in lines)

    def test_glyph_counts_match_roles(self):
        embedding = HTreeEmbedding(tree_depth=4)
        picture = render_layout(embedding, legend=False)
        counts = embedding.role_counts()
        assert picture.count("R") == counts[QubitRole.QRAM]
        assert picture.count("D") == counts[QubitRole.DATA]
        assert picture.count("+") == counts[QubitRole.ROUTING]

    def test_base_case_matches_paper_figure(self):
        """Capacity-4 base case: 3 routers, 4 data corners, on a 3x3 grid."""
        picture = render_layout(HTreeEmbedding(tree_depth=2), legend=False)
        assert picture.count("R") == 3
        assert picture.count("D") == 4

    def test_legend_included_by_default(self):
        picture = render_layout(HTreeEmbedding(tree_depth=2))
        assert layout_legend() in picture

    def test_all_glyphs_defined(self):
        assert set(ROLE_GLYPHS) == set(QubitRole)


class TestRenderLevels:
    def test_root_is_level_zero_at_center(self):
        embedding = HTreeEmbedding(tree_depth=2)
        lines = render_levels(embedding).splitlines()
        root_row, root_col = embedding.node_position(0, 0)
        assert lines[root_row].split(" ")[root_col] == "0"

    def test_leaf_level_appears_capacity_times(self):
        embedding = HTreeEmbedding(tree_depth=3)
        picture = render_levels(embedding)
        assert picture.count("3") == 8

    def test_deep_levels_use_letters(self):
        embedding = HTreeEmbedding(tree_depth=10)
        picture = render_levels(embedding)
        assert "a" in picture  # level 10


class TestOverheadSummary:
    def test_summary_mentions_capacity_and_grid(self):
        summary = render_overhead_summary(HTreeEmbedding(tree_depth=4))
        assert "capacity 16" in summary
        assert "7x7" in summary
        assert "%" in summary
