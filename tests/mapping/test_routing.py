"""Tests for the routing cost models and the mapped-circuit overhead accounting."""

import pytest

from repro.mapping import (
    HTreeEmbedding,
    MappedQRAM,
    SwapRouting,
    TeleportationRouting,
)
from repro.qram import ClassicalMemory, VirtualQRAM


class TestRoutingCostModels:
    def test_adjacent_gates_are_free(self):
        for scheme in (SwapRouting(), TeleportationRouting()):
            assert scheme.cost(1).extra_depth == 0
            assert scheme.cost(0).extra_operations == 0

    def test_swap_cost_linear_in_distance(self):
        scheme = SwapRouting()
        assert scheme.cost(2).extra_depth == 2
        assert scheme.cost(5).extra_depth == 8
        assert scheme.cost(5).extra_operations == 8

    def test_swap_one_way_option(self):
        assert SwapRouting(round_trip=False).cost(5).extra_operations == 4

    def test_swap_depth_multiplier(self):
        assert SwapRouting(swap_depth=3).cost(3).extra_depth == 12

    def test_teleportation_depth_constant(self):
        scheme = TeleportationRouting()
        assert scheme.cost(2).extra_depth == scheme.cost(50).extra_depth

    def test_teleportation_operations_grow_with_distance(self):
        scheme = TeleportationRouting()
        assert scheme.cost(10).extra_operations > scheme.cost(3).extra_operations


class TestMappedQRAM:
    def _mapped(self, m: int) -> MappedQRAM:
        memory = ClassicalMemory.random(m, rng=m)
        architecture = VirtualQRAM(memory=memory, qram_width=m)
        return MappedQRAM(architecture.build_circuit(), HTreeEmbedding(tree_depth=m))

    def test_gate_distance_uses_worst_pair(self):
        mapped = self._mapped(3)
        circuit = mapped.circuit
        leaf = circuit.registers["leaf_data"][0]
        root = circuit.registers["wire_L0"][0]
        distance = mapped.gate_distance((leaf, root))
        assert distance >= 2

    def test_overhead_fields(self):
        mapped = self._mapped(3)
        overhead = mapped.overhead(SwapRouting())
        data = overhead.as_dict()
        assert data["scheme"] == "swap"
        assert data["total_depth"] == data["logical_depth"] + data["extra_depth"]
        assert data["remote_gates"] >= 0

    def test_small_trees_have_no_overhead(self):
        """Capacity-2 and capacity-4 QRAMs are fully nearest-neighbour."""
        for m in (1, 2):
            mapped = self._mapped(m)
            assert mapped.overhead(SwapRouting()).extra_depth == 0

    def test_teleportation_beats_swap_for_large_trees(self):
        """Figure 8's headline: teleportation wins and the gap widens with m."""
        gaps = []
        for m in (5, 6, 7):
            mapped = self._mapped(m)
            swap = mapped.overhead(SwapRouting()).extra_depth
            teleport = mapped.overhead(TeleportationRouting()).extra_depth
            assert teleport < swap
            gaps.append(swap - teleport)
        assert gaps == sorted(gaps)

    def test_swap_overhead_grows_superlinearly(self):
        depths = {}
        for m in (4, 6, 8):
            depths[m] = self._mapped(m).overhead(SwapRouting()).extra_depth
        assert depths[8] > 2 * depths[6] > 4 * depths[4] / 2

    def test_teleport_overhead_stays_proportional_to_logical_depth(self):
        """Teleportation keeps the mapped depth within a constant factor of the
        logical depth (the paper's 'query latency unchanged' claim)."""
        for m in (4, 6, 8):
            mapped = self._mapped(m)
            overhead = mapped.overhead(TeleportationRouting())
            assert overhead.extra_depth <= 3 * overhead.logical_depth

    def test_compare_schemes(self):
        mapped = self._mapped(4)
        results = mapped.compare_schemes([SwapRouting(), TeleportationRouting()])
        assert [r.scheme for r in results] == ["swap", "teleportation"]

    def test_unplaced_qubit_rejected(self):
        memory = ClassicalMemory.random(3, rng=1)
        architecture = VirtualQRAM(memory=memory, qram_width=3)
        circuit = architecture.build_circuit()

        class BrokenEmbedding(HTreeEmbedding):
            def logical_positions(self, circuit):
                positions = super().logical_positions(circuit)
                positions.pop(0)
                return positions

        broken = BrokenEmbedding(tree_depth=3)
        with pytest.raises(ValueError):
            MappedQRAM(circuit, broken)
