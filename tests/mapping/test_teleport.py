"""Executed teleportation expansion: gadget correctness and cost accounting.

The m = 3 scenario circuits are too wide for dense simulation (28 vertices),
so exactness is pinned twice: on the full workload with the Feynman engines
(every outcome stream must reproduce the logical ideal exactly), and on a
synthetic mini-tree circuit small enough for the ``statevector`` engine --
covering each expansion gadget (ladder CX, tagged move, control extension,
bounce) against dense amplitudes.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.registers import QubitRegister
from repro.mapping.htree import HTreeEmbedding
from repro.mapping.teleport import expand_teleport_links
from repro.qram.virtual_qram import VirtualQRAM
from repro.qram.memory import ClassicalMemory
from repro.sim.engine import get_engine
from repro.sim.fidelity import shot_fidelities
from repro.sim.paths import PathState


def mini_tree_circuit() -> QuantumCircuit:
    """A 5-qubit circuit on the depth-3 H-tree's two remote top clusters.

    Registers mimic the router-tree naming so
    :meth:`HTreeEmbedding.logical_positions` places qubits 0-1 on the root
    node and qubits 2-4 on its right child, grid distance 2 apart (the
    depth-3 tree's top arms have length 2).
    """
    circuit = QuantumCircuit(num_qubits=5)
    circuit.registers["router_L0"] = QubitRegister(name="router_L0", qubits=(0,))
    circuit.registers["wire_L0"] = QubitRegister(name="wire_L0", qubits=(1,))
    circuit.registers["wire_L1"] = QubitRegister(name="wire_L1", qubits=(2, 3))
    circuit.registers["router_L1"] = QubitRegister(name="router_L1", qubits=(4,))
    return circuit


def assert_expansion_exact(circuit: QuantumCircuit, input_state: PathState) -> None:
    """Expanded circuit == logical circuit on dense amplitudes, all streams."""
    embedding = HTreeEmbedding(tree_depth=3)
    expansion = expand_teleport_links(circuit, embedding)
    logical_output = get_engine("feynman-tape").run(circuit, input_state)
    expected = expansion.map_state(logical_output)
    physical_input = expansion.map_state(input_state)
    for seed in range(5):
        dense = get_engine("statevector").run(
            expansion.circuit, physical_input, rng=np.random.default_rng(seed)
        )
        fidelities = shot_fidelities(
            expected,
            dense.bits,
            dense.amplitudes,
            shots=1,
            n_paths=dense.num_paths,
            keep_qubits=list(range(circuit.num_qubits)),
        )
        assert fidelities[0] == pytest.approx(1.0)


class TestGadgetsStatevectorExact:
    def test_ladder_cx_both_orientations(self):
        circuit = mini_tree_circuit()
        circuit.cx(1, 3)  # control at root, target remote
        circuit.cx(2, 0)  # control remote, target at root
        state = PathState.register_superposition(5, [0, 1, 2])
        assert_expansion_exact(circuit, state)

    def test_tagged_move_swap(self):
        circuit = mini_tree_circuit()
        # Payload on the root wire moves into the (empty) child wire.
        circuit.swap(1, 3, tags=("move:1",))
        state = PathState.register_superposition(5, [0, 1])
        assert_expansion_exact(circuit, state)

    def test_control_extension_cswap(self):
        circuit = mini_tree_circuit()
        # Remote control (child router) of a root-local CSWAP.
        circuit.cswap(4, 0, 1)
        state = PathState.register_superposition(5, [0, 1, 4])
        assert_expansion_exact(circuit, state)

    def test_bounce_cswap(self):
        circuit = mini_tree_circuit()
        # Root control + root wire with a remote swap partner: the general
        # state-exchange round trip.
        circuit.cswap(0, 1, 3)
        state = PathState.register_superposition(5, [0, 1, 3])
        assert_expansion_exact(circuit, state)

    def test_bounce_untagged_swap(self):
        circuit = mini_tree_circuit()
        circuit.swap(1, 2)  # no move tag: must survive both sides occupied
        state = PathState.register_superposition(5, [1, 2])
        assert_expansion_exact(circuit, state)

    def test_mixed_workload(self):
        circuit = mini_tree_circuit()
        circuit.cswap(0, 1, 3)
        circuit.cx(3, 1)
        circuit.swap(1, 2)
        circuit.cswap(4, 0, 1)
        state = PathState.register_superposition(5, [0, 1, 3])
        assert_expansion_exact(circuit, state)


class TestCostAccounting:
    def test_local_gates_pass_through(self):
        circuit = mini_tree_circuit()
        circuit.cx(0, 1)  # root-local
        circuit.cx(2, 4)  # left-child-local
        expansion = expand_teleport_links(circuit, HTreeEmbedding(tree_depth=3))
        assert expansion.remote_gates == 0
        assert expansion.link_operations == 0
        assert expansion.measurements == 0
        assert expansion.circuit.num_gates == 2

    def test_exact_match_gadgets_hit_analytic_site_count(self):
        """Ladder/move/extension expansions cost 2(d-1) link sites exactly."""
        embedding = HTreeEmbedding(tree_depth=3)
        for build, expected_links in (
            (lambda c: c.cx(1, 3), 1),  # ladder: d - 1 link CXs
            (lambda c: c.swap(1, 3, tags=("move:1",)), 2),  # move: d hops
            (lambda c: c.cswap(4, 0, 1), 1),  # extension: d - 1 copies
        ):
            circuit = mini_tree_circuit()
            build(circuit)
            expansion = expand_teleport_links(circuit, embedding)
            assert expansion.remote_gates == 1
            assert expansion.link_operations == expected_links
            assert expansion.measurements == expected_links

    def test_bounce_costs_a_round_trip(self):
        circuit = mini_tree_circuit()
        circuit.cswap(0, 1, 3)
        expansion = expand_teleport_links(circuit, HTreeEmbedding(tree_depth=3))
        assert expansion.link_operations == 2  # 2(d-1) hops, d = 2
        assert expansion.measurements == 2

    def test_gate_tags_survive_expansion(self):
        """The substituted/final gate keeps the original instruction's tags."""
        embedding = HTreeEmbedding(tree_depth=3)
        for build in (
            lambda c: c.cx(1, 3, tags=("classical",)),  # ladder
            lambda c: c.cswap(4, 0, 1, tags=("classical",)),  # extension
            lambda c: c.cswap(0, 1, 3, tags=("classical",)),  # bounce
        ):
            circuit = mini_tree_circuit()
            build(circuit)
            expansion = expand_teleport_links(circuit, embedding)
            assert expansion.circuit.count_tagged("classical") == 1

    def test_chain_vertices_reset_for_reuse(self):
        """Two remote gates over the same edge reuse the reset chain."""
        circuit = mini_tree_circuit()
        circuit.cx(1, 3)
        circuit.cx(1, 3)
        state = PathState.register_superposition(5, [0, 1])
        assert_expansion_exact(circuit, state)


class TestFullWorkloadFeynmanExact:
    def test_m3_virtual_qram_zero_noise_exact(self):
        """The whole m=3 teleport workload reproduces its ideal exactly."""
        memory = ClassicalMemory.from_values([1, 0, 1, 1, 0, 0, 1, 0])
        qram = VirtualQRAM(memory=memory, qram_width=3)
        logical = qram.build_circuit()
        expansion = expand_teleport_links(logical, HTreeEmbedding(tree_depth=3))
        assert expansion.remote_gates > 0
        assert expansion.measurements > 0
        input_state = expansion.map_state(qram.input_state())
        expected = expansion.map_state(qram.ideal_output(qram.input_state()))
        keep = list(qram.kept_qubits())
        for engine_name in ("feynman-tape", "feynman-interp"):
            for seed in (0, 5):
                out = get_engine(engine_name).run(
                    expansion.circuit, input_state, rng=np.random.default_rng(seed)
                )
                fidelities = shot_fidelities(
                    expected,
                    out.bits,
                    out.amplitudes,
                    shots=1,
                    n_paths=out.num_paths,
                    keep_qubits=keep,
                )
                assert fidelities[0] == pytest.approx(1.0)


class TestErrors:
    def test_map_state_rejects_wrong_width(self):
        circuit = mini_tree_circuit()
        circuit.cx(1, 3)
        expansion = expand_teleport_links(circuit, HTreeEmbedding(tree_depth=3))
        with pytest.raises(ValueError, match="logical qubits"):
            expansion.map_state(PathState.register_superposition(3, [0]))

    def test_evenly_split_gate_rejected(self):
        """A 2-2 operand split stays non-local after one relocation: raise."""
        circuit = mini_tree_circuit()
        # Controls 0 (root) and 2 (child), control 4 (child), target 1 (root):
        # two operands per cluster along one tree edge.
        circuit.mcx([0, 2, 4], 1)
        with pytest.raises(ValueError, match="lone operand"):
            expand_teleport_links(circuit, HTreeEmbedding(tree_depth=3))

    def test_multi_cluster_gate_rejected(self):
        circuit = QuantumCircuit(num_qubits=3)
        circuit.registers["wire_L0"] = QubitRegister(name="wire_L0", qubits=(0,))
        circuit.registers["wire_L1"] = QubitRegister(name="wire_L1", qubits=(1, 2))
        circuit.ccx(1, 2, 0)  # spans both children and the root: 3 clusters
        with pytest.raises(ValueError, match="clusters"):
            expand_teleport_links(circuit, HTreeEmbedding(tree_depth=3))
