"""Tests for the H-tree embedding (Sec. 4.2)."""

import pytest

from repro.mapping import HTreeEmbedding, QubitRole, verify_topological_minor
from repro.qram import VirtualQRAM


class TestConstruction:
    def test_depth_must_be_positive(self):
        with pytest.raises(ValueError):
            HTreeEmbedding(tree_depth=0)

    def test_base_case_capacity_4_fits_3x3(self):
        """The paper's base case (Fig. 6a): a capacity-4 QRAM in Grid(3,3)."""
        embedding = HTreeEmbedding(tree_depth=2)
        assert embedding.grid.rows == 3 and embedding.grid.cols == 3
        counts = embedding.role_counts()
        assert counts[QubitRole.QRAM] == 3    # root + two level-1 routers
        assert counts[QubitRole.DATA] == 4    # four leaf data qubits

    def test_capacity_16_fits_7x7(self):
        """Fig. 6c: a capacity-16 QRAM occupies a 7x7 grid."""
        embedding = HTreeEmbedding(tree_depth=4)
        assert embedding.grid.rows == 7 and embedding.grid.cols == 7

    def test_all_nodes_placed(self):
        embedding = HTreeEmbedding(tree_depth=5)
        assert len(embedding.node_positions) == 2 ** (5 + 1) - 1
        assert len(embedding.edge_paths) == 2 ** (5 + 1) - 2

    def test_grid_side_scales_as_sqrt_capacity(self):
        small = HTreeEmbedding(tree_depth=4).grid.num_qubits
        large = HTreeEmbedding(tree_depth=6).grid.num_qubits
        # Quadrupling the capacity should roughly quadruple the grid area.
        assert 3 <= large / small <= 6


class TestTopologicalMinor:
    @pytest.mark.parametrize("depth", range(1, 9))
    def test_embedding_is_topological_minor(self, depth):
        embedding = HTreeEmbedding(tree_depth=depth)
        report = verify_topological_minor(embedding)
        assert report.is_topological_minor, report.problems

    def test_report_counts(self):
        embedding = HTreeEmbedding(tree_depth=3)
        report = verify_topological_minor(embedding)
        assert report.num_nodes == 15
        assert report.num_edges == 14
        assert bool(report)


class TestRoles:
    def test_every_grid_vertex_gets_a_role(self):
        embedding = HTreeEmbedding(tree_depth=4)
        roles = embedding.roles()
        assert len(roles) == embedding.grid.num_qubits

    def test_unused_fraction_approaches_one_quarter(self):
        """Sec. 7.2: unused qubits occupy about 25% of the grid."""
        embedding = HTreeEmbedding(tree_depth=8)
        assert 0.2 <= embedding.unused_fraction() <= 0.3

    def test_data_nodes_equal_capacity(self):
        embedding = HTreeEmbedding(tree_depth=5)
        assert embedding.role_counts()[QubitRole.DATA] == 32

    def test_summary_fields(self):
        summary = HTreeEmbedding(tree_depth=3).routing_resource_summary()
        assert summary["tree_depth"] == 3
        assert summary["grid_qubits"] == summary["grid_rows"] * summary["grid_cols"]
        assert (
            summary["qram_nodes"]
            + summary["data_nodes"]
            + summary["routing_qubits"]
            + summary["unused_qubits"]
            == summary["grid_qubits"]
        )


class TestLogicalPlacement:
    def test_every_logical_qubit_is_placed(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=3)
        circuit = architecture.build_circuit()
        embedding = HTreeEmbedding(tree_depth=3)
        positions = embedding.logical_positions(circuit)
        assert set(positions) == set(range(circuit.num_qubits))

    def test_routers_and_wires_share_their_node_position(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        circuit = architecture.build_circuit()
        embedding = HTreeEmbedding(tree_depth=2)
        positions = embedding.logical_positions(circuit)
        router = circuit.registers["router_L1"][0]
        wire = circuit.registers["wire_L1"][0]
        assert positions[router] == positions[wire]
        assert positions[router] == embedding.node_position(1, 0)

    def test_leaves_map_to_leaf_nodes(self, small_memory):
        architecture = VirtualQRAM(memory=small_memory, qram_width=2)
        circuit = architecture.build_circuit()
        embedding = HTreeEmbedding(tree_depth=2)
        positions = embedding.logical_positions(circuit)
        for index, qubit in enumerate(circuit.registers["leaf_data"]):
            assert positions[qubit] == embedding.node_position(2, index)

    def test_edge_distance_shrinks_down_the_tree(self):
        embedding = HTreeEmbedding(tree_depth=6)
        top = embedding.edge_distance((0, 0), (1, 0))
        bottom = embedding.edge_distance((5, 0), (6, 0))
        assert top > bottom
