"""Unit tests for the 2D grid hardware graph."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mapping import Grid2D


class TestGridBasics:
    def test_dimensions_and_count(self):
        grid = Grid2D(rows=3, cols=5)
        assert grid.num_qubits == 15
        assert len(grid.coordinates()) == 15

    def test_invalid_dimensions(self):
        with pytest.raises(ValueError):
            Grid2D(rows=0, cols=3)

    def test_contains(self):
        grid = Grid2D(rows=2, cols=2)
        assert grid.contains((1, 1))
        assert not grid.contains((2, 0))
        assert not grid.contains((0, -1))

    def test_index_row_major(self):
        grid = Grid2D(rows=3, cols=4)
        assert grid.index((0, 0)) == 0
        assert grid.index((1, 2)) == 6
        with pytest.raises(ValueError):
            grid.index((3, 0))

    def test_neighbors_corner_and_interior(self):
        grid = Grid2D(rows=3, cols=3)
        assert sorted(grid.neighbors((0, 0))) == [(0, 1), (1, 0)]
        assert len(grid.neighbors((1, 1))) == 4

    def test_manhattan_distance(self):
        assert Grid2D.manhattan_distance((0, 0), (2, 3)) == 5


class TestPathsAndGraph:
    def test_straight_path_horizontal(self):
        grid = Grid2D(rows=1, cols=5)
        assert grid.straight_path((0, 4), (0, 1)) == [(0, 4), (0, 3), (0, 2), (0, 1)]

    def test_straight_path_vertical(self):
        grid = Grid2D(rows=4, cols=1)
        assert grid.straight_path((0, 0), (3, 0)) == [(0, 0), (1, 0), (2, 0), (3, 0)]

    def test_straight_path_single_point(self):
        grid = Grid2D(rows=2, cols=2)
        assert grid.straight_path((1, 1), (1, 1)) == [(1, 1)]

    def test_bent_path_rejected(self):
        grid = Grid2D(rows=3, cols=3)
        with pytest.raises(ValueError):
            grid.straight_path((0, 0), (1, 1))

    def test_off_grid_path_rejected(self):
        grid = Grid2D(rows=2, cols=2)
        with pytest.raises(ValueError):
            grid.straight_path((0, 0), (0, 5))

    def test_networkx_graph_structure(self):
        grid = Grid2D(rows=2, cols=3)
        graph = grid.to_networkx()
        assert graph.number_of_nodes() == 6
        # 2 rows x 2 horizontal edges + 3 vertical edges
        assert graph.number_of_edges() == 7

    @settings(max_examples=50, deadline=None)
    @given(st.integers(1, 6), st.integers(1, 6), st.integers(0, 35), st.integers(0, 35))
    def test_path_length_matches_manhattan_distance(self, rows, cols, a, b):
        grid = Grid2D(rows=rows, cols=cols)
        coords = grid.coordinates()
        start, end = coords[a % len(coords)], coords[b % len(coords)]
        if start[0] != end[0] and start[1] != end[1]:
            return
        path = grid.straight_path(start, end)
        assert len(path) - 1 == Grid2D.manhattan_distance(start, end)
        for first, second in zip(path, path[1:]):
            assert Grid2D.manhattan_distance(first, second) == 1
