"""Unit tests for the dense statevector reference simulator."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.sim import PathState, StatevectorSimulator


@pytest.fixture
def simulator() -> StatevectorSimulator:
    return StatevectorSimulator()


class TestBasicGates:
    def test_default_initial_state(self, simulator):
        circuit = QuantumCircuit(2)
        vector = simulator.run(circuit)
        assert np.allclose(vector, [1, 0, 0, 0])

    def test_hadamard_superposition(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        vector = simulator.run(circuit)
        assert np.allclose(vector, [1 / np.sqrt(2), 1 / np.sqrt(2)])

    def test_bell_state(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.cx(0, 1)
        vector = simulator.run(circuit)
        expected = np.zeros(4)
        expected[0] = expected[3] = 1 / np.sqrt(2)
        assert np.allclose(vector, expected)

    def test_ghz_state(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.h(0)
        circuit.cx(0, 1)
        circuit.cx(1, 2)
        vector = simulator.run(circuit)
        assert np.isclose(abs(vector[0]) ** 2, 0.5)
        assert np.isclose(abs(vector[7]) ** 2, 0.5)

    def test_cz_applies_phase(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.h(0)
        circuit.h(1)
        circuit.cz(0, 1)
        vector = simulator.run(circuit)
        assert np.isclose(vector[3], -0.5)

    def test_swap_permutes_amplitudes(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.swap(0, 1)
        vector = simulator.run(circuit)
        assert np.allclose(vector, [0, 0, 1, 0])

    def test_toffoli_and_mcx(self, simulator):
        circuit = QuantumCircuit(4)
        circuit.x(0)
        circuit.x(1)
        circuit.x(2)
        circuit.mcx([0, 1, 2], 3)
        vector = simulator.run(circuit)
        assert np.isclose(abs(vector[0b1111]) ** 2, 1.0)


class TestInterfaces:
    def test_accepts_path_state_input(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        state = PathState.register_superposition(2, register=[0])
        vector = simulator.run(circuit, state)
        assert np.isclose(abs(vector[0]) ** 2, 0.5)
        assert np.isclose(abs(vector[3]) ** 2, 0.5)

    def test_accepts_dense_vector_input(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        vector = simulator.run(circuit, np.array([0.0, 1.0], dtype=complex))
        assert np.allclose(vector, [1, 0])

    def test_run_to_path_state_round_trip(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.x(1)
        circuit.ccx(1, 2, 0)
        state = simulator.run_to_path_state(circuit)
        assert state.num_paths == 1
        assert state.bits[0].tolist() == [False, True, False]

    def test_qubit_limit_enforced(self):
        simulator = StatevectorSimulator(max_qubits=3)
        with pytest.raises(ValueError):
            simulator.run(QuantumCircuit(4))

    def test_wrong_vector_length_rejected(self, simulator):
        with pytest.raises(ValueError):
            simulator.run(QuantumCircuit(2), np.ones(3, dtype=complex))

    def test_norm_is_preserved(self, simulator):
        circuit = QuantumCircuit(4)
        circuit.h(0)
        circuit.cswap(0, 1, 2)
        circuit.t(3)
        circuit.ccx(0, 1, 3)
        vector = simulator.run(circuit)
        assert np.isclose(np.linalg.norm(vector), 1.0)
