"""Postselection plumbing: recorded runs, NaN accounting, shard invariance.

Covers the ``run_noisy_shots_recorded`` engine entry points (same random
stream as the unrecorded runs, bit for bit), the ``kept`` mask through
``shot_fidelities``, the :class:`QueryResult` aggregates at the edges
(everything rejected, a single kept shot) and the sweep-runner guarantee
that ``kept_fraction`` is identical for any worker count and shard size.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.mapping.dual_rail import encode_dual_rail
from repro.sim import (
    FeynmanPathSimulator,
    GateNoiseModel,
    NoiselessModel,
    PathState,
    PauliChannel,
)
from repro.sim.engine import get_engine
from repro.sim.feynman import QueryResult
from repro.sim.fidelity import shot_fidelities

FEYNMAN_ENGINES = ("feynman-interp", "feynman-tape", "feynman-batch")


def measured_circuit() -> QuantumCircuit:
    """Two-qubit workload whose ancilla measurement records into slot 0."""
    circuit = QuantumCircuit(3)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    circuit.measure(2)
    circuit.ccx(0, 1, 2)
    return circuit


class TestRecordedRuns:
    @pytest.mark.parametrize("engine_name", FEYNMAN_ENGINES)
    def test_same_stream_as_unrecorded(self, engine_name):
        """Recording observes the register; it must not consume randomness."""
        engine = get_engine(engine_name)
        circuit = measured_circuit()
        state = PathState.register_superposition(3, [0])
        noise = GateNoiseModel(PauliChannel(p_x=0.05, p_z=0.02))
        bits, amps = engine.run_noisy_shots(
            circuit, state, noise, 64, rng=np.random.default_rng(9)
        )
        bits_r, amps_r, outcomes = engine.run_noisy_shots_recorded(
            circuit, state, noise, 64, rng=np.random.default_rng(9)
        )
        assert np.array_equal(bits, bits_r)
        assert np.array_equal(amps, amps_r)
        assert outcomes is not None
        assert outcomes.shape == (1, 64)
        assert outcomes.dtype == np.int8

    @pytest.mark.parametrize("engine_name", FEYNMAN_ENGINES)
    def test_engines_record_identical_outcomes(self, engine_name):
        """Every engine sees the same seeded stream, so the same register."""
        circuit = measured_circuit()
        state = PathState.register_superposition(3, [0])
        noise = GateNoiseModel(PauliChannel(p_x=0.05))
        reference = get_engine("feynman-tape").run_noisy_shots_recorded(
            circuit, state, noise, 32, rng=np.random.default_rng(3)
        )[2]
        outcomes = get_engine(engine_name).run_noisy_shots_recorded(
            circuit, state, noise, 32, rng=np.random.default_rng(3)
        )[2]
        assert np.array_equal(reference, outcomes)

    @pytest.mark.parametrize("engine_name", FEYNMAN_ENGINES)
    def test_measurement_free_circuit_records_nothing(self, engine_name):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        state = PathState.register_superposition(2, [0])
        _, _, outcomes = get_engine(engine_name).run_noisy_shots_recorded(
            circuit, state, NoiselessModel(), 4, rng=np.random.default_rng(0)
        )
        assert outcomes is None

    def test_gap_slots_read_as_zero(self):
        """Unwritten register slots below an explicit cbit stay 0."""
        circuit = QuantumCircuit(1)
        circuit.x(0)
        circuit.measure(0, cbit=2)
        state = PathState.from_basis_assignments([({}, 1.0)], 1)
        _, _, outcomes = get_engine("feynman-tape").run_noisy_shots_recorded(
            circuit, state, NoiselessModel(), 8, rng=np.random.default_rng(1)
        )
        assert outcomes.shape == (3, 8)
        assert not outcomes[:2].any()  # gap slots never written
        assert np.all(outcomes[2] == 1)  # |1> measures 1 deterministically

    def test_statevector_engine_refuses_recording(self):
        circuit = measured_circuit()
        state = PathState.register_superposition(3, [0])
        with pytest.raises(NotImplementedError, match="statevector"):
            get_engine("statevector").run_noisy_shots_recorded(
                circuit, state, NoiselessModel(), 4
            )

    def test_postselect_without_outcomes_rejected(self):
        """Naming classical bits on a record-free circuit is a caller bug."""
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        state = PathState.register_superposition(2, [0])
        with pytest.raises(ValueError, match="no measurement outcomes"):
            FeynmanPathSimulator(engine="feynman-batch").query_fidelities(
                circuit,
                state,
                NoiselessModel(),
                shots=4,
                rng=np.random.default_rng(0),
                postselect=((0, 1),),
            )


class TestKeptMask:
    def test_rejected_shots_become_nan(self):
        state = PathState.from_basis_assignments([({}, 1.0)], 1)
        bits = np.zeros((4, 1), dtype=bool)
        amps = np.ones(4, dtype=complex)
        kept = np.array([True, False, True, False])
        fidelities = shot_fidelities(
            state, bits, amps, shots=4, n_paths=1, kept=kept
        )
        assert fidelities[0] == 1.0 and fidelities[2] == 1.0
        assert np.isnan(fidelities[1]) and np.isnan(fidelities[3])

    def test_zero_overlap_block_still_masks(self):
        """Regression pin: an all-miss block must come back float.

        ``np.bincount`` ignores the weights dtype when no row matched the
        ideal kept-register states (returning int64 zeros), which used to
        crash the NaN sentinel assignment on e.g. 1-shot shards.
        """
        ideal = PathState.from_basis_assignments([({0: 0, 1: 0}, 1.0)], 2)
        bits = np.array([[True, True]])  # misses the ideal entirely
        amps = np.ones(1, dtype=complex)
        fidelities = shot_fidelities(
            ideal,
            bits,
            amps,
            shots=1,
            n_paths=1,
            keep_qubits=[0],
            kept=np.array([False]),
        )
        assert fidelities.dtype == np.float64
        assert np.isnan(fidelities[0])

    def test_none_mask_keeps_everything(self):
        state = PathState.from_basis_assignments([({}, 1.0)], 1)
        bits = np.zeros((4, 1), dtype=bool)
        amps = np.ones(4, dtype=complex)
        fidelities = shot_fidelities(
            state, bits, amps, shots=4, n_paths=1, kept=None
        )
        assert np.all(fidelities == 1.0)


class TestQueryResultEdges:
    def test_all_rejected(self):
        """kept_fraction 0.0, fidelity NaN, std_error still well-defined."""
        result = QueryResult(fidelities=np.full(8, np.nan), shots=8)
        assert result.kept_shots == 0
        assert result.kept_fraction == 0.0
        assert np.isnan(result.mean_fidelity)
        assert result.std_error == 0.0

    def test_single_kept_shot(self):
        """One survivor has no sample variance: std_error is 0.0, not NaN."""
        fidelities = np.array([np.nan, 0.75, np.nan, np.nan])
        result = QueryResult(fidelities=fidelities, shots=4)
        assert result.kept_shots == 1
        assert result.kept_fraction == 0.25
        assert result.mean_fidelity == 0.75
        assert result.std_error == 0.0

    def test_no_nan_reproduces_all_shot_aggregates(self):
        fidelities = np.array([1.0, 0.5, 0.75, 0.25])
        result = QueryResult(fidelities=fidelities, shots=4)
        assert result.kept_fraction == 1.0
        assert result.mean_fidelity == float(np.mean(fidelities))
        assert result.std_error == float(
            np.std(fidelities, ddof=1) / np.sqrt(4)
        )

    def test_all_rejected_end_to_end(self):
        """Postselecting on an impossible outcome rejects every shot."""
        circuit = QuantumCircuit(1)
        circuit.measure(0)  # |0> always measures 0; demand 1
        state = PathState.from_basis_assignments([({}, 1.0)], 1)
        result = FeynmanPathSimulator(engine="feynman-tape").query_fidelities(
            circuit,
            state,
            NoiselessModel(),
            shots=8,
            rng=np.random.default_rng(2),
            postselect=((0, 1),),
        )
        assert result.kept_fraction == 0.0
        assert np.isnan(result.mean_fidelity)
        assert result.std_error == 0.0


class TestShardInvariance:
    @staticmethod
    def _kept_fraction(workers, shard_size):
        from repro.scenarios.run import run_scenario
        from repro.scenarios.spec import ScenarioSpec

        spec = ScenarioSpec(
            name="dual-rail-shard-probe",
            description="shard-invariance probe",
            qram_width=1,
            mapping="dual-rail",
            error_reduction_factors=(1.0,),
        )
        [record] = run_scenario(
            spec, shots=48, seed=13, workers=workers, shard_size=shard_size
        )
        return record.kept_fraction, record.fidelity

    def test_reference_run_discards_some_shots(self):
        kept_fraction, fidelity = self._kept_fraction(1, None)
        assert 0.0 < kept_fraction < 1.0
        assert not np.isnan(fidelity)

    @settings(max_examples=8, deadline=None)
    @given(
        workers=st.integers(min_value=1, max_value=4),
        shard_size=st.integers(min_value=1, max_value=48),
    )
    def test_kept_fraction_is_sharding_invariant(self, workers, shard_size):
        reference = self._kept_fraction(1, None)
        assert self._kept_fraction(workers, shard_size) == reference
