"""Engine registry and cross-engine equivalence tests.

The compiled tape engine replaces the interpreted Feynman-path runner on the
reproduction's hot path, so these tests pin down the refactor's contract:

* noiseless outputs agree exactly across the interpreted engine, the tape
  engine and the dense statevector engine for every registered QRAM
  architecture;
* under a fixed seed the interpreted and tape engines consume the random
  stream identically and therefore produce **bit-identical** Monte-Carlo
  shot fidelities;
* fused execution is equivalent to sequential execution on circuits designed
  to stress the fusion rules (overlapping runs, diagonal runs, identity
  gates carrying noise sites, variable-arity MCX).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuit import QuantumCircuit
from repro.circuit import ir
from repro.qram import ClassicalMemory, make_architecture
from repro.sim import (
    DepolarizingNoise,
    Engine,
    FeynmanPathSimulator,
    GateNoiseModel,
    NoiselessModel,
    PathState,
    PauliChannel,
    UnsupportedGateError,
    available_engines,
    get_default_engine,
    get_engine,
    set_default_engine,
)
from tests.conftest import random_reversible_circuits

ARCHITECTURE_NAMES = ["virtual", "sqc_bb", "sqc_ss", "fanout", "sqc"]

NOISE_MODELS = [
    GateNoiseModel(PauliChannel.phase_flip(5e-3)),
    GateNoiseModel(PauliChannel.bit_flip(5e-3)),
    DepolarizingNoise(1e-2),
    GateNoiseModel(PauliChannel.depolarizing(1e-2), two_qubit_factor=2.0),
]


@pytest.fixture
def memory() -> ClassicalMemory:
    return ClassicalMemory.from_values([1, 0, 1, 1, 0, 0, 1, 0])


def _amplitudes_match(a: PathState, b: PathState, tol: float = 1e-9) -> bool:
    left, right = a.as_dict(), b.as_dict()
    if set(left) != set(right):
        return False
    return all(abs(left[key] - right[key]) < tol for key in left)


class TestRegistry:
    def test_builtin_engines_registered(self):
        assert {
            "feynman-interp",
            "feynman-tape",
            "feynman-batch",
            "statevector",
        } <= set(available_engines())

    def test_get_engine_by_name_and_instance(self):
        engine = get_engine("feynman-tape")
        assert isinstance(engine, Engine)
        assert get_engine(engine) is engine

    def test_unknown_engine_rejected(self):
        with pytest.raises(KeyError, match="unknown engine"):
            get_engine("not-an-engine")

    def test_default_engine_roundtrip(self):
        previous = get_default_engine()
        try:
            set_default_engine("feynman-interp")
            assert get_engine().name == "feynman-interp"
        finally:
            set_default_engine(previous)
        assert get_default_engine() == previous

    def test_default_engine_is_compiled(self):
        assert get_default_engine() == "feynman-tape"

    def test_set_unknown_default_rejected(self):
        with pytest.raises(KeyError):
            set_default_engine("bogus")


@pytest.mark.parametrize("architecture_name", ARCHITECTURE_NAMES)
class TestArchitectureEquivalence:
    def test_noiseless_outputs_agree(self, architecture_name, memory):
        architecture = make_architecture(architecture_name, memory, qram_width=2)
        circuit = architecture.build_circuit()
        state = architecture.input_state()
        interp = get_engine("feynman-interp").run(circuit, state)
        tape = get_engine("feynman-tape").run(circuit, state)
        dense = get_engine("statevector").run(circuit, state)
        # Interpreted vs tape keep the same path layout: exact equality.
        assert np.array_equal(interp.bits, tape.bits)
        assert np.array_equal(interp.amplitudes, tape.amplitudes)
        # The dense engine merges paths per basis state: compare as dicts.
        assert _amplitudes_match(interp, dense)

    @pytest.mark.parametrize("noise", NOISE_MODELS)
    def test_noisy_shot_fidelities_bit_identical(
        self, architecture_name, memory, noise
    ):
        architecture = make_architecture(architecture_name, memory, qram_width=2)
        results = {}
        for engine in ("feynman-interp", "feynman-tape"):
            results[engine] = architecture.run_query(
                noise, shots=32, rng=np.random.default_rng(11), engine=engine
            )
        assert np.array_equal(
            results["feynman-interp"].fidelities,
            results["feynman-tape"].fidelities,
        )

    def test_statevector_engine_noiseless_query(self, architecture_name, memory):
        architecture = make_architecture(architecture_name, memory, qram_width=2)
        result = architecture.run_query(None, shots=4, engine="statevector")
        assert result.fidelities == pytest.approx(np.ones(4))


class TestFusionStress:
    """Crafted circuits exercising the tape compiler's fusion rules."""

    def _compare(self, circuit: QuantumCircuit, state: PathState) -> None:
        interp = get_engine("feynman-interp").run(circuit, state)
        tape = get_engine("feynman-tape").run(circuit, state)
        assert np.array_equal(interp.bits, tape.bits)
        assert np.allclose(interp.amplitudes, tape.amplitudes, atol=1e-12)

    def test_overlapping_cx_chain(self):
        # Sequential CX chain sharing qubits: must not fuse into one batch.
        circuit = QuantumCircuit(4)
        for q in range(3):
            circuit.cx(q, q + 1)
        state = PathState.register_superposition(4, register=[0])
        self._compare(circuit, state)

    def test_parallel_then_overlapping_swaps(self):
        circuit = QuantumCircuit(6)
        circuit.swap(0, 1)
        circuit.swap(2, 3)
        circuit.swap(4, 5)  # disjoint run
        circuit.swap(1, 2)  # overlaps the run
        circuit.swap(0, 5)
        state = PathState.register_superposition(6, register=[0, 2, 4])
        self._compare(circuit, state)

    def test_diagonal_runs_accumulate_phases(self):
        circuit = QuantumCircuit(4)
        for q in range(4):
            circuit.x(q)
        for q in range(4):
            circuit.s(q)
        for q in range(4):
            circuit.t(q)
        for q in range(4):
            circuit.z(q)
        circuit.sdg(1)
        circuit.tdg(2)
        state = PathState.register_superposition(4, register=[0, 1])
        self._compare(circuit, state)

    def test_y_run_phase_bookkeeping(self):
        circuit = QuantumCircuit(3)
        circuit.y(0)
        circuit.y(1)
        circuit.y(2)
        circuit.y(0)  # second run after overlap
        state = PathState.register_superposition(3, register=[0, 2])
        self._compare(circuit, state)

    def test_mcx_arities_not_mixed(self):
        circuit = QuantumCircuit(8)
        circuit.mcx([0, 1, 2], 3)
        circuit.mcx([4, 5], 6)  # CCX, different opcode
        circuit.mcx([0, 1, 4], 7)  # same arity as first but overlapping
        state = PathState.register_superposition(8, register=[0, 1, 2, 4, 5])
        self._compare(circuit, state)

    def test_cz_and_mixed_permutations(self):
        circuit = QuantumCircuit(5)
        circuit.cz(0, 1)
        circuit.cz(2, 3)
        circuit.ccx(0, 1, 4)
        circuit.cswap(0, 2, 3)
        circuit.cz(0, 4)
        state = PathState.register_superposition(5, register=[0, 1, 2])
        self._compare(circuit, state)

    def test_identity_gates_keep_their_noise_sites(self):
        # I gates execute nothing but still trigger gate-based noise, and the
        # error must land *between* the surrounding gates, not after them.
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.i(0)
        circuit.cx(0, 1)
        state = PathState.from_basis_assignments([({}, 1.0)], 2)
        noise = GateNoiseModel(PauliChannel.bit_flip(0.5))
        for seed in range(5):
            blocks = [
                get_engine(name).run_noisy_shots(
                    circuit, state, noise, 16, rng=np.random.default_rng(seed)
                )
                for name in ("feynman-interp", "feynman-tape")
            ]
            assert np.array_equal(blocks[0][0], blocks[1][0])
            assert np.array_equal(blocks[0][1], blocks[1][1])

    def test_offsite_noise_inside_fused_run_rejected(self):
        # A crosstalk-style model placing an error on a qubit the fused run
        # touches later cannot be ordered by the compiled engine: it must
        # refuse loudly (the interpreted engine still handles it).
        from repro.sim import NoiseModel

        class CrosstalkNoise(NoiseModel):
            def gate_error_channels(self, instr):
                if instr.gate == "CX" and instr.qubits == (0, 1):
                    return [(2, PauliChannel(p_x=1.0))]
                return []

        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(2, 3)  # fuses with the first CX and touches qubit 2
        state = PathState.from_basis_assignments([({}, 1.0)], 4)
        interp_bits, _ = get_engine("feynman-interp").run_noisy_shots(
            circuit, state, CrosstalkNoise(), 2, rng=np.random.default_rng(0)
        )
        assert np.array_equal(
            interp_bits.astype(int), [[0, 0, 1, 1], [0, 0, 1, 1]]
        )
        with pytest.raises(ValueError, match="feynman-interp"):
            get_engine("feynman-tape").run_noisy_shots(
                circuit, state, CrosstalkNoise(), 2, rng=np.random.default_rng(0)
            )

    def test_offsite_noise_outside_fused_run_still_agrees(self):
        # Off-operand sites are fine when no later gate in the group touches
        # the qubit: the deferred application commutes.
        from repro.sim import NoiseModel

        class SpectatorNoise(NoiseModel):
            def gate_error_channels(self, instr):
                if instr.gate == "CX" and instr.qubits == (0, 1):
                    return [(3, PauliChannel(p_x=1.0))]
                return []

        circuit = QuantumCircuit(4)
        circuit.cx(0, 1)
        circuit.cx(1, 2)  # overlaps: new group, so qubit 3 is never mid-run
        state = PathState.from_basis_assignments([({}, 1.0)], 4)
        blocks = [
            get_engine(name).run_noisy_shots(
                circuit, state, SpectatorNoise(), 2, rng=np.random.default_rng(0)
            )
            for name in ("feynman-interp", "feynman-tape")
        ]
        assert np.array_equal(blocks[0][0], blocks[1][0])

    def test_barriers_are_dropped(self):
        circuit = QuantumCircuit(3)
        circuit.x(0)
        circuit.barrier()
        circuit.cx(0, 1)
        state = PathState.from_basis_assignments([({}, 1.0)], 3)
        self._compare(circuit, state)


class TestPropertyEquivalence:
    @settings(max_examples=60, deadline=None)
    @given(circuit=random_reversible_circuits())
    def test_random_circuits_noiseless(self, circuit):
        state = PathState.register_superposition(
            circuit.num_qubits, register=list(range(min(3, circuit.num_qubits)))
        )
        interp = get_engine("feynman-interp").run(circuit, state)
        tape = get_engine("feynman-tape").run(circuit, state)
        assert np.array_equal(interp.bits, tape.bits)
        assert np.array_equal(interp.amplitudes, tape.amplitudes)

    @settings(max_examples=25, deadline=None)
    @given(circuit=random_reversible_circuits(max_qubits=5, max_gates=15))
    def test_random_circuits_noisy_trajectories(self, circuit):
        state = PathState.register_superposition(
            circuit.num_qubits, register=[0, 1]
        )
        noise = GateNoiseModel(PauliChannel.depolarizing(0.05))
        blocks = [
            get_engine(name).run_noisy_shots(
                circuit, state, noise, 8, rng=np.random.default_rng(99)
            )
            for name in ("feynman-interp", "feynman-tape")
        ]
        assert np.array_equal(blocks[0][0], blocks[1][0])
        assert np.array_equal(blocks[0][1], blocks[1][1])


class TestEngineErrors:
    def test_feynman_engines_execute_branching_gates(self):
        # H used to be rejected outright; it now branches the path set, so
        # every Feynman engine must produce the uniform |+> superposition.
        circuit = QuantumCircuit(1)
        circuit.h(0)
        state = PathState.from_basis_assignments([({}, 1.0)], 1)
        for name in ("feynman-interp", "feynman-tape", "feynman-batch"):
            out = get_engine(name).run(circuit, state)
            assert out.num_paths == 2
            assert np.allclose(np.abs(out.amplitudes), 1 / np.sqrt(2))

    def test_feynman_engines_reject_over_budget_branching(self):
        circuit = QuantumCircuit(ir.get_max_branches() + 1)
        for qubit in range(circuit.num_qubits):
            circuit.h(qubit)
        state = PathState.from_basis_assignments([({}, 1.0)], circuit.num_qubits)
        for name in ("feynman-interp", "feynman-tape", "feynman-batch"):
            with pytest.raises(ir.BranchBudgetError, match="branch budget"):
                get_engine(name).run(circuit, state)

    def test_statevector_engine_rejects_branching_shot_blocks(self):
        # With H the dense output has more paths than the input, which the
        # per-shot block contract cannot represent; a silent wrong answer
        # here once produced fidelities of 0.25 instead of 1.0.
        circuit = QuantumCircuit(1)
        circuit.h(0)
        state = PathState.from_basis_assignments([({}, 1.0)], 1)
        with pytest.raises(NotImplementedError, match="branching"):
            get_engine("statevector").run_noisy_shots(
                circuit, state, NoiselessModel(), 3
            )

    def test_statevector_engine_pads_merged_paths(self):
        # Two input paths that a SWAP maps onto states which the dense
        # engine merges into fewer rows: fidelities must still be exact.
        circuit = QuantumCircuit(2)
        circuit.swap(0, 1)
        state = PathState.from_basis_assignments(
            [({0: 1}, np.sqrt(0.5)), ({1: 1}, np.sqrt(0.5))], 2
        )
        result = FeynmanPathSimulator(engine="statevector").query_fidelities(
            circuit, state, NoiselessModel(), shots=3
        )
        assert result.fidelities == pytest.approx(np.ones(3))

    def test_statevector_engine_rejects_noise(self):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        state = PathState.from_basis_assignments([({}, 1.0)], 1)
        noise = GateNoiseModel(PauliChannel.bit_flip(0.1))
        with pytest.raises(NotImplementedError, match="Monte-Carlo"):
            get_engine("statevector").run_noisy_shots(circuit, state, noise, 4)

    def test_qubit_count_mismatch_rejected(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = PathState.from_basis_assignments([({}, 1.0)], 3)
        for name in ("feynman-interp", "feynman-tape", "statevector"):
            with pytest.raises(ValueError, match="qubits"):
                get_engine(name).run(circuit, state)

    def test_engines_do_not_mutate_input_state(self):
        circuit = QuantumCircuit(2)
        circuit.x(0)
        circuit.y(1)
        state = PathState.from_basis_assignments([({}, 1.0)], 2)
        before_bits = state.bits.copy()
        before_amps = state.amplitudes.copy()
        for name in ("feynman-interp", "feynman-tape", "statevector"):
            get_engine(name).run(circuit, state)
            assert np.array_equal(state.bits, before_bits)
            assert np.array_equal(state.amplitudes, before_amps)


class TestFacade:
    def test_simulator_accepts_engine_instances(self, memory):
        architecture = make_architecture("virtual", memory, qram_width=2)
        circuit = architecture.build_circuit()
        state = architecture.input_state()
        engine = get_engine("feynman-tape")
        out = FeynmanPathSimulator(engine=engine).run(circuit, state)
        assert _amplitudes_match(out, FeynmanPathSimulator().run(circuit, state))

    def test_default_engine_change_affects_existing_simulators(self):
        simulator = FeynmanPathSimulator()
        previous = get_default_engine()
        try:
            set_default_engine("feynman-interp")
            assert simulator._resolve_engine().name == "feynman-interp"
        finally:
            set_default_engine(previous)
