"""Differential-testing harness for bounded path branching.

Mirrors the PR 4 routing-equivalence suite
(``tests/hardware/test_property_router.py``): hypothesis generates random
circuits exercising the new branching code paths and three properties form
the contract (the fixed ``repro-ci`` profile in ``tests/conftest.py`` keeps
CI deterministic):

* **Amplitude oracle.**  On random circuits with bounded mid-circuit ``H``
  plus ``S``/``SDG``/``T`` phases and reversible gates (no measurements),
  every Feynman engine's per-basis-state amplitude sum equals the dense
  ``statevector`` result exactly.
* **Measured oracle.**  Mid-circuit measurements are generated in the
  *collapse-contract* shape the static plan guarantees exactness for -- each
  ``H(q)`` is followed only by gates that keep its two branches
  distinguishable on ``q`` (diagonals, ``CX`` controlled by ``q``, ``X``
  elsewhere) and then a ``Z``-measure of ``q``.  With a shared measurement
  rng, every engine's post-collapse state matches the statevector oracle
  and the path set returns to its pre-branch size.
* **ShotSeeds bit-identity.**  On random *noisy* branching circuits with
  measurements in both bases, the three Feynman engines produce identical
  ``(bits, amps)`` blocks under the same :class:`ShotSeeds` window, and any
  split of the shot range reproduces the unsharded draw bit for bit --
  the invariant that makes sweep results independent of worker counts and
  shard sizes.

The X-basis measurement convention (fixed 50/50 outcome draw, the PR 5
teleportation contract) deliberately keeps X measures out of the oracle
properties: they are exact only on uniform-marginal states, which the
teleport expansions guarantee by construction and random circuits do not.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.sim import FeynmanPathSimulator, PathState, ShotSeeds
from repro.sim.engine import get_engine
from tests.conftest import gate_noise_models

FEYNMAN_ENGINES = ("feynman-interp", "feynman-tape", "feynman-batch")

#: Branch points per generated circuit -- comfortably under the default
#: budget of 10 so the harness never trips the typed error path (that path
#: has its own suite in ``tests/scenarios/test_branch_budget.py``).
MAX_BRANCH_GATES = 4


@st.composite
def branching_circuits(draw, max_qubits: int = 5, max_gates: int = 14):
    """Random measurement-free circuits with bounded mid-circuit ``H``."""
    num_qubits = draw(st.integers(2, max_qubits))
    circuit = QuantumCircuit(num_qubits)
    h_budget = MAX_BRANCH_GATES
    for _ in range(draw(st.integers(1, max_gates))):
        gate = draw(
            st.sampled_from(
                ("H", "S", "SDG", "T", "X", "Y", "Z", "CX", "CZ", "SWAP")
            )
        )
        if gate == "H":
            if h_budget == 0:
                continue
            h_budget -= 1
            circuit.h(draw(st.integers(0, num_qubits - 1)))
        elif gate in ("CX", "CZ", "SWAP"):
            qubits = draw(
                st.lists(
                    st.integers(0, num_qubits - 1),
                    min_size=2,
                    max_size=2,
                    unique=True,
                )
            )
            circuit.add(gate, *qubits)
        else:
            circuit.add(gate, draw(st.integers(0, num_qubits - 1)))
    return circuit


@st.composite
def measured_branching_circuits(draw, max_qubits: int = 5):
    """Branch-and-collapse blocks in the static collapse plan's exact shape.

    The input superposition lives on the last qubit only; every block
    branches some earlier qubit ``q``, applies gates that provably keep the
    two branches distinguishable on ``q`` (nothing ever toggles ``q``), and
    closes with a ``Z``-measure of ``q`` -- the entanglement-swapping
    gadget's structure, where per-path weights *are* the true marginal.
    """
    num_qubits = draw(st.integers(2, max_qubits))
    circuit = QuantumCircuit(num_qubits)
    for qubit in range(num_qubits):  # randomised basis prelude
        if draw(st.booleans()):
            circuit.x(qubit)
    for _ in range(draw(st.integers(1, 3))):
        q = draw(st.integers(0, num_qubits - 2))
        circuit.h(q)
        for _ in range(draw(st.integers(0, 4))):
            kind = draw(st.sampled_from(("S", "SDG", "T", "Z", "CZ", "CX", "X")))
            if kind == "CX":
                target = draw(st.integers(0, num_qubits - 1))
                if target != q:
                    circuit.cx(q, target)
            elif kind == "CZ":
                other = draw(st.integers(0, num_qubits - 1))
                if other != q:
                    circuit.cz(q, other)
            elif kind == "X":
                target = draw(st.integers(0, num_qubits - 1))
                if target != q:
                    circuit.x(target)
            else:
                circuit.add(kind, q)
        circuit.measure(q, basis="Z")
    return circuit


@st.composite
def noisy_branching_instances(draw):
    """A random measured branching circuit plus noise, seed and shard split."""
    num_qubits = draw(st.integers(2, 4))
    circuit = QuantumCircuit(num_qubits)
    h_budget = 3
    for _ in range(draw(st.integers(2, 12))):
        kind = draw(
            st.sampled_from(("H", "S", "X", "Z", "CX", "MEASURE-Z", "MEASURE-X"))
        )
        qubit = draw(st.integers(0, num_qubits - 1))
        if kind == "H":
            if h_budget == 0:
                continue
            h_budget -= 1
            circuit.h(qubit)
        elif kind == "CX":
            target = draw(st.integers(0, num_qubits - 1))
            if target != qubit:
                circuit.cx(qubit, target)
        elif kind.startswith("MEASURE"):
            circuit.measure(qubit, basis=kind[-1])
        else:
            circuit.add(kind, qubit)
    noise = draw(gate_noise_models())
    seed = draw(st.integers(0, 2**31 - 1))
    shots = draw(st.integers(2, 6))
    split = draw(st.integers(1, shots - 1))
    return circuit, noise, seed, shots, split


def _superposition_input(circuit) -> PathState:
    register = list(range(min(2, circuit.num_qubits)))
    return PathState.register_superposition(circuit.num_qubits, register)


def _last_qubit_input(circuit) -> PathState:
    """Superposition on the last qubit only (never branched by the blocks)."""
    return PathState.register_superposition(
        circuit.num_qubits, [circuit.num_qubits - 1]
    )


def _assert_amplitudes_match(reference: dict, candidate: dict, context: str):
    for key in set(reference) | set(candidate):
        assert np.isclose(
            reference.get(key, 0.0), candidate.get(key, 0.0), atol=1e-9
        ), f"{context}: amplitude mismatch at {key}"


class TestStatevectorOracle:
    @settings(max_examples=40, deadline=None)
    @given(circuit=branching_circuits())
    def test_branching_amplitudes_match_dense(self, circuit):
        """Measurement-free branching circuits reproduce dense amplitudes."""
        state = _superposition_input(circuit)
        dense = get_engine("statevector").run(circuit, state).as_dict()
        for name in FEYNMAN_ENGINES:
            output = get_engine(name).run(circuit, state)
            _assert_amplitudes_match(dense, output.as_dict(), name)

    @settings(max_examples=40, deadline=None)
    @given(circuit=measured_branching_circuits(), seed=st.integers(0, 2**16))
    def test_collapse_contract_measures_match_dense(self, circuit, seed):
        """Branch + Z-collapse blocks agree with the oracle outcome for outcome."""
        state = _last_qubit_input(circuit)
        dense = (
            get_engine("statevector")
            .run(circuit, state, rng=np.random.default_rng(seed))
            .as_dict()
        )
        for name in FEYNMAN_ENGINES:
            output = get_engine(name).run(
                circuit, state, rng=np.random.default_rng(seed)
            )
            _assert_amplitudes_match(dense, output.as_dict(), name)
            # Every branch collapsed: the path set is back to its input size.
            assert output.num_paths == state.num_paths


class TestShotSeedsBitIdentity:
    @settings(max_examples=30, deadline=None)
    @given(instance=noisy_branching_instances())
    def test_three_engines_bit_identical(self, instance):
        """Same ShotSeeds window => byte-identical trajectories, all engines."""
        circuit, noise, seed, shots, _split = instance
        state = _superposition_input(circuit)
        reference_bits = reference_amps = None
        for name in FEYNMAN_ENGINES:
            bits, amps = FeynmanPathSimulator(engine=name).run_noisy_shots(
                circuit, state, noise, shots, rng=ShotSeeds(seed=seed)
            )
            if reference_bits is None:
                reference_bits, reference_amps = bits, amps
            else:
                assert np.array_equal(reference_bits, bits), name
                assert np.array_equal(reference_amps, amps), name

    @settings(max_examples=30, deadline=None)
    @given(instance=noisy_branching_instances())
    def test_any_shard_split_reproduces_the_unsharded_draw(self, instance):
        """Sharding the shot window never changes a single bit or amplitude."""
        circuit, noise, seed, shots, split = instance
        state = _superposition_input(circuit)
        for name in FEYNMAN_ENGINES:
            sim = FeynmanPathSimulator(engine=name)
            bits_all, amps_all = sim.run_noisy_shots(
                circuit, state, noise, shots, rng=ShotSeeds(seed=seed)
            )
            bits_a, amps_a = sim.run_noisy_shots(
                circuit, state, noise, split, rng=ShotSeeds(seed=seed)
            )
            bits_b, amps_b = sim.run_noisy_shots(
                circuit,
                state,
                noise,
                shots - split,
                rng=ShotSeeds(seed=seed, start=split),
            )
            assert np.array_equal(bits_all, np.vstack([bits_a, bits_b])), name
            assert np.array_equal(
                amps_all, np.concatenate([amps_a, amps_b])
            ), name
