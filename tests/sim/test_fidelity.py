"""Unit tests for the fidelity metrics (full-state and reduced)."""

import numpy as np
import pytest

from repro.sim import PathState, reduced_fidelity, state_fidelity
from repro.sim.fidelity import shot_fidelities


def _state(assignments, num_qubits):
    return PathState.from_basis_assignments(assignments, num_qubits)


class TestStateFidelity:
    def test_identical_states(self):
        state = PathState.register_superposition(3, register=[0, 1])
        assert state_fidelity(state, state) == pytest.approx(1.0)

    def test_orthogonal_states(self):
        a = _state([({0: 0}, 1.0)], 2)
        b = _state([({0: 1}, 1.0)], 2)
        assert state_fidelity(a, b) == pytest.approx(0.0)

    def test_global_phase_is_irrelevant(self):
        a = PathState.register_superposition(2, register=[0, 1])
        b = PathState(bits=a.bits.copy(), amplitudes=-a.amplitudes.copy())
        assert state_fidelity(a, b) == pytest.approx(1.0)

    def test_partial_overlap(self):
        a = PathState.register_superposition(1, register=[0])
        b = _state([({0: 0}, 1.0)], 1)
        assert state_fidelity(a, b) == pytest.approx(0.5)


class TestReducedFidelity:
    def test_error_confined_to_traced_register_is_harmless(self):
        """A leftover flip on an ancilla does not hurt the kept registers."""
        ideal = _state([({0: 0}, 1.0)], 2)
        noisy = _state([({0: 0, 1: 1}, 1.0)], 2)
        assert state_fidelity(ideal, noisy) == pytest.approx(0.0)
        assert reduced_fidelity(ideal, noisy, keep_qubits=[0]) == pytest.approx(1.0)

    def test_branch_dependent_junk_causes_decoherence(self):
        """If the ancilla ends in different states per branch, coherence is lost."""
        amp = 1 / np.sqrt(2)
        ideal = _state([({0: 0}, amp), ({0: 1}, amp)], 2)
        noisy = _state([({0: 0, 1: 0}, amp), ({0: 1, 1: 1}, amp)], 2)
        assert reduced_fidelity(ideal, noisy, keep_qubits=[0]) == pytest.approx(0.5)

    def test_phase_error_on_one_branch(self):
        amp = 1 / np.sqrt(2)
        ideal = _state([({0: 0}, amp), ({0: 1}, amp)], 1)
        noisy = _state([({0: 0}, amp), ({0: 1}, -amp)], 1)
        assert reduced_fidelity(ideal, noisy, keep_qubits=[0]) == pytest.approx(0.0)

    def test_entangled_ideal_output_rejected(self):
        amp = 1 / np.sqrt(2)
        entangled = _state([({0: 0, 1: 0}, amp), ({0: 1, 1: 1}, amp)], 2)
        noisy = _state([({0: 0}, 1.0)], 2)
        with pytest.raises(ValueError):
            reduced_fidelity(entangled, noisy, keep_qubits=[0])

    def test_keeping_everything_matches_full_fidelity(self):
        ideal = PathState.register_superposition(2, register=[0, 1])
        noisy = _state([({0: 0, 1: 0}, 1.0)], 2)
        reduced = reduced_fidelity(ideal, noisy, keep_qubits=[0, 1])
        assert reduced == pytest.approx(state_fidelity(ideal, noisy))


class TestShotFidelities:
    def test_block_of_identical_shots(self):
        ideal = PathState.register_superposition(2, register=[0])
        bits = np.tile(ideal.bits, (3, 1))
        amps = np.tile(ideal.amplitudes, 3)
        values = shot_fidelities(
            ideal, bits, amps, shots=3, n_paths=ideal.num_paths, keep_qubits=None
        )
        assert np.allclose(values, 1.0)

    def test_mixed_block(self):
        ideal = _state([({0: 0}, 1.0)], 1)
        good = ideal.bits
        bad = ~ideal.bits
        bits = np.vstack([good, bad])
        amps = np.array([1.0, 1.0], dtype=complex)
        values = shot_fidelities(ideal, bits, amps, shots=2, n_paths=1)
        assert values.tolist() == [1.0, 0.0]
