"""Mid-circuit measurement and Pauli-frame semantics across all engines.

Pins the tentpole contracts of the executed-teleportation PR:

* one-bit teleportation is exact on every engine for every outcome draw;
* Z measurements collapse with the true Born statistics and renormalise;
* measured qubits can be frame-reset and reused;
* Pauli-frame corrections commute through ``CCX``/``MCX`` with the textbook
  compensation gates;
* the two Feynman engines stay bit-identical on measured circuits in both
  seeded and batch-generator modes, and any sharding of the shot range
  reproduces the unsharded trajectories.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.sim.engine import get_engine
from repro.sim.fidelity import shot_fidelities, state_fidelity
from repro.sim.noise import GateNoiseModel, NoiselessModel, PauliChannel
from repro.sim.paths import PathState
from repro.sim.seeding import ShotSeeds

ENGINES = ("feynman-tape", "feynman-interp", "statevector")
FEYNMAN_ENGINES = ("feynman-tape", "feynman-interp")


def one_bit_teleport(source: int, target: int, circuit: QuantumCircuit) -> None:
    """Append the CX + X-measure + frame gadget moving ``source -> target``."""
    circuit.cx(source, target)
    cbit = circuit.measure(source, basis="X")
    circuit.cpauli("Z", target, [cbit])
    circuit.cpauli("X", source, [cbit])


class TestOneBitTeleportation:
    @pytest.mark.parametrize("engine_name", ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_exact_for_every_outcome(self, engine_name, seed):
        """|psi> moves from qubit 0 to qubit 1 exactly, qubit 0 resets to |0>."""
        circuit = QuantumCircuit(num_qubits=2)
        one_bit_teleport(0, 1, circuit)
        state = PathState.register_superposition(2, [0], {0: 0.6, 1: 0.8})
        out = get_engine(engine_name).run(
            circuit, state, rng=np.random.default_rng(seed)
        )
        assert out.as_dict() == pytest.approx(
            {(0, 0): 0.6 + 0j, (0, 1): 0.8 + 0j}
        )

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_entangled_payload_teleports(self, engine_name):
        """Teleporting one half of an entangled register preserves the state."""
        circuit = QuantumCircuit(num_qubits=3)
        one_bit_teleport(1, 2, circuit)
        state = PathState.from_basis_assignments(
            [({0: 0, 1: 0}, 0.6), ({0: 1, 1: 1}, 0.8j)], num_qubits=3
        )
        out = get_engine(engine_name).run(circuit, state, rng=np.random.default_rng(1))
        assert out.as_dict() == pytest.approx(
            {(0, 0, 0): 0.6 + 0j, (1, 0, 1): 0.8j}
        )

    def test_hop_chain_composes(self):
        """Hopping across several fresh qubits composes to one teleport."""
        circuit = QuantumCircuit(num_qubits=4)
        one_bit_teleport(0, 1, circuit)
        one_bit_teleport(1, 2, circuit)
        one_bit_teleport(2, 3, circuit)
        state = PathState.register_superposition(4, [0], {0: 0.6, 1: 0.8})
        for seed in range(4):
            out = get_engine("feynman-tape").run(
                circuit, state, rng=np.random.default_rng(seed)
            )
            assert out.as_dict() == pytest.approx(
                {(0, 0, 0, 0): 0.6 + 0j, (0, 0, 0, 1): 0.8 + 0j}
            )


class TestZMeasurement:
    @pytest.mark.parametrize("engine_name", FEYNMAN_ENGINES)
    def test_collapse_follows_born_statistics(self, engine_name):
        """Z outcomes of a 0.36/0.64 superposition match the true marginal."""
        circuit = QuantumCircuit(num_qubits=1)
        circuit.measure(0, basis="Z")
        state = PathState.register_superposition(1, [0], {0: 0.6, 1: 0.8})
        shots = 600
        bits, amps = get_engine(engine_name).run_noisy_shots(
            circuit, state, NoiselessModel(), shots, rng=ShotSeeds(seed=11)
        )
        # Two paths per shot; the surviving one carries amplitude 1.
        per_shot = bits[:, 0].reshape(shots, state.num_paths)
        outcome = per_shot.any(axis=1)
        assert np.mean(outcome) == pytest.approx(0.64, abs=0.06)
        # Collapsed shots are renormalised: every shot has unit norm.
        norms = (np.abs(amps) ** 2).reshape(shots, state.num_paths).sum(axis=1)
        assert norms == pytest.approx(np.ones(shots))

    def test_projection_zeroes_mismatched_paths(self):
        """After a Z measurement only matching-bit paths carry amplitude."""
        circuit = QuantumCircuit(num_qubits=2)
        circuit.cx(0, 1)
        circuit.measure(1, basis="Z")
        state = PathState.register_superposition(2, [0])
        out = get_engine("feynman-tape").run(circuit, state, rng=np.random.default_rng(3))
        collapsed = out.as_dict()
        assert len(collapsed) == 1
        (key, amp), = collapsed.items()
        assert key[0] == key[1]  # the surviving branch is consistent
        assert abs(amp) == pytest.approx(1.0)

    def test_statevector_agrees_on_z_collapse(self):
        """Dense and path engines sample identical Z outcomes per stream."""
        circuit = QuantumCircuit(num_qubits=2)
        circuit.cx(0, 1)
        circuit.measure(1, basis="Z")
        state = PathState.register_superposition(2, [0])
        for seed in range(5):
            rng_a, rng_b = (np.random.default_rng(seed) for _ in range(2))
            path_out = get_engine("feynman-tape").run(circuit, state, rng=rng_a)
            dense_out = get_engine("statevector").run(circuit, state, rng=rng_b)
            assert state_fidelity(dense_out, path_out) == pytest.approx(1.0)


class TestMeasureThenReuse:
    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_frame_reset_qubit_is_fresh(self, engine_name):
        """A measured + frame-reset qubit behaves as |0> in later gates."""
        circuit = QuantumCircuit(num_qubits=2)
        one_bit_teleport(0, 1, circuit)  # qubit 0 now |0>
        circuit.cx(1, 0)  # reuse qubit 0 as a CX target
        state = PathState.register_superposition(2, [0], {0: 0.6, 1: 0.8})
        out = get_engine(engine_name).run(circuit, state, rng=np.random.default_rng(2))
        assert out.as_dict() == pytest.approx(
            {(0, 0): 0.6 + 0j, (1, 1): 0.8 + 0j}
        )

    def test_reuse_without_reset_keeps_outcome(self):
        """Without the X frame the measured qubit keeps its sampled value."""
        circuit = QuantumCircuit(num_qubits=1)
        circuit.measure(0, basis="X")
        state = PathState.from_basis_assignments([({0: 0}, 1.0)], num_qubits=1)
        outcomes = set()
        for seed in range(8):
            out = get_engine("feynman-tape").run(
                circuit, state, rng=np.random.default_rng(seed)
            )
            ((key, amp),) = list(out.as_dict().items())
            assert abs(amp) == pytest.approx(1.0)
            outcomes.add(key)
        assert outcomes == {(0,), (1,)}  # both outcomes occur across streams

    def test_second_measurement_of_collapsed_qubit_is_deterministic(self):
        """Measuring a collapsed qubit again reproduces the recorded outcome."""
        circuit = QuantumCircuit(num_qubits=1)
        first = circuit.measure(0, basis="X")
        second = circuit.measure(0, basis="Z")
        assert (first, second) == (0, 1)
        state = PathState.register_superposition(1, [0])
        shots = 32
        bits, amps = get_engine("feynman-tape").run_noisy_shots(
            circuit, state, NoiselessModel(), shots, rng=ShotSeeds(seed=5)
        )
        # After the X measurement the qubit is |m>; the Z measurement must
        # reproduce m with probability 1, leaving unit-norm shots.
        norms = (np.abs(amps) ** 2).reshape(shots, state.num_paths).sum(axis=1)
        assert norms == pytest.approx(np.ones(shots))


class TestPauliFrameCommutation:
    """Frame corrections commute through CCX/MCX with textbook compensation."""

    def _random_outcome_frame(self, circuit: QuantumCircuit, qubit: int) -> int:
        """Entangle-free random classical bit: X-measure a fresh |0> ancilla."""
        return circuit.measure(qubit, basis="X")

    @pytest.mark.parametrize("engine_name", ENGINES)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_x_frame_through_ccx_control(self, engine_name, seed):
        """X^m on a CCX control before == after, plus the CX(c2, t) fix-up.

        ``X_c1 ; CCX(c1, c2, t)`` equals ``CCX(c1, c2, t) ; X_c1 ; CX(c2, t)``
        -- the rule hardware Pauli-frame tracking applies when deferring a
        correction through a Toffoli.  The compensation operator is a
        *conditional CX* (not itself a Pauli), so the identity is verified
        directly for both frame values.
        """
        for frame in (0, 1):
            early = QuantumCircuit(num_qubits=3)
            late = QuantumCircuit(num_qubits=3)
            if frame:
                early.x(0)
            early.ccx(0, 1, 2)
            late.ccx(0, 1, 2)
            if frame:
                late.x(0)
                late.cx(1, 2)
            state = PathState.register_superposition(3, [0, 1])
            out_early = get_engine(engine_name).run(
                early, state, rng=np.random.default_rng(seed)
            )
            out_late = get_engine(engine_name).run(
                late, state, rng=np.random.default_rng(seed)
            )
            assert state_fidelity(out_early, out_late) == pytest.approx(1.0)

    @pytest.mark.parametrize("engine_name", ENGINES)
    def test_x_frame_through_mcx_target(self, engine_name):
        """X on the MCX target commutes freely (target flips commute)."""
        for frame in (0, 1):
            early = QuantumCircuit(num_qubits=4)
            late = QuantumCircuit(num_qubits=4)
            if frame:
                early.x(3)
            early.mcx([0, 1, 2], 3)
            late.mcx([0, 1, 2], 3)
            if frame:
                late.x(3)
            state = PathState.register_superposition(4, [0, 1, 2])
            out_early = get_engine(engine_name).run(early, state)
            out_late = get_engine(engine_name).run(late, state)
            assert state_fidelity(out_early, out_late) == pytest.approx(1.0)

    @pytest.mark.parametrize("engine_name", FEYNMAN_ENGINES)
    def test_z_frame_through_mcx_control_with_measured_bit(self, engine_name):
        """Z^m on an MCX control commutes with the MCX for a real frame bit."""
        def build(early: bool) -> QuantumCircuit:
            circuit = QuantumCircuit(num_qubits=5)
            m = circuit.measure(4, basis="X")  # uniform classical bit
            if early:
                circuit.cpauli("Z", 0, [m])
                circuit.mcx([0, 1, 2], 3)
            else:
                circuit.mcx([0, 1, 2], 3)
                circuit.cpauli("Z", 0, [m])
            circuit.cpauli("X", 4, [m])  # reset the ancilla either way
            return circuit

        state = PathState.register_superposition(5, [0, 1, 2])
        for seed in range(4):
            out_early = get_engine(engine_name).run(
                build(True), state, rng=np.random.default_rng(seed)
            )
            out_late = get_engine(engine_name).run(
                build(False), state, rng=np.random.default_rng(seed)
            )
            # Z on a control is diagonal: it commutes with MCX exactly.
            assert state_fidelity(out_early, out_late) == pytest.approx(1.0)


class TestCPauliSemantics:
    @pytest.mark.parametrize("pauli", ["X", "Y", "Z"])
    def test_inactive_frame_is_identity(self, pauli):
        circuit = QuantumCircuit(num_qubits=1)
        circuit.cpauli(pauli, 0, [0])  # cbit 0 never written -> reads 0
        state = PathState.register_superposition(1, [0], {0: 0.6, 1: 0.8})
        out = get_engine("feynman-tape").run(circuit, state)
        assert state_fidelity(out, state) == pytest.approx(1.0)

    def test_xor_condition_over_two_bits(self):
        """A correction conditioned on two bits fires on their XOR."""
        circuit = QuantumCircuit(num_qubits=3)
        a = circuit.measure(0, basis="X")
        b = circuit.measure(1, basis="X")
        circuit.cpauli("X", 2, [a, b])
        state = PathState.from_basis_assignments([({}, 1.0)], num_qubits=3)
        for seed in range(8):
            out = get_engine("feynman-tape").run(
                circuit, state, rng=np.random.default_rng(seed)
            )
            (key,), = (list(out.as_dict()),)
            assert key[2] == key[0] ^ key[1]

    def test_y_frame_matches_y_gate(self):
        """An always-active Y frame equals the Y gate up to global phase."""
        circuit = QuantumCircuit(num_qubits=2)
        m = circuit.measure(1, basis="X")
        circuit.cpauli("X", 1, [m])  # reset ancilla
        circuit.cpauli("Y", 0, [m])
        reference = QuantumCircuit(num_qubits=2)
        reference.y(0)
        state = PathState.register_superposition(2, [0], {0: 0.6, 1: 0.8})
        seen_active = False
        for seed in range(8):
            out = get_engine("feynman-tape").run(
                circuit, state, rng=np.random.default_rng(seed)
            )
            ref = get_engine("feynman-tape").run(reference, state)
            fidelity = state_fidelity(out, ref)
            if fidelity == pytest.approx(1.0):
                seen_active = True
            else:
                assert state_fidelity(out, state) == pytest.approx(1.0)
        assert seen_active


class TestEngineBitIdentityWithMeasurements:
    def _teleport_workload(self) -> tuple[QuantumCircuit, PathState]:
        circuit = QuantumCircuit(num_qubits=4)
        circuit.ccx(0, 1, 2)
        one_bit_teleport(2, 3, circuit)
        circuit.cx(3, 1)
        circuit.measure(1, basis="Z")
        circuit.swap(1, 2)
        return circuit, PathState.register_superposition(4, [0, 1])

    @pytest.mark.parametrize("rng_mode", ["seeded", "batch"])
    def test_tape_and_interp_identical(self, rng_mode):
        circuit, state = self._teleport_workload()
        noise = GateNoiseModel(PauliChannel.depolarizing(0.04))
        shots = 50
        if rng_mode == "seeded":
            rng_a = rng_b = ShotSeeds(seed=21, point_index=1)
        else:
            rng_a, rng_b = (np.random.default_rng(17) for _ in range(2))
        bits_a, amps_a = get_engine("feynman-tape").run_noisy_shots(
            circuit, state, noise, shots, rng=rng_a
        )
        bits_b, amps_b = get_engine("feynman-interp").run_noisy_shots(
            circuit, state, noise, shots, rng=rng_b
        )
        assert np.array_equal(bits_a, bits_b)
        assert np.array_equal(amps_a, amps_b)

    @settings(max_examples=20, deadline=None)
    @given(
        split=st.integers(1, 39),
        seed=st.integers(0, 2**20),
    )
    def test_sharding_invariance(self, split, seed):
        """Any split of the shot range reproduces the unsharded trajectories."""
        circuit, state = self._teleport_workload()
        noise = GateNoiseModel(PauliChannel.depolarizing(0.05))
        shots = 40
        seeds = ShotSeeds(seed=seed)
        engine = get_engine("feynman-tape")
        bits, amps = engine.run_noisy_shots(circuit, state, noise, shots, rng=seeds)
        bits_a, amps_a = engine.run_noisy_shots(circuit, state, noise, split, rng=seeds)
        bits_b, amps_b = engine.run_noisy_shots(
            circuit, state, noise, shots - split, rng=seeds.shifted(split)
        )
        assert np.array_equal(np.vstack([bits_a, bits_b]), bits)
        assert np.array_equal(np.concatenate([amps_a, amps_b]), amps)

    def test_noiseless_measured_shots_are_seed_deterministic(self):
        """Noiseless shot blocks with measurements still shard-split exactly."""
        circuit, state = self._teleport_workload()
        seeds = ShotSeeds(seed=3)
        engine = get_engine("feynman-tape")
        bits, amps = engine.run_noisy_shots(
            circuit, state, NoiselessModel(), 24, rng=seeds
        )
        bits_a, _ = engine.run_noisy_shots(
            circuit, state, NoiselessModel(), 10, rng=seeds
        )
        bits_b, _ = engine.run_noisy_shots(
            circuit, state, NoiselessModel(), 14, rng=seeds.shifted(10)
        )
        assert np.array_equal(np.vstack([bits_a, bits_b]), bits)

    def test_noiseless_fidelity_is_exactly_one(self):
        """Zero noise + measured links: every shot fidelity is exactly 1."""
        logical = QuantumCircuit(num_qubits=4)
        logical.ccx(0, 1, 2)
        executed = QuantumCircuit(num_qubits=4)
        executed.ccx(0, 1, 2)
        one_bit_teleport(2, 3, executed)
        one_bit_teleport(3, 2, executed)
        state = PathState.register_superposition(4, [0, 1])
        engine = get_engine("feynman-tape")
        ideal = engine.run(logical, state)
        bits, amps = engine.run_noisy_shots(
            executed, state, NoiselessModel(), 16, rng=ShotSeeds(seed=9)
        )
        fidelities = shot_fidelities(
            ideal, bits, amps, shots=16, n_paths=state.num_paths
        )
        assert fidelities == pytest.approx(np.ones(16))
