"""Schedule-aware idle noise: analytic expectation, slack, and determinism.

The closed form being pinned: a qubit in ``|+>`` idling for ``d`` ASAP
layers under a phase-flip channel of probability ``p`` per layer survives
with fidelity ``(1 + (1 - 2 p)**d) / 2`` (an odd number of Z flips maps
``|+>`` to the orthogonal ``|->``).  The Monte-Carlo estimate must match it
within a few standard errors, and the whole idle path must honour the
per-shot seeding contract (sharding- and engine-invariant).
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, circuit_depth, idle_slack
from repro.sim import (
    FeynmanPathSimulator,
    NoiselessModel,
    PathState,
    ShotSeeds,
    with_idle_noise,
)
from repro.sim.noise import (
    GateNoiseModel,
    PauliChannel,
    ScheduledNoiseModel,
    expected_error_insertions,
    iter_error_sites,
)


def _busy_idle_circuit(depth: int) -> QuantumCircuit:
    """Qubit 0 works for ``depth`` layers; qubit 1 idles the whole time."""
    circuit = QuantumCircuit(2)
    for _ in range(depth):
        circuit.add("X", 0)
    return circuit


class TestIdleSlack:
    def test_trailing_idle_covers_untouched_qubit(self):
        slack = idle_slack(_busy_idle_circuit(7))
        assert slack.depth == 7
        assert slack.final_idle == ((1, 7),)
        assert all(entry == () for entry in slack.gate_idle)

    def test_gap_between_gates_is_charged_at_the_next_gate(self):
        circuit = QuantumCircuit(2)
        circuit.add("X", 1)  # layer 0
        for _ in range(4):  # layers 1..4 keep qubit 0 busy
            circuit.add("X", 0)
        circuit.add("X", 1)  # layer 5? no -- ASAP places it at layer 1
        slack = idle_slack(circuit)
        # ASAP puts the second X(1) in layer 1, so qubit 1 never idles
        # between its gates, only after them.
        assert slack.gate_idle[5] == ()
        assert (1, 2) in slack.final_idle

    def test_barrier_forces_idle(self):
        circuit = QuantumCircuit(2)
        circuit.add("X", 0)
        circuit.add("X", 0)
        circuit.barrier(0, 1)
        circuit.add("X", 1)  # after the barrier: qubit 1 idled 2 layers
        slack = idle_slack(circuit)
        assert slack.gate_idle[2] == ((1, 2),)
        assert slack.depth == 3

    def test_slack_depth_matches_circuit_depth(self):
        circuit = _busy_idle_circuit(5)
        circuit.add("CX", 0, 1)
        assert idle_slack(circuit).depth == circuit_depth(circuit)

    def test_total_idle_layers_accounting(self):
        circuit = _busy_idle_circuit(4)
        assert idle_slack(circuit).total_idle_layers == 4


class TestWithIdleNoise:
    def test_trivial_channel_returns_base(self):
        base = NoiselessModel()
        assert with_idle_noise(base, _busy_idle_circuit(3), PauliChannel()) is base

    def test_site_budget_matches_slack(self):
        circuit = _busy_idle_circuit(6)
        model = with_idle_noise(
            NoiselessModel(), circuit, PauliChannel.phase_flip(0.1)
        )
        assert isinstance(model, ScheduledNoiseModel)
        sites = list(iter_error_sites(circuit, model))
        assert len(sites) == idle_slack(circuit).total_idle_layers
        assert expected_error_insertions(circuit, model) == pytest.approx(0.6)

    def test_positional_model_rejects_unindexed_enumeration(self):
        circuit = _busy_idle_circuit(2)
        model = with_idle_noise(
            NoiselessModel(), circuit, PauliChannel.phase_flip(0.1)
        )
        with pytest.raises(TypeError):
            model.gate_error_channels(circuit.instructions[0])

    def test_model_bound_to_circuit_rejects_longer_circuits(self):
        circuit = _busy_idle_circuit(2)
        model = with_idle_noise(
            NoiselessModel(), circuit, PauliChannel.phase_flip(0.1)
        )
        longer = _busy_idle_circuit(5)
        with pytest.raises(ValueError):
            FeynmanPathSimulator().run_noisy_shots(
                longer,
                PathState.register_superposition(2, [1]),
                model,
                shots=2,
                rng=ShotSeeds(seed=1),
            )

    def test_scaled_scales_every_layer(self):
        circuit = _busy_idle_circuit(3)
        model = with_idle_noise(
            GateNoiseModel(PauliChannel(p_z=0.2)),
            circuit,
            PauliChannel.phase_flip(0.1),
        )
        halved = model.scaled(0.5)
        assert halved.base.channel.p_z == pytest.approx(0.1)
        assert halved.final_sites[0][1].p_z == pytest.approx(0.05)


class TestAnalyticExpectation:
    DEPTH = 10
    P_IDLE = 0.04
    SHOTS = 4000

    def closed_form(self) -> float:
        return (1.0 + (1.0 - 2.0 * self.P_IDLE) ** self.DEPTH) / 2.0

    @pytest.mark.slow
    @pytest.mark.parametrize("engine", ["feynman-tape", "feynman-interp"])
    def test_idle_qubit_matches_closed_form(self, engine):
        """Monte-Carlo fidelity of one idling |+> qubit vs the closed form."""
        circuit = _busy_idle_circuit(self.DEPTH)
        model = with_idle_noise(
            NoiselessModel(), circuit, PauliChannel.phase_flip(self.P_IDLE)
        )
        state = PathState.register_superposition(2, [1])
        result = FeynmanPathSimulator(engine=engine).query_fidelities(
            circuit,
            state,
            model,
            self.SHOTS,
            keep_qubits=[1],
            rng=ShotSeeds(seed=99),
        )
        expected = self.closed_form()
        # Bernoulli standard error at the expected survival probability.
        sigma = np.sqrt(expected * (1.0 - expected) / self.SHOTS)
        assert abs(result.mean_fidelity - expected) < 4 * sigma

    def test_idle_noise_strictly_hurts(self):
        """Sanity direction check: adding idle noise lowers mean fidelity."""
        circuit = _busy_idle_circuit(self.DEPTH)
        state = PathState.register_superposition(2, [1])
        sim = FeynmanPathSimulator()
        noiseless = sim.query_fidelities(
            circuit, state, NoiselessModel(), 200, keep_qubits=[1],
            rng=ShotSeeds(seed=7),
        )
        noisy = sim.query_fidelities(
            circuit,
            state,
            with_idle_noise(
                NoiselessModel(), circuit, PauliChannel.phase_flip(0.1)
            ),
            200,
            keep_qubits=[1],
            rng=ShotSeeds(seed=7),
        )
        assert noiseless.mean_fidelity == pytest.approx(1.0)
        assert noisy.mean_fidelity < 1.0


class TestIdlePathSeededDeterminism:
    def _run(self, workers: int) -> list:
        from repro.sweep import SweepRunner

        runner = SweepRunner(workers=workers, shard_size=8)
        return runner.map_shards(
            _idle_shard_worker, [0.02, 0.08], shots=48, seed=123
        )

    def test_workers_do_not_change_idle_trajectories(self):
        """ShotSeeds covers the idle path: workers 1 vs 4 are bit-identical."""
        serial = self._run(1)
        parallel = self._run(4)
        assert len(serial) == len(parallel) == 2
        for a, b in zip(serial, parallel):
            assert np.array_equal(a.fidelities, b.fidelities)


def _idle_shard_worker(p_idle: float, shard) -> np.ndarray:
    """Module-level (picklable) shard worker exercising the idle-noise path."""
    circuit = _busy_idle_circuit(8)
    model = with_idle_noise(
        NoiselessModel(), circuit, PauliChannel.phase_flip(p_idle)
    )
    state = PathState.register_superposition(2, [1])
    result = FeynmanPathSimulator().query_fidelities(
        circuit, state, model, shard.shots, keep_qubits=[1], rng=shard.seeds()
    )
    return result.fidelities
