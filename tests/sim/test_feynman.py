"""Unit tests for the Feynman-path simulator."""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.sim import (
    FeynmanPathSimulator,
    GateNoiseModel,
    NoiselessModel,
    PathState,
    PauliChannel,
    UnsupportedGateError,
)


@pytest.fixture
def simulator() -> FeynmanPathSimulator:
    return FeynmanPathSimulator()


def _single_path(num_qubits: int, **assignment) -> PathState:
    mapping = {int(k[1:]): v for k, v in assignment.items()}
    return PathState.from_basis_assignments([(mapping, 1.0)], num_qubits)


class TestGateSemantics:
    def test_x_flips_bit(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.x(0)
        out = simulator.run(circuit, _single_path(1))
        assert out.bits[0, 0]

    def test_z_phases_only_one_states(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.z(0)
        on_zero = simulator.run(circuit, _single_path(1))
        on_one = simulator.run(circuit, _single_path(1, q0=1))
        assert np.isclose(on_zero.amplitudes[0], 1.0)
        assert np.isclose(on_one.amplitudes[0], -1.0)

    def test_y_flips_and_phases(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.y(0)
        on_zero = simulator.run(circuit, _single_path(1))
        on_one = simulator.run(circuit, _single_path(1, q0=1))
        assert on_zero.bits[0, 0] and np.isclose(on_zero.amplitudes[0], 1j)
        assert not on_one.bits[0, 0] and np.isclose(on_one.amplitudes[0], -1j)

    def test_s_and_t_phases(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.s(0)
        circuit.t(0)
        out = simulator.run(circuit, _single_path(1, q0=1))
        assert np.isclose(out.amplitudes[0], 1j * np.exp(1j * np.pi / 4))

    def test_cx_truth_table(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        assert not simulator.run(circuit, _single_path(2)).bits[0, 1]
        assert simulator.run(circuit, _single_path(2, q0=1)).bits[0, 1]

    def test_cswap_truth_table(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.cswap(0, 1, 2)
        inactive = simulator.run(circuit, _single_path(3, q1=1))
        active = simulator.run(circuit, _single_path(3, q0=1, q1=1))
        assert inactive.bits[0].tolist() == [False, True, False]
        assert active.bits[0].tolist() == [True, False, True]

    def test_mcx_requires_all_controls(self, simulator):
        circuit = QuantumCircuit(4)
        circuit.mcx([0, 1, 2], 3)
        partial = simulator.run(circuit, _single_path(4, q0=1, q1=1))
        full = simulator.run(circuit, _single_path(4, q0=1, q1=1, q2=1))
        assert not partial.bits[0, 3]
        assert full.bits[0, 3]

    def test_cz_phase(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.cz(0, 1)
        both = simulator.run(circuit, _single_path(2, q0=1, q1=1))
        one = simulator.run(circuit, _single_path(2, q0=1))
        assert np.isclose(both.amplitudes[0], -1.0)
        assert np.isclose(one.amplitudes[0], 1.0)

    def test_hadamard_branches(self, simulator):
        circuit = QuantumCircuit(1)
        circuit.h(0)
        out = simulator.run(circuit, _single_path(1))
        assert out.as_dict() == pytest.approx(
            {(0,): 1 / np.sqrt(2), (1,): 1 / np.sqrt(2)}
        )

    def test_state_size_mismatch_rejected(self, simulator):
        circuit = QuantumCircuit(2)
        with pytest.raises(ValueError):
            simulator.run(circuit, _single_path(3))


class TestSuperpositionHandling:
    def test_paths_evolve_independently(self, simulator):
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        state = PathState.register_superposition(2, register=[0])
        out = simulator.run(circuit, state)
        # |0>|0> stays, |1>|0> becomes |1>|1>
        produced = out.as_dict()
        assert set(produced) == {(0, 0), (1, 1)}

    def test_number_of_paths_is_preserved(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.ccx(0, 1, 2)
        circuit.swap(0, 2)
        state = PathState.register_superposition(3, register=[0, 1])
        out = simulator.run(circuit, state)
        assert out.num_paths == state.num_paths


class TestNoisyShots:
    def test_noiseless_model_gives_unit_fidelity(self, simulator):
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        state = PathState.register_superposition(3, register=[0, 1])
        result = simulator.query_fidelities(
            circuit, state, NoiselessModel(), shots=8, rng=np.random.default_rng(0)
        )
        assert np.allclose(result.fidelities, 1.0)
        assert result.mean_fidelity == pytest.approx(1.0)
        assert result.std_error == pytest.approx(0.0)

    def test_certain_bit_flip_gives_zero_fidelity(self, simulator):
        """With p_x = 1 the single gate's operand is always flipped afterwards,
        so the output basis state never matches the ideal one."""
        circuit = QuantumCircuit(2)
        circuit.x(0)
        state = _single_path(2)
        noise = GateNoiseModel(PauliChannel(p_x=1.0))
        result = simulator.query_fidelities(
            circuit, state, noise, shots=16, rng=np.random.default_rng(1)
        )
        assert result.mean_fidelity == pytest.approx(0.0)

    def test_fidelity_decreases_with_error_rate(self, simulator):
        circuit = QuantumCircuit(4)
        for _ in range(5):
            circuit.cx(0, 1)
            circuit.ccx(1, 2, 3)
        state = PathState.register_superposition(4, register=[0, 1])
        rng = np.random.default_rng(7)
        low = simulator.query_fidelities(
            circuit, state, GateNoiseModel(PauliChannel.bit_flip(1e-3)), 256, rng=rng
        )
        high = simulator.query_fidelities(
            circuit, state, GateNoiseModel(PauliChannel.bit_flip(5e-2)), 256, rng=rng
        )
        assert high.mean_fidelity < low.mean_fidelity

    @pytest.mark.slow
    def test_vectorised_runner_matches_explicit_sampling(self, simulator):
        """The fast per-shot vectorised noise application must agree (statistically)
        with explicitly sampling noisy circuits one shot at a time."""
        from repro.sim import sample_noisy_circuit
        from repro.sim.fidelity import reduced_fidelity

        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.cx(0, 1)  # uncompute the ancilla so the ideal output is a product
        state = PathState.register_superposition(3, register=[0])
        noise = GateNoiseModel(PauliChannel(p_x=0.05, p_z=0.05))
        keep = [0, 2]

        fast = simulator.query_fidelities(
            circuit, state, noise, shots=3000, keep_qubits=keep,
            rng=np.random.default_rng(3),
        )

        ideal = simulator.run(circuit, state)
        rng = np.random.default_rng(4)
        slow_values = []
        for _ in range(3000):
            noisy_circuit = sample_noisy_circuit(circuit, noise, rng)
            noisy_out = simulator.run(noisy_circuit, state)
            slow_values.append(reduced_fidelity(ideal, noisy_out, keep))
        assert abs(fast.mean_fidelity - float(np.mean(slow_values))) < 0.03

    def test_shots_must_be_positive(self, simulator):
        circuit = QuantumCircuit(1)
        state = _single_path(1)
        with pytest.raises(ValueError):
            simulator.run_noisy_shots(circuit, state, NoiselessModel(), shots=0)
