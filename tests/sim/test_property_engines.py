"""Property-based cross-engine equivalence over random circuits and noise.

The compiled ``feynman-tape`` engine promises *bit-identical* noisy
trajectories to the interpreted reference under a fixed per-shot seed, and
both promise exact noiseless agreement with the dense statevector
simulator.  These properties are the foundation the scenario sweeps stand
on, so they are exercised here with hypothesis over random QRAM-gate-set
circuits and random :class:`GateNoiseModel` parameters (the fixed
``repro-ci`` profile in ``tests/conftest.py`` keeps CI deterministic).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import (
    FeynmanPathSimulator,
    PathState,
    ShotSeeds,
    StatevectorSimulator,
    with_idle_noise,
)
from repro.sim.noise import PauliChannel
from tests.conftest import gate_noise_models, random_reversible_circuits


def _superposition_input(circuit) -> PathState:
    register = list(range(min(3, circuit.num_qubits)))
    return PathState.register_superposition(circuit.num_qubits, register)


class TestSeededTrajectoryBitIdentity:
    @settings(max_examples=40, deadline=None)
    @given(
        random_reversible_circuits(max_qubits=6, max_gates=18),
        gate_noise_models(),
        st.integers(0, 2**31 - 1),
    )
    def test_tape_and_interp_agree_bit_for_bit(self, circuit, noise, seed):
        """Same ShotSeeds window => identical bits and amplitudes."""
        state = _superposition_input(circuit)
        seeds = ShotSeeds(seed=seed)
        shots = 8
        bits_tape, amps_tape = FeynmanPathSimulator(
            engine="feynman-tape"
        ).run_noisy_shots(circuit, state, noise, shots, rng=seeds)
        bits_interp, amps_interp = FeynmanPathSimulator(
            engine="feynman-interp"
        ).run_noisy_shots(circuit, state, noise, shots, rng=seeds)
        assert np.array_equal(bits_tape, bits_interp)
        assert np.array_equal(amps_tape, amps_interp)

    @settings(max_examples=20, deadline=None)
    @given(
        random_reversible_circuits(max_qubits=5, max_gates=14),
        gate_noise_models(),
        st.integers(0, 2**31 - 1),
    )
    def test_idle_extended_models_stay_bit_identical(self, circuit, noise, seed):
        """The schedule-aware idle path preserves the cross-engine contract."""
        state = _superposition_input(circuit)
        model = with_idle_noise(noise, circuit, PauliChannel.phase_flip(0.1))
        seeds = ShotSeeds(seed=seed)
        shots = 6
        bits_tape, amps_tape = FeynmanPathSimulator(
            engine="feynman-tape"
        ).run_noisy_shots(circuit, state, model, shots, rng=seeds)
        bits_interp, amps_interp = FeynmanPathSimulator(
            engine="feynman-interp"
        ).run_noisy_shots(circuit, state, model, shots, rng=seeds)
        assert np.array_equal(bits_tape, bits_interp)
        assert np.array_equal(amps_tape, amps_interp)

    @settings(max_examples=20, deadline=None)
    @given(
        random_reversible_circuits(max_qubits=5, max_gates=14),
        gate_noise_models(),
        st.integers(0, 2**31 - 1),
    )
    def test_sharding_invariance(self, circuit, noise, seed):
        """Any split of the shot range reproduces the unsharded draw."""
        state = _superposition_input(circuit)
        shots = 6
        sim = FeynmanPathSimulator(engine="feynman-tape")
        bits_all, amps_all = sim.run_noisy_shots(
            circuit, state, noise, shots, rng=ShotSeeds(seed=seed)
        )
        split = 2
        bits_a, amps_a = sim.run_noisy_shots(
            circuit, state, noise, split, rng=ShotSeeds(seed=seed)
        )
        bits_b, amps_b = sim.run_noisy_shots(
            circuit, state, noise, shots - split, rng=ShotSeeds(seed=seed, start=split)
        )
        assert np.array_equal(bits_all, np.vstack([bits_a, bits_b]))
        assert np.array_equal(amps_all, np.concatenate([amps_a, amps_b]))


class TestNoiselessStatevectorAgreement:
    @pytest.mark.slow
    @settings(max_examples=40, deadline=None)
    @given(random_reversible_circuits(max_qubits=6, max_gates=18))
    def test_engines_match_dense_amplitudes(self, circuit):
        """Noiseless Feynman runs reproduce statevector amplitudes exactly."""
        state = _superposition_input(circuit)
        dense = StatevectorSimulator().run(circuit, state)
        for engine in ("feynman-tape", "feynman-interp"):
            output = FeynmanPathSimulator(engine=engine).run(circuit, state)
            assert np.allclose(output.to_statevector(), dense, atol=1e-9)
