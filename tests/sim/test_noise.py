"""Unit tests for Pauli channels and Monte-Carlo noise injection."""

import numpy as np
import pytest

from repro.circuit import Instruction, QuantumCircuit
from repro.sim import (
    DepolarizingNoise,
    GateNoiseModel,
    NoiselessModel,
    PauliChannel,
    QubitOncePauliNoise,
    sample_noisy_circuit,
)
from repro.sim.noise import expected_error_insertions, iter_error_sites


class TestPauliChannel:
    def test_probability_validation(self):
        with pytest.raises(ValueError):
            PauliChannel(p_x=-0.1)
        with pytest.raises(ValueError):
            PauliChannel(p_x=0.6, p_z=0.6)

    def test_convenience_constructors(self):
        assert PauliChannel.phase_flip(0.01) == PauliChannel(p_z=0.01)
        assert PauliChannel.bit_flip(0.01) == PauliChannel(p_x=0.01)
        dep = PauliChannel.depolarizing(0.03)
        assert dep.p_total == pytest.approx(0.03)

    def test_scaled(self):
        channel = PauliChannel(p_x=0.1, p_z=0.2).scaled(0.5)
        assert channel.p_x == pytest.approx(0.05)
        assert channel.p_z == pytest.approx(0.1)

    def test_is_trivial(self):
        assert PauliChannel().is_trivial
        assert not PauliChannel(p_y=1e-9).is_trivial

    def test_sampling_statistics(self):
        channel = PauliChannel(p_x=0.3, p_z=0.2)
        rng = np.random.default_rng(0)
        samples = channel.sample(rng, 20000)
        x_fraction = np.mean(samples == 1)
        z_fraction = np.mean(samples == 3)
        assert abs(x_fraction - 0.3) < 0.02
        assert abs(z_fraction - 0.2) < 0.02


class TestGateNoiseModel:
    def test_channels_returned_for_each_operand(self):
        model = GateNoiseModel(PauliChannel.phase_flip(0.01))
        instr = Instruction(gate="CSWAP", qubits=(0, 1, 2))
        channels = model.gate_error_channels(instr)
        assert [qubit for qubit, _ in channels] == [0, 1, 2]

    def test_barriers_and_noise_instructions_skipped(self):
        model = GateNoiseModel(PauliChannel.phase_flip(0.01))
        barrier = Instruction(gate="BARRIER", qubits=(0,))
        error = Instruction(gate="X", qubits=(0,), tags=frozenset({"noise"}))
        assert model.gate_error_channels(barrier) == []
        assert model.gate_error_channels(error) == []

    def test_two_qubit_factor(self):
        model = GateNoiseModel(PauliChannel.bit_flip(0.01), two_qubit_factor=10)
        single = model.gate_error_channels(Instruction(gate="X", qubits=(0,)))
        double = model.gate_error_channels(Instruction(gate="CX", qubits=(0, 1)))
        assert single[0][1].p_x == pytest.approx(0.01)
        assert double[0][1].p_x == pytest.approx(0.1)

    def test_classical_gate_exclusion(self):
        model = GateNoiseModel(PauliChannel.bit_flip(0.01), include_classical=False)
        classical = Instruction(gate="CX", qubits=(0, 1), tags=frozenset({"classical"}))
        assert model.gate_error_channels(classical) == []

    def test_scaled_model(self):
        model = GateNoiseModel(PauliChannel.bit_flip(0.01)).scaled(0.1)
        assert model.channel.p_x == pytest.approx(0.001)

    def test_depolarizing_helper(self):
        model = DepolarizingNoise(0.03)
        assert isinstance(model, GateNoiseModel)
        assert model.channel.p_total == pytest.approx(0.03)


class TestSampling:
    def _toy_circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(3)
        circuit.cx(0, 1)
        circuit.ccx(0, 1, 2)
        circuit.swap(1, 2)
        return circuit

    def test_noiseless_sampling_preserves_circuit(self):
        circuit = self._toy_circuit()
        sampled = sample_noisy_circuit(circuit, NoiselessModel(), np.random.default_rng(0))
        assert len(sampled) == len(circuit)

    def test_heavy_noise_inserts_errors(self):
        circuit = self._toy_circuit()
        noise = GateNoiseModel(PauliChannel(p_x=0.9))
        sampled = sample_noisy_circuit(circuit, noise, np.random.default_rng(0))
        assert sampled.count_tagged("noise") > 0
        # Logical gates are preserved, in order.
        logical = [instr.gate for instr in sampled.gates if not instr.is_noise]
        assert logical == ["CX", "CCX", "SWAP"]

    def test_expected_error_insertions(self):
        circuit = self._toy_circuit()
        noise = GateNoiseModel(PauliChannel.phase_flip(0.1))
        # operand count: 2 + 3 + 2 = 7 error sites
        assert expected_error_insertions(circuit, noise) == pytest.approx(0.7)
        assert len(list(iter_error_sites(circuit, noise))) == 7

    def test_qubit_once_noise_inserts_at_most_one_error_per_qubit(self):
        circuit = self._toy_circuit()
        noise = QubitOncePauliNoise(PauliChannel(p_x=1.0))
        sampled = sample_noisy_circuit(circuit, noise, np.random.default_rng(1))
        errors = [instr for instr in sampled.gates if instr.is_noise]
        assert len(errors) == 3  # one per touched qubit
        assert len({instr.qubits[0] for instr in errors}) == 3

    def test_qubit_once_noise_expected_insertions(self):
        circuit = self._toy_circuit()
        noise = QubitOncePauliNoise(PauliChannel.phase_flip(0.25))
        assert expected_error_insertions(circuit, noise) == pytest.approx(0.75)

    def test_qubit_once_noise_rejects_streaming_interface(self):
        noise = QubitOncePauliNoise(PauliChannel.phase_flip(0.1))
        with pytest.raises(NotImplementedError):
            noise.gate_error_channels(Instruction(gate="X", qubits=(0,)))
