"""Property-based cross-validation: Feynman-path vs statevector simulation.

Every architectural claim in the reproduction rests on the Feynman-path
simulator being correct, so this module drives both engines with random
reversible circuits and random (normalised) input superpositions and requires
identical output states.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import FeynmanPathSimulator, PathState, StatevectorSimulator
from tests.conftest import random_reversible_circuits


def _random_input(num_qubits: int, num_paths: int, seed: int) -> PathState:
    rng = np.random.default_rng(seed)
    dimension = 1 << num_qubits
    num_paths = min(num_paths, dimension)
    basis = rng.choice(dimension, size=num_paths, replace=False)
    amplitudes = rng.normal(size=num_paths) + 1j * rng.normal(size=num_paths)
    amplitudes /= np.linalg.norm(amplitudes)
    bits = ((basis[:, None] >> np.arange(num_qubits)) & 1).astype(bool)
    return PathState(bits=bits, amplitudes=amplitudes)


class TestPathVersusStatevector:
    @settings(max_examples=60, deadline=None)
    @given(random_reversible_circuits(max_qubits=6, max_gates=20), st.integers(0, 10**6))
    def test_same_output_state(self, circuit, seed):
        state = _random_input(circuit.num_qubits, num_paths=4, seed=seed)
        path_output = FeynmanPathSimulator().run(circuit, state)
        dense_output = StatevectorSimulator().run(circuit, state)
        assert np.allclose(path_output.to_statevector(), dense_output, atol=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(random_reversible_circuits(max_qubits=5, max_gates=15))
    def test_norm_preserved_by_path_simulation(self, circuit):
        state = _random_input(circuit.num_qubits, num_paths=3, seed=11)
        output = FeynmanPathSimulator().run(circuit, state)
        assert np.isclose(output.norm(), 1.0)

    @settings(max_examples=30, deadline=None)
    @given(random_reversible_circuits(max_qubits=5, max_gates=15))
    def test_uniform_superposition_agreement(self, circuit):
        """The uniform-superposition input used by the QRAM experiments."""
        register = list(range(min(3, circuit.num_qubits)))
        state = PathState.register_superposition(circuit.num_qubits, register)
        path_output = FeynmanPathSimulator().run(circuit, state)
        dense_output = StatevectorSimulator().run(circuit, state)
        assert np.allclose(path_output.to_statevector(), dense_output, atol=1e-9)


class TestNoiseInjectionEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(random_reversible_circuits(max_qubits=5, max_gates=12), st.integers(0, 10**6))
    def test_sampled_noisy_circuit_still_agrees(self, circuit, seed):
        """A circuit with explicit Pauli error insertions (noise tags) is still a
        basis-permutation circuit and must agree across both engines."""
        from repro.sim import GateNoiseModel, PauliChannel, sample_noisy_circuit

        rng = np.random.default_rng(seed)
        noisy = sample_noisy_circuit(
            circuit, GateNoiseModel(PauliChannel(p_x=0.1, p_z=0.1)), rng
        )
        state = _random_input(circuit.num_qubits, num_paths=4, seed=seed + 1)
        path_output = FeynmanPathSimulator().run(noisy, state)
        dense_output = StatevectorSimulator().run(noisy, state)
        assert np.allclose(path_output.to_statevector(), dense_output, atol=1e-9)
