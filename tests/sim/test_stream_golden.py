"""Golden-trajectory regression pins for the random-stream contract.

Every committed benchmark artefact (``benchmarks/baselines/BENCH_*.json``)
and every cached scenario fingerprint depends on one invariant: a shot's
randomness is consumed in a fixed order -- **measurement uniforms first**
(one per measurement, instruction order), **then noise-site codes** (one per
gate/qubit error site, tape order) -- from its own ``SeedSequence``-derived
stream.  Path branching added new consumers around that stream, so this
module pins the contract on a fixed branching circuit with hard-coded golden
values: if any engine starts drawing in a different order (or branching
starts consuming randomness at all), these tests fail loudly with the exact
divergent draw rather than letting a silently re-seeded sweep masquerade as
a real result.

The fixture circuit is the entanglement-swapping core: ``H`` + ``CX`` chain
(one branch level), an X/Z Bell-measurement pair, and Pauli-frame
corrections -- every new code path of the branching tentpole in six
instructions.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit
from repro.circuit.ir import compile_circuit
from repro.sim import FeynmanPathSimulator, PathState, ShotSeeds
from repro.sim.noise import GateNoiseModel, PauliChannel
from repro.sim.seeding import draw_shot_randomness

FEYNMAN_ENGINES = ("feynman-interp", "feynman-tape", "feynman-batch")
SEED = 20260808
SHOTS = 3
# The engines' exact double (one ULP below round(1/sqrt(2))): amplitudes
# are pinned bit for bit, not to tolerance.
_A = 0.7071067811865474

#: Measurement uniforms, shape ``(num_measurements, shots)`` -- drawn FIRST
#: from each shot's stream, one row per measurement in instruction order.
GOLDEN_UNIFORMS = np.array(
    [
        [0.9501710763618, 0.8889629236301984, 0.4412720320783742],
        [0.899093609290172, 0.36222650317666283, 0.8243187798356074],
    ]
)

#: Noise-site codes, shape ``(num_sites, shots)`` -- drawn AFTER the
#: uniforms, one row per (gate, qubit) error site in tape order.
GOLDEN_CODES = np.array(
    [
        [2, 0, 0],
        [3, 0, 0],
        [0, 1, 0],
        [0, 0, 0],
        [2, 0, 1],
    ]
)

#: The exact trajectory block every engine must emit: ``SHOTS`` stacked
#: two-path blocks (the input superposition), post-collapse.
GOLDEN_BITS = np.array(
    [
        [1, 1, 1],
        [1, 1, 0],
        [1, 0, 0],
        [1, 0, 1],
        [0, 1, 1],
        [0, 1, 0],
    ],
    dtype=bool,
)
GOLDEN_AMPS = np.array([-_A, -_A, -_A, _A, _A, _A], dtype=complex)


def _branching_circuit() -> QuantumCircuit:
    circuit = QuantumCircuit(3)
    circuit.h(0)
    circuit.cx(0, 1)
    circuit.cx(1, 2)
    x = circuit.measure(0, basis="X")
    z = circuit.measure(1, basis="Z")
    circuit.cpauli("X", 2, [z])
    circuit.cpauli("Z", 2, [x])
    return circuit


def _noise() -> GateNoiseModel:
    return GateNoiseModel(
        channel=PauliChannel(p_x=0.05, p_y=0.05, p_z=0.05), two_qubit_factor=2.0
    )


class TestRandomStreamGolden:
    def test_fixture_circuit_branches(self):
        """The pinned circuit genuinely exercises the branching machinery."""
        tape = compile_circuit(_branching_circuit())
        assert tape.max_branch_level == 1
        assert tape.num_measurements == 2

    def test_consumption_order_is_pinned(self):
        """Measurement uniforms first, then site codes, exact golden values."""
        tape = compile_circuit(_branching_circuit())
        sites = tape.noise_sites(_noise())
        codes, uniforms = draw_shot_randomness(
            sites, ShotSeeds(seed=SEED), SHOTS, tape.num_measurements
        )
        assert uniforms.shape == (tape.num_measurements, SHOTS)
        assert codes.shape == (len(sites.gate_index), SHOTS)
        np.testing.assert_array_equal(
            uniforms,
            GOLDEN_UNIFORMS,
            err_msg="measurement-uniform draws diverged from the golden "
            "stream: an engine or the seeding layer reordered consumption",
        )
        np.testing.assert_array_equal(
            codes,
            GOLDEN_CODES,
            err_msg="noise-site code draws diverged from the golden stream: "
            "sites are enumerated in a different order than committed "
            "artefacts assume",
        )

    @pytest.mark.parametrize("engine", FEYNMAN_ENGINES)
    def test_golden_trajectory(self, engine):
        """Every engine reproduces the committed trajectory bit for bit."""
        state = PathState.register_superposition(3, [2])
        bits, amps = FeynmanPathSimulator(engine=engine).run_noisy_shots(
            _branching_circuit(), state, _noise(), SHOTS, rng=ShotSeeds(seed=SEED)
        )
        np.testing.assert_array_equal(
            bits,
            GOLDEN_BITS,
            err_msg=f"{engine}: trajectory bits diverged from the golden "
            "block -- the random-stream contract is broken",
        )
        np.testing.assert_array_equal(
            amps,
            GOLDEN_AMPS,
            err_msg=f"{engine}: trajectory amplitudes diverged from the "
            "golden block -- the random-stream contract is broken",
        )

    def test_branching_consumes_no_randomness(self):
        """Deleting the branch layer must not shift a single later draw.

        ``H`` doubles the path set deterministically; the per-shot streams
        must therefore be indistinguishable from a measure-only circuit
        with the same site table shape.  Pinned by construction: the golden
        uniforms above were drawn with ``n_measurements=2`` straight from
        the seeding layer, bypassing the engines entirely, and the engines
        still reproduce ``GOLDEN_BITS``/``GOLDEN_AMPS`` from them.
        """
        tape = compile_circuit(_branching_circuit())
        sites = tape.noise_sites(_noise())
        codes_a, uniforms_a = draw_shot_randomness(
            sites, ShotSeeds(seed=SEED), SHOTS, tape.num_measurements
        )
        codes_b, uniforms_b = draw_shot_randomness(
            sites, ShotSeeds(seed=SEED), SHOTS, tape.num_measurements
        )
        np.testing.assert_array_equal(uniforms_a, uniforms_b)
        np.testing.assert_array_equal(codes_a, codes_b)
