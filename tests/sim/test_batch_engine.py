"""The feynman-batch engine: grouped execution equals the per-shot loop.

The batch engine's tentpole claim is that running the tape once per
*distinct* sampled error pattern (with pure-Z patterns folded into per-path
sign masks off a single noiseless carrier) reproduces the tape engine's
per-shot loop **bit for bit** under the :class:`~repro.sim.ShotSeeds`
contract.  These tests pin that claim on the degenerate corners (no noise,
one shared pattern, measured-circuit fallback), as a hypothesis property
over arbitrary sharding windows, and separately pin the sparse aggregate
sampler (:meth:`~repro.circuit.ir.NoiseSiteTable.draw_sparse`) and the
vectorised per-shot fidelity reduction against their reference loops.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.circuit import QuantumCircuit
from repro.experiments.common import random_memory
from repro.qram import VirtualQRAM
from repro.sim import (
    GateNoiseModel,
    NoiselessModel,
    PauliChannel,
    ShotSeeds,
    get_engine,
)
from repro.sim.fidelity import (
    _ideal_keep_amplitudes,
    _pack_rows,
    shot_fidelities,
)
from repro.sim.paths import PathState

DEPOL = GateNoiseModel(PauliChannel.depolarizing(0.05))


def _compiled():
    architecture = VirtualQRAM(memory=random_memory(2, 7), qram_width=2)
    return architecture.compiled_query()


def _run(engine_name: str, noise, shots: int, rng):
    compiled = _compiled()
    return get_engine(engine_name).run_noisy_shots(
        compiled.circuit, compiled.input_state, noise, shots, rng=rng
    )


def _assert_blocks_equal(left, right):
    assert np.array_equal(left[0], right[0])
    assert np.array_equal(left[1], right[1])


class TestEdgeCases:
    def test_zero_shots_rejected(self):
        with pytest.raises(ValueError, match="shots"):
            _run("feynman-batch", DEPOL, 0, ShotSeeds(seed=0))

    def test_negative_shots_rejected(self):
        with pytest.raises(ValueError, match="shots"):
            _run("feynman-batch", DEPOL, -3, ShotSeeds(seed=0))

    @pytest.mark.parametrize("rng", [None, ShotSeeds(seed=5)])
    def test_noise_free_circuit_matches_tape(self, rng):
        # Without noise sites every shot is the carrier run: the grouped
        # engine must reproduce the tape loop for any rng flavour.
        tape = _run("feynman-tape", NoiselessModel(), 6, ShotSeeds(seed=5))
        batch = _run("feynman-batch", NoiselessModel(), 6, rng)
        _assert_blocks_equal(tape, batch)

    def test_every_shot_shares_one_pattern(self):
        # p_x = 1: every site errs on every shot, so all 8 shots collapse
        # into a single distinct pattern executed exactly once.
        noise = GateNoiseModel(PauliChannel(p_x=1.0))
        seeds = ShotSeeds(seed=2)
        _assert_blocks_equal(
            _run("feynman-tape", noise, 8, seeds),
            _run("feynman-batch", noise, 8, seeds),
        )

    def test_pure_z_noise_folds_exactly(self):
        # Phase-flip noise exercises only the zparity fold: no slot is ever
        # activated, yet the signs must match the tape loop bit for bit.
        noise = GateNoiseModel(PauliChannel.phase_flip(0.2))
        seeds = ShotSeeds(seed=9)
        _assert_blocks_equal(
            _run("feynman-tape", noise, 16, seeds),
            _run("feynman-batch", noise, 16, seeds),
        )

    def test_generator_mode_is_deterministic_per_seed(self):
        # Bulk-Generator mode samples events sparsely (no per-shot stream),
        # but equal generators must still reproduce the block exactly.
        first = _run("feynman-batch", DEPOL, 16, np.random.default_rng(8))
        second = _run("feynman-batch", DEPOL, 16, np.random.default_rng(8))
        _assert_blocks_equal(first, second)
        n_paths = _compiled().input_state.num_paths
        assert first[0].shape[0] == 16 * n_paths

    def test_measured_circuit_falls_back_bit_identical(self):
        # Measurement collapse depends on the shot's own uniforms, so the
        # batch engine falls back to the stacked per-shot path -- on the
        # same up-front draw, hence still bit-identical to the tape engine.
        circuit = QuantumCircuit(num_qubits=2)
        circuit.cx(0, 1)
        cbit = circuit.measure(0, basis="X")
        circuit.cpauli("Z", 1, [cbit])
        circuit.cpauli("X", 0, [cbit])
        state = PathState.register_superposition(2, [0], {0: 0.6, 1: 0.8})
        noise = GateNoiseModel(PauliChannel.depolarizing(0.05))
        seeds = ShotSeeds(seed=4)
        blocks = [
            get_engine(name).run_noisy_shots(circuit, state, noise, 12, rng=seeds)
            for name in ("feynman-tape", "feynman-batch")
        ]
        _assert_blocks_equal(blocks[0], blocks[1])


class TestShardingProperty:
    @given(
        windows=st.lists(st.integers(1, 6), min_size=1, max_size=4),
        seed=st.integers(0, 50),
        point_index=st.integers(0, 3),
    )
    @settings(max_examples=25, deadline=None)
    def test_batch_windows_reproduce_the_tape_run(
        self, windows, seed, point_index
    ):
        # Any partition of the shot range into ShotSeeds windows, executed
        # by the batch engine, concatenates to the unsharded tape run.
        shots = sum(windows)
        seeds = ShotSeeds(seed=seed, point_index=point_index)
        tape_bits, tape_amps = _run("feynman-tape", DEPOL, shots, seeds)
        pieces = []
        start = 0
        for width in windows:
            pieces.append(
                _run("feynman-batch", DEPOL, width, seeds.shifted(start))
            )
            start += width
        batch_bits = np.concatenate([piece[0] for piece in pieces])
        batch_amps = np.concatenate([piece[1] for piece in pieces])
        assert np.array_equal(tape_bits, batch_bits)
        assert np.array_equal(tape_amps, batch_amps)


class TestDrawSparse:
    def _sites(self, channel: PauliChannel):
        return _compiled().tape.noise_sites(GateNoiseModel(channel))

    def test_deterministic_under_equal_generators(self):
        sites = self._sites(PauliChannel.depolarizing(0.05))
        first = sites.draw_sparse(32, np.random.default_rng(3))
        second = sites.draw_sparse(32, np.random.default_rng(3))
        for left, right in zip(first, second):
            assert np.array_equal(left, right)

    def test_events_are_valid_sorted_and_unique(self):
        sites = self._sites(PauliChannel.depolarizing(0.2))
        shots = 16
        site, shot, code = sites.draw_sparse(shots, np.random.default_rng(1))
        assert len(site) > 0  # p = 0.2 over hundreds of cells
        assert ((site >= 0) & (site < sites.n_sites)).all()
        assert ((shot >= 0) & (shot < shots)).all()
        assert np.isin(code, [1, 2, 3]).all()
        flat = site * shots + shot
        assert (np.diff(flat) > 0).all()  # sorted, no duplicate cells

    def test_trivial_channel_yields_no_sites_and_no_events(self):
        sites = self._sites(PauliChannel.phase_flip(0.0))
        assert sites.n_sites == 0
        site, shot, code = sites.draw_sparse(8, np.random.default_rng(0))
        assert len(site) == len(shot) == len(code) == 0

    def test_phase_flip_draws_only_z(self):
        sites = self._sites(PauliChannel.phase_flip(0.3))
        _, _, code = sites.draw_sparse(16, np.random.default_rng(7))
        assert len(code) > 0
        assert (code == 3).all()


def _reference_shot_fidelities(
    ideal, bits_block, amps_block, *, shots, n_paths, keep_qubits=None
):
    """The historical per-shot dict loop that ``shot_fidelities`` vectorised."""
    num_qubits = ideal.num_qubits
    if keep_qubits is None:
        keep_columns = list(range(num_qubits))
        rest_columns = []
    else:
        keep_columns = list(keep_qubits)
        rest_columns = [
            q for q in range(num_qubits) if q not in set(keep_columns)
        ]
    ideal_keep = _ideal_keep_amplitudes(ideal, keep_columns)
    fidelities = np.zeros(shots)
    for index in range(shots):
        rows = slice(index * n_paths, (index + 1) * n_paths)
        keep_keys = _pack_rows(bits_block[rows], keep_columns)
        rest_keys = _pack_rows(bits_block[rows], rest_columns)
        overlaps: dict[bytes, complex] = {}
        for keep_key, rest_key, amp in zip(
            keep_keys, rest_keys, amps_block[rows]
        ):
            ideal_amp = ideal_keep.get(keep_key)
            if ideal_amp is None:
                continue
            overlaps[rest_key] = (
                overlaps.get(rest_key, 0.0 + 0.0j) + np.conj(ideal_amp) * amp
            )
        fidelities[index] = sum(abs(value) ** 2 for value in overlaps.values())
    return fidelities


class TestVectorisedFidelity:
    @pytest.mark.parametrize("engine_name", ["feynman-tape", "feynman-batch"])
    @pytest.mark.parametrize("reduced", [False, True])
    def test_matches_reference_loop_bit_for_bit(self, engine_name, reduced):
        compiled = _compiled()
        noise = GateNoiseModel(PauliChannel.depolarizing(0.05))
        shots = 24
        bits, amps = get_engine(engine_name).run_noisy_shots(
            compiled.circuit,
            compiled.input_state,
            noise,
            shots,
            rng=ShotSeeds(seed=13),
        )
        keep = list(compiled.kept_qubits) if reduced else None
        n_paths = compiled.input_state.num_paths
        vectorised = shot_fidelities(
            compiled.ideal_output,
            bits,
            amps,
            shots=shots,
            n_paths=n_paths,
            keep_qubits=keep,
        )
        reference = _reference_shot_fidelities(
            compiled.ideal_output,
            bits,
            amps,
            shots=shots,
            n_paths=n_paths,
            keep_qubits=keep,
        )
        assert np.array_equal(vectorised, reference)
