"""Unit and property tests for the PathState representation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PathState
from repro.sim.paths import bits_to_int, int_to_bits


class TestBitConversions:
    def test_int_to_bits_msb_first(self):
        assert int_to_bits(5, 4) == (0, 1, 0, 1)
        assert int_to_bits(0, 3) == (0, 0, 0)

    def test_int_to_bits_rejects_overflow(self):
        with pytest.raises(ValueError):
            int_to_bits(8, 3)
        with pytest.raises(ValueError):
            int_to_bits(-1, 3)

    def test_bits_to_int(self):
        assert bits_to_int((1, 0, 1)) == 5
        assert bits_to_int(()) == 0

    @settings(max_examples=100, deadline=None)
    @given(st.integers(0, 1023), st.integers(10, 16))
    def test_round_trip(self, value, width):
        assert bits_to_int(int_to_bits(value, width)) == value


class TestConstruction:
    def test_from_basis_assignments(self):
        state = PathState.from_basis_assignments(
            [({0: 1, 2: 1}, 0.5), ({1: 1}, 0.5)], num_qubits=3
        )
        assert state.num_paths == 2
        assert state.num_qubits == 3
        assert state.bits[0].tolist() == [True, False, True]

    def test_from_basis_assignments_requires_paths(self):
        with pytest.raises(ValueError):
            PathState.from_basis_assignments([], num_qubits=2)

    def test_register_superposition_uniform(self):
        state = PathState.register_superposition(4, register=[1, 2])
        assert state.num_paths == 4
        assert np.allclose(np.abs(state.amplitudes), 0.5)
        assert np.isclose(state.norm(), 1.0)
        values = sorted(state.register_values([1, 2]).tolist())
        assert values == [0, 1, 2, 3]

    def test_register_superposition_custom_amplitudes(self):
        state = PathState.register_superposition(
            3, register=[0, 1], amplitudes={2: 1.0}
        )
        assert state.num_paths == 1
        # value 2 = bits (1, 0) on (q0, q1), q0 is the MSB
        assert state.bits[0].tolist() == [True, False, False]

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            PathState(bits=np.zeros((2, 3), dtype=bool), amplitudes=np.ones(3))
        with pytest.raises(ValueError):
            PathState(bits=np.zeros(3, dtype=bool), amplitudes=np.ones(3))


class TestInspection:
    def test_register_values_msb_first(self):
        state = PathState.from_basis_assignments(
            [({0: 1, 1: 0, 2: 1}, 1.0)], num_qubits=3
        )
        assert state.register_values([0, 1, 2]).tolist() == [5]
        assert state.register_values([2, 1, 0]).tolist() == [5]
        assert state.register_values([1]).tolist() == [0]

    def test_as_dict_merges_duplicate_paths(self):
        bits = np.array([[True, False], [True, False]])
        amps = np.array([0.5, 0.25])
        state = PathState(bits=bits, amplitudes=amps)
        collapsed = state.as_dict()
        assert collapsed == {(1, 0): pytest.approx(0.75)}

    def test_as_dict_drops_cancelled_paths(self):
        bits = np.array([[True], [True]])
        amps = np.array([0.5, -0.5])
        state = PathState(bits=bits, amplitudes=amps)
        assert state.as_dict() == {}

    def test_to_statevector_little_endian(self):
        state = PathState.from_basis_assignments([({1: 1}, 1.0)], num_qubits=2)
        vector = state.to_statevector()
        assert np.allclose(vector, [0, 0, 1, 0])  # index 2 = qubit 1 set

    def test_to_statevector_size_guard(self):
        state = PathState(bits=np.zeros((1, 30), dtype=bool), amplitudes=np.ones(1))
        with pytest.raises(ValueError):
            state.to_statevector()

    def test_overlap(self):
        a = PathState.register_superposition(2, register=[0, 1])
        b = PathState.from_basis_assignments([({0: 0, 1: 0}, 1.0)], num_qubits=2)
        assert np.isclose(a.overlap(b), 0.5)
        assert np.isclose(abs(a.overlap(a)), 1.0)

    def test_copy_is_independent(self):
        state = PathState.register_superposition(3, register=[0])
        clone = state.copy()
        clone.bits[0, 0] = ~clone.bits[0, 0]
        assert not np.array_equal(clone.bits, state.bits)
