"""Edge cases of the Pauli samplers, noise-site tables and result statistics.

These are the boundaries the sweep machinery leans on: degenerate channels
(``p_total`` exactly 0 or 1), empty site windows (noiseless or gateless
circuits under the seeded draw path) and single-shot statistics.
"""

import numpy as np
import pytest

from repro.circuit import QuantumCircuit, compile_circuit
from repro.circuit.ir import NoiseSiteTable
from repro.sim import NoiselessModel, ShotSeeds
from repro.sim.feynman import QueryResult
from repro.sim.noise import (
    PAULI_I,
    PAULI_X,
    PAULI_Y,
    PAULI_Z,
    GateNoiseModel,
    PauliChannel,
)


class TestSampleThresholdedEdges:
    def test_p_total_zero_is_always_identity(self, rng):
        channel = PauliChannel()
        codes = channel.sample_thresholded(rng, 1000)
        assert codes.shape == (1000,)
        assert np.all(codes == PAULI_I)

    def test_p_total_one_never_draws_identity(self, rng):
        channel = PauliChannel(p_x=0.3, p_y=0.3, p_z=0.4)
        assert channel.p_total == pytest.approx(1.0)
        codes = channel.sample_thresholded(rng, 1000)
        assert not np.any(codes == PAULI_I)
        assert set(np.unique(codes)) <= {PAULI_X, PAULI_Y, PAULI_Z}

    def test_pure_z_channel_at_probability_one(self, rng):
        codes = PauliChannel(p_z=1.0).sample_thresholded(rng, 500)
        assert np.all(codes == PAULI_Z)

    def test_empty_window_consumes_nothing(self, rng):
        channel = PauliChannel(p_x=0.5)
        before = rng.bit_generator.state
        codes = channel.sample_thresholded(rng, 0)
        assert codes.shape == (0,)
        assert rng.bit_generator.state == before

    def test_consumes_exactly_size_uniforms(self):
        """The seeded-mode contract: one rng.random value per site."""
        channel = PauliChannel(p_x=0.2, p_z=0.1)
        a = np.random.default_rng(5)
        b = np.random.default_rng(5)
        channel.sample_thresholded(a, 17)
        b.random(17)
        assert a.bit_generator.state == b.bit_generator.state


class TestSampleBlockEdges:
    def test_p_total_zero_block(self, rng):
        codes = PauliChannel().sample_block(rng, 3, 7)
        assert codes.shape == (3, 7)
        assert np.all(codes == PAULI_I)

    def test_p_total_one_block(self, rng):
        codes = PauliChannel(p_y=1.0).sample_block(rng, 2, 50)
        assert np.all(codes == PAULI_Y)

    def test_empty_site_block(self, rng):
        assert PauliChannel(p_x=0.5).sample_block(rng, 0, 9).shape == (0, 9)


class TestEmptySiteWindows:
    def test_noiseless_model_yields_empty_table(self):
        circuit = QuantumCircuit(2)
        circuit.add("CX", 0, 1)
        table = compile_circuit(circuit).noise_sites(NoiselessModel())
        assert table.n_sites == 0
        assert table.draw(4, np.random.default_rng(0)).shape == (0, 4)
        assert table.draw_per_shot(ShotSeeds(seed=3), 5).shape == (0, 5)

    def test_gateless_circuit_yields_empty_table(self):
        circuit = QuantumCircuit(3)
        circuit.barrier()
        table = compile_circuit(circuit).noise_sites(
            GateNoiseModel(PauliChannel(p_x=0.5))
        )
        assert table.n_sites == 0
        assert table.draw_shot(np.random.default_rng(1)).shape == (0,)

    def test_manual_empty_table_draws(self):
        empty = np.empty(0, dtype=np.int32)
        table = NoiseSiteTable(
            gate_index=empty, qubit=empty, group_index=empty, channels=()
        )
        assert table.draw(8, np.random.default_rng(2)).shape == (0, 8)


class TestQueryResultStatistics:
    def test_std_error_at_single_shot_is_zero(self):
        result = QueryResult(fidelities=np.array([0.75]), shots=1)
        assert result.std_error == 0.0
        assert result.mean_fidelity == pytest.approx(0.75)

    def test_std_error_matches_ddof1_formula(self):
        values = np.array([1.0, 0.5, 0.25, 0.75])
        result = QueryResult(fidelities=values, shots=4)
        assert result.std_error == pytest.approx(np.std(values, ddof=1) / 2.0)

    def test_constant_fidelities_have_zero_error(self):
        result = QueryResult(fidelities=np.ones(16), shots=16)
        assert result.std_error == 0.0
