"""Property-based routing-equivalence harness over random circuits and devices.

Routers are notoriously easy to get subtly wrong -- a stale layout entry or a
missed SWAP silently corrupts every downstream fidelity -- so both registered
routers are pinned here with hypothesis over random reversible circuits on
random *connected* coupling maps (the fixed ``repro-ci`` profile in
``tests/conftest.py`` keeps CI deterministic, mirroring
``tests/sim/test_property_engines.py``).  Two properties form the contract:

* **Connectivity**: every multi-qubit gate of the routed circuit acts on
  physical qubits that induce a connected patch of the coupling map (the
  definition of "executable on the device").
* **Equivalence**: running the routed circuit on the ``statevector`` engine
  from the initial-layout embedding of a logical input reproduces the
  unrouted logical outcome at the final-layout positions, via
  ``RoutedCircuit.map_state`` / ``physical_qubits``.
"""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hardware import make_router
from repro.hardware.devices import DeviceModel
from repro.sim import FeynmanPathSimulator, PathState
from tests.conftest import random_reversible_circuits

ROUTER_NAMES = ("greedy-swap", "lookahead", "lookahead-teleport")


@st.composite
def connected_devices(draw, min_qubits: int = 3, max_qubits: int = 7):
    """Random connected coupling maps: a random tree plus random chords."""
    num_qubits = draw(st.integers(min_qubits, max_qubits))
    edges = set()
    for vertex in range(1, num_qubits):
        parent = draw(st.integers(0, vertex - 1))
        edges.add((parent, vertex))
    chords = [
        (a, b)
        for a in range(num_qubits)
        for b in range(a + 1, num_qubits)
        if (a, b) not in edges
    ]
    if chords:
        edges.update(
            draw(st.lists(st.sampled_from(chords), max_size=len(chords), unique=True))
        )
    return DeviceModel(
        name=f"hyp-{num_qubits}", num_qubits=num_qubits, coupling_map=tuple(sorted(edges))
    )


@st.composite
def routing_instances(draw, max_gates: int = 14):
    """A random connected device plus a random circuit that fits on it."""
    device = draw(connected_devices())
    circuit = draw(
        random_reversible_circuits(
            min_qubits=2, max_qubits=device.num_qubits, max_gates=max_gates
        )
    )
    return device, circuit


def _logical_input(circuit) -> PathState:
    register = list(range(min(3, circuit.num_qubits)))
    return PathState.register_superposition(circuit.num_qubits, register)


@pytest.mark.parametrize("router_name", ROUTER_NAMES)
class TestRoutingEquivalenceProperties:
    @settings(max_examples=30, deadline=None)
    @given(instance=routing_instances())
    def test_every_routed_gate_touches_connected_qubits(self, router_name, instance):
        """Multi-qubit gates only ever act on connected coupling-map patches."""
        device, circuit = instance
        routed = make_router(router_name, device).route(circuit)
        graph = device.to_networkx()
        for instr in routed.circuit.gates:
            if len(instr.qubits) > 1:
                assert nx.is_connected(graph.subgraph(instr.qubits))

    @settings(max_examples=30, deadline=None)
    @given(instance=routing_instances())
    def test_statevector_reproduces_unrouted_logical_outcome(
        self, router_name, instance
    ):
        """Routed + embedded input == embedded logical output, on dense amplitudes."""
        device, circuit = instance
        routed = make_router(router_name, device).route(circuit)
        dense = FeynmanPathSimulator(engine="statevector")
        state = _logical_input(circuit)
        logical_output = dense.run(circuit, state)
        physical_output = dense.run(
            routed.circuit, routed.map_state(state, final=False)
        )
        expected = routed.map_state(logical_output, final=True)
        assert abs(expected.overlap(physical_output)) ** 2 == pytest.approx(1.0)

    @settings(max_examples=30, deadline=None)
    @given(instance=routing_instances())
    def test_layouts_are_consistent_permutations(self, router_name, instance):
        """Initial/final layouts injectively place every logical qubit."""
        device, circuit = instance
        routed = make_router(router_name, device).route(circuit)
        logical = list(range(circuit.num_qubits))
        for final in (False, True):
            placements = routed.physical_qubits(logical, final=final)
            assert len(set(placements)) == len(placements)
            assert all(0 <= p < device.num_qubits for p in placements)
        # The SWAP count is exactly the number of routing-tagged gates.
        assert routed.swap_count == routed.circuit.count_tagged("routing")
