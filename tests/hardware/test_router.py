"""Tests for the greedy SWAP-insertion router."""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.circuit import QuantumCircuit
from repro.hardware import GreedySwapRouter, ibm_perth_like, ibmq_guadalupe_like
from repro.hardware.devices import DeviceModel, grid_device
from repro.qram import ClassicalMemory, VirtualQRAM
from repro.sim import FeynmanPathSimulator, PathState
from tests.conftest import random_reversible_circuits


class TestRoutingCorrectness:
    def _assert_equivalent(self, circuit: QuantumCircuit, device) -> None:
        """The routed circuit must implement the same map, up to the final layout."""
        router = GreedySwapRouter(device)
        routed = router.route(circuit)
        simulator = FeynmanPathSimulator()

        rng = np.random.default_rng(0)
        bits = np.unique(
            rng.integers(0, 2, size=(4, circuit.num_qubits)).astype(bool), axis=0
        )
        amplitudes = np.ones(bits.shape[0], dtype=complex) / np.sqrt(bits.shape[0])
        logical_state = PathState(bits=bits, amplitudes=amplitudes)
        logical_output = simulator.run(circuit, logical_state)

        physical_input = routed.map_state(logical_state, final=False)
        physical_output = simulator.run(routed.circuit, physical_input)
        expected_output = routed.map_state(logical_output, final=True)
        assert abs(expected_output.overlap(physical_output)) ** 2 == pytest.approx(1.0)

    @settings(max_examples=20, deadline=None)
    @given(random_reversible_circuits(min_qubits=2, max_qubits=7, max_gates=15))
    def test_random_circuits_on_perth(self, circuit):
        self._assert_equivalent(circuit, ibm_perth_like())

    @settings(max_examples=10, deadline=None)
    @given(random_reversible_circuits(min_qubits=2, max_qubits=7, max_gates=12))
    def test_random_circuits_on_guadalupe(self, circuit):
        self._assert_equivalent(circuit, ibmq_guadalupe_like())

    def test_virtual_qram_on_each_device(self):
        configurations = [
            (1, 0, ibm_perth_like()),
            (1, 1, ibm_perth_like()),
            (2, 0, ibmq_guadalupe_like()),
            (2, 1, ibmq_guadalupe_like()),
        ]
        for m, k, device in configurations:
            memory = ClassicalMemory.random(m + k, rng=m * 3 + k)
            architecture = VirtualQRAM(memory=memory, qram_width=m)
            self._assert_equivalent(architecture.build_circuit(), device)


class TestRoutingAccounting:
    def test_no_swaps_needed_on_all_to_all_neighbourhood(self):
        device = grid_device(1, 2)
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        routed = GreedySwapRouter(device).route(circuit)
        assert routed.swap_count == 0
        assert routed.final_layout == routed.initial_layout

    def test_sparse_connectivity_forces_swaps(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(7)
        circuit.cx(0, 6)  # opposite ends of the H shape
        routed = GreedySwapRouter(device).route(circuit)
        assert routed.swap_count >= 3
        assert all("routing" in instr.tags for instr in routed.circuit.gates[:-1])

    def test_swap_count_grows_with_configuration_size(self):
        """Figure 12's SWAP-count ordering: larger QRAMs need more routing."""
        small_memory = ClassicalMemory.random(1, rng=0)
        large_memory = ClassicalMemory.random(3, rng=0)
        small = VirtualQRAM(memory=small_memory, qram_width=1)
        large = VirtualQRAM(memory=large_memory, qram_width=2)
        small_routed = GreedySwapRouter(ibm_perth_like()).route(small.build_circuit())
        large_routed = GreedySwapRouter(ibmq_guadalupe_like()).route(large.build_circuit())
        assert large_routed.swap_count > small_routed.swap_count

    def test_circuit_too_large_rejected(self):
        device = ibm_perth_like()
        with pytest.raises(ValueError):
            GreedySwapRouter(device).route(QuantumCircuit(8))

    def test_custom_initial_layout(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        layout = {0: 4, 1: 5}
        routed = GreedySwapRouter(device).route(circuit, initial_layout=layout)
        assert routed.swap_count == 0
        assert routed.circuit.gates[0].qubits == (4, 5)

    def test_invalid_layouts_rejected(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(2)
        circuit.cx(0, 1)
        router = GreedySwapRouter(device)
        with pytest.raises(ValueError):
            router.route(circuit, initial_layout={0: 0})
        with pytest.raises(ValueError):
            router.route(circuit, initial_layout={0: 0, 1: 0})
        with pytest.raises(ValueError):
            router.route(circuit, initial_layout={0: 0, 1: 9})

    def test_disconnected_device_rejected(self):
        device = DeviceModel(name="split", num_qubits=4, coupling_map=((0, 1), (2, 3)))
        with pytest.raises(ValueError):
            GreedySwapRouter(device)

    def test_physical_qubits_helper(self):
        device = ibm_perth_like()
        circuit = QuantumCircuit(3)
        circuit.cx(0, 2)
        routed = GreedySwapRouter(device).route(circuit)
        initial = routed.physical_qubits([0, 1, 2], final=False)
        assert initial == [0, 1, 2]
        assert len(routed.physical_qubits([0, 1, 2], final=True)) == 3
