"""Tests for device-derived noise models and the error-reduction factor."""

import pytest

from repro.circuit import Instruction, QuantumCircuit
from repro.hardware import (
    device_noise_model,
    ibm_perth_like,
    scheduled_device_noise_model,
)
from repro.hardware.devices import DeviceModel, dual_rail_cavity_like
from repro.qram import ClassicalMemory, VirtualQRAM
from repro.sim.noise import PauliChannel, ScheduledNoiseModel, iter_error_sites


class TestDeviceNoiseModel:
    def test_two_qubit_gates_are_noisier(self):
        model = device_noise_model(ibm_perth_like())
        single = model.gate_error_channels(Instruction(gate="X", qubits=(0,)))
        double = model.gate_error_channels(Instruction(gate="CX", qubits=(0, 1)))
        assert single[0][1].p_total < double[0][1].p_total

    def test_error_reduction_factor_scales_channels(self):
        base = device_noise_model(ibm_perth_like(), error_reduction_factor=1)
        improved = device_noise_model(ibm_perth_like(), error_reduction_factor=100)
        base_channel = base.gate_error_channels(Instruction(gate="CX", qubits=(0, 1)))[0][1]
        improved_channel = improved.gate_error_channels(
            Instruction(gate="CX", qubits=(0, 1))
        )[0][1]
        assert improved_channel.p_total == pytest.approx(base_channel.p_total / 100)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            device_noise_model(ibm_perth_like(), error_reduction_factor=0)

    def test_barriers_and_noise_skipped(self):
        model = device_noise_model(ibm_perth_like())
        assert model.gate_error_channels(Instruction(gate="BARRIER", qubits=(0,))) == []
        noise_instr = Instruction(gate="X", qubits=(0,), tags=frozenset({"noise"}))
        assert model.gate_error_channels(noise_instr) == []

    def test_scaled_composes(self):
        model = device_noise_model(ibm_perth_like(), error_reduction_factor=10)
        rescaled = model.scaled(0.1)
        channel = rescaled.gate_error_channels(Instruction(gate="X", qubits=(0,)))[0][1]
        original = device_noise_model(ibm_perth_like(), error_reduction_factor=100)
        expected = original.gate_error_channels(Instruction(gate="X", qubits=(0,)))[0][1]
        assert channel.p_total == pytest.approx(expected.p_total)


class TestPauliBias:
    def test_unbiased_device_is_bitwise_depolarizing(self):
        """The (1, 1, 1) default routes through ``PauliChannel.depolarizing``.

        Bit-identity matters: every committed artefact was produced by
        ``depolarizing(eps)``, and rebuilding the same channel as
        ``eps * (w / W)`` can land an ulp away.
        """
        device = ibm_perth_like()
        model = device_noise_model(device, error_reduction_factor=3.0)
        assert model.single_qubit_channel == PauliChannel.depolarizing(
            device.single_qubit_error / 3.0
        )
        assert model.two_qubit_channel == PauliChannel.depolarizing(
            device.two_qubit_error / 3.0
        )

    def test_bias_splits_rate_across_paulis(self):
        device = DeviceModel(
            name="biased",
            num_qubits=2,
            coupling_map=((0, 1),),
            two_qubit_error=4e-2,
            pauli_bias=(2.0, 1.0, 1.0),
        )
        channel = device_noise_model(device).two_qubit_channel
        assert channel.p_x == pytest.approx(2e-2)
        assert channel.p_y == pytest.approx(1e-2)
        assert channel.p_z == pytest.approx(1e-2)

    def test_bias_preserves_total_rate(self):
        """Bare-vs-dual ablations compare at equal total error budgets."""
        biased = device_noise_model(dual_rail_cavity_like())
        unbiased = device_noise_model(ibm_perth_like())
        assert biased.single_qubit_channel.p_total == pytest.approx(
            unbiased.single_qubit_channel.p_total
        )
        assert biased.two_qubit_channel.p_total == pytest.approx(
            unbiased.two_qubit_channel.p_total
        )

    def test_bias_survives_error_reduction(self):
        channel = device_noise_model(
            dual_rail_cavity_like(), error_reduction_factor=10.0
        ).two_qubit_channel
        assert channel.p_x == pytest.approx(20 * channel.p_z)
        assert channel.p_y == pytest.approx(channel.p_x)


class TestFidelityImprovesWithBetterHardware:
    def test_monotone_in_error_reduction_factor(self):
        """The Appendix-A trend: better hardware, better query fidelity."""
        memory = ClassicalMemory.random(2, rng=0)
        architecture = VirtualQRAM(memory=memory, qram_width=1)
        fidelities = []
        for factor in (1, 10, 1000):
            noise = device_noise_model(ibm_perth_like(), error_reduction_factor=factor)
            result = architecture.run_query(noise, shots=200, rng=5)
            fidelities.append(result.mean_fidelity)
        assert fidelities[0] < fidelities[2]
        assert fidelities[2] > 0.95


class TestScheduledDeviceNoiseModel:
    def _circuit(self) -> QuantumCircuit:
        circuit = QuantumCircuit(2)
        for _ in range(5):
            circuit.add("X", 0)  # qubit 1 idles for the full 5-layer schedule
        return circuit

    def test_idle_defaults_to_device_calibration(self):
        device = ibm_perth_like()
        model = scheduled_device_noise_model(device, self._circuit())
        assert isinstance(model, ScheduledNoiseModel)
        assert len(model.final_sites) == 5
        assert model.final_sites[0][1].p_z == pytest.approx(device.idle_error)

    def test_zero_idle_error_reduces_to_plain_device_model(self):
        device = ibm_perth_like()
        model = scheduled_device_noise_model(device, self._circuit(), idle_error=0.0)
        assert model == device_noise_model(device)

    def test_idle_error_shares_the_reduction_factor(self):
        device = ibm_perth_like()
        model = scheduled_device_noise_model(
            device, self._circuit(), error_reduction_factor=10.0, idle_error=0.02
        )
        assert model.final_sites[0][1].p_z == pytest.approx(0.002)
        base_channel = model.base.gate_error_channels(
            Instruction(gate="X", qubits=(0,))
        )[0][1]
        assert base_channel.p_total == pytest.approx(
            device.single_qubit_error / 10.0
        )

    def test_negative_idle_error_rejected(self):
        with pytest.raises(ValueError, match="idle error"):
            scheduled_device_noise_model(
                ibm_perth_like(), self._circuit(), idle_error=-1e-3
            )

    def test_site_count_adds_idle_budget_to_gate_sites(self):
        circuit = self._circuit()
        device = ibm_perth_like()
        plain = list(iter_error_sites(circuit, device_noise_model(device)))
        scheduled = list(
            iter_error_sites(
                circuit, scheduled_device_noise_model(device, circuit)
            )
        )
        assert len(scheduled) == len(plain) + 5
