"""Tests for device-derived noise models and the error-reduction factor."""

import pytest

from repro.circuit import Instruction
from repro.hardware import device_noise_model, ibm_perth_like
from repro.qram import ClassicalMemory, VirtualQRAM


class TestDeviceNoiseModel:
    def test_two_qubit_gates_are_noisier(self):
        model = device_noise_model(ibm_perth_like())
        single = model.gate_error_channels(Instruction(gate="X", qubits=(0,)))
        double = model.gate_error_channels(Instruction(gate="CX", qubits=(0, 1)))
        assert single[0][1].p_total < double[0][1].p_total

    def test_error_reduction_factor_scales_channels(self):
        base = device_noise_model(ibm_perth_like(), error_reduction_factor=1)
        improved = device_noise_model(ibm_perth_like(), error_reduction_factor=100)
        base_channel = base.gate_error_channels(Instruction(gate="CX", qubits=(0, 1)))[0][1]
        improved_channel = improved.gate_error_channels(
            Instruction(gate="CX", qubits=(0, 1))
        )[0][1]
        assert improved_channel.p_total == pytest.approx(base_channel.p_total / 100)

    def test_invalid_factor_rejected(self):
        with pytest.raises(ValueError):
            device_noise_model(ibm_perth_like(), error_reduction_factor=0)

    def test_barriers_and_noise_skipped(self):
        model = device_noise_model(ibm_perth_like())
        assert model.gate_error_channels(Instruction(gate="BARRIER", qubits=(0,))) == []
        noise_instr = Instruction(gate="X", qubits=(0,), tags=frozenset({"noise"}))
        assert model.gate_error_channels(noise_instr) == []

    def test_scaled_composes(self):
        model = device_noise_model(ibm_perth_like(), error_reduction_factor=10)
        rescaled = model.scaled(0.1)
        channel = rescaled.gate_error_channels(Instruction(gate="X", qubits=(0,)))[0][1]
        original = device_noise_model(ibm_perth_like(), error_reduction_factor=100)
        expected = original.gate_error_channels(Instruction(gate="X", qubits=(0,)))[0][1]
        assert channel.p_total == pytest.approx(expected.p_total)


class TestFidelityImprovesWithBetterHardware:
    def test_monotone_in_error_reduction_factor(self):
        """The Appendix-A trend: better hardware, better query fidelity."""
        memory = ClassicalMemory.random(2, rng=0)
        architecture = VirtualQRAM(memory=memory, qram_width=1)
        fidelities = []
        for factor in (1, 10, 1000):
            noise = device_noise_model(ibm_perth_like(), error_reduction_factor=factor)
            result = architecture.run_query(noise, shots=200, rng=5)
            fidelities.append(result.mean_fidelity)
        assert fidelities[0] < fidelities[2]
        assert fidelities[2] > 0.95
